#!/usr/bin/env python3
"""Regenerate the derived documentation (docs/events.md)."""

from pathlib import Path

from repro.core.registry import default_registry


def main() -> None:
    out = Path(__file__).parent / "events.md"
    out.write_text(default_registry().to_markdown() + "\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
