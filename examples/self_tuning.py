#!/usr/bin/env python3
"""The system tunes itself from its own trace (§5 future work).

"We are investigating how to integrate our hot-swapping infrastructure
with the tracing infrastructure in order to provide feedback for the
system to tune itself."

An allocation storm hammers the global allocator lock.  A monitor inside
the system periodically reads the flight recorder, runs the same
contention analysis a human would (Figure 7), and when the global lock's
pressure crosses the threshold, hot-swaps the allocator to per-CPU pools
— while the workload keeps running.  The contention rate collapses, the
run finishes sooner, and the tuning action itself is an event in the
very trace that triggered it.

Run:  python examples/self_tuning.py
"""

from repro.core.facility import TraceFacility
from repro.ksim import AllocatorAutotuner, Kernel, KernelConfig
from repro.tools import format_lockstats, lock_statistics
from repro.workloads.contention import alloc_storm

NCPUS = 4


def run(autotune: bool):
    cfg = KernelConfig(ncpus=NCPUS, global_alloc_fraction=0.9, seed=5)
    kernel = Kernel(cfg)
    facility = TraceFacility(ncpus=NCPUS, clock=kernel.clock,
                             buffer_words=2048, num_buffers=8)
    facility.enable_all()
    kernel.facility = facility
    tuner = AllocatorAutotuner(kernel, check_period=300_000,
                               contention_threshold=10)
    if autotune:
        tuner.arm()
    for w in range(NCPUS * 2):
        kernel.spawn_process(alloc_storm(80, 8_192, 3_000),
                             f"churn{w}", cpu=w % NCPUS)
    assert kernel.run_until_quiescent()
    return kernel, facility, tuner


def main() -> None:
    k_static, _, _ = run(autotune=False)
    k_tuned, facility, tuner = run(autotune=True)

    print(tuner.describe())
    print()
    swap = tuner.actions[0].at_cycle
    trace = facility.decode()
    starts = trace.filter(name="TRC_LOCK_CONTEND_START")
    before = sum(1 for e in starts if e.time <= swap)
    after = sum(1 for e in starts if e.time > swap)
    print(f"contentions before swap: {before} over {swap:,} cycles")
    print(f"contentions after swap:  {after} over "
          f"{k_tuned.engine.now - swap:,} cycles")
    print()
    print(f"elapsed without tuning: {k_static.engine.now:,} cycles")
    print(f"elapsed with tuning:    {k_tuned.engine.now:,} cycles "
          f"({k_static.engine.now / k_tuned.engine.now:.2f}x faster)")
    print()
    print("post-mortem lock table of the tuned run (Figure 7 view):")
    stats = lock_statistics(trace)
    sym = k_tuned.symbols()
    print(format_lockstats(stats, sym.lock_names, sym.chains, top=2))


if __name__ == "__main__":
    main()
