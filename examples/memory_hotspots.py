#!/usr/bin/env python3
"""Finding a memory hot-spot with counters sampled into the trace (§2).

One process streams through a working set far beyond the L2 cache while
its neighbours stay cache-resident.  Hardware counters overflow-sample
into the same unified trace as everything else, so the memory-profile
tool can attribute every miss to a process and lay the misses against
time — no separate counter infrastructure needed, which is exactly the
integration argument the paper makes.

Run:  python examples/memory_hotspots.py
"""

from repro.tools import format_memory_report, memory_profile
from repro.tools.kmon import Timeline
from repro.workloads import run_memstress


def main() -> None:
    kernel, facility, result = run_memstress(
        ncpus=2, bursts=10, thrasher_pages=4096,
    )
    trace = facility.decode()
    report = memory_profile(trace, kernel.symbols().process_names)

    print(format_memory_report(report))
    print()
    top = report.hottest(1)[0]
    print(f"hot-spot verdict: pid {top.pid} ({top.name}) — "
          f"{top.l2_misses:,} L2 misses "
          f"({100 * top.l2_misses / report.total_l2:.0f}% of all)")
    print(f"machine ground truth agrees: thrasher pid = {result.thrasher_pid}, "
          f"{result.cold_bursts} cold-cache bursts")
    print()
    print("the same trace feeds every other tool — timeline view:")
    print(Timeline(trace).render(width=76))


if __name__ == "__main__":
    main()
