#!/usr/bin/env python3
"""Flight-recorder mode (§4.2): the last events before a crash.

"Management of the trace array for each processor as a circular buffer
... if the kernel should crash, the most recent activity recorded by the
tracing infrastructure is available.  This 'flight recorder'
functionality can be accessed from the debugger via a function call that
prints out the last set of trace events."

A multiprogrammed workload runs with circular per-CPU buffers (no
write-out); the run is stopped abruptly mid-flight — the "crash" — and
the debugger-style dump prints the most recent events, filtered the way
the real hook "has features to show only certain type of events".

Run:  python examples/flight_recorder.py
"""

from repro.core.facility import TraceFacility
from repro.core.majors import Major
from repro.ksim import Kernel, KernelConfig
from repro.tools.listing import format_event
from repro.workloads.multiprog import mixed_job


def dump_flight_recorder(facility, majors=None, last=15):
    """The debugger hook: print the last `last` events, optionally
    restricted to certain major classes."""
    trace = facility.decode(facility.snapshot())
    events = [e for e in trace.all_events() if not e.is_control]
    if majors is not None:
        events = [e for e in events if e.major in majors]
    print(f"--- flight recorder: last {min(last, len(events))} of "
          f"{len(events)} retained events ---")
    for e in events[-last:]:
        print(format_event(e))


def main() -> None:
    kernel = Kernel(KernelConfig(ncpus=2, seed=3))
    facility = TraceFacility(
        ncpus=2, clock=kernel.clock,
        buffer_words=512, num_buffers=4,
        mode="flight",                      # circular: old events overwritten
    )
    facility.enable_all()
    kernel.facility = facility

    for j in range(8):
        kernel.spawn_process(mixed_job(j, 1000 + j), f"job{j}", cpu=j % 2)

    # Run a while, then "crash" mid-execution.
    kernel.run(until=3_000_000)
    print(f"simulated kernel crash at cycle {kernel.engine.now:,} "
          f"with {kernel.live_threads} threads live\n")

    dump_flight_recorder(facility, last=12)
    print()
    dump_flight_recorder(facility, majors={Major.SYSCALL}, last=8)


if __name__ == "__main__":
    main()
