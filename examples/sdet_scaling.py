#!/usr/bin/env python3
"""The Figure 3 experiment in miniature: SDET throughput scaling.

Runs the SDET-like workload on the simulated multiprocessor in both
kernel configurations — the K42-style scalable one (with the tracing
infrastructure compiled in and enabled, as the paper did) and the
coarse-locked "Linux-like" baseline — and prints throughput versus CPU
count, plus the tracing-overhead comparison behind the paper's "<1%"
claim.

Run:  python examples/sdet_scaling.py
"""

from repro.workloads import run_sdet

CPU_POINTS = [1, 2, 4, 8, 16, 24]


def main() -> None:
    print("SDET throughput (scripts/hour of simulated time)")
    print(f"{'CPUs':>5} {'K42 (traced)':>14} {'coarse-locked':>14} {'ratio':>7}")
    for ncpus in CPU_POINTS:
        _, _, fine = run_sdet(ncpus, scripts_per_cpu=2, tracing="on")
        _, _, coarse = run_sdet(ncpus, scripts_per_cpu=2, tracing="on",
                                coarse_locked=True)
        ratio = fine.throughput / coarse.throughput
        print(f"{ncpus:>5} {fine.throughput:>14.0f} "
              f"{coarse.throughput:>14.0f} {ratio:>6.2f}x")

    print()
    print("Tracing overhead (single CPU — deterministic, noise-free):")
    rows = []
    for mode in ("off", "masked", "on"):
        _, _, res = run_sdet(1, scripts_per_cpu=4, commands_per_script=6,
                             tracing=mode, seed=7)
        rows.append((mode, res.elapsed_cycles, res.trace_events))
    base = rows[0][1]
    for mode, cycles, events in rows:
        print(f"  {mode:>7}: {cycles:>14,} cycles "
              f"({(cycles / base - 1) * 100:+.3f}% vs compiled-out, "
              f"{events} events)")
    print()
    print("The paper's claim: compiled-in-but-disabled costs <1%; fully")
    print("enabled tracing is low-impact enough to leave on while")
    print("benchmarking (its Figure 3 K42 curve was traced).")


if __name__ == "__main__":
    main()
