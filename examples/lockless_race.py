#!/usr/bin/env python3
"""Figure 1, animated: two processes race to log into one buffer.

The paper's Figure 1 walks the lockless reservation through four steps:
step 0, the initial index; step 1, processes A and B both attempt to
atomically advance it by their (different) event lengths; step 2, the
winner (B) owns the space right after the old index; step 3, A's retry
lands immediately after B.  This example forces exactly that schedule
with the simulator's interference-injectable atomic word and prints the
buffer state at each step — then shows the §3.1 monotonic-timestamp
guarantee surviving the race.

Run:  python examples/lockless_race.py
"""

from repro.atomic import SimAtomicWord
from repro.core.buffers import TraceControl
from repro.core.logger import TraceLogger
from repro.core.majors import Major
from repro.core.mask import TraceMask
from repro.core.registry import default_registry
from repro.core.stream import TraceReader
from repro.core.timestamps import ManualClock


def show(control, label):
    words = [int(w) for w in control.array[:14]]
    rendered = " ".join(f"{w:>5x}" if w else "    ." for w in words)
    print(f"{label:<34} index={control.index.load():>2}  [{rendered}]")


def main() -> None:
    control = TraceControl(buffer_words=32, num_buffers=4,
                           atomic_word_factory=SimAtomicWord)
    mask = TraceMask()
    mask.enable_all()
    clock = ManualClock()
    logger = TraceLogger(control, mask, clock, registry=default_registry())
    logger.start()
    base = control.index.load()
    print(f"step 0: buffer 0 holds its anchor events; index at {base}\n")
    show(control, "initial state")

    # Process A wants to log a 3-word event (header + 2 data words).
    # Between A's load of the index and its compare-and-store, process B
    # sneaks in and logs a 2-word event — Figure 1's winner.
    def process_b_wins(word: SimAtomicWord, expected: int, new: int) -> None:
        print(f"\nstep 1: A read index={expected}, attempts CAS -> {new}")
        print("        ...but B's CAS lands first (2-word event)")
        clock.advance(5)
        # B logs through the same logger machinery (hook disarmed so B's
        # own CAS succeeds cleanly).
        word.set_hook(None)
        logger.log1(Major.TEST, 1, 0xB)
        show(control, "step 2: B owns the old index")

    clock.advance(10)
    control.index.set_hook(process_b_wins)
    logger.log2(Major.TEST, 2, 0xA, 0xA)   # A retries internally and wins
    print(f"\nstep 3: A's retry reserved right after B "
          f"(index now {control.index.load()})")
    show(control, "final state")

    print(f"\nCAS attempts: {control.index.cas_attempts}, "
          f"failures (retries): {control.index.cas_failures}")

    trace = TraceReader(registry=default_registry()).decode_records(
        control.flush()
    )
    print("\ndecoded stream (timestamps monotonic despite the race — the")
    print("retry re-read the clock, the Figure 2 guarantee):")
    for e in trace.events(0):
        if e.major == Major.TEST:
            print(f"  t={e.time:>3} {e.name} data={[hex(d) for d in e.data]}")
    times = [e.time for e in trace.events(0)]
    assert times == sorted(times)
    print("\nno anomalies:", not trace.anomalies)


if __name__ == "__main__":
    main()
