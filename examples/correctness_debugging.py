#!/usr/bin/env python3
"""Correctness debugging with the trace (§4.2): finding a deadlock.

"A deadlock in the file system space was tracked down with the tracing
facility ... A printf solution would both have been too clumsy and would
have changed the timing thereby masking the deadlock.  Instead, a trace
file was produced and post-processed to detect where the cycle had
occurred."

Two simulated services acquire the dentry and inode locks in opposite
orders; the system hangs; the trace — with lock events enabled on all
paths, the detail level one turns on while debugging — is post-processed
into the wait-for cycle.

Run:  python examples/correctness_debugging.py
"""

from repro.core.facility import TraceFacility
from repro.ksim import Acquire, Compute, Kernel, KernelConfig, Release
from repro.tools import find_deadlocks, format_listing


def main() -> None:
    kernel = Kernel(KernelConfig(ncpus=2, trace_all_lock_events=True))
    facility = TraceFacility(ncpus=2, clock=kernel.clock,
                             buffer_words=1024, num_buffers=8)
    facility.enable_all()
    kernel.facility = facility

    dentry = kernel.create_lock("DentryListHash")
    inode = kernel.create_lock("InodeTable")

    def rename_path(api):
        """Service A: dentry lock, then inode lock."""
        yield Acquire(dentry, ("DirLinuxFS::rename", "DentryListHash::lock"))
        yield Compute(40_000, pc="DirLinuxFS::rename")
        yield Acquire(inode, ("DirLinuxFS::rename", "InodeTable::lock"))
        yield Release(inode)
        yield Release(dentry)

    def unlink_path(api):
        """Service B: inode lock, then dentry lock — the opposite order."""
        yield Acquire(inode, ("DirLinuxFS::unlink", "InodeTable::lock"))
        yield Compute(40_000, pc="DirLinuxFS::unlink")
        yield Acquire(dentry, ("DirLinuxFS::unlink", "DentryListHash::lock"))
        yield Release(dentry)
        yield Release(inode)

    kernel.spawn_process(rename_path, "renameService", cpu=0)
    kernel.spawn_process(unlink_path, "unlinkService", cpu=1)

    finished = kernel.run_until_quiescent(max_cycles=10**8)
    print(f"system quiesced normally? {finished}")
    assert not finished, "expected the file-system deadlock to hang the run"

    trace = facility.decode()
    report = find_deadlocks(trace)
    thread_pids = {t.addr: p.pid for p in kernel.processes.values()
                   for t in p.threads}
    print(report.describe(lock_names=kernel.symbols().lock_names,
                          thread_pids=thread_pids))
    print()
    print("the lock events leading up to the hang:")
    print(format_listing(
        trace,
        names=["TRC_LOCK_ACQUIRE", "TRC_LOCK_CONTEND_START",
               "TRC_LOCK_BLOCK"],
    ))


if __name__ == "__main__":
    main()
