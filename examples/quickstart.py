#!/usr/bin/env python3
"""Quickstart: the unified tracing facility in five minutes.

Creates a 2-CPU trace facility, logs events from "kernel" and
"application" code paths through the same lockless infrastructure,
serializes the trace to disk, reads it back with random access, and
prints a Figure 5-style listing.

Run:  python examples/quickstart.py
"""

import io

from repro.core import (
    Major,
    TraceFacility,
    TraceReader,
    load_records,
    save_records,
)
from repro.tools import format_listing, verify_trace


def main() -> None:
    # One facility serves every subsystem (§2 goal 1): per-CPU buffers,
    # lockless logging, a 64-bit enable mask.
    fac = TraceFacility(ncpus=2, buffer_words=1024, num_buffers=8)

    # The infrastructure is always compiled in; enabling is dynamic.
    fac.enable(Major.MEM, Major.USER, Major.APP)

    # "Kernel" code logs fixed-arity events through the fast macros...
    kernel_log = fac.logger(0)
    for i in range(5):
        kernel_log.log2(Major.MEM, 5, 0x1000_0000 + i * 0x1000, 1)

    # ...while an "application" on CPU 1 logs self-describing events,
    # including variable-length strings, into the same unified stream.
    app_log = fac.logger(1)
    app_log.log_event("TRC_USER_RUN_UL_LOADER", 6, 7, "/shellServer")
    app_log.log_event("TRC_APP_PHASE_BEGIN", 1, "warmup")
    app_log.log_event("TRC_APP_PHASE_END", 1, "warmup")

    # Events below a disabled major are dropped by one mask comparison.
    dropped = fac.log(0, Major.IO, 0, (1, 2))
    print(f"IO event logged while masked off? {dropped}")

    # Flush, serialize, reload — the stream is a file format too.
    records = fac.flush()
    buf = io.BytesIO()
    save_records(buf, records)
    buf.seek(0)
    reloaded = load_records(buf)
    trace = TraceReader(registry=fac.registry).decode_records(reloaded)

    print(verify_trace(trace).describe())
    print()
    print("Event listing (Figure 5 style):")
    print(format_listing(trace))


if __name__ == "__main__":
    main()
