#!/usr/bin/env python3
"""The §4 lock-hunting workflow: find the hottest lock, fix it, repeat.

"We went through a series of iterations where we used the lock analysis
tool to determine the most contended lock in the system, fixed it, and
then ran the tool again to identify the next most contended lock."

This example replays that loop on the simulator.  Iteration 1 runs an
allocation-heavy workload on a kernel whose allocations mostly take the
global GMalloc path; the tool fingers ``AllocRegionManager.global``.
The "fix" — routing allocations to per-CPU pools, K42's actual design —
is applied, and iteration 2 shows the contention shifted and shrunk,
exactly the experience the paper describes.

Run:  python examples/lock_contention_tuning.py
"""

from repro.tools import format_lockstats, lock_statistics
from repro.workloads import run_contention


def run_iteration(title: str, global_alloc_fraction: float) -> int:
    kernel, facility, result = run_contention(
        ncpus=8,
        workers_per_cpu=2,
        iterations=40,
        alloc_size=8_192,   # below the large-alloc threshold, so the
        global_alloc_fraction=global_alloc_fraction,  # fraction routes
        pc_sample_period=0,
    )
    trace = facility.decode()
    stats = lock_statistics(trace)
    sym = kernel.symbols()
    print(f"=== {title} "
          f"(elapsed {result.elapsed_cycles / 1e6:.2f}M cycles, "
          f"{result.lock_contentions} contentions) ===")
    print(format_lockstats(stats, sym.lock_names, sym.chains, top=3))
    return result.elapsed_cycles


def main() -> None:
    # Iteration 1: most allocations funnel through the global manager.
    before = run_iteration(
        "iteration 1: global allocation path dominates",
        global_alloc_fraction=0.9,
    )

    # "Fix" the top lock: per-CPU allocation pools (K42's design) —
    # only refills touch the global manager now.
    after = run_iteration(
        "iteration 2: after the fix (per-CPU pools, 5% global refills)",
        global_alloc_fraction=0.05,
    )

    speedup = before / after
    print(f"fixing the top contended lock sped the workload up "
          f"{speedup:.2f}x")


if __name__ == "__main__":
    main()
