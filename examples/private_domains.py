#!/usr/bin/env python3
"""Privilege-separated tracing (§5's protection future work).

"Different users may not desire to have information about their behavior
available to other users.  To solve this, we intend to map in different
buffers to user applications that do not have sufficient privileges to
see all data."

Two unprivileged applications and the kernel log through the same
unified mask and event vocabulary — but into separate buffers.  Each app
can read back only its own activity; the privileged view merges all
domains into the single time-ordered stream the analysis tools expect.

Run:  python examples/private_domains.py
"""

from repro.core.domains import TraceDomains
from repro.core.majors import Major
from repro.core.timestamps import ManualClock
from repro.tools.listing import format_event


def main() -> None:
    clock = ManualClock()
    domains = TraceDomains(ncpus=1, clock=clock)
    domains.enable_all()

    domains.register(0, privileged=True)      # the kernel
    domains.register(101, privileged=False)   # alice's database
    domains.register(102, privileged=False)   # bob's web server

    for i in range(4):
        clock.advance(100)
        domains.logger(101, 0).log_event(
            "TRC_USER_APP_MARK", i, f"alice-query-{i}")
        clock.advance(100)
        domains.logger(102, 0).log_event(
            "TRC_USER_APP_MARK", i, f"bob-request-{i}")
        clock.advance(100)
        domains.logger(0, 0).log1(Major.EXC, 4, i)   # kernel timer tick

    print("=== what alice (pid 101, unprivileged) can read ===")
    for e in domains.view(101).all_events():
        print(" ", format_event(e))

    print("\n=== what bob (pid 102, unprivileged) can read ===")
    for e in domains.view(102).all_events():
        print(" ", format_event(e))

    print("\n=== the privileged merged view (kernel, pid 0) ===")
    for e in domains.view(0).all_events()[:8]:
        print(" ", format_event(e))
    print("  ...")

    print("\nbob requesting the global view:")
    try:
        domains.view_privileged(102)
    except PermissionError as exc:
        print(f"  denied: {exc}")


if __name__ == "__main__":
    main()
