#!/usr/bin/env python3
"""Dynamic instrumentation of a live system (§5).

"Dynamic tools are necessary when attempting to start monitoring in
unanticipated ways an already installed and running machine" — but they
cost more per hit than the compiled-in events (springboard + overwrite
instructions, the KernInst overhead §5 cites).

This example runs a workload, then — mid-execution, without stopping
anything — attaches a probe to a function nobody anticipated needing to
watch.  The probe events land in the same unified trace as everything
else, and the overhead comparison against a static event is printed.

Run:  python examples/dynamic_probes.py
"""

from repro.core.facility import TraceFacility
from repro.core.majors import AppMinor, Major
from repro.ksim import Compute, Kernel, KernelConfig
from repro.tools.listing import format_event


def main() -> None:
    kernel = Kernel(KernelConfig(ncpus=2))
    facility = TraceFacility(ncpus=2, clock=kernel.clock,
                             buffer_words=2048, num_buffers=8)
    facility.enable_all()
    kernel.facility = facility

    def service(api):
        for i in range(60):
            yield Compute(8_000, pc="Service::handle_request")
            yield Compute(2_000, pc="Service::idle_bookkeeping")

    kernel.spawn_process(service, "service", cpu=0)

    # The system runs... and only NOW do we decide we need to watch
    # handle_request.  No recompile, no restart.
    kernel.run(until=200_000)
    print(f"system live at cycle {kernel.engine.now:,}; attaching probe")
    probe = kernel.probes.attach("Service::handle_request")

    kernel.run_until_quiescent()
    print(f"probe hit {probe.hits} of 60 request handlings "
          "(the ones after attach)\n")

    trace = facility.decode()
    probe_events = trace.filter(major=Major.APP, minor=AppMinor.PROBE)
    print("first few probe events in the unified stream:")
    for e in probe_events[:5]:
        print(" ", format_event(e))

    print()
    static_cost = kernel.costs.trace_event_cost(1)
    probe_cost = probe.overhead_cycles + static_cost
    print(f"cost per hit: static event {static_cost} cycles, dynamic probe "
          f"{probe_cost} cycles ({probe_cost / static_cost:.1f}x) — why §5 "
          "concludes compiled-in events stay the mode of choice for code "
          "you own, with dynamic probes as the complement.")


if __name__ == "__main__":
    main()
