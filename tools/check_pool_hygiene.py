#!/usr/bin/env python
"""Pool-hygiene probe: no leaked workers, no resource-tracker noise.

CI runs this once per start method (``REPRO_POOL_START_METHOD=fork``
and ``spawn``).  A child interpreter exercises every consumer of the
shared pool — parallel decode, store pack, store query — then calls
``pool.shutdown()`` and proves from the inside that no worker process
survived.  The parent then asserts the child exited cleanly with a
silent stderr: any leaked semaphore or shared-memory segment shows up
there as a ``resource_tracker`` warning at interpreter exit, and any
worker that outlives shutdown shows up in the child's process table.

Usage:
    REPRO_POOL_START_METHOD=fork python tools/check_pool_hygiene.py
"""

import os
import subprocess
import sys

EXERCISE = r"""
import os
import sys
import tempfile
import warnings

warnings.simplefilter("error")  # stray warnings fail the probe

from repro.core import pool
from repro.core.parallel import decode_records_parallel
from repro.core.stream import TraceReader
from repro.core.writer import load_records, save_records
from repro.store import Predicate, TraceStore, pack_records
from repro.workloads import run_contention
from tests.core.test_parallel import as_comparable

method = os.environ.get("REPRO_POOL_START_METHOD", "(default)")
print(f"exercising pool consumers under start method: {method}")

_k, facility, _ = run_contention(ncpus=2, workers_per_cpu=2,
                                 iterations=30, buffer_words=1024)
records = facility.snapshot()
tmp = tempfile.mkdtemp(prefix="pool-hygiene-")
trace_path = os.path.join(tmp, "t.k42")
save_records(trace_path, records)

# 1. parallel decode, over mmap-backed records (descriptor shipping).
loaded = load_records(trace_path)
par = decode_records_parallel(loaded, workers=2)
seq = TraceReader().decode_records(loaded)
assert as_comparable(par) == as_comparable(seq), "parallel decode differs"

# 2. parallel store pack + parallel query on the same pool.
store_path = os.path.join(tmp, "t.store")
pack_records(records, store_path, shard_events=512, workers=2)
qr = TraceStore(store_path, workers=2).query(Predicate())
assert len(qr) > 0, "query returned nothing"

kind = pool.pool_kind()
assert kind is not None, "no pool was ever created"
print(f"pool kind: {kind}, size: {pool.pool_size()}")

pool.shutdown()
assert pool.pool_kind() is None and pool.pool_size() == 0

# 3. prove no worker survived shutdown.
import multiprocessing

leaked = multiprocessing.active_children()
assert not leaked, f"leaked worker processes: {leaked}"
me = os.getpid()
if os.path.isdir("/proc"):
    kids = []
    for pid in os.listdir("/proc"):
        if not pid.isdigit():
            continue
        try:
            with open(f"/proc/{pid}/stat") as fh:
                fields = fh.read().split()
            if int(fields[3]) != me:
                continue
            with open(f"/proc/{pid}/cmdline", "rb") as fh:
                cmdline = fh.read().replace(b"\0", b" ").decode(
                    "utf-8", "replace")
            # The multiprocessing resource tracker is per-interpreter,
            # not per-pool; it exits with us and is not a leaked worker.
            if "resource_tracker" in cmdline:
                continue
            kids.append((pid, cmdline.strip()))
        except (OSError, IndexError, ValueError):
            continue
    assert not kids, f"processes still parented to this one: {kids}"
print("pool hygiene: ok")
"""


def main() -> int:
    env = dict(os.environ)
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(root, "src"), root,
                    env.get("PYTHONPATH", "")) if p)
    proc = subprocess.run(
        [sys.executable, "-c", EXERCISE],
        env=env, cwd=root, capture_output=True, text=True, timeout=600)
    sys.stdout.write(proc.stdout)
    sys.stderr.write(proc.stderr)
    if proc.returncode != 0:
        print("FAIL: exercise exited non-zero", file=sys.stderr)
        return 1
    noisy = [ln for ln in proc.stderr.splitlines() if ln.strip()]
    if noisy:
        # resource_tracker leak reports land on stderr at interpreter
        # exit, after the in-process assertions have already passed.
        print("FAIL: stderr was not silent:", file=sys.stderr)
        return 1
    print("PASS: no leaked workers, stderr silent")
    return 0


if __name__ == "__main__":
    sys.exit(main())
