#!/usr/bin/env python
"""Dependency-free line-coverage measurement for the tier-1 suite.

CI enforces a coverage floor with pytest-cov; this script exists so the
floor can be measured (and re-measured after big changes) on machines
that don't have coverage.py installed.  It runs pytest under a
``sys.settrace`` hook that records line events only for frames inside
``src/repro`` and divides by the executable-line count derived from
each module's compiled code objects (``co_lines``) — the same universe
coverage.py reports against, modulo its pragma handling, so expect
agreement within a percentage point.

Usage:
    python tools/measure_coverage.py [pytest args, default: tests/ -q]

Prints per-package and total percentages; the CI floor in
.github/workflows/ci.yml should be the measured total, rounded down,
minus a small cross-version jitter margin.
"""

import os
import sys
import threading

SRC = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, "src", "repro"))

_hits = {}


def _tracer(frame, event, arg):
    if event == "call":
        if not frame.f_code.co_filename.startswith(SRC):
            return None  # pay only the call event outside src/repro
        return _tracer
    if event == "line":
        _hits.setdefault(frame.f_code.co_filename, set()).add(frame.f_lineno)
    return _tracer


def _executable_lines(path):
    """Line numbers with instructions, collected over nested code objects."""
    with open(path, "rb") as fh:
        try:
            top = compile(fh.read(), path, "exec")
        except SyntaxError:
            return set()
    lines, stack = set(), [top]
    while stack:
        code = stack.pop()
        lines.update(ln for _, _, ln in code.co_lines() if ln)
        stack.extend(c for c in code.co_consts if hasattr(c, "co_lines"))
    return lines


def main(argv):
    import pytest

    args = argv or ["tests/", "-q", "-p", "no:cacheprovider"]
    threading.settrace(_tracer)
    sys.settrace(_tracer)
    try:
        rc = pytest.main(args)
    finally:
        sys.settrace(None)
        threading.settrace(None)
    if rc != 0:
        print(f"pytest exited {rc}; coverage below is for a FAILING run")

    total_exec = total_hit = 0
    per_pkg = {}
    for root, _dirs, files in os.walk(SRC):
        for name in sorted(files):
            if not name.endswith(".py"):
                continue
            path = os.path.join(root, name)
            execable = _executable_lines(path)
            hit = _hits.get(path, set()) & execable
            pkg = os.path.relpath(root, SRC) or "."
            e, h = per_pkg.get(pkg, (0, 0))
            per_pkg[pkg] = (e + len(execable), h + len(hit))
            total_exec += len(execable)
            total_hit += len(hit)

    print(f"\n{'package':<16} {'lines':>7} {'hit':>7} {'cover':>7}")
    for pkg in sorted(per_pkg):
        e, h = per_pkg[pkg]
        pct = 100.0 * h / e if e else 100.0
        print(f"{pkg:<16} {e:>7} {h:>7} {pct:>6.1f}%")
    pct = 100.0 * total_hit / total_exec if total_exec else 100.0
    print(f"{'TOTAL':<16} {total_exec:>7} {total_hit:>7} {pct:>6.1f}%")
    return rc


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
