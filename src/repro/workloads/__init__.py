"""Workload generators driving the simulated OS.

* :mod:`repro.workloads.sdet` — the SPEC-SDET-like multiprogrammed
  software-development workload behind Figure 3;
* :mod:`repro.workloads.scientific` — one thread per CPU (the class of
  application §3.1 says never garbles trace buffers);
* :mod:`repro.workloads.contention` — allocator/lock storms for the
  lock-analysis experiments (Figures 6 and 7);
* :mod:`repro.workloads.multiprog` — heavy multiprogramming mixes.
"""

from repro.workloads.sdet import SdetResult, run_sdet, sdet_script
from repro.workloads.scientific import run_scientific
from repro.workloads.contention import run_contention
from repro.workloads.multiprog import run_multiprog
from repro.workloads.memstress import run_memstress
from repro.workloads.server import run_server

__all__ = [
    "SdetResult", "run_sdet", "sdet_script",
    "run_scientific", "run_contention", "run_multiprog", "run_memstress",
    "run_server",
]
