"""A multi-threaded server process: workers over a shared request queue.

The missing shape among the workloads: one *process* with many kernel
threads (K42's servers are built this way — Figure 8's bottom section
lists baseServers' "thread entry points").  Client processes submit
requests; worker threads inside the server pop them from a shared queue
(BlockOn/Wake as the condition variable, a kernel lock guarding the
queue), do the work, and reply.  Exercises multi-threaded process
semantics, cross-process wakeups, and produces a server whose profile
and breakdown look like a real daemon's.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Tuple

from repro.core.facility import TraceFacility
from repro.ksim.kernel import Kernel, KernelConfig
from repro.ksim.ops import Acquire, BlockOn, Release, Wake


@dataclass
class Request:
    req_id: int
    client_pid: int
    work_cycles: int
    submitted_at: int
    completed_at: int = 0


class ServerState:
    """Shared state of the server: the request queue + counters."""

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self.queue: Deque[Request] = deque()
        self.queue_lock = kernel.create_lock("Server::requestQueue")
        self.completed: List[Request] = []
        self.shutdown = False
        self._next_id = 1

    def submit(self, client_pid: int, work_cycles: int) -> Request:
        req = Request(self._next_id, client_pid, work_cycles,
                      self.kernel.engine.now)
        self._next_id += 1
        return req


def worker_thread(state: ServerState, worker_id: int):
    """One server worker: pop, work, reply, repeat."""

    def program(api):
        while True:
            yield Acquire(state.queue_lock,
                          ("ServerWorker::run", "RequestQueue::pop"))
            req = state.queue.popleft() if state.queue else None
            should_stop = state.shutdown and req is None
            yield Release(state.queue_lock)
            if should_stop:
                return
            if req is None:
                yield BlockOn(("server-work",))
                continue
            yield from api.compute(req.work_cycles,
                                   pc="ServerWorker::handle_request")
            req.completed_at = api.k.engine.now
            state.completed.append(req)
            yield Wake(("reply", req.req_id))

    return program


def server_process(state: ServerState, nworkers: int):
    """The server's main thread spawns the worker pool and waits."""

    def program(api):
        workers = []
        for w in range(nworkers):
            t = yield from api.spawn_thread(worker_thread(state, w))
            workers.append(t)
        # Main thread idles until shutdown is signalled.
        yield BlockOn(("server-shutdown",))
        state.shutdown = True
        yield Wake(("server-work",))  # flush idle workers

    return program


def client_process(state: ServerState, requests: int, work_cycles: int,
                   think_cycles: int):
    def program(api):
        for i in range(requests):
            req = state.submit(api.process.pid, work_cycles)
            yield Acquire(state.queue_lock,
                          ("Client::submit", "RequestQueue::push"))
            state.queue.append(req)
            yield Release(state.queue_lock)
            yield Wake(("server-work",))
            yield BlockOn(("reply", req.req_id))
            yield from api.compute(think_cycles, pc="user:client_think")

    return program


@dataclass
class ServerResult:
    ncpus: int
    nworkers: int
    requests_completed: int
    elapsed_cycles: int
    mean_latency: float
    max_latency: int
    server_pid: int
    utilization: List[float] = field(default_factory=list)


def run_server(
    ncpus: int = 4,
    nworkers: int = 3,
    nclients: int = 4,
    requests_per_client: int = 10,
    work_cycles: int = 60_000,
    think_cycles: int = 10_000,
    seed: int = 19,
    pc_sample_period: int = 0,
    buffer_words: int = 4096,
    num_buffers: int = 16,
) -> Tuple[Kernel, TraceFacility, ServerResult]:
    """Run the client/server workload to completion."""
    kernel = Kernel(KernelConfig(ncpus=ncpus, seed=seed,
                                 pc_sample_period=pc_sample_period))
    facility = TraceFacility(ncpus=ncpus, clock=kernel.clock,
                             buffer_words=buffer_words,
                             num_buffers=num_buffers)
    facility.enable_all()
    kernel.facility = facility
    state = ServerState(kernel)
    server = kernel.spawn_process(
        server_process(state, nworkers), "appServer", cpu=0
    )
    clients = [
        kernel.spawn_process(
            client_process(state, requests_per_client, work_cycles,
                           think_cycles),
            f"client{c}", cpu=c % ncpus,
        )
        for c in range(nclients)
    ]

    total = nclients * requests_per_client

    def check_done() -> None:
        if state.queue:
            # Heal lost wakeups (a client can enqueue in the window
            # between a worker's empty-check and its block).
            kernel._wake(("server-work",))
        if len(state.completed) >= total and not state.shutdown:
            kernel._wake(("server-shutdown",))
        elif kernel.live_threads > 0:
            kernel.engine.after(100_000, check_done)

    kernel.engine.after(100_000, check_done)
    if not kernel.run_until_quiescent(max_cycles=10**12):
        raise RuntimeError("server workload did not quiesce")
    latencies = [r.completed_at - r.submitted_at for r in state.completed]
    return kernel, facility, ServerResult(
        ncpus=ncpus,
        nworkers=nworkers,
        requests_completed=len(state.completed),
        elapsed_cycles=kernel.engine.now,
        mean_latency=sum(latencies) / len(latencies) if latencies else 0.0,
        max_latency=max(latencies) if latencies else 0,
        server_pid=server.pid,
        utilization=kernel.utilization(),
    )
