"""Lock-storm workloads: allocator pressure for Figures 6 and 7.

Every worker hammers malloc/free with a high global-path fraction, so
the ``AllocRegionManager``/``PageAllocatorDefault`` locks become exactly
the ranked hot spots the paper's lock-analysis tool surfaced — and PC
sampling shows ``FairBLock::_acquire`` at the top of the profile the way
Figure 6 does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.core.facility import TraceFacility
from repro.core.timestamps import ClockSource
from repro.ksim.kernel import Kernel, KernelConfig


def alloc_storm(iterations: int, alloc_size: int, compute_between: int):
    def program(api):
        for i in range(iterations):
            addr = yield from api.malloc(alloc_size)
            yield from api.compute(compute_between, pc="user:churn")
            yield from api.free(addr, alloc_size)
    return program


def fs_storm(iterations: int):
    """File-server pressure: contends the dentry lock inside pid 1."""
    def program(api):
        for i in range(iterations):
            fd = yield from api.open(f"/tmp/f{i % 7}")
            yield from api.read(fd, 1_024)
            yield from api.close(fd)
    return program


@dataclass
class ContentionResult:
    ncpus: int
    elapsed_cycles: int
    lock_contentions: int
    utilization: List[float] = field(default_factory=list)


def run_contention(
    ncpus: int = 4,
    workers_per_cpu: int = 2,
    iterations: int = 60,
    alloc_size: int = 96_000,          # large: forces the global paths
    compute_between: int = 4_000,
    global_alloc_fraction: float = 0.9,
    with_fs_pressure: bool = True,
    pc_sample_period: int = 3_000,
    seed: int = 13,
    buffer_words: int = 4096,
    num_buffers: int = 16,
    clock_transform: Optional[Callable[[ClockSource], ClockSource]] = None,
) -> Tuple[Kernel, TraceFacility, ContentionResult]:
    """Run the lock storm; see module docstring.

    ``clock_transform`` wraps the clock the *trace facility* reads (the
    kernel still schedules on true simulator time) — this is how a
    fleet node logs timestamps on its own skewed local clock while the
    workload itself stays deterministic.
    """
    cfg = KernelConfig(
        ncpus=ncpus, seed=seed,
        global_alloc_fraction=global_alloc_fraction,
        pc_sample_period=pc_sample_period,
    )
    kernel = Kernel(cfg)
    facility = TraceFacility(
        ncpus=ncpus,
        clock=(clock_transform(kernel.clock) if clock_transform is not None
               else kernel.clock),
        buffer_words=buffer_words, num_buffers=num_buffers,
    )
    facility.enable_all()
    kernel.facility = facility
    n = ncpus * workers_per_cpu
    for w in range(n):
        kernel.spawn_process(
            alloc_storm(iterations, alloc_size, compute_between),
            f"churn{w}", cpu=w % ncpus,
        )
        if with_fs_pressure and w % 2 == 0:
            kernel.spawn_process(
                fs_storm(iterations // 2), f"fsload{w}", cpu=w % ncpus
            )
    if not kernel.run_until_quiescent(max_cycles=10**13):
        raise RuntimeError("contention run did not quiesce")
    total_contentions = sum(l.contentions for l in kernel.locks)
    return kernel, facility, ContentionResult(
        ncpus=ncpus,
        elapsed_cycles=kernel.engine.now,
        lock_contentions=total_contentions,
        utilization=kernel.utilization(),
    )
