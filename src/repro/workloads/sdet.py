"""SPEC SDET-like workload (the Figure 3 experiment).

SDET "runs a series of independent scripts that simulate a typical Unix
time-shared environment by running commands such as awk, grep, and
nroff" (§4).  Each simulated script forks a sequence of commands; each
command is a fork/exec with a characteristic mix of computation, file
I/O through the file server, memory allocation, and page faults.  The
benchmark metric is throughput — scripts per simulated hour — as a
function of the number of CPUs.

The scaling *shape* is the reproduction target: the K42 configuration
(per-CPU allocation paths, lazy fork) scales near-linearly with the
tracing infrastructure compiled in and enabled; the coarse-locked
configuration flattens the way the paper's Linux curve does.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Literal, Optional, Tuple

from repro.core.facility import TraceFacility
from repro.ksim.costs import DEFAULT_COSTS, CostModel
from repro.ksim.kernel import Kernel, KernelConfig

TracingMode = Literal["on", "masked", "off"]

# Command mixes: (compute_cycles, reads, writes, allocs, alloc_size,
#                 touch_pages, opens).  Rough caricatures of the SDET
# command set — what matters is that they stress fork/exec, the
# allocator locks, the file server, and the scheduler simultaneously.
COMMANDS: Dict[str, Tuple[int, int, int, int, int, int, int]] = {
    "awk":   (500_000, 3, 1, 4, 8_192, 4, 1),
    "grep":  (200_000, 5, 0, 2, 4_096, 2, 2),
    "nroff": (800_000, 2, 1, 6, 16_384, 6, 1),
    "ls":    (60_000, 1, 0, 1, 2_048, 1, 3),
    "cc":    (1_200_000, 4, 2, 10, 96_000, 10, 2),
    "ed":    (90_000, 2, 2, 2, 4_096, 2, 1),
    "spell": (400_000, 4, 0, 3, 8_192, 3, 1),
    "mkdir": (40_000, 0, 1, 1, 2_048, 1, 1),
}

#: The per-script command sequence length used by the paper-style runs.
DEFAULT_COMMANDS_PER_SCRIPT = 6


def command_program(name: str):
    """Build the program generator factory for one simulated command."""
    (compute, reads, writes, allocs, alloc_size, pages, opens) = COMMANDS[name]

    def program(api):
        yield from api.touch(pages, major_fraction=0.05)
        held = []
        for i in range(allocs):
            addr = yield from api.malloc(alloc_size)
            held.append(addr)
        for i in range(opens):
            fd = yield from api.open(f"/src/{name}/file{i}")
            for _ in range(reads):
                yield from api.read(fd, 4_096)
            for _ in range(writes):
                yield from api.write(fd, 2_048)
            yield from api.close(fd)
        # Computation interleaved so preemption points exist.
        chunk = max(10_000, compute // 4)
        done = 0
        while done < compute:
            step = min(chunk, compute - done)
            yield from api.compute(step, pc=f"user:{name}_main")
            done += step
        for addr in held:
            yield from api.free(addr, alloc_size)

    return program


def sdet_script(script_id: int, commands: List[str]):
    """One SDET script: run the command list sequentially via fork/exec."""

    def program(api):
        yield from api.mark(f"script{script_id}_start", script_id)
        for i, cmd in enumerate(commands):
            child = yield from api.spawn(
                command_program(cmd), f"{cmd}.{script_id}.{i}"
            )
            yield from api.wait(child)
        yield from api.mark(f"script{script_id}_end", script_id)

    return program


@dataclass
class SdetResult:
    ncpus: int
    scripts: int
    elapsed_cycles: int
    tracing: TracingMode
    coarse_locked: bool
    utilization: List[float] = field(default_factory=list)
    trace_events: int = 0

    @property
    def throughput(self) -> float:
        """Scripts per simulated hour (1 GHz machine)."""
        if self.elapsed_cycles == 0:
            return 0.0
        seconds = self.elapsed_cycles / 1e9
        return self.scripts / seconds * 3600.0


def run_sdet(
    ncpus: int,
    scripts_per_cpu: int = 2,
    commands_per_script: int = DEFAULT_COMMANDS_PER_SCRIPT,
    tracing: TracingMode = "on",
    coarse_locked: bool = False,
    seed: int = 7,
    costs: Optional[CostModel] = None,
    pc_sample_period: int = 0,
    buffer_words: int = 4096,
    num_buffers: int = 16,
) -> Tuple[Kernel, Optional[TraceFacility], SdetResult]:
    """Run one SDET point; returns (kernel, facility, result).

    ``tracing``:

    * ``"on"``     — infrastructure compiled in, all majors enabled;
    * ``"masked"`` — compiled in, mask disabled (4-cycle checks only);
    * ``"off"``    — compiled out entirely (no facility).
    """
    cfg = KernelConfig(
        ncpus=ncpus,
        coarse_locked=coarse_locked,
        seed=seed,
        pc_sample_period=pc_sample_period,
        costs=costs or DEFAULT_COSTS,
    )
    kernel = Kernel(cfg)
    facility: Optional[TraceFacility] = None
    if tracing != "off":
        facility = TraceFacility(
            ncpus=ncpus,
            clock=kernel.clock,
            buffer_words=buffer_words,
            num_buffers=num_buffers,
        )
        if tracing == "on":
            facility.enable_all()
        kernel.facility = facility

    rng = random.Random(seed)
    n_scripts = ncpus * scripts_per_cpu
    names = list(COMMANDS)
    for s in range(n_scripts):
        cmds = [rng.choice(names) for _ in range(commands_per_script)]
        kernel.spawn_process(
            sdet_script(s, cmds), f"sdet_script{s}", cpu=s % ncpus
        )
    finished = kernel.run_until_quiescent(max_cycles=10**13)
    if not finished:
        raise RuntimeError("SDET run did not quiesce (deadlock?)")
    result = SdetResult(
        ncpus=ncpus,
        scripts=n_scripts,
        elapsed_cycles=kernel.engine.now,
        tracing=tracing,
        coarse_locked=coarse_locked,
        utilization=kernel.utilization(),
        trace_events=(
            facility.stats()["events_logged"] if facility is not None else 0
        ),
    )
    return kernel, facility, result
