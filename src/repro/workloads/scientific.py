"""Scientific workload: one thread per CPU, barrier-synchronized phases.

"For large scientific applications running one thread per processor,
such errors [garbled buffers] will not occur" (§3.1) — this workload is
the no-multiprogramming end of that spectrum, and also drives the kmon
timeline example (synchronized phases make clean visual bands).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.facility import TraceFacility
from repro.ksim.kernel import Kernel, KernelConfig
from repro.ksim.ops import BlockOn, Wake


class Barrier:
    """A sense-reversing barrier over the kernel's wait queues."""

    def __init__(self, parties: int) -> None:
        self.parties = parties
        self.waiting = 0
        self.generation = 0

    def wait(self, api):
        gen = self.generation
        self.waiting += 1
        if self.waiting == self.parties:
            self.waiting = 0
            self.generation += 1
            yield Wake(("barrier", id(self), gen))
        else:
            yield BlockOn(("barrier", id(self), gen))


def worker(rank: int, barrier: Barrier, phases: int, phase_cycles: int,
           alloc_size: int = 32_768):
    def program(api):
        yield from api.touch(8, major_fraction=0.0)
        for phase in range(phases):
            yield from api.phase_begin(f"phase{phase}", phase)
            addr = yield from api.malloc(alloc_size)
            # Slightly imbalanced compute so the barrier matters.
            cycles = phase_cycles + (rank * phase_cycles) // 50
            yield from api.compute(cycles, pc="user:stencil_sweep")
            yield from api.free(addr, alloc_size)
            yield from api.phase_end(f"phase{phase}", phase)
            yield from barrier.wait(api)
    return program


@dataclass
class ScientificResult:
    ncpus: int
    phases: int
    elapsed_cycles: int
    utilization: List[float] = field(default_factory=list)


def run_scientific(
    ncpus: int = 4,
    phases: int = 5,
    phase_cycles: int = 2_000_000,
    tracing: bool = True,
    seed: int = 11,
    buffer_words: int = 4096,
    num_buffers: int = 16,
) -> Tuple[Kernel, Optional[TraceFacility], ScientificResult]:
    cfg = KernelConfig(ncpus=ncpus, seed=seed)
    kernel = Kernel(cfg)
    facility: Optional[TraceFacility] = None
    if tracing:
        facility = TraceFacility(
            ncpus=ncpus, clock=kernel.clock,
            buffer_words=buffer_words, num_buffers=num_buffers,
        )
        facility.enable_all()
        kernel.facility = facility
    barrier = Barrier(ncpus)
    for rank in range(ncpus):
        kernel.spawn_process(
            worker(rank, barrier, phases, phase_cycles),
            f"hpcapp.rank{rank}", cpu=rank,
        )
    if not kernel.run_until_quiescent(max_cycles=10**13):
        raise RuntimeError("scientific run did not quiesce")
    return kernel, facility, ScientificResult(
        ncpus=ncpus, phases=phases,
        elapsed_cycles=kernel.engine.now,
        utilization=kernel.utilization(),
    )
