"""Memory-stress workload: mixed working sets for the hw-counter study.

One "thrasher" process streams through a working set far beyond the L2
capacity while well-behaved processes stay cache-resident — the classic
memory-hot-spot situation §2 says the counter/tracing integration lets
you find.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.core.facility import TraceFacility
from repro.ksim.kernel import Kernel, KernelConfig


def streaming_job(working_set_pages: int, bursts: int, burst_cycles: int):
    def program(api):
        api.set_working_set(working_set_pages)
        yield from api.touch(min(working_set_pages, 64), major_fraction=0.0)
        for b in range(bursts):
            yield from api.compute(burst_cycles, pc="user:stream_sweep")
            yield from api.sleep(20_000)  # lets others run (cold caches!)
    return program


def resident_job(bursts: int, burst_cycles: int):
    def program(api):
        api.set_working_set(32)  # comfortably fits in L2
        for b in range(bursts):
            yield from api.compute(burst_cycles, pc="user:resident_loop")
            yield from api.sleep(20_000)
    return program


@dataclass
class MemStressResult:
    ncpus: int
    elapsed_cycles: int
    thrasher_pid: int
    l2_misses_total: int
    cold_bursts: int
    utilization: List[float] = field(default_factory=list)


def run_memstress(
    ncpus: int = 2,
    bursts: int = 12,
    burst_cycles: int = 400_000,
    thrasher_pages: int = 4_096,
    hw_overflow_threshold: int = 2_000,
    seed: int = 23,
    buffer_words: int = 4096,
    num_buffers: int = 16,
) -> Tuple[Kernel, TraceFacility, MemStressResult]:
    cfg = KernelConfig(ncpus=ncpus, seed=seed,
                       hw_overflow_threshold=hw_overflow_threshold)
    kernel = Kernel(cfg)
    facility = TraceFacility(ncpus=ncpus, clock=kernel.clock,
                             buffer_words=buffer_words,
                             num_buffers=num_buffers)
    facility.enable_all()
    kernel.facility = facility

    thrasher = kernel.spawn_process(
        streaming_job(thrasher_pages, bursts, burst_cycles),
        "memhog", cpu=0,
    )
    for w in range(2 * ncpus - 1):
        kernel.spawn_process(
            resident_job(bursts, burst_cycles),
            f"resident{w}", cpu=(w + 1) % ncpus,
        )
    if not kernel.run_until_quiescent(max_cycles=10**13):
        raise RuntimeError("memstress run did not quiesce")
    from repro.ksim.hwcounters import HwCounter

    return kernel, facility, MemStressResult(
        ncpus=ncpus,
        elapsed_cycles=kernel.engine.now,
        thrasher_pid=thrasher.pid,
        l2_misses_total=kernel.hw.totals()[HwCounter.L2_MISSES],
        cold_bursts=kernel.hw.cold_bursts,
        utilization=kernel.utilization(),
    )
