"""Heavy multiprogramming mix.

"The probability [of garbled buffers] increases on systems with a high
degree of multiprogramming, i.e., those context switching between many
applications" (§3.1).  This workload oversubscribes every CPU with
short-lived mixed-behaviour processes, maximizing context switches and
preemptions — the adversarial input for the garble experiments and for
scheduler/timeline tooling.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.facility import TraceFacility
from repro.ksim.kernel import Kernel, KernelConfig


def mixed_job(job_id: int, rng_seed: int):
    def program(api):
        rng = random.Random(rng_seed)
        for burst in range(rng.randint(3, 8)):
            kind = rng.random()
            if kind < 0.4:
                yield from api.compute(rng.randint(20_000, 200_000),
                                       pc="user:busy_loop")
            elif kind < 0.6:
                addr = yield from api.malloc(rng.choice([4_096, 16_384, 96_000]))
                yield from api.free(addr, 4_096)
            elif kind < 0.8:
                fd = yield from api.open(f"/var/job{job_id % 5}")
                yield from api.read(fd, rng.randint(512, 8_192))
                yield from api.close(fd)
            else:
                yield from api.touch(rng.randint(1, 4), major_fraction=0.1)
    return program


@dataclass
class MultiprogResult:
    ncpus: int
    jobs: int
    elapsed_cycles: int
    context_switches: int
    utilization: List[float] = field(default_factory=list)


def run_multiprog(
    ncpus: int = 2,
    jobs_per_cpu: int = 8,
    tracing: bool = True,
    seed: int = 17,
    quantum: Optional[int] = 200_000,   # short quantum: lots of preemption
    buffer_words: int = 4096,
    num_buffers: int = 16,
) -> Tuple[Kernel, Optional[TraceFacility], MultiprogResult]:
    from repro.ksim.costs import DEFAULT_COSTS

    costs = DEFAULT_COSTS
    if quantum is not None:
        costs = costs.with_overrides(quantum=quantum)
    cfg = KernelConfig(ncpus=ncpus, seed=seed, costs=costs)
    kernel = Kernel(cfg)
    facility: Optional[TraceFacility] = None
    if tracing:
        facility = TraceFacility(
            ncpus=ncpus, clock=kernel.clock,
            buffer_words=buffer_words, num_buffers=num_buffers,
        )
        facility.enable_all()
        kernel.facility = facility
    rng = random.Random(seed)
    jobs = ncpus * jobs_per_cpu
    for j in range(jobs):
        kernel.spawn_process(
            mixed_job(j, rng.randint(0, 2**31)), f"job{j}", cpu=j % ncpus
        )
    if not kernel.run_until_quiescent(max_cycles=10**13):
        raise RuntimeError("multiprog run did not quiesce")
    return kernel, facility, MultiprogResult(
        ncpus=ncpus, jobs=jobs,
        elapsed_cycles=kernel.engine.now,
        context_switches=sum(c.context_switches for c in kernel.cpus),
        utilization=kernel.utilization(),
    )
