"""Record sources for live monitoring.

Every source speaks the same protocol:

``poll() -> List[BufferRecord]``
    whatever became available since the last poll (possibly nothing);
``done`` (property)
    the producer has declared it will produce no more;
``finish() -> List[BufferRecord]``
    the final sweep once the producer has stopped — tail judgement for
    files, the forced finalize for shared memory, the remainder for
    replays.

The monitor never cares which concrete source it is polling, so a
recorded trace replayed through :class:`Replayer` exercises exactly the
live pipeline — the queue-fed replayer idea: replay is just another
event source, and speed (instant / realtime / Nx) is a property of the
source, not of the analysis.
"""

from __future__ import annotations

import io
import time
from typing import BinaryIO, Callable, Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.core.buffers import BufferRecord
from repro.core.constants import (
    LENGTH_MASK,
    LENGTH_SHIFT,
    MAJOR_MASK,
    MAJOR_SHIFT,
    MINOR_MASK,
)
from repro.core.majors import ControlMinor, Major
from repro.core.stream import sdelta32
from repro.core.writer import (
    _FILE_HEADER,
    _FRAME_HEADER,
    _FRAME_MAGIC_BYTES,
    FRAME_MAGIC,
    TraceFileReader,
    classify_tail,
    scan_for_magic,
)
from repro.tools.listing import CYCLES_PER_SECOND

_CTRL = int(Major.CONTROL)
_ANCHOR = int(ControlMinor.TIMESTAMP_ANCHOR)


class TraceFileFollower:
    """Tails a growing ``.k42`` trace file, yielding new whole frames.

    The file-level twin of the shm collector's committed-count gate: a
    frame is yielded only once every one of its bytes is on disk — the
    trailing partial frame (the ``"growing"`` tail verdict) is never
    parsed, just waited out, so a resumable cursor replaces re-reading
    the file.  Damage inside the complete region is skipped by frame-
    magic resynchronization exactly like
    :class:`~repro.core.writer.TraceFileReader`, and described on
    :attr:`issues`.

    The file may not even hold a complete *file header* yet when the
    follower attaches; polls return nothing until it does.
    """

    def __init__(self, path: Union[str, BinaryIO]) -> None:
        self._own = isinstance(path, str)
        self.fh: BinaryIO = open(path, "rb") if self._own else path
        self.path = path if self._own else getattr(path, "name", "<stream>")
        #: Damage descriptions, same shape as ``TraceFileReader.issues``.
        self.issues: List[str] = []
        self.frames_read = 0
        self.buffer_words: Optional[int] = None
        self.frame_size = 0
        #: Verdict on the bytes past the cursor after :meth:`finish`.
        self.tail_state = "complete"
        self._cursor = 0

    def close(self) -> None:
        if self._own:
            self.fh.close()

    def _ensure_header(self) -> bool:
        """Parse the file header once enough bytes exist for it."""
        if self.buffer_words is not None:
            return True
        self.fh.seek(0, io.SEEK_END)
        if self.fh.tell() < _FILE_HEADER.size:
            return False
        self.fh.seek(0)
        reader = TraceFileReader(self.fh)   # strict header validation
        self.buffer_words = reader.buffer_words
        self.frame_size = reader.frame_size
        self._cursor = _FILE_HEADER.size
        return True

    @property
    def done(self) -> bool:
        """A file never announces completion; callers stop on idleness."""
        return False

    @property
    def pending_bytes(self) -> int:
        """Bytes on disk past the cursor (an incomplete frame, or 0)."""
        self.fh.seek(0, io.SEEK_END)
        return self.fh.tell() - max(self._cursor, _FILE_HEADER.size)

    def poll(self) -> List[BufferRecord]:
        """Every frame that became whole since the last poll."""
        if not self._ensure_header():
            return []
        assert self.buffer_words is not None
        self.fh.seek(0, io.SEEK_END)
        size = self.fh.tell()
        out: List[BufferRecord] = []
        while self._cursor + self.frame_size <= size:
            pos = self._cursor
            self.fh.seek(pos)
            raw = self.fh.read(_FRAME_HEADER.size)
            (magic, cpu, seq, committed,
             fill_words, partial) = _FRAME_HEADER.unpack(raw)
            plausible = (magic == FRAME_MAGIC
                         and fill_words <= self.buffer_words
                         and partial <= 1)
            if not plausible:
                nxt = scan_for_magic(self.fh, _FRAME_MAGIC_BYTES, pos + 1)
                if nxt is None or nxt + self.frame_size > size:
                    # No whole frame after the damage *yet*.  More data
                    # may bring one (or reveal this as tail damage), so
                    # stall the cursor rather than guess.
                    break
                self.issues.append(
                    f"damaged frame at byte {pos}; skipped {nxt - pos} "
                    f"bytes to the next frame magic"
                )
                self._cursor = nxt
                continue
            payload = self.fh.read(self.buffer_words * 8)
            words = np.frombuffer(payload, dtype="<u8").astype(np.uint64)
            out.append(BufferRecord(
                cpu=cpu, seq=seq, words=words, committed=committed,
                fill_words=fill_words, partial=bool(partial),
            ))
            self.frames_read += 1
            self._cursor += self.frame_size
        return out

    def finish(self) -> List[BufferRecord]:
        """Final sweep once the writer has stopped: judge the tail.

        Bytes past the cursor can no longer become a whole frame, so a
        well-formed prefix is no longer "growing" evidence — but it is
        still distinguished from garbage in :attr:`tail_state`, and
        only garbage lands on :attr:`issues`.
        """
        out = self.poll()
        if self.buffer_words is None:
            self.fh.seek(0, io.SEEK_END)
            if self.fh.tell():
                self.tail_state = "truncated"
                self.issues.append("no complete trace file header")
            return out
        self.fh.seek(0, io.SEEK_END)
        pending = self.fh.tell() - self._cursor
        if pending:
            self.fh.seek(self._cursor)
            raw = self.fh.read(min(pending, _FRAME_HEADER.size))
            self.tail_state = classify_tail(raw, self.buffer_words)
            if self.tail_state == "truncated":
                self.issues.append(
                    f"truncated trailing frame: {pending} bytes after "
                    f"the last whole frame"
                )
        return out


class ShmFollower:
    """Live source over an attached shared-memory trace region.

    A thin adapter putting :class:`~repro.shm.collector.ShmCollector`
    behind the source protocol: polls respect the committed-count trust
    gate (uncovered buffers are held, not emitted), ``done`` is the
    region's quiescence flag, and ``finish`` is the forced finalize
    that emits held and partial buffers once writers have stopped.
    """

    def __init__(self, region, lag: int = 1) -> None:
        from repro.shm.collector import ShmCollector

        self.region = region
        self.collector = ShmCollector(region, lag=lag)

    @property
    def stats(self):
        return self.collector.stats

    @property
    def done(self) -> bool:
        return bool(self.region.is_done())

    def poll(self) -> List[BufferRecord]:
        return self.collector.poll()

    def finish(self) -> List[BufferRecord]:
        return self.collector.finalize()


def parse_speed(spec: str) -> float:
    """Parse a replay speed: ``"instant"``, ``"realtime"``, or ``"Nx"``.

    Returns the pacing factor — 0 for instant, 1.0 for realtime, N for
    ``"Nx"`` (``"2x"`` twice as fast, ``"0.5x"`` half speed).
    """
    s = spec.strip().lower()
    if s == "instant":
        return 0.0
    if s == "realtime":
        return 1.0
    if s.endswith("x"):
        s = s[:-1]
    try:
        factor = float(s)
    except ValueError:
        raise ValueError(
            f"bad replay speed {spec!r}: use 'instant', 'realtime', "
            f"or 'Nx' (e.g. 2x, 0.5x)"
        ) from None
    if factor <= 0:
        raise ValueError(f"replay speed must be positive, got {spec!r}")
    return factor


def _buffer_anchor(rec: BufferRecord) -> Optional[int]:
    """The buffer's leading full-width timestamp, if it starts with one.

    Sequence-0 buffers (and every late attach) begin with a
    TIMESTAMP_ANCHOR control event whose payload word is the full
    64-bit time; that word is the natural replay-pacing clock.
    """
    if rec.fill_words < 2 or len(rec.words) < 2:
        return None
    hdr = int(rec.words[0])
    major = (hdr >> MAJOR_SHIFT) & MAJOR_MASK
    minor = hdr & MINOR_MASK
    length = (hdr >> LENGTH_SHIFT) & LENGTH_MASK
    if major == _CTRL and minor == _ANCHOR and length >= 2:
        return int(rec.words[1])
    return None


class Replayer:
    """Re-emit a recorded trace as a live source, paced by its own clock.

    Each buffer's release time comes from its leading timestamp anchor
    when it has one; otherwise from the 32-bit delta of its first event
    header against the previous buffer on the same CPU — the same
    unwrap arithmetic the decoder uses, at buffer granularity.  Release
    times are made monotone across CPUs so replay order equals record
    order (which is what a follower of the original run saw).

    ``speed`` 0 releases everything immediately (**instant**); 1.0 is
    **realtime**; N is N× faster than recorded.  ``clock``/``sleep``
    are injectable, so paced replay is deterministic under test.
    """

    def __init__(
        self,
        records: Iterable[BufferRecord],
        speed: float = 0.0,
        *,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        max_per_poll: Optional[int] = None,
    ) -> None:
        if speed < 0:
            raise ValueError("speed must be >= 0")
        self.records = list(records)
        self.speed = float(speed)
        self.max_per_poll = max_per_poll
        self._clock = clock
        self._sleep = sleep
        self._i = 0
        self._t0: Optional[Tuple[float, int]] = None  # (wall, trace) origin
        self._times = self._release_times()

    def _release_times(self) -> List[int]:
        state: Dict[int, Tuple[int, int]] = {}  # cpu -> (full, ts32)
        times: List[int] = []
        now = 0
        for rec in self.records:
            ts32 = (int(rec.words[0]) >> 32) if len(rec.words) else 0
            full = _buffer_anchor(rec)
            if full is None:
                last = state.get(rec.cpu)
                if last is not None:
                    full = last[0] + sdelta32(ts32, last[1])
            if full is None:
                full = now          # no clock yet: release with the previous
            state[rec.cpu] = (full, ts32)
            now = max(now, full)    # monotone: replay preserves record order
            times.append(now)
        return times

    @property
    def done(self) -> bool:
        return self._i >= len(self.records)

    def poll(self) -> List[BufferRecord]:
        """Records due now; a paced replay sleeps until one is due."""
        if self.done:
            return []
        n = len(self.records)
        if self.speed == 0:
            j = n
        else:
            if self._t0 is None:
                self._t0 = (self._clock(), self._times[self._i])
            wall0, trace0 = self._t0

            def due(i: int) -> float:
                return (self._times[i] - trace0) / CYCLES_PER_SECOND \
                    / self.speed

            wait = due(self._i) - (self._clock() - wall0)
            if wait > 0:
                self._sleep(wait)
            elapsed = self._clock() - wall0
            j = self._i + 1          # always progress past the due record
            while j < n and due(j) <= elapsed:
                j += 1
        if self.max_per_poll is not None:
            j = min(j, self._i + self.max_per_poll)
        out = self.records[self._i:j]
        self._i = j
        return out

    def finish(self) -> List[BufferRecord]:
        out = self.records[self._i:]
        self._i = len(self.records)
        return out
