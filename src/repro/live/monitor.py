"""The live pipeline: source records → incremental decode → window.

``LiveMonitor`` glues the three existing pieces together without
duplicating any decode logic:

* records come from any source speaking the protocol of
  :mod:`repro.live.source`;
* each poll's records are scanned and folded into a
  :class:`~repro.core.columnar.ColumnarAssembler`, whose per-CPU
  timestamp-stitching state makes incremental feeding bit-identical to
  a one-shot post-mortem decode;
* the drained chunks land in a
  :class:`~repro.core.columnar.WindowedBatches` flight recorder, so
  memory stays ``O(window)`` no matter how long the followed trace
  grows.

``trace()`` exposes the window as an ordinary ``ColumnarTrace``; every
columnar tool (kmon, lockstats, pcprofile, schedstats, ...) renders it
unchanged.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Optional

from repro.core.buffers import BufferRecord
from repro.core.columnar import (
    ColumnarAssembler,
    ColumnarTrace,
    WindowedBatches,
)
from repro.core.registry import EventRegistry
from repro.core.stream import scan_buffer


class LiveMonitor:
    """Incremental decoder with a bounded flight-recorder window.

    Buffers must arrive in per-CPU sequence order (what every source
    in :mod:`repro.live.source` yields) — the same contract the
    sequential reader imposes.  ``window_events=None`` keeps everything
    (the post-mortem-equality configuration); a bound turns the monitor
    into a flight recorder that evicts the oldest chunks.
    """

    def __init__(
        self,
        registry: Optional[EventRegistry] = None,
        window_events: Optional[int] = None,
        strict: bool = False,
        check_committed: bool = True,
        include_fillers: bool = False,
    ) -> None:
        self.strict = strict
        self.assembler = ColumnarAssembler(
            registry=registry,
            include_fillers=include_fillers,
            check_committed=check_committed,
        )
        self.window = WindowedBatches(max_events=window_events,
                                      registry=registry)
        self.buffers_seen = 0
        self.polls = 0

    # -- feeding ---------------------------------------------------------
    def feed(self, records: Iterable[BufferRecord]) -> int:
        """Scan and absorb one poll's worth of records; returns how many."""
        n = 0
        for rec in records:
            scan = scan_buffer(rec.words, rec.fill_words,
                               recover=not self.strict)
            self.assembler.add_buffer(rec, scan)
            n += 1
        if n:
            self.buffers_seen += n
            self.window.absorb(self.assembler.take())
        return n

    def drain(
        self,
        source,
        *,
        poll_interval_s: float = 0.05,
        idle_timeout_s: Optional[float] = None,
        max_polls: Optional[int] = None,
        sleep: Callable[[float], None] = time.sleep,
        on_update: Optional[Callable[["LiveMonitor"], None]] = None,
    ) -> "LiveMonitor":
        """Poll ``source`` until it is done (or idle past the timeout).

        ``on_update`` fires after every poll that brought new data —
        the hook a periodic screen refresh hangs off.  The final
        ``source.finish()`` sweep (tail judgement, forced shm finalize,
        replay remainder) is always folded in before returning.
        """
        idle = 0.0
        while True:
            records = source.poll()
            self.polls += 1
            if records:
                idle = 0.0
                self.feed(records)
                if on_update is not None:
                    on_update(self)
            if source.done:
                break
            if max_polls is not None and self.polls >= max_polls:
                break
            if not records:
                if idle_timeout_s is not None and idle >= idle_timeout_s:
                    break
                sleep(poll_interval_s)
                idle += poll_interval_s
        self.feed(source.finish())
        if on_update is not None:
            on_update(self)
        return self

    # -- reading ---------------------------------------------------------
    def trace(self) -> ColumnarTrace:
        """The current window as a ``ColumnarTrace`` (tools-ready)."""
        return self.window.trace()

    @property
    def total_events(self) -> int:
        return self.window.total_events

    @property
    def evicted_events(self) -> int:
        return self.window.evicted_events

    def describe(self) -> str:
        w = self.window
        bound = w.max_events if w.max_events is not None else "unbounded"
        return (f"live window: {w.total_events} events "
                f"({bound} bound), {w.evicted_events} evicted, "
                f"{self.buffers_seen} buffers over {self.polls} polls")
