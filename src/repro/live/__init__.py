"""Live monitoring: incremental followers over growing traces.

The paper's monitoring infrastructure is not post-mortem only — kmon
watched a *running* system.  This package closes that gap for the
reproduction: a follower tails an event source that is still producing
(a growing ``.k42`` file, a live shared-memory region, or a recorded
trace replayed at a chosen speed), decodes incrementally through the
columnar assembler, and keeps a bounded flight-recorder window that any
columnar tool can render at any moment.

Sources (:mod:`repro.live.source`) share one tiny protocol —
``poll() -> [BufferRecord]``, ``done``, ``finish()`` — and the pipeline
(:mod:`repro.live.monitor`) is source-agnostic, so replaying a recorded
trace exercises byte-for-byte the same code path as following a live
one: replay at instant speed is the determinism proof the tests lean
on.
"""

from repro.live.monitor import LiveMonitor
from repro.live.source import (
    Replayer,
    ShmFollower,
    TraceFileFollower,
    parse_speed,
)

__all__ = [
    "LiveMonitor",
    "Replayer",
    "ShmFollower",
    "TraceFileFollower",
    "parse_speed",
]
