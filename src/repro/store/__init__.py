"""Persistent columnar trace store with predicate-pushdown queries.

Every tool run used to re-decode the raw word stream into PR 5's
:class:`~repro.core.columnar.EventBatch` from scratch.  This package
makes the decoded columns durable: ``pack`` writes them once as
compressed npz shards cut at buffer boundaries (so random access
survives compression, Recorder-style), each carrying min/max statistics
— time window, CPU, major-ID bitmask, pid range — and queries prune
whole shards whose statistics cannot overlap the predicate before a
single byte of column data is decompressed ("Slicing Event Traces of
Large Software Systems": drop the majority of the trace a question
never touches).

The query layer (:mod:`repro.store.query`) is shared: the same
:class:`Predicate`/:func:`select` row semantics the six analysis tools
use against freshly decoded batches drive shard pruning in
:class:`TraceStore.query`, so a pushed-down answer is bit-identical to
a full scan.
"""

from repro.store.cache import ShardCache, shard_cache
from repro.store.format import (
    MANIFEST_NAME,
    STORE_FORMAT,
    STORE_VERSION,
    StoreFormatError,
    is_store,
)
from repro.store.query import (
    CYCLES_PER_SECOND,
    Predicate,
    aggregate,
    project,
    select,
    shard_may_match,
    time_window_mask,
)
from repro.store.reader import QueryResult, TraceStore
from repro.store.stats import ShardStats
from repro.store.writer import PackResult, pack_file, pack_records, pack_trace

__all__ = [
    "CYCLES_PER_SECOND",
    "MANIFEST_NAME",
    "PackResult",
    "Predicate",
    "QueryResult",
    "STORE_FORMAT",
    "STORE_VERSION",
    "ShardCache",
    "ShardStats",
    "StoreFormatError",
    "shard_cache",
    "TraceStore",
    "aggregate",
    "is_store",
    "pack_file",
    "pack_records",
    "pack_trace",
    "project",
    "select",
    "shard_may_match",
    "time_window_mask",
]
