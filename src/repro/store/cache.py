"""A bounded, process-wide LRU cache of decoded store shards.

Repeated queries against the same store — the interactive-analysis
loop, a dashboard polling a window, the fleet aggregator fanning one
question over many stores — used to decompress every surviving shard
from scratch each time.  This cache keeps recently-touched shards
decoded, keyed by ``(absolute path, file size, mtime_ns)`` so a
repacked store can never serve stale rows: rewriting a shard changes
its key, and the dead entry simply ages out.

The budget is bytes of decoded column data (``REPRO_SHARD_CACHE_MB``,
default 256; ``0`` disables caching).  Entries are shared between
:class:`~repro.store.reader.TraceStore` instances and across queries;
cached batches are read-shared — consumers slice/select them (which
copies) rather than mutating columns in place.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Any, Hashable, Optional, Tuple

#: Default cache budget when ``REPRO_SHARD_CACHE_MB`` is unset.
DEFAULT_CACHE_MB = 256


def cache_budget_bytes() -> int:
    """The configured cache budget in bytes (0 = caching disabled)."""
    env = os.environ.get("REPRO_SHARD_CACHE_MB", "").strip()
    if env:
        try:
            return max(0, int(float(env) * (1 << 20)))
        except ValueError:
            pass
    return DEFAULT_CACHE_MB << 20


class ShardCache:
    """Byte-bounded LRU of decoded shard payloads.

    Thread-safe; values are opaque to the cache (the store reader keeps
    ``(EventBatch, pid, pid_known)`` triples here).  An entry larger
    than the whole budget is simply not admitted.
    """

    def __init__(self, max_bytes: Optional[int] = None) -> None:
        self.max_bytes = (cache_budget_bytes() if max_bytes is None
                          else max_bytes)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, Tuple[Any, int]]" = \
            OrderedDict()
        self.bytes = 0
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> Optional[Any]:
        with self._lock:
            ent = self._entries.get(key)
            if ent is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return ent[0]

    def put(self, key: Hashable, value: Any, nbytes: int) -> None:
        if self.max_bytes <= 0 or nbytes > self.max_bytes:
            return
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self.bytes -= old[1]
            self._entries[key] = (value, nbytes)
            self.bytes += nbytes
            while self.bytes > self.max_bytes and self._entries:
                _, (_, size) = self._entries.popitem(last=False)
                self.bytes -= size

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.bytes = 0
            self.hits = 0
            self.misses = 0


_GLOBAL: Optional[ShardCache] = None


def shard_cache() -> ShardCache:
    """The process-wide shard cache (created on first use).

    A changed ``REPRO_SHARD_CACHE_MB`` takes effect on the next call —
    the cache is rebuilt with the new budget (tests flip it per-case).
    """
    global _GLOBAL
    budget = cache_budget_bytes()
    if _GLOBAL is None or _GLOBAL.max_bytes != budget:
        _GLOBAL = ShardCache(budget)
    return _GLOBAL
