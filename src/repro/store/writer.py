"""Packing a decoded trace into a persistent store directory.

The writer walks each CPU's decoded stream in buffer order and cuts
shards only at buffer (sequence-number) boundaries — a buffer is the
unit the lockless protocol commits, so it is also the unit random
access must survive.  Buffers accumulate into a shard until it reaches
``shard_events`` rows; an oversized buffer gets a shard of its own
rather than being split.

The executing-context columns (``pid``/``pid_known``) are a whole-trace
fixpoint — a ``THREAD_CREATE`` late in the trace names threads that ran
earlier — so they are computed once here over the full decode and
stored materialized per shard; queries then filter by pid without any
replay, and agree exactly with what a tool computes over the full
trace.  Anomaly verdicts (the damage ledger) are small and global, so
they live whole in the manifest rather than in any shard.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import pool
from repro.core.buffers import BufferRecord
from repro.core.columnar import (
    ColumnarTrace,
    ColumnarTraceReader,
    EventBatch,
)
from repro.core.registry import EventRegistry, default_registry
from repro.core.writer import load_records
from repro.store.format import (
    STORE_FORMAT,
    STORE_VERSION,
    MANIFEST_NAME,
    save_shard,
    shard_filename,
    write_manifest,
)
from repro.store.stats import ShardStats
from repro.tools.context import ColumnarContext

#: Default shard granularity: big enough that zlib has something to
#: chew on, small enough that a narrow time-window query skips most of
#: a large trace.
DEFAULT_SHARD_EVENTS = 16384


@dataclass
class PackResult:
    """What ``pack`` produced (and prints)."""

    path: str
    shards: int
    events: int
    cpus: List[int]
    bytes_written: int
    anomalies: int


def _shard_cuts(seq: np.ndarray, shard_events: int) -> List[int]:
    """Row indices cutting one CPU's decode-order rows into shards.

    Returns boundaries ``[0, c1, ..., n]``; every cut coincides with a
    buffer (sequence-number) change.
    """
    n = len(seq)
    bounds = np.flatnonzero(
        np.concatenate(([True], seq[1:] != seq[:-1]))).tolist() + [n]
    cuts = [0]
    for end in bounds[1:]:
        # Close the open shard after the buffer that fills it.
        if end - cuts[-1] >= shard_events:
            cuts.append(end)
    if cuts[-1] != n:
        cuts.append(n)
    return cuts


def _write_shard_job(job: Tuple[str, Dict[str, np.ndarray], bool]) -> int:
    """Pool worker: compress + write one shard; returns its file size."""
    fpath, arrays, compress = job
    save_shard(fpath, arrays, compress=compress)
    return os.path.getsize(fpath)


def pack_trace(
    trace: ColumnarTrace,
    out_dir: str,
    shard_events: int = DEFAULT_SHARD_EVENTS,
    compress: bool = True,
    source: Optional[Dict[str, Any]] = None,
    force: bool = False,
    workers: Optional[int] = 1,
) -> PackResult:
    """Write ``trace`` as a store directory of npz shards + manifest.

    ``workers`` fans the per-shard compress/write work over the shared
    worker pool (:mod:`repro.core.pool`; ``None``/``0`` = the pool
    default, ``1`` = sequential).  The manifest is assembled in submit
    order and ``np.savez`` archives carry no timestamps, so parallel
    output is byte-identical to a sequential pack.
    """
    if shard_events < 1:
        raise ValueError("shard_events must be >= 1")
    if os.path.exists(out_dir):
        stale = [f for f in os.listdir(out_dir)
                 if f == MANIFEST_NAME
                 or (f.startswith("shard-") and f.endswith(".npz"))]
        if stale and not force:
            raise FileExistsError(
                f"{out_dir} already holds a store; pass force=True "
                f"(--force) to overwrite")
        for f in stale:
            os.unlink(os.path.join(out_dir, f))
    else:
        os.makedirs(out_dir)

    cpus = trace.cpus
    parts = [trace.batches_by_cpu[c] for c in cpus]
    full = EventBatch.concat(parts) if parts else EventBatch.empty()
    ctx = ColumnarContext(full)

    shard_docs: List[Dict[str, Any]] = []
    bytes_written = 0
    total = 0
    index = 0
    row0 = 0
    # Shard writes flush through the worker pool in bounded waves so the
    # arrays of at most one wave are held in memory at a time; with
    # workers=1 each wave runs inline, which is exactly the historical
    # sequential pack.
    jobs: List[Tuple[str, Dict[str, np.ndarray], bool]] = []
    wave = max(8, 4 * pool.pool_workers(workers))

    def _flush() -> None:
        nonlocal bytes_written
        for size in pool.run_tasks(_write_shard_job, jobs, workers):
            bytes_written += size
        jobs.clear()

    for cpu, b in zip(cpus, parts):
        n = len(b)
        pid = ctx.pid[row0:row0 + n]
        known = ctx.known[row0:row0 + n]
        row0 += n
        if n == 0:
            continue
        cuts = _shard_cuts(b.seq, shard_events)
        for lo, hi in zip(cuts[:-1], cuts[1:]):
            rows = np.arange(lo, hi, dtype=np.int64)
            sub = b.select(rows)
            arrays = sub.to_arrays()
            arrays["pid"] = pid[lo:hi]
            arrays["pid_known"] = known[lo:hi]
            fname = shard_filename(index)
            fpath = os.path.join(out_dir, fname)
            jobs.append((fpath, arrays, compress))
            if len(jobs) >= wave:
                _flush()
            stats = ShardStats.compute(sub, pid[lo:hi], known[lo:hi])
            doc = stats.to_json()
            doc["file"] = fname
            if "time_big" in arrays:
                doc["time_big"] = True
            shard_docs.append(doc)
            total += len(sub)
            index += 1
    _flush()

    an = trace.anomaly_columns
    manifest: Dict[str, Any] = {
        "format": STORE_FORMAT,
        "version": STORE_VERSION,
        "compression": "zlib" if compress else "none",
        "cpus": cpus,
        "events": total,
        "source": source or {},
        "shards": shard_docs,
        "anomalies": {
            "cpu": list(an.cpu),
            "seq": list(an.seq),
            "offset": list(an.offset),
            "kind": list(an.kind),
            "detail": list(an.detail),
        },
    }
    write_manifest(out_dir, manifest)
    bytes_written += os.path.getsize(os.path.join(out_dir, MANIFEST_NAME))
    return PackResult(path=out_dir, shards=index, events=total, cpus=cpus,
                      bytes_written=bytes_written, anomalies=len(an))


def pack_records(
    records: Sequence[BufferRecord],
    out_dir: str,
    registry: Optional[EventRegistry] = None,
    strict: bool = False,
    shard_events: int = DEFAULT_SHARD_EVENTS,
    compress: bool = True,
    source: Optional[Dict[str, Any]] = None,
    force: bool = False,
    workers: Optional[int] = 1,
) -> PackResult:
    """Decode buffer records columnar and pack them."""
    trace = ColumnarTraceReader(
        registry=registry if registry is not None else default_registry(),
        strict=strict,
    ).decode_records(records)
    src = dict(source or {})
    src.setdefault("frames", len(records))
    src.setdefault("buffer_words",
                   len(records[0].words) if len(records) else 0)
    return pack_trace(trace, out_dir, shard_events=shard_events,
                      compress=compress, source=src, force=force,
                      workers=workers)


def pack_file(
    path: str,
    out_dir: str,
    registry: Optional[EventRegistry] = None,
    strict: bool = False,
    shard_events: int = DEFAULT_SHARD_EVENTS,
    compress: bool = True,
    force: bool = False,
    workers: Optional[int] = 1,
) -> PackResult:
    """Pack a ``.k42`` trace file into a store directory."""
    records = load_records(path, strict=strict)
    return pack_records(records, out_dir, registry=registry, strict=strict,
                        shard_events=shard_events, compress=compress,
                        source={"path": os.path.abspath(path)}, force=force,
                        workers=workers)
