"""On-disk layout of the persistent trace store.

A store is a directory::

    mytrace.store/
        manifest.json          # format header, source info, shard statistics
        shard-00000.npz        # one EventBatch's columns (np.savez archive)
        shard-00001.npz
        ...

Shards are cut at buffer (sequence-number) boundaries within one CPU's
stream, never mid-buffer: compression then works on whole shards while
random access survives — a query seeks straight to the shards whose
manifest statistics overlap its predicate and decompresses nothing
else.  Shard payloads are the :meth:`EventBatch.to_arrays` codec plus
two precomputed context columns (``pid``, ``pid_known``), all plain
fixed-dtype arrays: ``np.load(..., allow_pickle=False)`` reads them on
any interpreter/numpy that can read the zip, which is what the
cross-version CI job asserts.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict

import numpy as np

STORE_FORMAT = "repro-store"
STORE_VERSION = 1
MANIFEST_NAME = "manifest.json"


class StoreFormatError(Exception):
    """The directory is not a readable store (missing/incompatible)."""


def shard_filename(index: int) -> str:
    return f"shard-{index:05d}.npz"


def is_store(path: str) -> bool:
    """Whether ``path`` looks like a packed store directory."""
    return os.path.isdir(path) and os.path.isfile(
        os.path.join(path, MANIFEST_NAME))


def save_shard(path: str, arrays: Dict[str, np.ndarray],
               compress: bool = True) -> None:
    if compress:
        np.savez_compressed(path, **arrays)
    else:
        np.savez(path, **arrays)


def load_shard(path: str) -> Dict[str, np.ndarray]:
    with np.load(path, allow_pickle=False) as npz:
        return {k: npz[k] for k in npz.files}


def write_manifest(dirpath: str, doc: Dict[str, Any]) -> None:
    path = os.path.join(dirpath, MANIFEST_NAME)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")


def read_manifest(dirpath: str) -> Dict[str, Any]:
    path = os.path.join(dirpath, MANIFEST_NAME)
    if not os.path.isfile(path):
        raise StoreFormatError(f"{dirpath}: not a store (no {MANIFEST_NAME})")
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise StoreFormatError(f"{path}: unreadable manifest: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("format") != STORE_FORMAT:
        raise StoreFormatError(f"{path}: not a {STORE_FORMAT} manifest")
    version = doc.get("version")
    if not isinstance(version, int) or version > STORE_VERSION:
        raise StoreFormatError(
            f"{path}: store version {version!r} is newer than this "
            f"reader (supports <= {STORE_VERSION})")
    return doc
