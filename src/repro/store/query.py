"""The shared query layer: one predicate semantics for tools and store.

Every analysis tool used to build its own boolean-mask cocktail over
:class:`~repro.core.columnar.EventBatch` columns.  This module is that
selection code, factored once: a :class:`Predicate` names the criteria
(majors/minors, event names, CPUs, a float-seconds time window, the
executing pid, minimum payload length) and :func:`select` evaluates
them as masks — including the listing tool's exact-comparison fallback
for corrupt-anchor times past float64's integer range.  The six tools
call :func:`select`; :class:`~repro.store.reader.TraceStore` applies
the *same* predicate twice — once against shard statistics
(:func:`shard_may_match`, which may only ever say "maybe", never drop a
matching row) and once row-level — so pushed-down answers are
bit-identical to a full scan.

:func:`project` and :func:`aggregate` are the other two query verbs:
column extraction (including payload words and derived ``name``/
``seconds``/``pid`` columns) and count-by grouping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.columnar import EventBatch
from repro.core.majors import Major
from repro.core.registry import EventRegistry
from repro.store.stats import ShardStats

_CTRL_MAJOR = int(Major.CONTROL)

CYCLES_PER_SECOND = 1_000_000_000  # the paper's 1 GHz reference machine

#: Above this magnitude int->float64 conversion starts rounding, so the
#: vectorized float time filter could disagree with Python's exact
#: int/int true division; such times fall back to the scalar compare.
_EXACT_FLOAT_BOUND = 1 << 53

_UNKNOWN_PREFIX = "TRC_UNKNOWN_"


@dataclass(frozen=True)
class Predicate:
    """A declarative row filter over event columns.

    ``None`` fields don't constrain.  Semantics match the tools' masks
    exactly: ``start_s``/``end_s`` compare ``(time or 0) /
    CYCLES_PER_SECOND`` inclusively; ``pid`` matches rows whose
    *executing* (context) pid is known and equal; control events are
    dropped unless ``include_control``.
    """

    cpus: Optional[Tuple[int, ...]] = None
    majors: Optional[Tuple[int, ...]] = None
    minors: Optional[Tuple[int, ...]] = None
    names: Optional[Tuple[str, ...]] = None
    pid: Optional[int] = None
    start_s: Optional[float] = None
    end_s: Optional[float] = None
    min_data: Optional[int] = None
    timed_only: bool = False
    include_control: bool = True
    #: origin nodes (fleet traces); a node-less batch is node 0.
    nodes: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        # Normalize iterables so predicates hash and compare cleanly.
        for name in ("cpus", "majors", "minors", "names", "nodes"):
            v = getattr(self, name)
            if v is not None and not isinstance(v, tuple):
                object.__setattr__(self, name, tuple(v))

    @property
    def trivial(self) -> bool:
        """Whether this predicate keeps every row."""
        return self == Predicate()


def select(
    batch: EventBatch,
    pred: Predicate,
    pid: Optional[np.ndarray] = None,
    pid_known: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Boolean row mask for ``pred``, identical to the tools' bespoke masks.

    ``pid``/``pid_known`` are the context columns aligned with
    ``batch`` rows; when omitted and the predicate filters on pid, they
    are computed here via :class:`~repro.tools.context.ColumnarContext`
    (whole-batch replay — pass precomputed columns when you have them,
    e.g. from a store shard).
    """
    n = len(batch)
    m = np.ones(n, dtype=bool)
    if not pred.include_control:
        m &= ~batch.control_mask()
    if pred.cpus is not None:
        if len(pred.cpus) == 1:
            m &= batch.cpu == int(pred.cpus[0])
        else:
            m &= np.isin(batch.cpu, np.array(pred.cpus, dtype=np.int64))
    if pred.nodes is not None:
        node_col = batch.node_column()
        if len(pred.nodes) == 1:
            m &= node_col == int(pred.nodes[0])
        else:
            m &= np.isin(node_col, np.array(pred.nodes, dtype=np.int64))
    if pred.majors is not None:
        if len(pred.majors) == 1:
            m &= batch.major == int(pred.majors[0])
        else:
            m &= np.isin(batch.major, np.array(pred.majors, dtype=np.int64))
    if pred.minors is not None:
        if len(pred.minors) == 1:
            m &= batch.minor == int(pred.minors[0])
        else:
            m &= np.isin(batch.minor, np.array(pred.minors, dtype=np.int64))
    if pred.names is not None:
        m &= batch.mask_names(pred.names)
    if pred.min_data is not None:
        m &= batch.dlen >= int(pred.min_data)
    if pred.timed_only:
        m &= batch.timed
    if pred.pid is not None:
        if pred.pid < 0:
            m[:] = False  # context pids are unsigned data words
        else:
            if pid is None or pid_known is None:
                from repro.tools.context import ColumnarContext

                ctx = ColumnarContext(batch)
                pid, pid_known = ctx.pid, ctx.known
            m &= pid_known & (pid == np.uint64(pred.pid))
    if (pred.start_s is not None or pred.end_s is not None) and n:
        m &= time_window_mask(batch, pred.start_s, pred.end_s, candidates=m)
    return m


def time_window_mask(
    batch: EventBatch,
    start_s: Optional[float],
    end_s: Optional[float],
    candidates: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Rows whose ``(time or 0) / CYCLES_PER_SECOND`` is in the window.

    The vectorized float64 path is used while every time fits below
    :data:`_EXACT_FLOAT_BOUND`; huge (corrupt-anchor) times replay the
    exact Python int/float comparison, restricted to ``candidates``
    rows (an already-ANDed mask) so the slow path touches as few rows
    as possible.  Both paths agree wherever both apply.
    """
    n = len(batch)
    out = np.ones(n, dtype=bool)
    if n == 0 or (start_s is None and end_s is None):
        return out
    if batch.time.dtype != object:
        tvals = np.where(batch.timed, batch.time, 0)
        if int(np.abs(tvals).max(initial=0)) < _EXACT_FLOAT_BOUND:
            t = tvals.astype(np.float64) / float(CYCLES_PER_SECOND)
            if start_s is not None:
                out &= t >= start_s
            if end_s is not None:
                out &= t <= end_s
            return out
    idxs = (np.flatnonzero(candidates) if candidates is not None
            else np.arange(n, dtype=np.int64))
    tl = batch.time[idxs].tolist()
    fl = batch.timed[idxs].tolist()
    out = np.zeros(n, dtype=bool)
    for i in range(len(idxs)):
        t_e = (tl[i] if fl[i] else 0) / CYCLES_PER_SECOND
        if start_s is not None and t_e < start_s:
            continue
        if end_s is not None and t_e > end_s:
            continue
        out[idxs[i]] = True
    return out


# -- predicate pushdown -------------------------------------------------

def _major_masks(pred: Predicate,
                 registry: Optional[EventRegistry]) -> List[int]:
    """Independent major-ID bitmasks a matching shard must intersect.

    One mask per criterion (explicit majors; names resolved through the
    registry).  An unresolvable name disables name-based pruning — the
    row-level mask still decides — so pushdown can only over-read,
    never drop.
    """
    masks: List[int] = []
    if pred.majors is not None:
        mask = 0
        for mj in pred.majors:
            if 0 <= mj < 64:
                mask |= 1 << mj
        masks.append(mask)
    if pred.names is not None:
        mask = 0
        for name in pred.names:
            spec = registry.by_name(name) if registry is not None else None
            if spec is not None:
                if spec.major < 64:
                    mask |= 1 << spec.major
                continue
            if name.startswith(_UNKNOWN_PREFIX):
                # Unregistered events render as TRC_UNKNOWN_<maj>_<min>.
                parts = name[len(_UNKNOWN_PREFIX):].split("_")
                try:
                    mj = int(parts[0])
                except (ValueError, IndexError):
                    mj = -1
                if 0 <= mj < 64:
                    mask |= 1 << mj
                    continue
            return masks  # unresolvable: no name-based pruning
        masks.append(mask)
    return masks


def shard_may_match(
    stats: ShardStats,
    pred: Predicate,
    registry: Optional[EventRegistry] = None,
) -> bool:
    """Conservative overlap test: False only when *no* row can match."""
    if pred.cpus is not None and stats.cpu not in pred.cpus:
        return False
    if pred.nodes is not None:
        # A shard without node statistics is implicitly node 0 — the
        # exact value its rows' node_column() yields at row level.
        if (stats.node if stats.node is not None else 0) not in pred.nodes:
            return False
    for mask in _major_masks(pred, registry):
        if not (stats.major_mask & mask):
            return False
    if not pred.include_control:
        if stats.major_mask == (1 << _CTRL_MAJOR):
            return False
    if pred.min_data is not None and stats.dlen_max < pred.min_data:
        return False
    if pred.timed_only and not stats.has_timed:
        return False
    if pred.pid is not None:
        if pred.pid < 0 or stats.pid_min is None or stats.pid_max is None:
            return False
        if not (stats.pid_min <= pred.pid <= stats.pid_max):
            return False
    if pred.start_s is not None or pred.end_s is not None:
        # Row tests compare time/CYCLES_PER_SECOND after correctly-
        # rounded int->float conversion, which is monotone: every row's
        # seconds value lies within the shard bounds computed the same
        # way, so interval non-overlap here is exact, not heuristic.
        t_lo = stats.time_min / CYCLES_PER_SECOND
        t_hi = stats.time_max / CYCLES_PER_SECOND
        if pred.start_s is not None and t_hi < pred.start_s:
            return False
        if pred.end_s is not None and t_lo > pred.end_s:
            return False
    return True


# -- projection and aggregation -----------------------------------------

#: Directly projectable columns (plus ``dataK`` for payload word K).
PROJECTABLE = ("time", "seconds", "cpu", "seq", "offset", "ts32",
               "major", "minor", "length", "dlen", "name", "pid", "node")


def project(
    batch: EventBatch,
    columns: Sequence[str],
    sel: Optional[np.ndarray] = None,
    pid: Optional[np.ndarray] = None,
    pid_known: Optional[np.ndarray] = None,
) -> Dict[str, List[Any]]:
    """Extract named columns for the (selected) rows, in request order.

    ``seconds`` is the listing tool's time rendering; ``name`` resolves
    through the registry; ``pid`` is the executing-context pid (``None``
    where unknown); ``dataK`` is payload word K (``None`` where the row
    has fewer than K+1 payload words).
    """
    if sel is None:
        idx = np.arange(len(batch), dtype=np.int64)
    else:
        idx = np.asarray(sel)
        if idx.dtype == np.bool_:
            idx = np.flatnonzero(idx)
    out: Dict[str, List[Any]] = {}
    for col in columns:
        if col == "time":
            out[col] = [t if f else None for t, f in
                        zip(batch.time[idx].tolist(),
                            batch.timed[idx].tolist())]
        elif col == "seconds":
            out[col] = [(t if f else 0) / CYCLES_PER_SECOND for t, f in
                        zip(batch.time[idx].tolist(),
                            batch.timed[idx].tolist())]
        elif col == "name":
            out[col] = [batch.name_of(mj, mn) for mj, mn in
                        zip(batch.major[idx].tolist(),
                            batch.minor[idx].tolist())]
        elif col == "pid":
            if pid is None or pid_known is None:
                from repro.tools.context import ColumnarContext

                ctx = ColumnarContext(batch)
                pid, pid_known = ctx.pid, ctx.known
            out[col] = [p if k else None for p, k in
                        zip(pid[idx].tolist(), pid_known[idx].tolist())]
        elif col == "node":
            # Not a plain getattr: a node-less batch stores None and
            # projects as the implicit node 0.
            out[col] = batch.node_column()[idx].tolist()
        elif col.startswith("data") and col[4:].isdigit():
            k = int(col[4:])
            vals = batch.data_column(k, idx).tolist()
            dl = batch.dlen[idx].tolist()
            out[col] = [v if d > k else None for v, d in zip(vals, dl)]
        elif col in PROJECTABLE:
            out[col] = getattr(batch, col)[idx].tolist()
        else:
            raise ValueError(
                f"unknown column {col!r}; columns are {PROJECTABLE} "
                f"and dataK")
    return out


def aggregate(
    batch: EventBatch,
    by: str = "name",
    sel: Optional[np.ndarray] = None,
    pid: Optional[np.ndarray] = None,
    pid_known: Optional[np.ndarray] = None,
) -> List[Tuple[int, str]]:
    """Count rows grouped by a projected column, most frequent first.

    Ties break on the rendered key, like the histogram tool's output.
    """
    col = project(batch, [by], sel=sel, pid=pid, pid_known=pid_known)[by]
    counts: Dict[str, int] = {}
    for v in col:
        key = str(v)
        counts[key] = counts.get(key, 0) + 1
    return sorted(((c, k) for k, c in counts.items()),
                  key=lambda x: (-x[0], x[1]))
