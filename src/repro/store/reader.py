"""Reading a packed store: full reconstitution and pushed-down queries.

:meth:`TraceStore.trace` rebuilds the complete
:class:`~repro.core.columnar.ColumnarTrace` — per-CPU batches in decode
order, anomaly ledger, CPU universe including event-less CPUs — so any
tool runs on a store exactly as it would on a fresh decode, without
touching the raw word stream.

:meth:`TraceStore.query` is the fast path: the predicate is first
tested against each shard's manifest statistics
(:func:`~repro.store.query.shard_may_match`) and only surviving shards
are decompressed and row-filtered, making a selective query O(shards
touched) instead of O(trace).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core import pool
from repro.core.columnar import AnomalyColumns, ColumnarTrace, EventBatch
from repro.core.registry import EventRegistry, default_registry
from repro.store.cache import shard_cache
from repro.store.format import load_shard, read_manifest
from repro.store.query import Predicate, select, shard_may_match
from repro.store.stats import ShardStats


@dataclass
class ShardInfo:
    """One shard's manifest entry."""

    index: int
    file: str
    stats: ShardStats


@dataclass
class QueryResult:
    """Matching rows plus the pushdown accounting.

    ``batch`` rows arrive in shard (per-CPU decode) order; sort with
    ``batch.order_by_time()`` for the listing order.  ``pid``/
    ``pid_known`` are the context columns for exactly those rows.
    """

    batch: EventBatch
    pid: np.ndarray
    pid_known: np.ndarray
    shards_total: int
    shards_read: int
    rows_scanned: int
    #: per-node ``(read, total)`` shard counts — populated only for
    #: fleet stores (manifests that declare ``nodes``), else empty.
    node_shards: Dict[int, Tuple[int, int]] = field(default_factory=dict)

    @property
    def shards_pruned(self) -> int:
        return self.shards_total - self.shards_read

    def __len__(self) -> int:
        return len(self.batch)


class TraceStore:
    """A packed store directory, opened for reading.

    Shard payloads load lazily (and optionally cache); the manifest —
    statistics, anomaly ledger, source info — loads once up front.
    """

    def __init__(self, path: str,
                 registry: Optional[EventRegistry] = None,
                 cache_shards: bool = False,
                 workers: Optional[int] = 1) -> None:
        self.path = path
        #: Shard reads/decompressions fan out over the shared worker
        #: pool when > 1 (``None``/``0`` = pool default, 1 = inline).
        self.workers = workers
        self.registry = (registry if registry is not None
                         else default_registry())
        manifest = read_manifest(path)
        self.version: int = manifest["version"]
        self.compression: str = manifest.get("compression", "zlib")
        self.cpus: List[int] = list(manifest.get("cpus", []))
        self.events: int = int(manifest.get("events", 0))
        self.source: Dict[str, Any] = manifest.get("source", {})
        #: node universe of a fleet store; [] for single-node stores.
        self.nodes: List[int] = list(manifest.get("nodes", []))
        #: fleet metadata (anchors, skew bound, per-node cpus); {} when
        #: the store was packed from a single trace.
        self.fleet_info: Dict[str, Any] = manifest.get("fleet", {})
        self.shards: List[ShardInfo] = [
            ShardInfo(index=i, file=doc["file"],
                      stats=ShardStats.from_json(doc))
            for i, doc in enumerate(manifest.get("shards", []))
        ]
        self._anomalies: Dict[str, List[Any]] = manifest.get("anomalies", {})
        self._cache: Optional[Dict[int, Tuple[EventBatch, np.ndarray,
                                              np.ndarray]]] = (
            {} if cache_shards else None)

    def __len__(self) -> int:
        return self.events

    def anomaly_columns(self) -> AnomalyColumns:
        an = AnomalyColumns()
        a = self._anomalies
        for cpu, seq, off, kind, detail in zip(
                a.get("cpu", []), a.get("seq", []), a.get("offset", []),
                a.get("kind", []), a.get("detail", [])):
            an.append(cpu, seq, off, kind, detail)
        return an

    def _shard_key(self, info: ShardInfo):
        """Process-wide cache key: identity + freshness of the file."""
        fpath = os.path.join(self.path, info.file)
        try:
            st = os.stat(fpath)
        except OSError:
            return None
        return (os.path.abspath(fpath), st.st_size, st.st_mtime_ns)

    def _build_shard(
        self, info: ShardInfo, arrays: Dict[str, np.ndarray],
    ) -> Tuple[EventBatch, np.ndarray, np.ndarray]:
        batch = EventBatch.from_arrays(arrays, registry=self.registry)
        pid = np.asarray(arrays["pid"]).astype(np.uint64, copy=False)
        known = np.asarray(arrays["pid_known"]).astype(bool, copy=False)
        out = (batch, pid, known)
        key = self._shard_key(info)
        if key is not None:
            nbytes = int(sum(np.asarray(a).nbytes for a in arrays.values()))
            shard_cache().put(key, out, nbytes)
        return out

    def load_shard(
        self, info: ShardInfo,
    ) -> Tuple[EventBatch, np.ndarray, np.ndarray]:
        """One shard's batch plus its context (pid, pid_known) columns."""
        return self._load_many([info])[0]

    def _load_many(
        self, infos: List[ShardInfo],
    ) -> List[Tuple[EventBatch, np.ndarray, np.ndarray]]:
        """Decoded shards in ``infos`` order, cache-first.

        Misses are read + decompressed concurrently on the shared
        worker pool when :attr:`workers` allows; the parent then builds
        batches (and populates both caches) in shard order, so results
        — and therefore query/trace output — are identical to the
        sequential loads.
        """
        out: Dict[int, Tuple[EventBatch, np.ndarray, np.ndarray]] = {}
        misses: List[ShardInfo] = []
        for info in infos:
            if self._cache is not None and info.index in self._cache:
                out[info.index] = self._cache[info.index]
                continue
            key = self._shard_key(info)
            hit = shard_cache().get(key) if key is not None else None
            if hit is not None:
                out[info.index] = hit
            else:
                misses.append(info)
        if misses:
            paths = [os.path.join(self.path, i.file) for i in misses]
            arrays_list = pool.run_tasks(load_shard, paths, self.workers)
            for info, arrays in zip(misses, arrays_list):
                out[info.index] = self._build_shard(info, arrays)
        if self._cache is not None:
            for info in infos:
                self._cache.setdefault(info.index, out[info.index])
        return [out[info.index] for info in infos]

    def trace(self) -> ColumnarTrace:
        """The full trace, bit-identical to a fresh columnar decode.

        On a fleet store each lane concatenates that cpu's shards from
        every node (node-major, the pack order); the batches carry the
        ``node`` column, so the merged total order — which sorts on it —
        is still the unified fleet order.  Use :meth:`node_trace` for
        one node's stream alone.
        """
        by_cpu: Dict[int, List[EventBatch]] = {}
        for info, (batch, _, _) in zip(self.shards,
                                       self._load_many(self.shards)):
            by_cpu.setdefault(info.stats.cpu, []).append(batch)
        batches: Dict[int, EventBatch] = {}
        for cpu in self.cpus:
            parts = by_cpu.get(cpu)
            batches[cpu] = (EventBatch.concat(parts) if parts
                            else EventBatch.empty(self.registry))
        return ColumnarTrace(batches, self.anomaly_columns(), self.registry)

    def node_trace(self, node: int) -> ColumnarTrace:
        """One node's stream of a fleet store as a per-cpu trace.

        Times stay on the fleet clock (as packed); the node column is
        preserved.  Raises for unknown nodes so a typo'd ``--node``
        fails loudly instead of returning an empty trace.
        """
        if node not in self.nodes:
            raise ValueError(
                f"store has no node {node}; nodes are {self.nodes}")
        mine = [info for info in self.shards
                if (info.stats.node if info.stats.node is not None
                    else 0) == node]
        by_cpu: Dict[int, List[EventBatch]] = {}
        for info, (batch, _, _) in zip(mine, self._load_many(mine)):
            by_cpu.setdefault(info.stats.cpu, []).append(batch)
        cpus_by_node = self.fleet_info.get("cpus_by_node", {})
        cpus = [int(c) for c in cpus_by_node.get(str(node),
                                                 sorted(by_cpu))]
        batches: Dict[int, EventBatch] = {}
        for cpu in cpus:
            parts = by_cpu.get(cpu)
            batches[cpu] = (EventBatch.concat(parts) if parts
                            else EventBatch.empty(self.registry))
        return ColumnarTrace(batches, self.anomaly_columns(), self.registry)

    def query(self, pred: Predicate) -> QueryResult:
        """Rows matching ``pred``, reading only stat-overlapping shards."""
        picked = [info for info in self.shards
                  if shard_may_match(info.stats, pred, self.registry)]
        node_shards: Dict[int, Tuple[int, int]] = {}
        if self.nodes:
            read_ids = {info.index for info in picked}
            for n in self.nodes:
                mine = [info for info in self.shards
                        if (info.stats.node if info.stats.node is not None
                            else 0) == n]
                node_shards[n] = (
                    sum(1 for info in mine if info.index in read_ids),
                    len(mine),
                )
        batches: List[EventBatch] = []
        pids: List[np.ndarray] = []
        knowns: List[np.ndarray] = []
        rows_scanned = 0
        for batch, pid, known in self._load_many(picked):
            rows_scanned += len(batch)
            m = select(batch, pred, pid=pid, pid_known=known)
            if m.any():
                idx = np.flatnonzero(m)
                batches.append(batch.select(idx))
                pids.append(pid[idx])
                knowns.append(known[idx])
        if batches:
            out = EventBatch.concat(batches)
            pid_col = np.concatenate(pids)
            known_col = np.concatenate(knowns)
        else:
            out = EventBatch.empty(self.registry)
            pid_col = np.zeros(0, dtype=np.uint64)
            known_col = np.zeros(0, dtype=bool)
        return QueryResult(
            batch=out, pid=pid_col, pid_known=known_col,
            shards_total=len(self.shards), shards_read=len(picked),
            rows_scanned=rows_scanned, node_shards=node_shards,
        )
