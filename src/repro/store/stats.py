"""Per-shard min/max statistics — the predicate-pushdown index.

Each shard records just enough about its rows for a query to prove
non-overlap without opening the shard: the CPU, the buffer-sequence
range, the *effective* time window (``time`` where timed, else 0 —
exactly the value the listing-tool window test compares), a bitmask of
the major IDs present (majors are 6 bits, so one uint64 covers them
all), the payload-length maximum, and the known-pid range from the
precomputed context columns.  The matching side lives in
:func:`repro.store.query.shard_may_match`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np

from repro.core.columnar import EventBatch


@dataclass
class ShardStats:
    """Summary statistics for one shard's rows (always >= 1 row)."""

    cpu: int
    events: int
    seq_min: int
    seq_max: int
    #: effective-time bounds in cycles, over ``time if timed else 0``.
    time_min: int
    time_max: int
    has_timed: bool
    #: OR of ``1 << major`` for every row.
    major_mask: int
    dlen_max: int
    #: bounds over rows whose executing pid is known; None when none are.
    pid_min: Optional[int]
    pid_max: Optional[int]
    #: origin node for fleet shards; None (implicitly node 0) otherwise.
    node: Optional[int] = None

    @classmethod
    def compute(cls, batch: EventBatch, pid: np.ndarray,
                pid_known: np.ndarray) -> "ShardStats":
        n = len(batch)
        if n == 0:
            raise ValueError("shards are never empty")
        if batch.time.dtype == object:
            eff = [t if f else 0 for t, f in
                   zip(batch.time.tolist(), batch.timed.tolist())]
            time_min, time_max = min(eff), max(eff)
        else:
            eff_arr = np.where(batch.timed, batch.time, 0)
            time_min, time_max = int(eff_arr.min()), int(eff_arr.max())
        major_mask = 0
        for m in np.unique(batch.major).tolist():
            major_mask |= 1 << int(m)
        known = pid[pid_known]
        return cls(
            cpu=int(batch.cpu[0]),
            events=n,
            seq_min=int(batch.seq.min()),
            seq_max=int(batch.seq.max()),
            time_min=time_min,
            time_max=time_max,
            has_timed=bool(batch.timed.any()),
            major_mask=major_mask,
            dlen_max=int(batch.dlen.max()),
            pid_min=int(known.min()) if len(known) else None,
            pid_max=int(known.max()) if len(known) else None,
            # Shards are cut within one (node, cpu) stream, so the node
            # column — when present — is constant across the shard.
            node=int(batch.node[0]) if batch.node is not None else None,
        )

    def to_json(self) -> Dict[str, Any]:
        out = {
            "cpu": self.cpu,
            "events": self.events,
            "seq_min": self.seq_min,
            "seq_max": self.seq_max,
            "time_min": self.time_min,
            "time_max": self.time_max,
            "has_timed": self.has_timed,
            "major_mask": self.major_mask,
            "dlen_max": self.dlen_max,
            "pid_min": self.pid_min,
            "pid_max": self.pid_max,
        }
        if self.node is not None:
            # Key emitted only for fleet shards: single-node manifests
            # stay byte-identical to the pre-fleet format.
            out["node"] = self.node
        return out

    @classmethod
    def from_json(cls, doc: Dict[str, Any]) -> "ShardStats":
        return cls(
            cpu=doc["cpu"],
            events=doc["events"],
            seq_min=doc["seq_min"],
            seq_max=doc["seq_max"],
            time_min=doc["time_min"],
            time_max=doc["time_max"],
            has_timed=doc["has_timed"],
            major_mask=doc["major_mask"],
            dlen_max=doc["dlen_max"],
            pid_min=doc.get("pid_min"),
            pid_max=doc.get("pid_max"),
            node=doc.get("node"),
        )
