"""Serializing trace buffers: "written out to disk, or streamed over the
network" (§1).

The on-disk format keeps the alignment property at file scale: every
frame has the same size (frame header + ``buffer_words`` 64-bit words),
so frame *k* lives at a computable offset and a reader can fetch any
buffer of a multi-gigabyte trace without scanning — the file-level
counterpart of §3.2's random access.

Layout (all little-endian)::

    file header : magic "K42TRACE" | version u32 | buffer_words u32
    frame       : magic u32 | cpu u32 | seq u64 | committed u64
                | fill_words u32 | partial u8 | pad[3]
                | buffer_words * u64 payload
"""

from __future__ import annotations

import io
import struct
from typing import BinaryIO, Iterable, List, Union

import numpy as np

from repro.core.buffers import BufferRecord

FILE_MAGIC = b"K42TRACE"
FILE_VERSION = 1
FRAME_MAGIC = 0x4B42BEEF

_FILE_HEADER = struct.Struct("<8sII")
_FRAME_HEADER = struct.Struct("<IIQQIB3x")

PathOrFile = Union[str, BinaryIO]


class TraceFileWriter:
    """Streams :class:`BufferRecord` frames into a binary trace file."""

    def __init__(self, fh: BinaryIO, buffer_words: int) -> None:
        self.fh = fh
        self.buffer_words = buffer_words
        self.frames_written = 0
        fh.write(_FILE_HEADER.pack(FILE_MAGIC, FILE_VERSION, buffer_words))

    def write_record(self, rec: BufferRecord) -> None:
        if len(rec.words) != self.buffer_words:
            raise ValueError(
                f"record has {len(rec.words)} words, file expects {self.buffer_words}"
            )
        self.fh.write(
            _FRAME_HEADER.pack(
                FRAME_MAGIC, rec.cpu, rec.seq, rec.committed,
                rec.fill_words, 1 if rec.partial else 0,
            )
        )
        self.fh.write(np.asarray(rec.words, dtype="<u8").tobytes())
        self.frames_written += 1

    def write_all(self, records: Iterable[BufferRecord]) -> None:
        for rec in records:
            self.write_record(rec)


class TraceFileReader:
    """Reads trace files; supports sequential and per-frame random access."""

    def __init__(self, fh: BinaryIO) -> None:
        self.fh = fh
        header = fh.read(_FILE_HEADER.size)
        if len(header) != _FILE_HEADER.size:
            raise ValueError("truncated trace file header")
        magic, version, buffer_words = _FILE_HEADER.unpack(header)
        if magic != FILE_MAGIC:
            raise ValueError(f"bad trace file magic {magic!r}")
        if version != FILE_VERSION:
            raise ValueError(f"unsupported trace file version {version}")
        self.buffer_words = buffer_words
        self.frame_size = _FRAME_HEADER.size + buffer_words * 8
        self._data_start = _FILE_HEADER.size

    def frame_count(self) -> int:
        self.fh.seek(0, io.SEEK_END)
        end = self.fh.tell()
        return (end - self._data_start) // self.frame_size

    def read_frame(self, k: int) -> BufferRecord:
        """Random access to frame ``k`` — a seek, not a scan."""
        self.fh.seek(self._data_start + k * self.frame_size)
        return self._read_one()

    def _read_one(self) -> BufferRecord:
        raw = self.fh.read(_FRAME_HEADER.size)
        if len(raw) != _FRAME_HEADER.size:
            raise EOFError("truncated frame header")
        magic, cpu, seq, committed, fill_words, partial = _FRAME_HEADER.unpack(raw)
        if magic != FRAME_MAGIC:
            raise ValueError(f"bad frame magic {magic:#x}")
        payload = self.fh.read(self.buffer_words * 8)
        if len(payload) != self.buffer_words * 8:
            raise EOFError("truncated frame payload")
        words = np.frombuffer(payload, dtype="<u8").astype(np.uint64)
        return BufferRecord(
            cpu=cpu, seq=seq, words=words, committed=committed,
            fill_words=fill_words, partial=bool(partial),
        )

    def read_all(self) -> List[BufferRecord]:
        n = self.frame_count()
        self.fh.seek(self._data_start)
        records = []
        for _ in range(n):
            records.append(self._read_one())
        return records


def save_records(path: PathOrFile, records: List[BufferRecord]) -> int:
    """Write records to ``path``; returns the number of frames written."""
    if not records:
        raise ValueError("no records to save")
    buffer_words = len(records[0].words)

    def _write(fh: BinaryIO) -> int:
        w = TraceFileWriter(fh, buffer_words)
        w.write_all(records)
        return w.frames_written

    if isinstance(path, str):
        with open(path, "wb") as fh:
            return _write(fh)
    return _write(path)


def load_records(path: PathOrFile) -> List[BufferRecord]:
    """Read every frame of a trace file."""
    if isinstance(path, str):
        with open(path, "rb") as fh:
            return TraceFileReader(fh).read_all()
    return TraceFileReader(path).read_all()
