"""Serializing trace buffers: "written out to disk, or streamed over the
network" (§1).

The on-disk format keeps the alignment property at file scale: every
frame has the same size (frame header + ``buffer_words`` 64-bit words),
so frame *k* lives at a computable offset and a reader can fetch any
buffer of a multi-gigabyte trace without scanning — the file-level
counterpart of §3.2's random access.

Layout (all little-endian)::

    file header : magic "K42TRACE" | version u32 | buffer_words u32
    frame       : magic u32 | cpu u32 | seq u64 | committed u64
                | fill_words u32 | partial u8 | pad[3]
                | buffer_words * u64 payload

Reading is corruption-tolerant by default: a frame whose header is
damaged (bad magic, implausible geometry) is skipped by scanning forward
for the next frame magic — the file-level counterpart of the decoder's
in-buffer resynchronization — and the skip is reported on
:attr:`TraceFileReader.issues`.  ``strict=True`` restores the
raise-on-first-damage behavior.

Reading is also zero-copy by default: a seekable file is mmap'd and
record words are read-only ``np.frombuffer`` views of the page cache
(payloads are 8-byte aligned by construction), with identical output —
frames, issue reports, tail verdicts — to the buffered read() path,
which remains for pipes/streams and as the ``use_mmap=False`` escape
hatch.  On little-endian hosts the historical per-frame
``.astype(np.uint64)`` copy is gone from both paths.
"""

from __future__ import annotations

import io
import mmap
import os
import struct
import sys
from typing import BinaryIO, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.core.buffers import BufferRecord

FILE_MAGIC = b"K42TRACE"
FILE_VERSION = 1
FRAME_MAGIC = 0x4B42BEEF

_FILE_HEADER = struct.Struct("<8sII")
_FRAME_HEADER = struct.Struct("<IIQQIB3x")
_FRAME_MAGIC_BYTES = struct.pack("<I", FRAME_MAGIC)

_LITTLE_ENDIAN = sys.byteorder == "little"

PathOrFile = Union[str, BinaryIO]


def words_from_bytes(payload) -> np.ndarray:
    """The 64-bit words of a little-endian payload buffer.

    On little-endian hosts (``<u8`` *is* the native uint64) this is a
    zero-copy, read-only view of ``payload``; big-endian hosts pay the
    byte-swapping copy they always did.
    """
    words = np.frombuffer(payload, dtype="<u8")
    return words if _LITTLE_ENDIAN else words.astype(np.uint64)


def scan_for_magic(fh: BinaryIO, token: bytes, start: int,
                   chunk: int = 1 << 16) -> Optional[int]:
    """Find the next occurrence of ``token`` at or after byte ``start``.

    Streams the file in chunks (with overlap, so a token straddling a
    chunk boundary is still found); returns the absolute byte offset of
    the first occurrence, or ``None``.  This is the resynchronization
    primitive shared by the trace-file and crash-dump readers.
    """
    fh.seek(start)
    base = start
    tail = b""
    overlap = len(token) - 1
    while True:
        block = fh.read(chunk)
        if not block:
            return None
        hay = tail + block
        i = hay.find(token)
        if i >= 0:
            return base - len(tail) + i
        tail = hay[-overlap:] if overlap else b""
        base += len(block)


def classify_tail(raw: bytes, buffer_words: int) -> str:
    """Judge a partial trailing frame from its visible bytes.

    A frame is written header first, payload second, so visible bytes
    that are a prefix of a well-formed frame — the magic matches as far
    as it goes and, once the whole header is there, the geometry is
    plausible — are exactly what a mid-write frame looks like
    (``"growing"``).  Anything else can never grow into a valid frame,
    so it is damage (``"truncated"``).
    """
    k = min(len(raw), len(_FRAME_MAGIC_BYTES))
    if raw[:k] != _FRAME_MAGIC_BYTES[:k]:
        return "truncated"
    if len(raw) < _FRAME_HEADER.size:
        return "growing"   # the header itself is still being written
    _magic, _cpu, _seq, _committed, fill_words, partial = \
        _FRAME_HEADER.unpack(raw[:_FRAME_HEADER.size])
    if fill_words <= buffer_words and partial <= 1:
        return "growing"
    return "truncated"


class TraceFileWriter:
    """Streams :class:`BufferRecord` frames into a binary trace file."""

    def __init__(self, fh: BinaryIO, buffer_words: int) -> None:
        self.fh = fh
        self.buffer_words = buffer_words
        self.frames_written = 0
        fh.write(_FILE_HEADER.pack(FILE_MAGIC, FILE_VERSION, buffer_words))

    def write_record(self, rec: BufferRecord) -> None:
        if len(rec.words) != self.buffer_words:
            raise ValueError(
                f"record has {len(rec.words)} words, file expects {self.buffer_words}"
            )
        self.fh.write(
            _FRAME_HEADER.pack(
                FRAME_MAGIC, rec.cpu, rec.seq, rec.committed,
                rec.fill_words, 1 if rec.partial else 0,
            )
        )
        self.fh.write(np.asarray(rec.words, dtype="<u8").tobytes())
        self.frames_written += 1

    def write_all(self, records: Iterable[BufferRecord]) -> None:
        for rec in records:
            self.write_record(rec)


class TraceFileReader:
    """Reads trace files; supports sequential and per-frame random access.

    ``strict=False`` (the default) makes :meth:`read_all` skip damaged
    frames — a stomped frame magic, an implausible frame header — by
    scanning forward for the next frame magic, and truncated trailing
    bytes are dropped; every skip is described on :attr:`issues`.
    ``strict=True`` raises ``ValueError``/``EOFError`` at the first
    damage, as the original reader did.  The file *header* is always
    validated strictly — without it there is no geometry to resync with.

    A trailing partial frame is not automatically damage: a trace that
    is still being written ends mid-frame most of the time.  The tail
    verdict (:attr:`tail_state`) distinguishes the two cases — a partial
    trailing frame whose visible prefix is a well-formed frame header is
    ``"growing"`` (an in-progress write; not reported on :attr:`issues`),
    anything else is ``"truncated"`` (real damage).  ``doctor``/
    ``anomaly`` report salvage only for the truncated verdict.
    """

    def __init__(self, fh: BinaryIO, strict: bool = False,
                 use_mmap: bool = True) -> None:
        self.fh = fh
        self.strict = strict
        #: Human-readable descriptions of damage seen (and survived).
        self.issues: List[str] = []
        #: Bytes beyond the last whole frame (0 for a well-formed file).
        self.trailing_bytes = 0
        #: Verdict on the trailing bytes: "complete" (none), "growing"
        #: (a well-formed frame header prefix — an in-progress write),
        #: or "truncated" (damage).
        self.tail_state = "complete"
        header = fh.read(_FILE_HEADER.size)
        if len(header) != _FILE_HEADER.size:
            raise ValueError("truncated trace file header")
        magic, version, buffer_words = _FILE_HEADER.unpack(header)
        if magic != FILE_MAGIC:
            raise ValueError(f"bad trace file magic {magic!r}")
        if version != FILE_VERSION:
            raise ValueError(f"unsupported trace file version {version}")
        self.buffer_words = buffer_words
        self.frame_size = _FRAME_HEADER.size + buffer_words * 8
        self._data_start = _FILE_HEADER.size
        self._mm: Optional[mmap.mmap] = None
        self._file_sig: Optional[Tuple[str, int, int]] = None
        #: Which ingest path backs this reader: ``"mmap"`` (zero-copy
        #: page-cache views) or ``"read"`` (buffered reads).
        self.read_path = "read"
        if use_mmap:
            self._try_mmap()

    def _try_mmap(self) -> None:
        """Map the file read-only; silently keep the read() path if not.

        Pipes, sockets and in-memory streams have no ``fileno``; an
        empty or unmappable file raises — all of those simply stay on
        the buffered path.  Frame payloads start at byte ``16 + 32 +
        k*frame_size``, always 8-byte aligned, so word views over the
        mapping are alignment-safe.
        """
        try:
            fileno = self.fh.fileno()
            mm = mmap.mmap(fileno, 0, access=mmap.ACCESS_READ)
        except (OSError, ValueError, AttributeError):
            return
        self._mm = mm
        self.read_path = "mmap"
        name = getattr(self.fh, "name", None)
        if isinstance(name, str) and os.path.exists(name):
            st = os.fstat(fileno)
            self._file_sig = (os.path.abspath(name), st.st_size,
                              st.st_mtime_ns)

    def _tag_provenance(self, rec: BufferRecord, payload_off: int) -> None:
        """Stamp a view-backed record with its on-disk location.

        ``(path, byte_offset, file_size, file_mtime_ns)`` lets the
        parallel decoder ship a tiny descriptor to pool workers — which
        map the same file themselves — instead of pushing the payload
        through a pipe.  The size/mtime pair lets the consumer detect a
        rewritten file and fall back to shipping bytes.
        """
        if self._file_sig is not None and _LITTLE_ENDIAN:
            path, size, mtime_ns = self._file_sig
            rec._file_ref = (path, payload_off, size, mtime_ns)

    def frame_count(self) -> int:
        """Number of whole frames; judges any partial trailing frame.

        A partial tail that is a well-formed frame prefix is flagged
        ``"growing"`` (and kept off :attr:`issues` — the file is most
        likely mid-write); anything else is ``"truncated"`` damage.
        """
        self.fh.seek(0, io.SEEK_END)
        end = self.fh.tell()
        n, trailing = divmod(end - self._data_start, self.frame_size)
        if trailing and not self.trailing_bytes:
            self.trailing_bytes = trailing
            self.tail_state = self._classify_tail(end - trailing, trailing)
            if self.tail_state == "truncated":
                self.issues.append(
                    f"truncated trailing frame: {trailing} bytes after "
                    f"the last whole frame"
                )
        return n

    def _classify_tail(self, start: int, trailing: int) -> str:
        """Judge a partial trailing frame — see :func:`classify_tail`."""
        self.fh.seek(start)
        raw = self.fh.read(min(trailing, _FRAME_HEADER.size))
        return classify_tail(raw, self.buffer_words)

    def read_frame(self, k: int) -> BufferRecord:
        """Random access to frame ``k`` — a seek, not a scan."""
        n = self.frame_count()
        if not 0 <= k < n:
            raise IndexError(f"frame {k} out of range: file holds {n} frames")
        pos = self._data_start + k * self.frame_size
        # A mapping snapshots the file at open time; frames appended
        # since (a growing trace) fall back to buffered reads.
        if self._mm is not None and pos + self.frame_size <= len(self._mm):
            return self._read_frame_mmap(pos)
        self.fh.seek(pos)
        return self._read_one()

    def _frame_words(self, payload_off: int) -> np.ndarray:
        """Zero-copy word view of the payload at ``payload_off``."""
        mm = self._mm
        assert mm is not None
        if _LITTLE_ENDIAN:
            return np.frombuffer(mm, dtype="<u8", count=self.buffer_words,
                                 offset=payload_off)
        return np.frombuffer(  # pragma: no cover - big-endian fallback
            mm[payload_off:payload_off + self.buffer_words * 8], dtype="<u8"
        ).astype(np.uint64)

    def _read_frame_mmap(self, pos: int) -> BufferRecord:
        mm = self._mm
        assert mm is not None
        magic, cpu, seq, committed, fill_words, partial = \
            _FRAME_HEADER.unpack_from(mm, pos)
        if magic != FRAME_MAGIC:
            raise ValueError(f"bad frame magic {magic:#x}")
        off = pos + _FRAME_HEADER.size
        rec = BufferRecord(
            cpu=cpu, seq=seq, words=self._frame_words(off),
            committed=committed, fill_words=fill_words,
            partial=bool(partial),
        )
        self._tag_provenance(rec, off)
        return rec

    def _read_one(self) -> BufferRecord:
        raw = self.fh.read(_FRAME_HEADER.size)
        if len(raw) != _FRAME_HEADER.size:
            raise EOFError("truncated frame header")
        magic, cpu, seq, committed, fill_words, partial = _FRAME_HEADER.unpack(raw)
        if magic != FRAME_MAGIC:
            raise ValueError(f"bad frame magic {magic:#x}")
        payload = self.fh.read(self.buffer_words * 8)
        if len(payload) != self.buffer_words * 8:
            raise EOFError("truncated frame payload")
        words = words_from_bytes(payload)
        return BufferRecord(
            cpu=cpu, seq=seq, words=words, committed=committed,
            fill_words=fill_words, partial=bool(partial),
        )

    def _read_all_mmap(self) -> List[BufferRecord]:
        """The :meth:`read_all` walk over the mapping — same damage
        handling, same issue reports, zero payload copies."""
        mm = self._mm
        assert mm is not None
        end = len(mm)
        payload_len = self.buffer_words * 8
        records: List[BufferRecord] = []
        pos = self._data_start
        while pos < end:
            if end - pos < _FRAME_HEADER.size:
                if self.strict:
                    raise EOFError("truncated frame header")
                if not self.trailing_bytes:
                    self.issues.append(
                        f"truncated frame header at byte {pos}; dropped"
                    )
                break
            (magic, cpu, seq, committed,
             fill_words, partial) = _FRAME_HEADER.unpack_from(mm, pos)
            plausible = (magic == FRAME_MAGIC
                         and fill_words <= self.buffer_words
                         and partial <= 1)
            if not plausible:
                if self.strict:
                    if magic != FRAME_MAGIC:
                        raise ValueError(f"bad frame magic {magic:#x}")
                    raise ValueError(
                        f"implausible frame header at byte {pos} "
                        f"(fill_words {fill_words}, partial {partial})"
                    )
                nxt = mm.find(_FRAME_MAGIC_BYTES, pos + 1)
                if nxt < 0:
                    self.issues.append(
                        f"damaged frame at byte {pos}; no later frame "
                        f"magic — {end - pos} bytes dropped"
                    )
                    break
                self.issues.append(
                    f"damaged frame at byte {pos}; skipped {nxt - pos} "
                    f"bytes to the next frame magic"
                )
                pos = nxt
                continue
            if end - pos - _FRAME_HEADER.size < payload_len:
                if self.strict:
                    raise EOFError("truncated frame payload")
                if not self.trailing_bytes:
                    self.issues.append(
                        f"truncated frame payload at byte {pos}; dropped"
                    )
                break
            off = pos + _FRAME_HEADER.size
            rec = BufferRecord(
                cpu=cpu, seq=seq, words=self._frame_words(off),
                committed=committed, fill_words=fill_words,
                partial=bool(partial),
            )
            self._tag_provenance(rec, off)
            records.append(rec)
            pos += self.frame_size
        return records

    def read_all(self) -> List[BufferRecord]:
        """Read every readable frame, resynchronizing past damage."""
        self.frame_count()   # flag a truncated tail up front
        if self._mm is not None:
            self.fh.seek(0, io.SEEK_END)
            if self.fh.tell() <= len(self._mm):
                return self._read_all_mmap()
        self.fh.seek(self._data_start)
        records: List[BufferRecord] = []
        while True:
            pos = self.fh.tell()
            raw = self.fh.read(_FRAME_HEADER.size)
            if not raw:
                break
            if len(raw) < _FRAME_HEADER.size:
                if self.strict:
                    raise EOFError("truncated frame header")
                if not self.trailing_bytes:
                    self.issues.append(
                        f"truncated frame header at byte {pos}; dropped"
                    )
                break
            (magic, cpu, seq, committed,
             fill_words, partial) = _FRAME_HEADER.unpack(raw)
            plausible = (magic == FRAME_MAGIC
                         and fill_words <= self.buffer_words
                         and partial <= 1)
            if not plausible:
                if self.strict:
                    if magic != FRAME_MAGIC:
                        raise ValueError(f"bad frame magic {magic:#x}")
                    raise ValueError(
                        f"implausible frame header at byte {pos} "
                        f"(fill_words {fill_words}, partial {partial})"
                    )
                nxt = scan_for_magic(self.fh, _FRAME_MAGIC_BYTES, pos + 1)
                if nxt is None:
                    self.fh.seek(0, io.SEEK_END)
                    self.issues.append(
                        f"damaged frame at byte {pos}; no later frame "
                        f"magic — {self.fh.tell() - pos} bytes dropped"
                    )
                    break
                self.issues.append(
                    f"damaged frame at byte {pos}; skipped {nxt - pos} "
                    f"bytes to the next frame magic"
                )
                self.fh.seek(nxt)
                continue
            payload = self.fh.read(self.buffer_words * 8)
            if len(payload) < self.buffer_words * 8:
                if self.strict:
                    raise EOFError("truncated frame payload")
                if not self.trailing_bytes:
                    self.issues.append(
                        f"truncated frame payload at byte {pos}; dropped"
                    )
                break
            words = words_from_bytes(payload)
            records.append(
                BufferRecord(
                    cpu=cpu, seq=seq, words=words, committed=committed,
                    fill_words=fill_words, partial=bool(partial),
                )
            )
        return records


def save_records(path: PathOrFile, records: List[BufferRecord],
                 buffer_words: Optional[int] = None) -> int:
    """Write records to ``path``; returns the number of frames written.

    An empty record list is a valid (if quiet) trace, but its geometry
    cannot be inferred — pass ``buffer_words`` explicitly to write a
    header-only file that ``load_records`` round-trips to ``[]``.
    """
    if not records and buffer_words is None:
        raise ValueError(
            "no records to save; pass buffer_words= to write an empty trace"
        )
    if buffer_words is None:
        buffer_words = len(records[0].words)

    def _write(fh: BinaryIO) -> int:
        w = TraceFileWriter(fh, buffer_words)
        w.write_all(records)
        return w.frames_written

    if isinstance(path, str):
        with open(path, "wb") as fh:
            return _write(fh)
    return _write(path)


def load_records(path: PathOrFile, strict: bool = False,
                 use_mmap: bool = True) -> List[BufferRecord]:
    """Read every readable frame of a trace file.

    With the default ``strict=False``, damaged frames are skipped (see
    :class:`TraceFileReader`); use :class:`TraceFileReader` directly
    when the skip reports are needed.  ``use_mmap=True`` (the default)
    returns zero-copy views of the page cache on little-endian hosts —
    record words are then read-only; pass ``use_mmap=False`` for the
    buffered read() path (output is bit-identical either way).
    """
    if isinstance(path, str):
        with open(path, "rb") as fh:
            return TraceFileReader(fh, strict=strict,
                                   use_mmap=use_mmap).read_all()
    return TraceFileReader(path, strict=strict, use_mmap=use_mmap).read_all()
