"""A lazily-created, process-wide worker pool shared by every fan-out.

Each ``ProcessPoolExecutor`` costs real startup time (forking workers,
or — under spawn — re-importing the world per worker).  The parallel
decoders, store packing, and store queries used to pay that price on
every call; this module makes them share one persistent pool instead,
so a multi-tool CLI invocation or a stream of repeated queries pays
pool startup once.

Properties
----------

* **Lazy** — nothing is created until the first :func:`get_pool` /
  :func:`run_tasks` call, and worker processes themselves only start
  when work is first submitted.
* **Fork-preferred** — the ``fork`` start method is used when the
  platform offers it, ``spawn`` otherwise; ``REPRO_POOL_START_METHOD``
  (``fork``/``spawn``/``none``) overrides, where ``none`` disables
  process pools entirely and every fan-out runs in-process.
* **Fork-safe** — a child created by ``os.fork`` (including the pool's
  own workers) *forgets* the inherited pool rather than shutting it
  down: the queues belong to the parent, and poking them from a child
  would corrupt the parent's pool.
* **Sized by demand** — ``REPRO_POOL_WORKERS`` (or ``os.cpu_count()``)
  sets the default width; a caller requesting more workers than the
  current pool holds gets the pool transparently rebuilt wider.
* **Explicitly stoppable** — :func:`shutdown` tears the pool down for
  tests and for the pool-hygiene CI leg; it is also registered with
  ``atexit`` so no worker outlives the interpreter.
"""

from __future__ import annotations

import atexit
import os
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import wait as _futures_wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

_pool: Optional[ProcessPoolExecutor] = None
_pool_kind: Optional[str] = None
_pool_size: int = 0
_pool_pid: Optional[int] = None
_hooks_installed = False


def pool_workers(workers: Optional[int] = None) -> int:
    """Resolve a worker count: explicit > ``REPRO_POOL_WORKERS`` > cores."""
    if workers is not None and workers > 0:
        return workers
    env = os.environ.get("REPRO_POOL_WORKERS", "").strip()
    if env:
        try:
            n = int(env)
        except ValueError:
            n = 0
        if n > 0:
            return n
    return os.cpu_count() or 1


def _start_method() -> Optional[str]:
    """The start method the pool should use, or ``None`` for no pool."""
    choice = os.environ.get("REPRO_POOL_START_METHOD", "").strip().lower()
    if choice in ("none", "off", "0"):
        return None
    try:
        import multiprocessing

        methods = multiprocessing.get_all_start_methods()
    except ImportError:  # pragma: no cover - multiprocessing always ships
        return None
    if choice in methods:
        return choice
    return "fork" if "fork" in methods else "spawn"


def _forget() -> None:
    """Drop the pool reference without touching its machinery.

    Runs in every forked child (``os.register_at_fork``): the inherited
    executor's queues and threads belong to the parent, so the child
    must neither use nor shut down the pool — only forget it.
    """
    global _pool, _pool_kind, _pool_size, _pool_pid
    _pool = None
    _pool_kind = None
    _pool_size = 0
    _pool_pid = None


def shutdown(wait: bool = True) -> None:
    """Tear down the shared pool (no-op when none exists)."""
    global _pool
    pool = _pool
    _forget()
    if pool is not None:
        pool.shutdown(wait=wait)


def pool_kind() -> Optional[str]:
    """Start method of the live pool (``None`` when no pool exists)."""
    return _pool_kind


def pool_size() -> int:
    """Width of the live pool (0 when no pool exists)."""
    return _pool_size


def get_pool(workers: Optional[int] = None) -> Optional[ProcessPoolExecutor]:
    """The shared executor, at least ``workers`` wide — or ``None``.

    ``None`` means process pools are unavailable (disabled via
    ``REPRO_POOL_START_METHOD=none``, or creation failed); callers fall
    back to running their tasks in-process.
    """
    global _pool, _pool_kind, _pool_size, _pool_pid, _hooks_installed
    kind = _start_method()
    if kind is None:
        return None
    if _pool is not None and _pool_pid != os.getpid():
        # A fork that predates the at-fork hook: forget, never shut down.
        _forget()
    n = pool_workers(workers)
    if _pool is not None and (_pool_kind != kind or _pool_size < n):
        shutdown()
    if _pool is None:
        try:
            import multiprocessing

            ctx = multiprocessing.get_context(kind)
            pool = ProcessPoolExecutor(max_workers=n, mp_context=ctx)
        except (OSError, PermissionError, ImportError,
                ValueError) as exc:  # pragma: no cover - restricted envs
            warnings.warn(
                f"process pool unavailable ({exc}); running in-process",
                RuntimeWarning,
                stacklevel=3,
            )
            return None
        _pool = pool
        _pool_kind = kind
        _pool_size = n
        _pool_pid = os.getpid()
        if not _hooks_installed:
            if hasattr(os, "register_at_fork"):
                os.register_at_fork(after_in_child=_forget)
            atexit.register(shutdown)
            _hooks_installed = True
    return _pool


def _ping(x: T) -> T:
    """Identity task for pool warm-up checks and hygiene probes."""
    return x


def _map_bounded(pool: ProcessPoolExecutor, fn: Callable[[T], R],
                 items: Sequence[T], limit: int) -> List[R]:
    """``pool.map`` with at most ``limit`` tasks in flight, in order.

    The shared pool may be wider than one caller's ``--workers`` ask;
    bounding in-flight submissions keeps that ask meaningful.
    """
    results: List[Any] = [None] * len(items)
    pending: dict = {}
    it = iter(enumerate(items))

    def _fill() -> None:
        while len(pending) < limit:
            try:
                i, item = next(it)
            except StopIteration:
                return
            pending[pool.submit(fn, item)] = i

    _fill()
    try:
        while pending:
            done, _ = _futures_wait(set(pending),
                                    return_when=FIRST_COMPLETED)
            for fut in done:
                results[pending.pop(fut)] = fut.result()
            _fill()
    except BaseException:
        for fut in pending:
            fut.cancel()
        raise
    return results


def run_tasks(fn: Callable[[T], R], items: Sequence[T],
              workers: Optional[int] = None) -> List[R]:
    """Run ``fn`` over ``items`` on the shared pool, preserving order.

    ``workers`` bounds in-flight parallelism (``None``/``0`` resolves
    via :func:`pool_workers`); ``workers=1``, a single item, or an
    unavailable pool all run in-process.  A pool that dies mid-run is
    torn down and the batch retried in-process, so callers always get
    a full result list.
    """
    items = list(items)
    if not items:
        return []
    limit = min(pool_workers(workers), len(items))
    if limit <= 1:
        return [fn(it) for it in items]
    pool = get_pool(limit)
    if pool is None:
        return [fn(it) for it in items]
    try:
        return _map_bounded(pool, fn, items, limit)
    except BrokenProcessPool:
        shutdown(wait=False)
        warnings.warn(
            "worker pool died mid-run; retrying the batch in-process",
            RuntimeWarning,
            stacklevel=2,
        )
        return [fn(it) for it in items]
