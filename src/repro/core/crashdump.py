"""Crash-dump extraction of the trace log (§4.2's named future work).

"If the kernel is not stable enough to call this function, a crash dump
tool can access the trace log providing similar functionality.  We have
not implemented the crash dump tool yet."  — implemented here.

The premise: after a crash, all that exists is a memory image.  This
module defines the layout of the tracing state inside such an image —
per-CPU control metadata (reservation index, ring geometry, slot
occupancy, committed counts) followed by the raw trace memory — plus a
reader that reconstructs flight-recorder records from the image alone,
with no live objects.  The reader validates everything it touches, since
a crash may have corrupted any of it, and degrades to whatever buffers
still make sense.

Layout (little-endian)::

    image  : magic "K42CRASH" | version u32 | ncpus u32 | cpu-section*
    section: magic u32 | cpu u32 | buffer_words u32 | num_buffers u32
           | index u64 | booked_seq u64
           | slot_seq[num_buffers] u64 | committed[num_buffers] u64
           | trace memory (buffer_words * num_buffers * u64)
"""

from __future__ import annotations

import io
import struct
from dataclasses import dataclass, field
from typing import BinaryIO, List, Union

import numpy as np

from repro.core.buffers import BufferRecord, TraceControl, decode_commit_word
from repro.core.writer import scan_for_magic, words_from_bytes

DUMP_MAGIC = b"K42CRASH"
DUMP_VERSION = 1
SECTION_MAGIC = 0xC4A5_4DED

_IMG_HEADER = struct.Struct("<8sII")
_SEC_HEADER = struct.Struct("<IIIIQQ")
_SECTION_MAGIC_BYTES = struct.pack("<I", SECTION_MAGIC)

#: Upper bound accepted for ring geometry when parsing an untrusted dump.
MAX_BUFFER_WORDS = 1 << 26
MAX_NUM_BUFFERS = 1 << 16


@dataclass
class DumpIssue:
    """A problem found while parsing a (possibly corrupted) dump."""

    cpu: int
    detail: str


@dataclass
class CrashDump:
    """Parsed dump: reconstructed records plus parse diagnostics."""

    records: List[BufferRecord] = field(default_factory=list)
    issues: List[DumpIssue] = field(default_factory=list)
    ncpus: int = 0

    @property
    def intact(self) -> bool:
        return not self.issues


def write_dump(controls: List[TraceControl], fh: BinaryIO) -> None:
    """Serialize the tracing state as a crash-style memory image.

    In a real system this is the job of the dump mechanism (kdump etc.);
    here it stands in for "the machine's memory was saved".
    """
    fh.write(_IMG_HEADER.pack(DUMP_MAGIC, DUMP_VERSION, len(controls)))
    for ctl in controls:
        fh.write(
            _SEC_HEADER.pack(
                SECTION_MAGIC, ctl.cpu, ctl.buffer_words, ctl.num_buffers,
                ctl.index.load(), ctl.booked_seq.load(),
            )
        )
        slot_seq = np.asarray(ctl.slot_seq, dtype="<u8")
        committed = np.asarray(ctl.committed.snapshot(), dtype="<u8")
        fh.write(slot_seq.tobytes())
        fh.write(committed.tobytes())
        fh.write(np.asarray(ctl.array, dtype="<u8").tobytes())


def dump_bytes(controls: List[TraceControl]) -> bytes:
    buf = io.BytesIO()
    write_dump(controls, buf)
    return buf.getvalue()


def _read_exact(fh: BinaryIO, n: int, what: str) -> bytes:
    raw = fh.read(n)
    if len(raw) != n:
        raise EOFError(f"truncated dump while reading {what}")
    return raw


def read_dump(source: Union[bytes, BinaryIO]) -> CrashDump:
    """Reconstruct flight-recorder records from a memory image.

    Mirrors :meth:`TraceControl.snapshot`, but works from raw bytes and
    survives corruption: a damaged CPU section is reported as an issue,
    the reader scans forward for the next section magic and resumes
    there, and geometry fields are sanity-checked before use.  Only when
    no later section magic exists does parsing stop early.
    """
    fh = io.BytesIO(source) if isinstance(source, (bytes, bytearray)) else source
    header = fh.read(_IMG_HEADER.size)
    if len(header) != _IMG_HEADER.size:
        raise ValueError("not a crash dump: truncated header")
    magic, version, ncpus = _IMG_HEADER.unpack(header)
    if magic != DUMP_MAGIC:
        raise ValueError(f"not a crash dump: bad magic {magic!r}")
    if version != DUMP_VERSION:
        raise ValueError(f"unsupported crash dump version {version}")

    dump = CrashDump(ncpus=ncpus)
    parsed = 0
    pos = fh.tell()
    while parsed < ncpus:
        fh.seek(pos)
        try:
            raw = _read_exact(fh, _SEC_HEADER.size, f"cpu section {parsed}")
            (sec_magic, cpu, buffer_words, num_buffers,
             index, booked_seq) = _SEC_HEADER.unpack(raw)
            if sec_magic != SECTION_MAGIC:
                raise ValueError(f"bad section magic {sec_magic:#x}")
            if not (0 < buffer_words <= MAX_BUFFER_WORDS):
                raise ValueError(f"implausible buffer_words {buffer_words}")
            if not (0 < num_buffers <= MAX_NUM_BUFFERS):
                raise ValueError(f"implausible num_buffers {num_buffers}")
            slot_seq = np.frombuffer(
                _read_exact(fh, num_buffers * 8, "slot_seq"), dtype="<u8"
            )
            committed = np.frombuffer(
                _read_exact(fh, num_buffers * 8, "committed"), dtype="<u8"
            )
            total = buffer_words * num_buffers
            # A zero-copy view on little-endian hosts; the per-record
            # slices below then alias this one buffer, copy-free.
            memory = words_from_bytes(
                _read_exact(fh, total * 8, "trace memory"))
        except (ValueError, EOFError) as exc:
            dump.issues.append(DumpIssue(parsed, str(exc)))
            # Framing is lost at this point, but sections carry their
            # own magic: scan forward for the next one and resume there
            # — the dump-level counterpart of the decoder's in-buffer
            # resynchronization.
            nxt = scan_for_magic(fh, _SECTION_MAGIC_BYTES, pos + 1)
            if nxt is None:
                break  # no later section magic; the rest is rubble
            dump.issues.append(
                DumpIssue(
                    parsed,
                    f"resynchronized at byte {nxt}: "
                    f"skipped {nxt - pos} bytes",
                )
            )
            parsed += 1
            pos = nxt
            continue
        parsed += 1
        pos = fh.tell()

        cur_seq = index // buffer_words
        fill = index % buffer_words
        for slot in range(num_buffers):
            seq = int(slot_seq[slot])
            if seq == cur_seq and fill == 0:
                continue
            partial = seq == cur_seq
            start = slot * buffer_words
            dump.records.append(
                BufferRecord(
                    cpu=cpu,
                    seq=seq,
                    words=memory[start : start + buffer_words],
                    committed=decode_commit_word(seq, int(committed[slot])),
                    fill_words=fill if partial else buffer_words,
                    partial=partial,
                )
            )
    dump.records.sort(key=lambda r: (r.cpu, r.seq))
    return dump
