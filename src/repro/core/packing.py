"""Packing sub-64-bit quantities and strings into 64-bit trace words.

K42 logs only 64-bit words (§3.2): smaller loads can be expensive on some
architectures and most logged values are 64-bit values or addresses.
Macros pack multiple smaller quantities into one tracing word when
needed.  This module is the Python equivalent of those macros, driven by
the same layout strings the self-describing event registry uses
("8", "16", "32", "64", or "str", space separated).

Packing rules (mirrored by :func:`unpack_values`):

* fixed-width values fill each word from the least-significant bit up;
  a value never straddles a word boundary — when it would, packing
  advances to a fresh word;
* a string starts on a fresh word, is encoded as UTF-8 with a NUL
  terminator, and is zero-padded to a word boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Sequence, Tuple, Union

from repro.core.constants import WORD_BITS, WORD_BYTES, WORD_MASK

Value = Union[int, str]

_FIXED_WIDTHS = {"8": 8, "16": 16, "32": 32, "64": 64}


@lru_cache(maxsize=None)
def parse_layout(layout: str) -> Tuple[str, ...]:
    """Split and validate a layout string; returns the token tuple.

    Layout strings come from the (small, fixed) event registry but are
    re-parsed on every decode, so the result is memoized — the cache is
    keyed by the layout string itself and the returned tuple is
    immutable and safe to share.
    """
    tokens = tuple(layout.split())
    for tok in tokens:
        if tok not in _FIXED_WIDTHS and tok != "str":
            raise ValueError(f"unknown layout token {tok!r} in {layout!r}")
    return tokens


@dataclass(frozen=True)
class LayoutPlan:
    """Precomputed decode plan for one layout string.

    ``fields`` holds, per layout token, the static ``(word, shift, width)``
    position of that value inside the event's data words — or ``None``
    once positions become data-dependent (everything from the first
    ``str`` token on, since a string's word count is only known at decode
    time).  A fully static plan (``vectorizable``) lets a columnar reader
    decode a whole group of same-shaped events with one numpy gather and
    shift/mask per field instead of N :func:`unpack_values` calls.
    """

    tokens: Tuple[str, ...]
    fields: Tuple[Optional[Tuple[int, int, int]], ...]
    vectorizable: bool
    #: Fixed total data-word count, or None when the layout is
    #: variable-length ("str").
    data_words: Optional[int]


@lru_cache(maxsize=None)
def compile_layout(layout: str) -> LayoutPlan:
    """Compile a layout into a :class:`LayoutPlan` (memoized).

    Mirrors the packing rules of :func:`pack_values` exactly: fixed-width
    values fill each word LSB-up and never straddle a word boundary;
    a string starts on a fresh word and invalidates all later static
    positions.
    """
    tokens = parse_layout(layout)
    fields: list = []
    widx = -1
    bit = WORD_BITS
    static = True
    for tok in tokens:
        if tok == "str" or not static:
            static = False
            fields.append(None)
            continue
        width = _FIXED_WIDTHS[tok]
        if bit + width > WORD_BITS:
            widx += 1
            bit = 0
        fields.append((widx, bit, width))
        bit += width
    return LayoutPlan(
        tokens=tokens,
        fields=tuple(fields),
        vectorizable=static,
        data_words=(widx + 1) if static else None,
    )


def pack_values(layout: str, values: Sequence[Value]) -> list[int]:
    """Pack ``values`` per ``layout`` into a list of 64-bit data words."""
    tokens = parse_layout(layout)
    if len(tokens) != len(values):
        raise ValueError(
            f"layout {layout!r} expects {len(tokens)} values, got {len(values)}"
        )
    words: list[int] = []
    bit = WORD_BITS  # bits already used in the current word; WORD_BITS = none open
    for tok, value in zip(tokens, values):
        if tok == "str":
            if not isinstance(value, str):
                raise TypeError(f"layout token 'str' needs a str, got {type(value)}")
            data = value.encode("utf-8") + b"\x00"
            data += b"\x00" * (-len(data) % WORD_BYTES)
            for off in range(0, len(data), WORD_BYTES):
                words.append(int.from_bytes(data[off : off + WORD_BYTES], "little"))
            bit = WORD_BITS  # next fixed value opens a fresh word
        else:
            width = _FIXED_WIDTHS[tok]
            if not isinstance(value, int):
                raise TypeError(f"layout token {tok!r} needs an int, got {type(value)}")
            if not 0 <= value < (1 << width):
                raise ValueError(f"value {value:#x} does not fit in {width} bits")
            if bit + width > WORD_BITS:
                words.append(0)
                bit = 0
            words[-1] = (words[-1] | (value << bit)) & WORD_MASK
            bit += width
    return words


def unpack_values(layout: str, words: Sequence[int]) -> list[Value]:
    """Inverse of :func:`pack_values` for the same layout."""
    tokens = parse_layout(layout)
    values: list[Value] = []
    widx = 0  # index of the next unopened word
    bit = WORD_BITS
    for tok in tokens:
        if tok == "str":
            # Strings start on a fresh word and run to their NUL.
            raw = bytearray()
            idx = widx
            while True:
                if idx >= len(words):
                    raise ValueError("truncated string in event data")
                chunk = int(words[idx]).to_bytes(WORD_BYTES, "little")
                idx += 1
                nul = chunk.find(b"\x00")
                if nul >= 0:
                    raw.extend(chunk[:nul])
                    break
                raw.extend(chunk)
            values.append(raw.decode("utf-8"))
            widx = idx
            bit = WORD_BITS
        else:
            width = _FIXED_WIDTHS[tok]
            if bit + width > WORD_BITS:
                if widx >= len(words):
                    raise ValueError("truncated fixed-width value in event data")
                bit = 0
                widx += 1
            word = int(words[widx - 1])
            values.append((word >> bit) & ((1 << width) - 1))
            bit += width
    return values


def packed_length(layout: str, values: Sequence[Value]) -> int:
    """Number of data words :func:`pack_values` would produce."""
    return len(pack_values(layout, values))
