"""Deterministic fault injection for the corruption-tolerant read path.

The paper's §3.1 validity heuristics exist because real traces get
damaged: a writer is preempted or killed mid-event, a buffer is written
out before its tail is committed, a disk or network hop flips bits.
This module manufactures exactly those kinds of damage — deterministically,
from a seed — so tests, benchmarks, and the ``repro-trace inject``
subcommand can exercise the recovery machinery on demand instead of
waiting for a fault to happen in the wild.

Fault matrix
------------

In-memory record faults (:data:`RECORD_KINDS`, applied to decoded
:class:`~repro.core.buffers.BufferRecord` lists):

``header-bitflip``
    One random bit of one event-header word is flipped — transport or
    memory corruption.
``torn-event``
    A multi-word event is replaced by stale ring garbage, the state a
    preempted writer leaves when it reserved space but never finished
    writing (§3.1's "events in the midst of being logged").
``killed-writer``
    A buffer's committed count drops below its fill — the writer died
    between reserving and committing, so the tail is uncommitted.

File faults (:data:`FILE_KINDS`, applied to raw ``.k42`` trace bytes):

``frame-magic``
    One frame's magic number is stomped, severing file-level framing.
``frame-truncate``
    The file loses its tail mid-frame — a crashed copy or full disk.

Crash-dump faults (:data:`DUMP_KINDS`, applied to raw dump images):

``dump-section``
    One CPU section's magic is stomped, as a wild kernel store would.

Every injector returns an :class:`InjectionReport` describing what was
damaged.  Record-level faults are *verified detectable*: the injector
decodes the damaged records and retries with a different target (same
seed stream, so still deterministic) until the damage produces an
anomaly, falling back to an unambiguous overrun header if randomness
keeps producing benign corruption.  File- and dump-level faults are
structurally detectable by construction.
"""

from __future__ import annotations

import io
import random
import struct
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.buffers import BufferRecord
from repro.core.constants import LENGTH_MASK
from repro.core.crashdump import _IMG_HEADER, _SEC_HEADER, DUMP_MAGIC
from repro.core.header import pack_header, unpack_header
from repro.core.majors import Major
from repro.core.stream import TraceReader, scan_buffer
from repro.core.writer import FRAME_MAGIC, TraceFileReader

RECORD_KINDS = ("header-bitflip", "torn-event", "killed-writer")
FILE_KINDS = ("frame-magic", "frame-truncate")
DUMP_KINDS = ("dump-section",)
ALL_KINDS = RECORD_KINDS + FILE_KINDS + DUMP_KINDS

_FRAME_MAGIC_BYTES = struct.pack("<I", FRAME_MAGIC)
_MAX_ATTEMPTS = 16


@dataclass
class InjectionReport:
    """What a fault injection actually did."""

    kind: str
    seed: int
    target: str
    attempts: int = 1
    #: For record faults: verified to yield an anomaly when decoded.
    #: File/dump faults are detectable by construction.
    detectable: bool = True

    def describe(self) -> str:
        note = "" if self.detectable else " (NOT verified detectable)"
        return (f"injected {self.kind} (seed {self.seed}, "
                f"attempt {self.attempts}): {self.target}{note}")


def _copy_records(records: Sequence[BufferRecord]) -> List[BufferRecord]:
    return [
        BufferRecord(
            cpu=r.cpu, seq=r.seq, words=np.array(r.words, dtype=np.uint64),
            committed=r.committed, fill_words=r.fill_words, partial=r.partial,
        )
        for r in records
    ]


class FaultInjector:
    """Seedable source of trace corruption.

    One injector = one deterministic stream of faults: the same seed and
    the same call sequence always damage the same bytes.  Use a fresh
    injector per scenario when reproducibility of an individual fault
    matters.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rng = random.Random(seed)

    # ------------------------------------------------------------ records
    def inject_records(
        self, records: Sequence[BufferRecord], kind: str
    ) -> Tuple[List[BufferRecord], InjectionReport]:
        """Damage one buffer of ``records`` (copied, never in place).

        The damaged set is decoded to verify the fault is *detectable*
        (produces at least one new anomaly); benign outcomes — a bit
        flip that only changed a minor code, torn garbage that still
        parses — are retried with new targets from the same seed stream.
        """
        if kind not in RECORD_KINDS:
            raise ValueError(f"unknown record fault kind {kind!r}")
        candidates = [i for i, r in enumerate(records) if r.fill_words > 0]
        if not candidates:
            raise ValueError("no non-empty buffers to damage")
        baseline = self._anomaly_count(records)

        for attempt in range(1, _MAX_ATTEMPTS + 1):
            recs = _copy_records(records)
            rec = recs[self.rng.choice(candidates)]
            target = self._damage_record(rec, kind, force=False)
            if target is None:
                continue
            if self._anomaly_count(recs) > baseline:
                return recs, InjectionReport(kind, self.seed, target,
                                             attempts=attempt)

        # Randomness kept producing benign damage; force an unambiguous
        # fault at the chosen spot instead.
        recs = _copy_records(records)
        rec = recs[self.rng.choice(candidates)]
        target = self._damage_record(rec, kind, force=True)
        detectable = self._anomaly_count(recs) > baseline
        return recs, InjectionReport(kind, self.seed, target or "nothing",
                                     attempts=_MAX_ATTEMPTS + 1,
                                     detectable=detectable)

    def _damage_record(self, rec: BufferRecord, kind: str, force: bool):
        """Apply one record fault in place; returns a target description."""
        if kind == "killed-writer":
            drop = self.rng.randrange(1, rec.fill_words + 1)
            rec.partial = False
            rec.committed = rec.fill_words - drop
            return (f"cpu{rec.cpu} buf{rec.seq}: committed count dropped "
                    f"to {rec.committed} of {rec.fill_words} words")

        scan = scan_buffer(rec.words, rec.fill_words)
        if not scan.offsets:
            return None
        if kind == "header-bitflip":
            off = self.rng.choice(scan.offsets)
            if force:
                # Overrun header: length points past the end of the fill.
                length = rec.fill_words - off + 1
                word = (pack_header(0, length, int(Major.TEST), 0)
                        if length <= LENGTH_MASK else 0)
                rec.words[off] = np.uint64(word)
                return (f"cpu{rec.cpu} buf{rec.seq}+{off}: header replaced "
                        f"with overrun length")
            bit = self.rng.randrange(64)
            rec.words[off] = np.uint64(int(rec.words[off]) ^ (1 << bit))
            return f"cpu{rec.cpu} buf{rec.seq}+{off}: header bit {bit} flipped"

        # torn-event: stale ring contents where a multi-word event should be.
        multi = [o for o in scan.offsets if self._length_at(rec, o) >= 2]
        if not multi:
            return None
        off = self.rng.choice(multi)
        length = self._length_at(rec, off)
        if force:
            overrun = rec.fill_words - off + 1
            word = (pack_header(0, overrun, int(Major.TEST), 0)
                    if overrun <= LENGTH_MASK else 0)
            rec.words[off] = np.uint64(word)
            return (f"cpu{rec.cpu} buf{rec.seq}+{off}: torn event forced "
                    f"to overrun header")
        for i in range(off, off + length):
            rec.words[i] = np.uint64(self.rng.getrandbits(64))
        return (f"cpu{rec.cpu} buf{rec.seq}+{off}: {length}-word event "
                f"torn (stale ring garbage)")

    @staticmethod
    def _length_at(rec: BufferRecord, off: int) -> int:
        return unpack_header(int(rec.words[off])).length

    @staticmethod
    def _anomaly_count(records: Sequence[BufferRecord]) -> int:
        return len(TraceReader().decode_records(records).anomalies)

    # --------------------------------------------------------------- file
    def inject_trace_bytes(
        self, data: bytes, kind: str
    ) -> Tuple[bytes, InjectionReport]:
        """Damage the raw bytes of a ``.k42`` trace file."""
        if kind not in FILE_KINDS:
            raise ValueError(f"unknown file fault kind {kind!r}")
        reader = TraceFileReader(io.BytesIO(data))
        n = reader.frame_count()
        if n == 0:
            raise ValueError("trace file has no frames to damage")
        header_size = reader._data_start
        if kind == "frame-truncate":
            cut = self.rng.randrange(1, reader.frame_size)
            return data[:-cut], InjectionReport(
                kind, self.seed,
                f"final {cut} bytes chopped (mid-frame truncation)")
        k = self.rng.randrange(n)
        off = header_size + k * reader.frame_size
        stomp = bytes(self.rng.randrange(256) for _ in range(4))
        if stomp == _FRAME_MAGIC_BYTES:
            stomp = b"\x00\x00\x00\x00"
        out = data[:off] + stomp + data[off + 4:]
        return out, InjectionReport(
            kind, self.seed, f"frame {k} magic stomped at byte {off}")

    # --------------------------------------------------------------- dump
    def inject_dump_bytes(
        self, data: bytes, kind: str
    ) -> Tuple[bytes, InjectionReport]:
        """Damage the raw bytes of a crash-dump image."""
        if kind not in DUMP_KINDS:
            raise ValueError(f"unknown dump fault kind {kind!r}")
        magic, _version, ncpus = _IMG_HEADER.unpack_from(data, 0)
        if magic != DUMP_MAGIC or ncpus == 0:
            raise ValueError("not a crash dump image (or no sections)")
        offsets = []
        pos = _IMG_HEADER.size
        for _ in range(ncpus):
            offsets.append(pos)
            (_magic, _cpu, buffer_words, num_buffers,
             _idx, _booked) = _SEC_HEADER.unpack_from(data, pos)
            pos += (_SEC_HEADER.size + num_buffers * 16
                    + buffer_words * num_buffers * 8)
        section = self.rng.randrange(len(offsets))
        off = offsets[section]
        out = data[:off] + b"\x00\x00\x00\x00" + data[off + 4:]
        return out, InjectionReport(
            kind, self.seed,
            f"cpu section {section} magic stomped at byte {off}")
