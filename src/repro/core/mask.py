"""The 64-bit trace mask.

One bit per major class; the logging fast path does a single AND of the
(constant) major bit against this word to decide whether to log.  The
paper stresses that the mask stays cache-hot and the check costs four
machine instructions, which is what lets the tracing statements stay
compiled into the system permanently (§2, goal 4-6).
"""

from __future__ import annotations

from typing import Iterable

from repro.core.constants import NUM_MAJORS


class TraceMask:
    """Mutable 64-bit enable mask over the major trace classes.

    The mask is read far more often than written; reads are a plain
    attribute access plus one AND, mirroring the hot-word property the
    paper relies on.  Writes are not synchronized: like K42, a racing
    reader sees either the old or the new mask, both of which are safe.
    """

    __slots__ = ("value",)

    def __init__(self, value: int = 0) -> None:
        self.value = value & ((1 << NUM_MAJORS) - 1)

    # -- queries ---------------------------------------------------------
    def enabled(self, major: int) -> bool:
        """The single-comparison fast-path check."""
        return bool(self.value & (1 << major))

    def enabled_majors(self) -> list[int]:
        return [m for m in range(NUM_MAJORS) if self.value & (1 << m)]

    # -- updates ---------------------------------------------------------
    def enable(self, *majors: int) -> None:
        for major in majors:
            self._check(major)
            self.value |= 1 << major

    def disable(self, *majors: int) -> None:
        for major in majors:
            self._check(major)
            self.value &= ~(1 << major)

    def enable_all(self) -> None:
        self.value = (1 << NUM_MAJORS) - 1

    def disable_all(self) -> None:
        self.value = 0

    def set_exactly(self, majors: Iterable[int]) -> None:
        value = 0
        for major in majors:
            self._check(major)
            value |= 1 << major
        self.value = value

    @staticmethod
    def _check(major: int) -> None:
        if not 0 <= major < NUM_MAJORS:
            raise ValueError(f"major ID {major} out of range 0..{NUM_MAJORS - 1}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TraceMask({self.value:#018x})"
