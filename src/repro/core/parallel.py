"""Parallel boundary-sharded trace decoding.

The paper forbids events from crossing buffer (alignment) boundaries
precisely so that a reader can seek to *any* boundary and start parsing
(§3.2).  That guarantee makes decoding embarrassingly parallel: every
buffer is independently scannable, so a trace can be cut at boundaries
into shards and fanned out over a pool of worker processes.

Pipeline
--------

1. **Shard** (:func:`shard_records`): records are grouped per CPU,
   ordered by sequence number, and split into contiguous runs.  Cuts
   land only on buffer boundaries — the only places the format promises
   a parseable state.
2. **Scan** (worker processes): each worker receives raw word arrays
   (``bytes`` of the little-endian words — never pickled event
   objects), runs the vectorized :func:`~repro.core.stream.scan_buffer`
   walk, and reconstructs full timestamps with
   :func:`~repro.core.stream.unwrap_times`.  The result shipped back
   per buffer is tiny: the accepted event offsets, the full times, and
   the garble verdict — every other event attribute is a pure function
   of the words, which the parent already holds.
3. **Stitch + materialize** (parent): per-CPU shard results are
   stitched back in sequence order through the same
   :meth:`~repro.core.stream.TraceReader.assemble_scan` pipeline the
   sequential batched reader uses.  A shard whose head buffers lack a
   timestamp anchor could not be timestamped by its worker (the anchor
   state lives in the *previous* shard); ``assemble_scan`` replays
   exactly the sequential fallback for those buffers with the carried
   state, so the output — events, times, anomalies, ordering — is
   bit-identical to sequential decode.  Garble detection and
   committed-count checks behave identically per shard because they
   are per-buffer properties.

The merged :class:`~repro.core.stream.Trace` then merges per-CPU
streams into one time-ordered stream lazily via ``Trace.all_events``
(a ``heapq``-based k-way merge), same as the sequential path.

Worker processes are a real cost on small traces; ``workers<=1`` (or a
trace with fewer buffers than workers) falls back to the in-process
batched reader.  The pool uses the ``fork`` start method so workers see
the parent's records copy-on-write; on spawn-only platforms
(macOS/Windows) decoding falls back to the sequential batched reader
with a warning.  If a process pool cannot be created at all (restricted
environments), decoding degrades gracefully to in-process shard scans.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.buffers import BufferRecord
from repro.core.registry import EventRegistry
from repro.core.stream import (
    BufferScan,
    Trace,
    TraceReader,
    buffer_columns,
    find_anchors,
    scan_buffer,
    unwrap_times,
)

#: One buffer handed to a worker: (seq, payload, fill_words).  The
#: payload is the raw little-endian words as ``bytes`` — or, with the
#: ``fork`` start method, an int index into :data:`_FORK_RECORDS`, which
#: the worker inherits copy-on-write instead of over a pipe.
_ShardEntry = Tuple[int, Union[bytes, int], int]
#: One worker task: (cpu, entries, recover-after-garble flag).
_ShardTask = Tuple[int, List[_ShardEntry], bool]
#: One scanned buffer coming back:
#: (seq, offsets, times-or-None, anchored, garbles, resumes).
_ScanResult = Tuple[
    int, List[int], Optional[List[int]], bool,
    List[Tuple[int, str]], List[Optional[int]],
]

#: Records staged for fork-inherited workers.  Set by the parent
#: immediately before the pool forks; workers never mutate it.
_FORK_RECORDS: List[BufferRecord] = []


def shard_records(
    records: Sequence[BufferRecord], nshards: int
) -> List[Tuple[int, List[BufferRecord]]]:
    """Cut records into at most ``nshards`` contiguous per-CPU runs.

    Buffers are fixed-size, so splitting by buffer count splits by words;
    each CPU gets a share of the shard budget proportional to its record
    count (at least one).  Shards are returned in (cpu, sequence) order,
    which is the order the sequential reader visits buffers — the parent
    stitches shard results back together in this same order.
    """
    by_cpu: Dict[int, List[BufferRecord]] = {}
    for rec in records:
        by_cpu.setdefault(rec.cpu, []).append(rec)
    for recs in by_cpu.values():
        recs.sort(key=lambda r: r.seq)
    total = sum(len(v) for v in by_cpu.values())
    shards: List[Tuple[int, List[BufferRecord]]] = []
    for cpu in sorted(by_cpu):
        recs = by_cpu[cpu]
        k = max(1, round(nshards * len(recs) / total)) if total else 1
        k = min(k, len(recs))
        base, extra = divmod(len(recs), k)
        i = 0
        for j in range(k):
            n = base + (1 if j < extra else 0)
            shards.append((cpu, recs[i : i + n]))
            i += n
    return shards


def _scan_shard(task: _ShardTask) -> Tuple[int, List[_ScanResult]]:
    """Worker: scan one shard of raw buffers into offsets + times.

    Timestamp state (the previous buffer's last full time) is carried
    *within* the shard only; a head buffer with no anchor is returned
    with ``times=None`` for the parent to stitch against the previous
    shard's tail — the §3.1 unwrapping fallback cannot cross a process
    boundary, but it can be replayed after the fact.
    """
    cpu, entries, recover = task
    out: List[_ScanResult] = []
    last_full: Optional[int] = None
    last_ts32: Optional[int] = None
    for seq, raw, fill_words in entries:
        if isinstance(raw, int):
            words = _FORK_RECORDS[raw].words
        else:
            words = np.frombuffer(raw, dtype="<u8")
        scan = scan_buffer(words, fill_words, recover=recover)
        anchors = find_anchors(scan)
        ts32 = scan.event_ts32()
        times = unwrap_times(ts32, None, None, last_full, last_ts32,
                             anchors=anchors)
        if times:
            last_full, last_ts32 = times[-1], ts32[-1]
        out.append((seq, scan.offsets, times, bool(anchors),
                    scan.garbles, scan.resumes))
    return cpu, out


def _fork_available() -> bool:
    """Whether the ``fork`` start method (and its COW inheritance) works."""
    try:
        import multiprocessing

        return "fork" in multiprocessing.get_all_start_methods()
    except ImportError:  # pragma: no cover
        return False


def _run_tasks(
    tasks: List[_ShardTask], workers: int
) -> List[Tuple[int, List[_ScanResult]]]:
    """Scan shards on a process pool, in-process if no pool is possible."""
    try:
        import multiprocessing

        ctx = None
        if "fork" in multiprocessing.get_all_start_methods():
            ctx = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(
            max_workers=min(workers, len(tasks)), mp_context=ctx
        ) as pool:
            return list(pool.map(_scan_shard, tasks))
    except (OSError, PermissionError, ImportError) as exc:  # pragma: no cover
        warnings.warn(
            f"process pool unavailable ({exc}); scanning shards in-process",
            RuntimeWarning,
            stacklevel=3,
        )
        return [_scan_shard(t) for t in tasks]


def _sharded_scan(
    records: List[BufferRecord],
    workers: int,
    strict: bool,
    shards_per_worker: int,
) -> Tuple[
    List[Tuple[int, List[BufferRecord]]],
    List[Tuple[int, List[_ScanResult]]],
]:
    """Shard ``records`` and scan the shards on a worker pool.

    The shared fan-out stage of both parallel decoders (event-object and
    columnar): shards are built in (cpu, seq) order, records are staged
    for copy-on-write fork inheritance, and the per-buffer scan results
    come back aligned with the shard list for stitching.
    """
    shards = shard_records(records, workers * shards_per_worker)
    # Children of fork() see the parent's records copy-on-write;
    # ship an index instead of pushing megabytes through a pipe.
    _FORK_RECORDS.clear()
    _FORK_RECORDS.extend(records)
    index = {id(rec): i for i, rec in enumerate(records)}

    tasks: List[_ShardTask] = [
        (cpu, [(rec.seq, index[id(rec)], rec.fill_words) for rec in recs],
         not strict)
        for cpu, recs in shards
    ]
    try:
        results = _run_tasks(tasks, workers)
    finally:
        _FORK_RECORDS.clear()
    return shards, results


def decode_records_parallel(
    records: Iterable[BufferRecord],
    registry: Optional[EventRegistry] = None,
    include_fillers: bool = False,
    check_committed: bool = True,
    workers: Optional[int] = None,
    shards_per_worker: int = 2,
    strict: bool = False,
) -> Trace:
    """Decode buffer records on ``workers`` processes; bit-identical to
    ``TraceReader(...).decode_records(records)``.

    ``workers=None`` uses ``os.cpu_count()``; ``workers<=1`` (or a trace
    too small to be worth sharding) decodes in-process on the batched
    fast path.  ``shards_per_worker`` oversubscribes the pool slightly
    so an unlucky shard full of dense buffers cannot straggle the run.
    ``strict`` selects stop-at-first-garble decoding exactly as on
    :class:`~repro.core.stream.TraceReader`.
    """
    records = list(records)
    if workers is None:
        workers = os.cpu_count() or 1
    reader = TraceReader(
        registry=registry,
        include_fillers=include_fillers,
        check_committed=check_committed,
        strict=strict,
    )
    if workers <= 1 or len(records) <= workers:
        return reader.decode_records(records)
    if not _fork_available():
        # Spawn-only platform (macOS/Windows): the copy-on-write record
        # sharing the pool depends on does not exist, and a spawned
        # child re-imports the world per worker — costlier than the
        # decode itself for typical traces.  Degrade to the sequential
        # batched reader, loudly.
        warnings.warn(
            "the 'fork' start method is unavailable on this platform; "
            "decoding sequentially instead of on a worker pool",
            RuntimeWarning,
            stacklevel=2,
        )
        return reader.decode_records(records)

    shards, results = _sharded_scan(records, workers, strict,
                                    shards_per_worker)

    # Stitch: walk shards per CPU in sequence order, exactly the order
    # (and with exactly the state) the sequential reader would have —
    # shard_records yields shards in (cpu, seq) order, so events and
    # anomalies are appended in the sequential reader's visit order.
    trace = Trace()
    state: Dict[int, Tuple[Optional[int], Optional[int]]] = {}
    for (cpu, recs), (res_cpu, scans) in zip(shards, results):
        assert cpu == res_cpu
        events_out = trace.events_by_cpu.setdefault(cpu, [])
        last_full, last_ts32 = state.get(cpu, (None, None))
        for rec, (seq, offsets, times, anchored, garbles, resumes) in zip(
                recs, scans):
            assert rec.seq == seq
            scan = BufferScan(
                buffer_columns(rec.words, rec.fill_words), offsets,
                garbles, resumes,
            )
            events, last_full, last_ts32 = reader.assemble_scan(
                rec, scan, trace.anomalies, last_full, last_ts32,
                times=times, anchored=anchored,
            )
            events_out.extend(events)
        state[cpu] = (last_full, last_ts32)
    return trace


class ParallelTraceReader:
    """Drop-in parallel counterpart of :class:`~repro.core.stream.TraceReader`.

    Same constructor surface plus ``workers``; ``decode_records`` output
    is guaranteed event-for-event identical to the sequential reader,
    including anomaly reports for garbled buffers and committed-count
    mismatches.
    """

    def __init__(
        self,
        registry: Optional[EventRegistry] = None,
        include_fillers: bool = False,
        check_committed: bool = True,
        workers: Optional[int] = None,
        shards_per_worker: int = 2,
        strict: bool = False,
    ) -> None:
        self.registry = registry
        self.include_fillers = include_fillers
        self.check_committed = check_committed
        self.workers = workers
        self.shards_per_worker = shards_per_worker
        self.strict = strict

    def decode_records(self, records: Iterable[BufferRecord]) -> Trace:
        return decode_records_parallel(
            records,
            registry=self.registry,
            include_fillers=self.include_fillers,
            check_committed=self.check_committed,
            workers=self.workers,
            shards_per_worker=self.shards_per_worker,
            strict=self.strict,
        )

    def decode_file(self, path) -> Trace:
        """Load a ``.k42`` trace file and decode it in parallel."""
        from repro.core.writer import load_records

        return self.decode_records(load_records(path))


def decode_records_columnar_parallel(
    records: Iterable[BufferRecord],
    registry: Optional[EventRegistry] = None,
    include_fillers: bool = False,
    check_committed: bool = True,
    workers: Optional[int] = None,
    shards_per_worker: int = 2,
    strict: bool = False,
):
    """Parallel decode straight into columns: the shard scans fan out
    exactly as :func:`decode_records_parallel`, but the parent folds the
    returned offsets/times into a
    :class:`~repro.core.columnar.ColumnarTrace` — per-CPU shard columns
    concatenate without ever materializing ``TraceEvent`` objects.

    Output is column-for-column identical to
    ``ColumnarTraceReader(...).decode_records(records)`` (and therefore
    bit-identical to the sequential scalar reader once materialized).
    """
    from repro.core.columnar import ColumnarAssembler, ColumnarTraceReader

    records = list(records)
    if workers is None:
        workers = os.cpu_count() or 1
    sequential = ColumnarTraceReader(
        registry=registry,
        include_fillers=include_fillers,
        check_committed=check_committed,
        strict=strict,
    )
    if workers <= 1 or len(records) <= workers:
        return sequential.decode_records(records)
    if not _fork_available():
        warnings.warn(
            "the 'fork' start method is unavailable on this platform; "
            "decoding sequentially instead of on a worker pool",
            RuntimeWarning,
            stacklevel=2,
        )
        return sequential.decode_records(records)

    shards, results = _sharded_scan(records, workers, strict,
                                    shards_per_worker)

    asm = ColumnarAssembler(
        registry=registry,
        include_fillers=include_fillers,
        check_committed=check_committed,
    )
    for (cpu, recs), (res_cpu, scans) in zip(shards, results):
        assert cpu == res_cpu
        for rec, (seq, offsets, times, anchored, garbles, resumes) in zip(
                recs, scans):
            assert rec.seq == seq
            scan = BufferScan(
                buffer_columns(rec.words, rec.fill_words), offsets,
                garbles, resumes,
            )
            asm.add_buffer(rec, scan, times=times, anchored=anchored)
    return asm.finish()
