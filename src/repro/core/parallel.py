"""Parallel boundary-sharded trace decoding.

The paper forbids events from crossing buffer (alignment) boundaries
precisely so that a reader can seek to *any* boundary and start parsing
(§3.2).  That guarantee makes decoding embarrassingly parallel: every
buffer is independently scannable, so a trace can be cut at boundaries
into shards and fanned out over a pool of worker processes.

Pipeline
--------

1. **Shard** (:func:`shard_records`): records are grouped per CPU,
   ordered by sequence number, and split into contiguous runs.  Cuts
   land only on buffer boundaries — the only places the format promises
   a parseable state.
2. **Scan** (worker processes): each worker receives raw word arrays
   (``bytes`` of the little-endian words — never pickled event
   objects), runs the vectorized :func:`~repro.core.stream.scan_buffer`
   walk, and reconstructs full timestamps with
   :func:`~repro.core.stream.unwrap_times`.  The result shipped back
   per buffer is tiny: the accepted event offsets, the full times, and
   the garble verdict — every other event attribute is a pure function
   of the words, which the parent already holds.
3. **Stitch + materialize** (parent): per-CPU shard results are
   stitched back in sequence order through the same
   :meth:`~repro.core.stream.TraceReader.assemble_scan` pipeline the
   sequential batched reader uses.  A shard whose head buffers lack a
   timestamp anchor could not be timestamped by its worker (the anchor
   state lives in the *previous* shard); ``assemble_scan`` replays
   exactly the sequential fallback for those buffers with the carried
   state, so the output — events, times, anomalies, ordering — is
   bit-identical to sequential decode.  Garble detection and
   committed-count checks behave identically per shard because they
   are per-buffer properties.

The merged :class:`~repro.core.stream.Trace` then merges per-CPU
streams into one time-ordered stream lazily via ``Trace.all_events``
(a ``heapq``-based k-way merge), same as the sequential path.

Worker processes are a real cost on small traces; ``workers<=1`` (or a
trace with fewer buffers than workers) falls back to the in-process
batched reader.  Shard scans run on the shared persistent pool
(:mod:`repro.core.pool` — fork-preferred, spawn where fork is
unavailable), so repeated decodes pay pool startup once.  Payloads of
records loaded from an mmap'd trace file never cross the pipe at all:
the worker receives a ``(path, byte_offset, nwords)`` descriptor and
maps the same file itself — both sides then share the page cache.
In-memory records ship as raw little-endian bytes.  If a process pool
cannot be created at all (restricted environments), decoding degrades
gracefully to in-process shard scans.
"""

from __future__ import annotations

import mmap
import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core import pool
from repro.core.buffers import BufferRecord
from repro.core.registry import EventRegistry
from repro.core.stream import (
    BufferScan,
    Trace,
    TraceReader,
    buffer_columns,
    find_anchors,
    scan_buffer,
    unwrap_times,
)

#: A worker-side pointer into an mmap-able trace file:
#: (path, payload_byte_offset, nwords).
_FileRef = Tuple[str, int, int]
#: One buffer handed to a worker: (seq, payload, fill_words).  The
#: payload is either the raw little-endian words as ``bytes`` or a
#: :data:`_FileRef` descriptor the worker resolves against its own
#: read-only mapping of the same trace file (zero bytes over the pipe).
_ShardEntry = Tuple[int, Union[bytes, _FileRef], int]
#: One worker task: (cpu, entries, recover-after-garble flag).
_ShardTask = Tuple[int, List[_ShardEntry], bool]
#: One scanned buffer coming back:
#: (seq, offsets, times-or-None, anchored, garbles, resumes).
_ScanResult = Tuple[
    int, List[int], Optional[List[int]], bool,
    List[Tuple[int, str]], List[Optional[int]],
]

#: Per-worker cache of mapped trace files (path -> mmap).  Bounded;
#: evicted entries are dropped without ``close()`` so any outstanding
#: views stay valid — the mapping dies with its last reference.
_WORKER_MAPS: Dict[str, mmap.mmap] = {}
_WORKER_MAPS_MAX = 8


def _mapped_words(path: str, offset: int, nwords: int) -> np.ndarray:
    """Resolve a :data:`_FileRef` against this worker's own mapping."""
    mm = _WORKER_MAPS.get(path)
    if mm is None:
        while len(_WORKER_MAPS) >= _WORKER_MAPS_MAX:
            _WORKER_MAPS.pop(next(iter(_WORKER_MAPS)))
        with open(path, "rb") as fh:
            mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        _WORKER_MAPS[path] = mm
    return np.frombuffer(mm, dtype="<u8", count=nwords, offset=offset)


def shard_records(
    records: Sequence[BufferRecord], nshards: int
) -> List[Tuple[int, List[BufferRecord]]]:
    """Cut records into at most ``nshards`` contiguous per-CPU runs.

    Buffers are fixed-size, so splitting by buffer count splits by words;
    each CPU gets a share of the shard budget proportional to its record
    count (at least one).  Shards are returned in (cpu, sequence) order,
    which is the order the sequential reader visits buffers — the parent
    stitches shard results back together in this same order.
    """
    by_cpu: Dict[int, List[BufferRecord]] = {}
    for rec in records:
        by_cpu.setdefault(rec.cpu, []).append(rec)
    for recs in by_cpu.values():
        recs.sort(key=lambda r: r.seq)
    total = sum(len(v) for v in by_cpu.values())
    shards: List[Tuple[int, List[BufferRecord]]] = []
    for cpu in sorted(by_cpu):
        recs = by_cpu[cpu]
        k = max(1, round(nshards * len(recs) / total)) if total else 1
        k = min(k, len(recs))
        base, extra = divmod(len(recs), k)
        i = 0
        for j in range(k):
            n = base + (1 if j < extra else 0)
            shards.append((cpu, recs[i : i + n]))
            i += n
    return shards


def _scan_shard(task: _ShardTask) -> Tuple[int, List[_ScanResult]]:
    """Worker: scan one shard of raw buffers into offsets + times.

    Timestamp state (the previous buffer's last full time) is carried
    *within* the shard only; a head buffer with no anchor is returned
    with ``times=None`` for the parent to stitch against the previous
    shard's tail — the §3.1 unwrapping fallback cannot cross a process
    boundary, but it can be replayed after the fact.
    """
    cpu, entries, recover = task
    out: List[_ScanResult] = []
    last_full: Optional[int] = None
    last_ts32: Optional[int] = None
    for seq, raw, fill_words in entries:
        if isinstance(raw, bytes):
            words = np.frombuffer(raw, dtype="<u8")
        else:
            words = _mapped_words(*raw)
        scan = scan_buffer(words, fill_words, recover=recover)
        anchors = find_anchors(scan)
        ts32 = scan.event_ts32()
        times = unwrap_times(ts32, None, None, last_full, last_ts32,
                             anchors=anchors)
        if times:
            last_full, last_ts32 = times[-1], ts32[-1]
        out.append((seq, scan.offsets, times, bool(anchors),
                    scan.garbles, scan.resumes))
    return cpu, out


def _run_tasks(
    tasks: List[_ShardTask], workers: int
) -> List[Tuple[int, List[_ScanResult]]]:
    """Scan shards on the shared pool, in-process if no pool is possible."""
    if not tasks:
        return []
    return pool.run_tasks(_scan_shard, tasks, workers)


def _sharded_scan(
    records: List[BufferRecord],
    workers: int,
    strict: bool,
    shards_per_worker: int,
) -> Tuple[
    List[Tuple[int, List[BufferRecord]]],
    List[Tuple[int, List[_ScanResult]]],
]:
    """Shard ``records`` and scan the shards on the worker pool.

    The shared fan-out stage of both parallel decoders (event-object and
    columnar): shards are built in (cpu, seq) order and the per-buffer
    scan results come back aligned with the shard list for stitching.
    Records loaded from an mmap'd trace file travel as ``(path, offset,
    nwords)`` descriptors — validated against the file's current
    size/mtime so a rewritten file degrades to byte shipping instead of
    silently decoding different data.
    """
    shards = shard_records(records, workers * shards_per_worker)

    ref_ok: Dict[str, bool] = {}

    def _entry(rec: BufferRecord) -> _ShardEntry:
        ref = rec._file_ref
        if ref is not None:
            path, off, size, mtime_ns = ref
            ok = ref_ok.get(path)
            if ok is None:
                try:
                    st = os.stat(path)
                    ok = (st.st_size == size
                          and st.st_mtime_ns == mtime_ns)
                except OSError:
                    ok = False
                ref_ok[path] = ok
            if ok:
                return (rec.seq, (path, off, len(rec.words)),
                        rec.fill_words)
        return (rec.seq, np.asarray(rec.words, dtype="<u8").tobytes(),
                rec.fill_words)

    tasks: List[_ShardTask] = [
        (cpu, [_entry(rec) for rec in recs], not strict)
        for cpu, recs in shards
    ]
    return shards, _run_tasks(tasks, workers)


def decode_records_parallel(
    records: Iterable[BufferRecord],
    registry: Optional[EventRegistry] = None,
    include_fillers: bool = False,
    check_committed: bool = True,
    workers: Optional[int] = None,
    shards_per_worker: int = 2,
    strict: bool = False,
) -> Trace:
    """Decode buffer records on ``workers`` processes; bit-identical to
    ``TraceReader(...).decode_records(records)``.

    ``workers=None`` uses ``os.cpu_count()``; ``workers<=1`` (or a trace
    too small to be worth sharding) decodes in-process on the batched
    fast path.  ``shards_per_worker`` oversubscribes the pool slightly
    so an unlucky shard full of dense buffers cannot straggle the run.
    ``strict`` selects stop-at-first-garble decoding exactly as on
    :class:`~repro.core.stream.TraceReader`.
    """
    records = list(records)
    if workers is None:
        workers = pool.pool_workers()
    reader = TraceReader(
        registry=registry,
        include_fillers=include_fillers,
        check_committed=check_committed,
        strict=strict,
    )
    if workers <= 1 or len(records) <= workers:
        return reader.decode_records(records)

    shards, results = _sharded_scan(records, workers, strict,
                                    shards_per_worker)

    # Stitch: walk shards per CPU in sequence order, exactly the order
    # (and with exactly the state) the sequential reader would have —
    # shard_records yields shards in (cpu, seq) order, so events and
    # anomalies are appended in the sequential reader's visit order.
    trace = Trace()
    state: Dict[int, Tuple[Optional[int], Optional[int]]] = {}
    for (cpu, recs), (res_cpu, scans) in zip(shards, results):
        assert cpu == res_cpu
        events_out = trace.events_by_cpu.setdefault(cpu, [])
        last_full, last_ts32 = state.get(cpu, (None, None))
        for rec, (seq, offsets, times, anchored, garbles, resumes) in zip(
                recs, scans):
            assert rec.seq == seq
            scan = BufferScan(
                buffer_columns(rec.words, rec.fill_words), offsets,
                garbles, resumes,
            )
            events, last_full, last_ts32 = reader.assemble_scan(
                rec, scan, trace.anomalies, last_full, last_ts32,
                times=times, anchored=anchored,
            )
            events_out.extend(events)
        state[cpu] = (last_full, last_ts32)
    return trace


class ParallelTraceReader:
    """Drop-in parallel counterpart of :class:`~repro.core.stream.TraceReader`.

    Same constructor surface plus ``workers``; ``decode_records`` output
    is guaranteed event-for-event identical to the sequential reader,
    including anomaly reports for garbled buffers and committed-count
    mismatches.
    """

    def __init__(
        self,
        registry: Optional[EventRegistry] = None,
        include_fillers: bool = False,
        check_committed: bool = True,
        workers: Optional[int] = None,
        shards_per_worker: int = 2,
        strict: bool = False,
    ) -> None:
        self.registry = registry
        self.include_fillers = include_fillers
        self.check_committed = check_committed
        self.workers = workers
        self.shards_per_worker = shards_per_worker
        self.strict = strict

    def decode_records(self, records: Iterable[BufferRecord]) -> Trace:
        return decode_records_parallel(
            records,
            registry=self.registry,
            include_fillers=self.include_fillers,
            check_committed=self.check_committed,
            workers=self.workers,
            shards_per_worker=self.shards_per_worker,
            strict=self.strict,
        )

    def decode_file(self, path) -> Trace:
        """Load a ``.k42`` trace file and decode it in parallel."""
        from repro.core.writer import load_records

        return self.decode_records(load_records(path))


def decode_records_columnar_parallel(
    records: Iterable[BufferRecord],
    registry: Optional[EventRegistry] = None,
    include_fillers: bool = False,
    check_committed: bool = True,
    workers: Optional[int] = None,
    shards_per_worker: int = 2,
    strict: bool = False,
):
    """Parallel decode straight into columns: the shard scans fan out
    exactly as :func:`decode_records_parallel`, but the parent folds the
    returned offsets/times into a
    :class:`~repro.core.columnar.ColumnarTrace` — per-CPU shard columns
    concatenate without ever materializing ``TraceEvent`` objects.

    Output is column-for-column identical to
    ``ColumnarTraceReader(...).decode_records(records)`` (and therefore
    bit-identical to the sequential scalar reader once materialized).
    """
    from repro.core.columnar import ColumnarAssembler, ColumnarTraceReader

    records = list(records)
    if workers is None:
        workers = pool.pool_workers()
    sequential = ColumnarTraceReader(
        registry=registry,
        include_fillers=include_fillers,
        check_committed=check_committed,
        strict=strict,
    )
    if workers <= 1 or len(records) <= workers:
        return sequential.decode_records(records)

    shards, results = _sharded_scan(records, workers, strict,
                                    shards_per_worker)

    asm = ColumnarAssembler(
        registry=registry,
        include_fillers=include_fillers,
        check_committed=check_committed,
    )
    for (cpu, recs), (res_cpu, scans) in zip(shards, results):
        assert cpu == res_cpu
        for rec, (seq, offsets, times, anchored, garbles, resumes) in zip(
                recs, scans):
            assert rec.seq == seq
            scan = BufferScan(
                buffer_columns(rec.words, rec.fill_words), offsets,
                garbles, resumes,
            )
            asm.add_buffer(rec, scan, times=times, anchored=anchored)
    return asm.finish()
