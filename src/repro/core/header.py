"""Pack and unpack the 64-bit trace-event header word."""

from __future__ import annotations

from typing import NamedTuple

from repro.core.constants import (
    LENGTH_MASK,
    LENGTH_SHIFT,
    MAJOR_MASK,
    MAJOR_SHIFT,
    MINOR_MASK,
    MINOR_SHIFT,
    TIMESTAMP_MASK,
    TIMESTAMP_SHIFT,
)


class Header(NamedTuple):
    """Decoded trace-event header.

    ``timestamp`` is the truncated 32-bit timestamp stored in the event;
    ``length`` is the total event length in 64-bit words including the
    header word; ``minor`` is the 16 bits of major-class-defined data.
    """

    timestamp: int
    length: int
    major: int
    minor: int


def pack_header(timestamp: int, length: int, major: int, minor: int) -> int:
    """Build the header word.  Values must already fit their fields."""
    if not 0 <= length <= LENGTH_MASK:
        raise ValueError(f"length {length} does not fit in 10 bits")
    if not 0 <= major <= MAJOR_MASK:
        raise ValueError(f"major ID {major} does not fit in 6 bits")
    if not 0 <= minor <= MINOR_MASK:
        raise ValueError(f"minor data {minor:#x} does not fit in 16 bits")
    return (
        ((timestamp & TIMESTAMP_MASK) << TIMESTAMP_SHIFT)
        | (length << LENGTH_SHIFT)
        | (major << MAJOR_SHIFT)
        | (minor << MINOR_SHIFT)
    )


def unpack_header(word: int) -> Header:
    """Decode a header word (no validity judgement — see is_plausible)."""
    return Header(
        timestamp=(word >> TIMESTAMP_SHIFT) & TIMESTAMP_MASK,
        length=(word >> LENGTH_SHIFT) & LENGTH_MASK,
        major=(word >> MAJOR_SHIFT) & MAJOR_MASK,
        minor=(word >> MINOR_SHIFT) & MINOR_MASK,
    )
