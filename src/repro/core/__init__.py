"""The paper's primary contribution: the unified lockless tracing
infrastructure (events, mask, per-CPU buffers, lockless logger, stream
reader, serialization, unified facility)."""

from repro.core.buffers import BufferRecord, TraceControl
from repro.core.columnar import (
    ColumnarTrace,
    ColumnarTraceReader,
    EventBatch,
    as_batch,
    decode_records_columnar,
)
from repro.core.constants import (
    DEFAULT_BUFFER_WORDS,
    DEFAULT_NUM_BUFFERS,
    MAX_DATA_WORDS,
    MAX_EVENT_WORDS,
    NUM_MAJORS,
)
from repro.core.facility import TraceFacility
from repro.core.header import Header, pack_header, unpack_header
from repro.core.locking_logger import LockingTraceLogger
from repro.core.logger import EventTooLargeError, NullTraceLogger, TraceLogger
from repro.core.majors import (
    AppMinor,
    ControlMinor,
    ExcMinor,
    HwPerfMinor,
    IOMinor,
    LockMinor,
    Major,
    MemMinor,
    PcSampleMinor,
    ProcMinor,
    SyscallMinor,
    UserMinor,
)
from repro.core.mask import TraceMask
from repro.core.packing import (
    LayoutPlan,
    compile_layout,
    pack_values,
    parse_layout,
    unpack_values,
)
from repro.core.parallel import (
    ParallelTraceReader,
    decode_records_columnar_parallel,
    decode_records_parallel,
    shard_records,
)
from repro.core.registry import EventRegistry, EventSpec, default_registry
from repro.core.stream import (
    Anomaly,
    Trace,
    TraceEvent,
    TraceReader,
    decode_from_offset,
    flat_records,
    sdelta32,
    seek_boundary,
)
from repro.core.timestamps import (
    ClockSource,
    DriftingTscClock,
    ExpensiveWallClock,
    ManualClock,
    WallClock,
)
from repro.core.writer import (
    TraceFileReader,
    TraceFileWriter,
    load_records,
    save_records,
)

__all__ = [
    "BufferRecord", "TraceControl", "TraceFacility",
    "DEFAULT_BUFFER_WORDS", "DEFAULT_NUM_BUFFERS",
    "MAX_DATA_WORDS", "MAX_EVENT_WORDS", "NUM_MAJORS",
    "Header", "pack_header", "unpack_header",
    "LockingTraceLogger", "TraceLogger", "NullTraceLogger",
    "EventTooLargeError",
    "Major", "ControlMinor", "MemMinor", "ProcMinor", "ExcMinor", "IOMinor",
    "LockMinor", "UserMinor", "SyscallMinor", "HwPerfMinor", "PcSampleMinor",
    "AppMinor",
    "TraceMask",
    "pack_values", "unpack_values", "parse_layout",
    "LayoutPlan", "compile_layout",
    "EventRegistry", "EventSpec", "default_registry",
    "Anomaly", "Trace", "TraceEvent", "TraceReader",
    "EventBatch", "ColumnarTrace", "ColumnarTraceReader",
    "decode_records_columnar", "as_batch",
    "ParallelTraceReader", "decode_records_parallel",
    "decode_records_columnar_parallel", "shard_records",
    "decode_from_offset", "flat_records", "sdelta32", "seek_boundary",
    "ClockSource", "WallClock", "ExpensiveWallClock", "ManualClock",
    "DriftingTscClock",
    "TraceFileReader", "TraceFileWriter", "load_records", "save_records",
]
