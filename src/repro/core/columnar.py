"""Columnar trace analytics: structure-of-arrays event batches.

The analysis side of the paper (§4: listing, kmon, PC-sample profiling,
lock statistics) has to chew through traces from many processors
quickly.  PR 1 vectorized the *header scan*; this module vectorizes the
*analysis*: instead of materializing one Python
:class:`~repro.core.stream.TraceEvent` per event and walking them in
``if e.major != ...`` loops, a decoded trace is held as a
structure-of-arrays :class:`EventBatch` — one numpy column per header
field (timestamp, major, minor, length, CPU, word offset) plus the raw
buffer words — and tools select events with boolean masks and gather
payload words with fancy indexing.

Payload decoding is lazy and per-(major, minor) group: the layout
string of each registered event compiles (once, memoized) to a
:class:`~repro.core.packing.LayoutPlan` of static ``(word, shift,
width)`` positions, so a fixed-layout group like ``"64 64"`` decodes
with one gather and shift/mask per field instead of N
:func:`~repro.core.packing.unpack_values` calls.

Equivalence contract: the columnar path is bit-identical to the scalar
reference reader on clean *and* corrupted input.  Scan decisions
(accept/garble/resync) are shared — the assembler consumes the very
:class:`~repro.core.stream.BufferScan` objects the batched reader
produces — and garble/committed/anchor verdicts surface in the same
order as per-batch anomaly columns.  ``ColumnarTrace`` also offers the
full ``Trace`` reading surface (``all_events``, ``events_by_cpu``,
``filter``) by materializing lazily, so unported consumers keep
working unchanged.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import (
    Deque, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union,
)

import numpy as np

from repro.core.buffers import BufferRecord
from repro.core.constants import (
    LENGTH_MASK,
    LENGTH_SHIFT,
    MAJOR_MASK,
    MAJOR_SHIFT,
    MINOR_MASK,
    TIMESTAMP_SHIFT,
)
from repro.core.majors import ControlMinor, Major
from repro.core.registry import EventRegistry, EventSpec
from repro.core.stream import (
    Anomaly,
    BufferScan,
    Trace,
    TraceEvent,
    find_anchors,
    scan_buffer,
    unwrap_times,
)

_CTRL = int(Major.CONTROL)
_FILLER = int(ControlMinor.FILLER)
_FILLER_EXT = int(ControlMinor.FILLER_EXT)


def _int_column(values: Sequence[int]) -> np.ndarray:
    """An integer column that survives arbitrarily large values.

    Reconstructed full times are Python ints and — on corrupt anchors —
    can exceed int64.  The common case packs into int64; the pathological
    case falls back to an object column, which every consumer handles
    (comparisons and ``tolist`` behave identically, just slower).
    """
    try:
        return np.array(values, dtype=np.int64)
    except OverflowError:
        return np.array(values, dtype=object)


class EventBatch:
    """A structure-of-arrays view of decoded events.

    Per-event columns (all aligned, length ``len(batch)``):

    ``cpu``, ``seq``, ``offset``
        where the event came from (CPU, buffer sequence, word offset).
    ``ts32``, ``major``, ``minor``, ``length``
        the unpacked header fields (``length`` is the header's total
        word count for scan-built batches).
    ``dlen``
        payload word count, filler-aware (a plain filler has no data).
    ``time``, ``timed``
        reconstructed full timestamp and whether one exists; ``time``
        is 0 where ``timed`` is False.
    ``base``
        index of the event's *header* word in :attr:`words`; payload
        word ``k`` lives at ``words[base + 1 + k]``.

    ``words`` is the shared raw uint64 word pool the payloads are
    gathered from (events reference it, slices share it).

    ``node`` is an optional per-event origin-node column for fleet
    (multi-machine) traces.  ``None`` — the single-node case — means
    "implicitly node 0" and keeps every pre-fleet code path and
    serialized byte untouched; a merged fleet view materializes it.
    """

    __slots__ = (
        "words", "base", "cpu", "seq", "offset", "ts32", "major",
        "minor", "length", "dlen", "time", "timed", "registry",
        "_spec_cache", "_keys", "node",
    )

    def __init__(
        self,
        words: np.ndarray,
        base: np.ndarray,
        cpu: np.ndarray,
        seq: np.ndarray,
        offset: np.ndarray,
        ts32: np.ndarray,
        major: np.ndarray,
        minor: np.ndarray,
        length: np.ndarray,
        dlen: np.ndarray,
        time: np.ndarray,
        timed: np.ndarray,
        registry: Optional[EventRegistry] = None,
        spec_cache: Optional[Dict[int, Optional[EventSpec]]] = None,
        node: Optional[np.ndarray] = None,
    ) -> None:
        self.words = words
        self.base = base
        self.cpu = cpu
        self.seq = seq
        self.offset = offset
        self.ts32 = ts32
        self.major = major
        self.minor = minor
        self.length = length
        self.dlen = dlen
        self.time = time
        self.timed = timed
        self.registry = registry
        self._spec_cache: Dict[int, Optional[EventSpec]] = (
            spec_cache if spec_cache is not None else {}
        )
        self._keys: Optional[np.ndarray] = None
        self.node = node

    # -- construction ---------------------------------------------------
    @classmethod
    def empty(cls, registry: Optional[EventRegistry] = None) -> "EventBatch":
        z = np.zeros(0, dtype=np.int64)
        return cls(np.zeros(0, dtype=np.uint64), z, z, z, z, z, z, z, z, z,
                   z.copy(), np.zeros(0, dtype=bool), registry)

    @classmethod
    def from_events(
        cls,
        events: Sequence[TraceEvent],
        registry: Optional[EventRegistry] = None,
    ) -> "EventBatch":
        """Columnarize already-materialized events (compatibility path).

        Synthesizes a word pool from the events' data; ``base`` points
        one word *before* each payload (there is no header word to point
        at), which keeps the ``words[base + 1 + k]`` payload rule intact.
        ``length`` is synthesized as ``dlen + 1``.
        """
        n = len(events)
        if n == 0:
            return cls.empty(registry)
        dlen = np.fromiter((len(e.data) for e in events), dtype=np.int64,
                           count=n)
        starts = np.zeros(n, dtype=np.int64)
        np.cumsum(dlen[:-1], out=starts[1:])
        total = int(dlen.sum())
        words = np.fromiter(
            (w for e in events for w in e.data), dtype=np.uint64, count=total,
        )
        specs: Dict[int, Optional[EventSpec]] = {}
        for e in events:
            specs.setdefault((e.major << 16) | e.minor, e.spec)
        return cls(
            words=words,
            base=starts - 1,
            cpu=np.fromiter((e.cpu for e in events), dtype=np.int64, count=n),
            seq=np.fromiter((e.seq for e in events), dtype=np.int64, count=n),
            offset=np.fromiter((e.offset for e in events), dtype=np.int64,
                               count=n),
            ts32=np.fromiter((e.ts32 for e in events), dtype=np.int64,
                             count=n),
            major=np.fromiter((e.major for e in events), dtype=np.int64,
                              count=n),
            minor=np.fromiter((e.minor for e in events), dtype=np.int64,
                              count=n),
            length=dlen + 1,
            dlen=dlen,
            time=_int_column([e.time if e.time is not None else 0
                              for e in events]),
            timed=np.fromiter((e.time is not None for e in events),
                              dtype=bool, count=n),
            registry=registry,
            spec_cache=specs,
        )

    @classmethod
    def concat(cls, batches: Sequence["EventBatch"]) -> "EventBatch":
        """Concatenate batches; word pools merge with rebased indices."""
        batches = [b for b in batches]
        if not batches:
            return cls.empty(None)
        if len(batches) == 1:
            return batches[0]
        shift = 0
        bases = []
        for b in batches:
            bases.append(b.base + shift)
            shift += len(b.words)
        if any(b.time.dtype == object for b in batches):
            time = np.concatenate([b.time.astype(object) for b in batches])
        else:
            time = np.concatenate([b.time for b in batches])
        registry = next((b.registry for b in batches
                         if b.registry is not None), None)
        specs: Dict[int, Optional[EventSpec]] = {}
        for b in batches:
            for k, v in b._spec_cache.items():
                specs.setdefault(k, v)
        if any(b.node is not None for b in batches):
            # Node-less inputs are implicitly node 0.
            node: Optional[np.ndarray] = np.concatenate(
                [b.node if b.node is not None
                 else np.zeros(len(b), dtype=np.int64) for b in batches])
        else:
            node = None
        return cls(
            words=np.concatenate([b.words for b in batches]),
            base=np.concatenate(bases),
            cpu=np.concatenate([b.cpu for b in batches]),
            seq=np.concatenate([b.seq for b in batches]),
            offset=np.concatenate([b.offset for b in batches]),
            ts32=np.concatenate([b.ts32 for b in batches]),
            major=np.concatenate([b.major for b in batches]),
            minor=np.concatenate([b.minor for b in batches]),
            length=np.concatenate([b.length for b in batches]),
            dlen=np.concatenate([b.dlen for b in batches]),
            time=time,
            timed=np.concatenate([b.timed for b in batches]),
            registry=registry,
            spec_cache=specs,
            node=node,
        )

    # -- serialization ---------------------------------------------------
    def to_arrays(self) -> Dict[str, np.ndarray]:
        """Serialize to plain fixed-dtype arrays (the store shard codec).

        The shared word pool is compacted to just the payload words each
        row references, with ``base`` rewritten to the
        :meth:`from_events` convention (one word before each payload),
        so a serialized batch carries no header/filler words and no
        inter-row sharing.  Safe because the scanner only accepts events
        that fit their buffer: every row's ``words[base+1 : base+1+dlen]``
        slice is fully in-pool, so the compacted gather reproduces it
        exactly.  Times that overflowed int64 (corrupt anchors) are
        emitted as decimal strings under ``time_big``; everything else
        stays numeric, so the dict round-trips through ``np.savez``
        with ``allow_pickle=False``.
        """
        n = len(self)
        dlen = self.dlen
        starts = np.zeros(n, dtype=np.int64)
        if n:
            np.cumsum(dlen[:-1], out=starts[1:])
        total = int(dlen.sum()) if n else 0
        if total and len(self.words):
            src = (np.repeat(self.base + 1, dlen)
                   + np.arange(total, dtype=np.int64)
                   - np.repeat(starts, dlen))
            np.clip(src, 0, len(self.words) - 1, out=src)
            pool = self.words[src]
        else:
            pool = np.zeros(total, dtype=np.uint64)
        out: Dict[str, np.ndarray] = {
            "words": pool,
            "base": starts - 1,
            "cpu": self.cpu,
            "seq": self.seq,
            "offset": self.offset,
            "ts32": self.ts32,
            "major": self.major,
            "minor": self.minor,
            "length": self.length,
            "dlen": dlen,
            "timed": self.timed,
        }
        if self.time.dtype == object:
            out["time_big"] = np.array(
                [str(t) for t in self.time.tolist()], dtype=np.str_)
        else:
            out["time"] = self.time
        if self.node is not None:
            # Only fleet batches carry the key: single-node serialized
            # bytes stay identical to the pre-fleet format.
            out["node"] = self.node
        return out

    @classmethod
    def from_arrays(
        cls,
        arrays: Mapping[str, np.ndarray],
        registry: Optional[EventRegistry] = None,
    ) -> "EventBatch":
        """Inverse of :meth:`to_arrays` (accepts a loaded npz mapping).

        Bit-identical round trip: ``events()``, payload gathers, masks
        and both orderings match the source batch row for row.
        """
        def col(name: str, dtype: type) -> np.ndarray:
            return np.asarray(arrays[name]).astype(dtype, copy=False)

        if "time_big" in arrays:
            raw = np.asarray(arrays["time_big"])
            if len(raw):
                time = np.array([int(s) for s in raw.tolist()], dtype=object)
            else:
                time = np.zeros(0, dtype=np.int64)
        else:
            time = col("time", np.int64)
        return cls(
            words=col("words", np.uint64),
            base=col("base", np.int64),
            cpu=col("cpu", np.int64),
            seq=col("seq", np.int64),
            offset=col("offset", np.int64),
            ts32=col("ts32", np.int64),
            major=col("major", np.int64),
            minor=col("minor", np.int64),
            length=col("length", np.int64),
            dlen=col("dlen", np.int64),
            time=time,
            timed=col("timed", bool),
            registry=registry,
            node=col("node", np.int64) if "node" in arrays else None,
        )

    # -- shape ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.cpu)

    def select(self, sel: np.ndarray) -> "EventBatch":
        """A new batch of the selected rows (mask or index array).

        The word pool and spec cache are shared, not copied.
        """
        sel = np.asarray(sel)
        if sel.dtype == np.bool_:
            sel = np.flatnonzero(sel)
        return EventBatch(
            words=self.words,
            base=self.base[sel],
            cpu=self.cpu[sel],
            seq=self.seq[sel],
            offset=self.offset[sel],
            ts32=self.ts32[sel],
            major=self.major[sel],
            minor=self.minor[sel],
            length=self.length[sel],
            dlen=self.dlen[sel],
            time=self.time[sel],
            timed=self.timed[sel],
            registry=self.registry,
            spec_cache=self._spec_cache,
            node=self.node[sel] if self.node is not None else None,
        )

    # -- fleet ----------------------------------------------------------
    def node_column(self) -> np.ndarray:
        """Node id per row; a node-less batch is implicitly node 0."""
        if self.node is not None:
            return self.node
        return np.zeros(len(self), dtype=np.int64)

    def with_node(self, node_id: int) -> "EventBatch":
        """This batch tagged as originating from ``node_id``.

        All other columns (and the word pool) are shared, not copied.
        """
        return EventBatch(
            words=self.words,
            base=self.base,
            cpu=self.cpu,
            seq=self.seq,
            offset=self.offset,
            ts32=self.ts32,
            major=self.major,
            minor=self.minor,
            length=self.length,
            dlen=self.dlen,
            time=self.time,
            timed=self.timed,
            registry=self.registry,
            spec_cache=self._spec_cache,
            node=np.full(len(self), int(node_id), dtype=np.int64),
        )

    # -- masks ----------------------------------------------------------
    def keys(self) -> np.ndarray:
        """``(major << 16) | minor`` per event (cached)."""
        if self._keys is None:
            self._keys = (self.major << np.int64(16)) | self.minor
        return self._keys

    def control_mask(self) -> np.ndarray:
        return self.major == _CTRL

    def filler_mask(self) -> np.ndarray:
        return self.control_mask() & (
            (self.minor == _FILLER) | (self.minor == _FILLER_EXT)
        )

    def mask(
        self,
        major: Optional[int] = None,
        minor: Optional[int] = None,
        min_data: Optional[int] = None,
    ) -> np.ndarray:
        """Boolean selection by major/minor/minimum payload length."""
        m = np.ones(len(self), dtype=bool)
        if major is not None:
            m &= self.major == int(major)
        if minor is not None:
            m &= self.minor == int(minor)
        if min_data is not None:
            m &= self.dlen >= int(min_data)
        return m

    def spec_for(self, major: int, minor: int) -> Optional[EventSpec]:
        key = (major << 16) | minor
        if key in self._spec_cache:
            return self._spec_cache[key]
        spec = (self.registry.lookup(major, minor)
                if self.registry is not None else None)
        self._spec_cache[key] = spec
        return spec

    def name_of(self, major: int, minor: int) -> str:
        spec = self.spec_for(major, minor)
        if spec is not None:
            return spec.name
        return f"TRC_UNKNOWN_{major}_{minor}"

    def mask_names(self, names: Iterable[str]) -> np.ndarray:
        """Events whose (self-describing) name is in ``names``.

        Resolved per unique (major, minor) key, not per event: one
        registry probe per distinct event type in the batch.
        """
        wanted = set(names)
        if not wanted or len(self) == 0:
            return np.zeros(len(self), dtype=bool)
        keys = self.keys()
        uniq = np.unique(keys)
        hit = [k for k in uniq.tolist()
               if self.name_of(k >> 16, k & 0xFFFF) in wanted]
        if not hit:
            return np.zeros(len(self), dtype=bool)
        return np.isin(keys, np.array(hit, dtype=np.int64))

    # -- payload access -------------------------------------------------
    def data_column(self, k: int,
                    sel: Optional[np.ndarray] = None) -> np.ndarray:
        """Payload word ``k`` of each (selected) event, as one gather.

        Indices are clipped to the word pool, so a row whose ``dlen``
        is ``<= k`` yields an arbitrary (in-pool) word — callers must
        mask on ``dlen`` before trusting the value, exactly as scalar
        tools guard with ``len(e.data) >= ...``.
        """
        base = self.base if sel is None else self.base[np.asarray(sel)]
        if len(self.words) == 0:
            return np.zeros(len(base), dtype=np.uint64)
        idx = base + 1 + k
        np.clip(idx, 0, len(self.words) - 1, out=idx)
        return self.words[idx]

    def field_columns(
        self, spec: EventSpec, sel: Optional[np.ndarray] = None
    ) -> Optional[List[np.ndarray]]:
        """Decode a fixed-layout group vectorized via its compiled plan.

        One gather plus shift/mask per layout field; ``None`` when the
        layout is variable-length (``str``) and cannot be vectorized.
        Rows must already be selected down to events of this spec with
        sufficient ``dlen`` (``spec.fixed_data_words``).
        """
        plan = spec.plan
        if not plan.vectorizable:
            return None
        out: List[np.ndarray] = []
        word_cache: Dict[int, np.ndarray] = {}
        for f in plan.fields:
            assert f is not None
            widx, shift, width = f
            w = word_cache.get(widx)
            if w is None:
                w = word_cache[widx] = self.data_column(widx, sel)
            out.append(
                (w >> np.uint64(shift)) & np.uint64((1 << width) - 1)
            )
        return out

    # -- ordering -------------------------------------------------------
    def time_key(self) -> np.ndarray:
        """The merge key: full time, with -1 standing in for "no time"."""
        if self.time.dtype == object:
            return np.array(
                [t if f else -1
                 for t, f in zip(self.time.tolist(), self.timed.tolist())],
                dtype=object,
            )
        return np.where(self.timed, self.time, np.int64(-1))

    def order_by_time(self) -> np.ndarray:
        """Indices sorting by the ``Trace.all_events`` total order:
        ``(time | -1, cpu, seq, offset)``.

        A batch carrying a ``node`` column sorts by ``(time | -1, node,
        cpu, seq, offset)`` — the node component makes the merged fleet
        order a total order, so the unified view is invariant under the
        ingest order of the per-node traces.
        """
        tk = self.time_key()
        if tk.dtype == object:
            tkl = tk.tolist()
            cl = self.cpu.tolist()
            sl = self.seq.tolist()
            ol = self.offset.tolist()
            if self.node is not None:
                nl = self.node.tolist()
                idx = sorted(range(len(self)),
                             key=lambda i: (tkl[i], nl[i], cl[i],
                                            sl[i], ol[i]))
            else:
                idx = sorted(range(len(self)),
                             key=lambda i: (tkl[i], cl[i], sl[i], ol[i]))
            return np.array(idx, dtype=np.int64)
        if self.node is not None:
            return np.lexsort(
                (self.offset, self.seq, self.cpu, self.node, tk))
        return np.lexsort((self.offset, self.seq, self.cpu, tk))

    def order_by_stream(self) -> np.ndarray:
        """Indices sorting by decode order: ``(cpu, seq, offset)``
        (``(node, cpu, seq, offset)`` for fleet batches)."""
        if self.node is not None:
            return np.lexsort(
                (self.offset, self.seq, self.cpu, self.node))
        return np.lexsort((self.offset, self.seq, self.cpu))

    # -- materialization (compatibility) --------------------------------
    def event(self, i: int) -> TraceEvent:
        """Materialize row ``i`` as a scalar-identical TraceEvent."""
        return self.events(np.array([i], dtype=np.int64))[0]

    def events(self, sel: Optional[np.ndarray] = None) -> List[TraceEvent]:
        """Materialize (selected) rows as scalar-identical TraceEvents.

        Bit-identical to what the scalar reader would have produced for
        the same rows: Python-int data lists, ``None`` time where no
        timestamp was reconstructed, specs resolved from the registry.
        """
        if sel is None:
            idx = np.arange(len(self), dtype=np.int64)
        else:
            idx = np.asarray(sel)
            if idx.dtype == np.bool_:
                idx = np.flatnonzero(idx)
        n = len(idx)
        if n == 0:
            return []
        wl = self.words
        cpu_l = self.cpu[idx].tolist()
        seq_l = self.seq[idx].tolist()
        off_l = self.offset[idx].tolist()
        ts_l = self.ts32[idx].tolist()
        maj_l = self.major[idx].tolist()
        min_l = self.minor[idx].tolist()
        dlen_l = self.dlen[idx].tolist()
        base_l = self.base[idx].tolist()
        time_l = self.time[idx].tolist()
        timed_l = self.timed[idx].tolist()
        out: List[TraceEvent] = []
        append = out.append
        spec_for = self.spec_for
        for j in range(n):
            b = base_l[j]
            dl = dlen_l[j]
            data = wl[b + 1 : b + 1 + dl].tolist() if dl else []
            append(TraceEvent(
                cpu_l[j], seq_l[j], off_l[j], ts_l[j],
                maj_l[j], min_l[j], data,
                time_l[j] if timed_l[j] else None,
                spec_for(maj_l[j], min_l[j]),
            ))
        return out


class AnomalyColumns:
    """Anomaly verdicts as parallel columns, in scalar-report order."""

    __slots__ = ("cpu", "seq", "offset", "kind", "detail")

    def __init__(self) -> None:
        self.cpu: List[int] = []
        self.seq: List[int] = []
        self.offset: List[int] = []
        self.kind: List[str] = []
        self.detail: List[str] = []

    def append(self, cpu: int, seq: int, offset: int,
               kind: str, detail: str) -> None:
        self.cpu.append(cpu)
        self.seq.append(seq)
        self.offset.append(offset)
        self.kind.append(kind)
        self.detail.append(detail)

    def __len__(self) -> int:
        return len(self.kind)

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for k in self.kind:
            out[k] = out.get(k, 0) + 1
        return out

    def to_list(self) -> List[Anomaly]:
        """Materialize as :class:`Anomaly` objects (scalar order)."""
        return [
            Anomaly(c, s, o, k, d)
            for c, s, o, k, d in zip(self.cpu, self.seq, self.offset,
                                     self.kind, self.detail)
        ]


class _CpuAccumulator:
    """Per-CPU column chunks while a trace is being assembled."""

    __slots__ = ("words", "base", "offset", "seq", "ts32", "major", "minor",
                 "length", "dlen", "time_vals", "timed", "word_total", "n")

    def __init__(self) -> None:
        self.words: List[np.ndarray] = []
        self.base: List[np.ndarray] = []
        self.offset: List[np.ndarray] = []
        self.seq: List[np.ndarray] = []
        self.ts32: List[np.ndarray] = []
        self.major: List[np.ndarray] = []
        self.minor: List[np.ndarray] = []
        self.length: List[np.ndarray] = []
        self.dlen: List[np.ndarray] = []
        self.time_vals: List[int] = []
        self.timed: List[bool] = []
        self.word_total = 0
        self.n = 0


class ColumnarAssembler:
    """Accumulates per-buffer scans into per-CPU event columns.

    The columnar analogue of ``TraceReader.assemble_scan``: same
    timestamp stitching (carried ``(last_full, last_ts32)`` state per
    CPU), same filler filtering, same anomaly order — but the output is
    columns, never ``TraceEvent`` objects.  Buffers must be added in
    (cpu, seq) order, the order the sequential reader visits them.
    """

    def __init__(
        self,
        registry: Optional[EventRegistry] = None,
        include_fillers: bool = False,
        check_committed: bool = True,
    ) -> None:
        self.registry = registry
        self.include_fillers = include_fillers
        self.check_committed = check_committed
        self.anomaly_columns = AnomalyColumns()
        self._acc: Dict[int, _CpuAccumulator] = {}
        self._state: Dict[int, Tuple[Optional[int], Optional[int]]] = {}

    def add_buffer(
        self,
        rec: BufferRecord,
        scan: BufferScan,
        times: Optional[List[int]] = None,
        anchored: bool = False,
    ) -> None:
        """Fold one scanned buffer into the columns.

        ``times``/``anchored`` may come precomputed from a decode
        worker; when ``times`` is ``None`` they are reconstructed here
        from the buffer's anchor or the carried state — which is also
        how an unanchored head-of-shard buffer gets stitched.
        """
        cpu = rec.cpu
        acc = self._acc.get(cpu)
        if acc is None:
            acc = self._acc[cpu] = _CpuAccumulator()
        last_full, last_ts32 = self._state.get(cpu, (None, None))
        if times is None:
            anchors = find_anchors(scan)
            times = unwrap_times(scan.event_ts32(), None, None,
                                 last_full, last_ts32, anchors=anchors)
            anchored = bool(anchors)

        cols = scan.cols
        n = len(scan.offsets)
        if n:
            arr = cols.arr
            if arr is None:
                arr = np.asarray(cols.words, dtype=np.uint64)
            offs = np.asarray(scan.offsets, dtype=np.int64)
            hdr = arr[offs]
            ts32 = (hdr >> np.uint64(TIMESTAMP_SHIFT)).astype(np.int64)
            length = ((hdr >> np.uint64(LENGTH_SHIFT))
                      & np.uint64(LENGTH_MASK)).astype(np.int64)
            major = ((hdr >> np.uint64(MAJOR_SHIFT))
                     & np.uint64(MAJOR_MASK)).astype(np.int64)
            minor = (hdr & np.uint64(MINOR_MASK)).astype(np.int64)
            dlen = length - 1
            is_ctrl = major == _CTRL
            f_plain = is_ctrl & (minor == _FILLER)
            f_ext = is_ctrl & (minor == _FILLER_EXT)
            # Plain fillers carry no data; a real extended filler
            # (header length 0) carries exactly its span word.
            dlen[f_plain] = 0
            dlen[f_ext & (length == 0)] = 1
            timed = times is not None
            tv: List[int] = times if timed else [0] * n  # type: ignore[assignment]
            if not self.include_fillers:
                keep = ~(f_plain | f_ext)
                if not keep.all():
                    offs = offs[keep]
                    ts32 = ts32[keep]
                    length = length[keep]
                    major = major[keep]
                    minor = minor[keep]
                    dlen = dlen[keep]
                    tv = [t for t, k in zip(tv, keep.tolist()) if k]
            kept = len(offs)
            if kept:
                acc.words.append(arr)
                acc.base.append(acc.word_total + offs)
                acc.offset.append(offs)
                acc.seq.append(np.full(kept, rec.seq, dtype=np.int64))
                acc.ts32.append(ts32)
                acc.major.append(major)
                acc.minor.append(minor)
                acc.length.append(length)
                acc.dlen.append(dlen)
                acc.time_vals.extend(tv)
                acc.timed.extend([timed] * kept)
                acc.word_total += len(arr)
                acc.n += kept

        # Anomalies, in exactly the scalar per-buffer order:
        # garbles/recoveries, committed mismatch, missing anchor.
        an = self.anomaly_columns
        for (off, detail), resume in zip(scan.garbles, scan.resumes):
            an.append(cpu, rec.seq, off, "garbled", detail)
            if resume is not None:
                an.append(cpu, rec.seq, off, "recovered-region",
                          f"skipped {resume - off} words; resynchronized at "
                          f"offset {resume}")
        if (self.check_committed and not rec.partial
                and rec.committed != rec.fill_words):
            an.append(cpu, rec.seq, 0, "committed-mismatch",
                      f"committed {rec.committed} words, buffer holds "
                      f"{rec.fill_words}")
        if times is not None:
            if not anchored:
                an.append(cpu, rec.seq, 0, "missing-anchor",
                          "no timestamp anchor; times unwrapped "
                          "from previous buffer")
            self._state[cpu] = (times[-1],
                                cols.ts32[scan.offsets[-1]])

    def take(self) -> "ColumnarTrace":
        """Drain everything accumulated since the last take as a chunk.

        The per-CPU timestamp-stitching state survives the drain, so
        interleaving ``add_buffer`` calls with ``take`` decodes
        bit-identically to one uninterrupted assemble-then-finish —
        this is the incremental seam the live follower builds on.
        Anomaly columns drain with their chunk; the next chunk starts
        a fresh ledger.
        """
        chunk = self.finish()
        self._acc = {}
        self.anomaly_columns = AnomalyColumns()
        return chunk

    def finish(self) -> "ColumnarTrace":
        """Concatenate the per-CPU chunks into final batches."""
        batches: Dict[int, EventBatch] = {}
        for cpu in sorted(self._acc):
            acc = self._acc[cpu]
            if acc.n == 0:
                batches[cpu] = EventBatch.empty(self.registry)
                continue
            n = acc.n
            batches[cpu] = EventBatch(
                words=np.concatenate(acc.words),
                base=np.concatenate(acc.base),
                cpu=np.full(n, cpu, dtype=np.int64),
                seq=np.concatenate(acc.seq),
                offset=np.concatenate(acc.offset),
                ts32=np.concatenate(acc.ts32),
                major=np.concatenate(acc.major),
                minor=np.concatenate(acc.minor),
                length=np.concatenate(acc.length),
                dlen=np.concatenate(acc.dlen),
                time=_int_column(acc.time_vals),
                timed=np.array(acc.timed, dtype=bool),
                registry=self.registry,
            )
        return ColumnarTrace(batches, self.anomaly_columns, self.registry)


class ColumnarTrace:
    """A decoded trace held as per-CPU :class:`EventBatch` columns.

    Ported tools call :meth:`batch` and stay columnar end to end; the
    ``Trace``-compatible surface (``all_events``, ``events_by_cpu``,
    ``events``, ``filter``, ``anomalies``) materializes lazily and
    caches, so scalar consumers — including identity-keyed ones like
    ``ContextTracker`` — see one stable set of event objects.
    """

    def __init__(
        self,
        batches_by_cpu: Dict[int, EventBatch],
        anomaly_columns: Optional[AnomalyColumns] = None,
        registry: Optional[EventRegistry] = None,
    ) -> None:
        self.batches_by_cpu = batches_by_cpu
        self.registry = registry
        self._anomaly_columns = (anomaly_columns if anomaly_columns
                                 is not None else AnomalyColumns())
        self._merged: Optional[EventBatch] = None
        self._events_by_cpu: Optional[Dict[int, List[TraceEvent]]] = None
        self._all_events: Optional[List[TraceEvent]] = None
        self._anomalies: Optional[List[Anomaly]] = None

    # -- columnar surface -----------------------------------------------
    @property
    def anomaly_columns(self) -> AnomalyColumns:
        return self._anomaly_columns

    def cpu_batch(self, cpu: int) -> EventBatch:
        """This CPU's events in decode order."""
        return self.batches_by_cpu.get(cpu, EventBatch.empty(self.registry))

    def batch(self) -> EventBatch:
        """All CPUs merged into the ``all_events`` total order (cached)."""
        if self._merged is None:
            parts = [self.batches_by_cpu[c]
                     for c in sorted(self.batches_by_cpu)]
            cat = EventBatch.concat(parts) if parts \
                else EventBatch.empty(self.registry)
            self._merged = cat.select(cat.order_by_time())
        return self._merged

    @property
    def cpus(self) -> List[int]:
        return sorted(self.batches_by_cpu)

    # -- Trace-compatible surface ---------------------------------------
    @property
    def ncpus(self) -> int:
        return len(self.batches_by_cpu)

    @property
    def anomalies(self) -> List[Anomaly]:
        if self._anomalies is None:
            self._anomalies = self._anomaly_columns.to_list()
        return self._anomalies

    @property
    def events_by_cpu(self) -> Dict[int, List[TraceEvent]]:
        if self._events_by_cpu is None:
            self._events_by_cpu = {
                cpu: self.batches_by_cpu[cpu].events()
                for cpu in sorted(self.batches_by_cpu)
            }
        return self._events_by_cpu

    def events(self, cpu: int) -> List[TraceEvent]:
        return self.events_by_cpu.get(cpu, [])

    def all_events(self) -> List[TraceEvent]:
        """Same objects as ``events_by_cpu``, merged like ``Trace``."""
        if self._all_events is None:
            def key(e: TraceEvent):
                return (e.time if e.time is not None else -1,
                        e.cpu, e.seq, e.offset)

            streams = [sorted(evs, key=key)
                       for evs in self.events_by_cpu.values()]
            self._all_events = list(heapq.merge(*streams, key=key))
        return self._all_events

    def filter(
        self,
        major: Optional[int] = None,
        minor: Optional[int] = None,
        name: Optional[str] = None,
        include_control: bool = False,
    ) -> List[TraceEvent]:
        """Mask-select counterpart of ``Trace.filter`` (same output)."""
        b = self.batch()
        m = np.ones(len(b), dtype=bool)
        if not include_control:
            m &= ~b.control_mask()
        if major is not None:
            m &= b.major == int(major)
        if minor is not None:
            m &= b.minor == int(minor)
        if name is not None:
            m &= b.mask_names([name])
        # Materialize through all_events() so callers mixing filter()
        # with identity-keyed lookups see the same objects.
        idx = set(np.flatnonzero(m).tolist())
        return [e for i, e in enumerate(self.all_events()) if i in idx]

    def to_trace(self) -> Trace:
        """Materialize as a plain :class:`Trace` (bit-identical)."""
        return Trace(events_by_cpu=dict(self.events_by_cpu),
                     anomalies=list(self.anomalies))


class WindowedBatches:
    """A flight-recorder window over incremental :class:`EventBatch` chunks.

    A live monitor cannot hold an unbounded trace: like the kernel's
    flight-recorder mode, it keeps the most recent events and lets the
    oldest fall off the back.  Chunks (the per-CPU batches of one
    :meth:`ColumnarAssembler.take`) are appended in arrival order;
    once the total event count exceeds ``max_events`` the oldest whole
    chunks are evicted — granularity is the chunk, so peak residency is
    ``O(max_events + largest chunk)``, never the full trace.

    ``trace()`` exposes the live window as an ordinary
    :class:`ColumnarTrace`: per-CPU concatenation preserves decode
    order, and the merged batch's total order is identical to a
    post-mortem decode of the same events, so every columnar tool runs
    on a window unchanged.  The CPU universe is the union of all CPUs
    ever seen — a CPU whose events were all evicted (or that has
    logged nothing yet) still contributes an empty lane, exactly as in
    a post-mortem decode.

    Anomaly columns are cumulative, not windowed: they are the damage
    ledger of the whole run (a few rows per incident), so eviction
    never hides that something was once wrong.
    """

    def __init__(
        self,
        max_events: Optional[int] = None,
        registry: Optional[EventRegistry] = None,
    ) -> None:
        if max_events is not None and max_events <= 0:
            raise ValueError("max_events must be positive (or None)")
        self.max_events = max_events
        self.registry = registry
        self.anomaly_columns = AnomalyColumns()
        #: (cpu, batch) in arrival order — the eviction queue.
        self._chunks: Deque[Tuple[int, EventBatch]] = deque()
        self._cpus: set = set()
        self.total_events = 0
        self.evicted_events = 0
        self.evicted_chunks = 0

    def __len__(self) -> int:
        return self.total_events

    def absorb(self, chunk: "ColumnarTrace") -> None:
        """Fold one incremental chunk (batches + anomalies) in."""
        for cpu in sorted(chunk.batches_by_cpu):
            self._cpus.add(cpu)
            b = chunk.batches_by_cpu[cpu]
            if len(b):
                self._chunks.append((cpu, b))
                self.total_events += len(b)
        ac = chunk.anomaly_columns
        for c, s, o, k, d in zip(ac.cpu, ac.seq, ac.offset,
                                 ac.kind, ac.detail):
            self.anomaly_columns.append(c, s, o, k, d)
        self._evict()

    def _evict(self) -> None:
        if self.max_events is None:
            return
        # Always keep at least one chunk: a single chunk larger than
        # the window is delivered whole rather than silently split.
        while self.total_events > self.max_events and len(self._chunks) > 1:
            _cpu, b = self._chunks.popleft()
            self.total_events -= len(b)
            self.evicted_events += len(b)
            self.evicted_chunks += 1

    def trace(self) -> "ColumnarTrace":
        """The current window as a :class:`ColumnarTrace`."""
        parts: Dict[int, List[EventBatch]] = {cpu: [] for cpu in self._cpus}
        for cpu, b in self._chunks:
            parts[cpu].append(b)
        batches = {
            cpu: (EventBatch.concat(bs) if bs
                  else EventBatch.empty(self.registry))
            for cpu, bs in parts.items()
        }
        anomalies = AnomalyColumns()
        ac = self.anomaly_columns
        for c, s, o, k, d in zip(ac.cpu, ac.seq, ac.offset,
                                 ac.kind, ac.detail):
            anomalies.append(c, s, o, k, d)
        return ColumnarTrace(batches, anomalies, self.registry)


# ----------------------------------------------------------------------
# Decoding entry points
# ----------------------------------------------------------------------
def decode_records_columnar(
    records: Iterable[BufferRecord],
    registry: Optional[EventRegistry] = None,
    include_fillers: bool = False,
    check_committed: bool = True,
    strict: bool = False,
) -> ColumnarTrace:
    """Sequential columnar decode; scan decisions and anomaly verdicts
    identical to ``TraceReader(...).decode_records(records)``."""
    by_cpu: Dict[int, List[BufferRecord]] = {}
    for rec in records:
        by_cpu.setdefault(rec.cpu, []).append(rec)
    asm = ColumnarAssembler(registry=registry,
                            include_fillers=include_fillers,
                            check_committed=check_committed)
    for cpu, recs in sorted(by_cpu.items()):
        recs.sort(key=lambda r: r.seq)
        for rec in recs:
            scan = scan_buffer(rec.words, rec.fill_words, recover=not strict)
            asm.add_buffer(rec, scan)
    return asm.finish()


class ColumnarTraceReader:
    """Columnar counterpart of :class:`~repro.core.stream.TraceReader`.

    Same constructor surface; ``decode_records`` returns a
    :class:`ColumnarTrace` whose events, ordering, and anomaly verdicts
    are bit-identical to the scalar reader's output (``to_trace()``
    materializes the proof).
    """

    def __init__(
        self,
        registry: Optional[EventRegistry] = None,
        include_fillers: bool = False,
        check_committed: bool = True,
        strict: bool = False,
    ) -> None:
        self.registry = registry
        self.include_fillers = include_fillers
        self.check_committed = check_committed
        self.strict = strict

    def decode_records(
        self, records: Iterable[BufferRecord]
    ) -> ColumnarTrace:
        return decode_records_columnar(
            records,
            registry=self.registry,
            include_fillers=self.include_fillers,
            check_committed=self.check_committed,
            strict=self.strict,
        )

    def decode_one(self, record: BufferRecord) -> ColumnarTrace:
        return self.decode_records([record])

    def decode_file(self, path) -> ColumnarTrace:
        """Load a ``.k42`` trace file and decode it columnar."""
        from repro.core.writer import load_records

        return self.decode_records(load_records(path))


def as_batch(
    trace: Union[Trace, ColumnarTrace, EventBatch],
) -> EventBatch:
    """The merged, time-ordered :class:`EventBatch` for any trace form.

    For a :class:`ColumnarTrace` this is the (cached) column merge; for
    a plain :class:`Trace` the events are columnarized once and the
    batch is cached on the instance, so repeated tool calls pay the
    conversion only once.
    """
    if isinstance(trace, EventBatch):
        return trace
    if isinstance(trace, ColumnarTrace):
        return trace.batch()
    batch = getattr(trace, "_columnar_batch", None)
    if batch is None:
        batch = EventBatch.from_events(trace.all_events())
        trace._columnar_batch = batch  # type: ignore[attr-defined]
    return batch
