"""Decoding the trace stream: sequential, random-access, and recovery.

Variable-length events normally destroy random access; K42 restores it
by guaranteeing that no event crosses a buffer (alignment) boundary
(§3.2).  A reader can therefore seek to any boundary and resume parsing.
This module implements:

* decoding of one buffer's words into events, with validity heuristics
  that detect the garbled regions a preempted/killed writer leaves
  behind (§3.1) and recover at the next boundary;
* reconstruction of full 64-bit timestamps from the 32-bit header field
  plus the per-buffer timestamp-anchor events;
* checking of the per-buffer committed counts against buffer size (the
  ``traceCommit`` anomaly detection);
* merging per-CPU streams into one time-ordered stream;
* flat-array random access (seek to an arbitrary word offset, snap to
  the preceding boundary, decode from there).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.buffers import BufferRecord
from repro.core.constants import EXTENDED_FILLER_LENGTH
from repro.core.header import unpack_header
from repro.core.majors import ControlMinor, Major
from repro.core.registry import EventRegistry, EventSpec

_U32 = 1 << 32
_HALF32 = 1 << 31


def sdelta32(a: int, b: int) -> int:
    """``a - b`` of 32-bit timestamps as a signed value in [-2^31, 2^31)."""
    d = (a - b) & (_U32 - 1)
    return d - _U32 if d >= _HALF32 else d


@dataclass
class TraceEvent:
    """One decoded trace event."""

    cpu: int
    seq: int          # buffer sequence number it was found in
    offset: int       # word offset within that buffer
    ts32: int         # truncated 32-bit timestamp from the header
    major: int
    minor: int
    data: List[int]
    time: Optional[int] = None      # reconstructed full 64-bit timestamp
    spec: Optional[EventSpec] = None

    @property
    def is_filler(self) -> bool:
        return self.major == Major.CONTROL and self.minor in (
            ControlMinor.FILLER,
            ControlMinor.FILLER_EXT,
        )

    @property
    def is_control(self) -> bool:
        return self.major == Major.CONTROL

    @property
    def name(self) -> str:
        if self.spec is not None:
            return self.spec.name
        return f"TRC_UNKNOWN_{self.major}_{self.minor}"

    def values(self) -> list:
        """Field values decoded per the registered layout."""
        if self.spec is None:
            return list(self.data)
        return self.spec.decode(self.data)

    def render(self) -> str:
        """Human-readable description (Figure 5, third column)."""
        if self.spec is None:
            return "data " + " ".join(f"{int(w):#x}" for w in self.data)
        return self.spec.render(self.data)


@dataclass
class Anomaly:
    """A detected inconsistency in the stream (garble, count mismatch)."""

    cpu: int
    seq: int
    offset: int
    kind: str      # "garbled" | "committed-mismatch" | "missing-anchor"
    detail: str


@dataclass
class Trace:
    """A fully decoded trace: per-CPU event lists plus anomalies."""

    events_by_cpu: Dict[int, List[TraceEvent]] = field(default_factory=dict)
    anomalies: List[Anomaly] = field(default_factory=list)

    @property
    def ncpus(self) -> int:
        return len(self.events_by_cpu)

    def events(self, cpu: int) -> List[TraceEvent]:
        return self.events_by_cpu.get(cpu, [])

    def all_events(self) -> List[TraceEvent]:
        """All events from all CPUs merged into timestamp order.

        Events lacking a reconstructed time sort before everything else
        on their CPU (they can only come from a stream head with no
        anchor, which the logger never produces in normal operation).
        """
        def key(e: TraceEvent):
            return (e.time if e.time is not None else -1, e.cpu, e.seq, e.offset)

        streams = [sorted(evs, key=key) for evs in self.events_by_cpu.values()]
        return list(heapq.merge(*streams, key=key))

    def filter(
        self,
        major: Optional[int] = None,
        minor: Optional[int] = None,
        name: Optional[str] = None,
        include_control: bool = False,
    ) -> List[TraceEvent]:
        out = []
        for e in self.all_events():
            if not include_control and e.is_control:
                continue
            if major is not None and e.major != major:
                continue
            if minor is not None and e.minor != minor:
                continue
            if name is not None and e.name != name:
                continue
            out.append(e)
        return out


class TraceReader:
    """Decodes :class:`BufferRecord` streams into :class:`Trace` objects."""

    def __init__(
        self,
        registry: Optional[EventRegistry] = None,
        include_fillers: bool = False,
        check_committed: bool = True,
    ) -> None:
        self.registry = registry
        self.include_fillers = include_fillers
        self.check_committed = check_committed

    # ------------------------------------------------------------------
    def decode_records(self, records: Iterable[BufferRecord]) -> Trace:
        """Decode a collection of buffer records (any CPUs, any order)."""
        by_cpu: Dict[int, List[BufferRecord]] = {}
        for rec in records:
            by_cpu.setdefault(rec.cpu, []).append(rec)
        trace = Trace()
        for cpu, recs in sorted(by_cpu.items()):
            recs.sort(key=lambda r: r.seq)
            events: List[TraceEvent] = []
            last_full: Optional[int] = None
            last_ts32: Optional[int] = None
            for rec in recs:
                evs = self.decode_buffer(rec, trace.anomalies)
                last_full, last_ts32 = self._reconstruct_times(
                    evs, rec, trace.anomalies, last_full, last_ts32
                )
                if not self.include_fillers:
                    evs = [e for e in evs if not e.is_filler]
                events.extend(evs)
            trace.events_by_cpu[cpu] = events
        return trace

    def decode_one(self, record: BufferRecord) -> Trace:
        """Random access: decode a single buffer independently.

        Works from any alignment boundary because each buffer carries its
        own timestamp anchor — the §3.2 property.
        """
        return self.decode_records([record])

    # ------------------------------------------------------------------
    def decode_buffer(
        self, rec: BufferRecord, anomalies: List[Anomaly]
    ) -> List[TraceEvent]:
        """Walk one buffer, validating headers; stop at the first garble.

        Recovery is exactly what the paper prescribes: skip to the next
        alignment boundary, i.e. abandon the rest of this buffer.
        """
        words = rec.words
        limit = min(rec.fill_words, len(words))
        events: List[TraceEvent] = []
        off = 0
        prev_ts32: Optional[int] = None
        while off < limit:
            word = int(words[off])
            hdr = unpack_header(word)
            length = hdr.length
            span = length
            if (
                length == EXTENDED_FILLER_LENGTH
                and hdr.major == Major.CONTROL
                and hdr.minor == ControlMinor.FILLER_EXT
            ):
                if off + 1 >= limit:
                    self._garbled(anomalies, rec, off, "truncated extended filler")
                    break
                span = int(words[off + 1])
                length = 2  # header + span word are the real payload
                if span < 2 or off + span > limit:
                    self._garbled(anomalies, rec, off, f"bad extended filler span {span}")
                    break
            elif length == 0 or off + length > limit:
                self._garbled(
                    anomalies, rec, off,
                    f"invalid header {word:#018x} (length {length})",
                )
                break
            if prev_ts32 is not None and sdelta32(hdr.timestamp, prev_ts32) < 0:
                # A large backwards jump cannot come from a healthy stream:
                # per-CPU timestamps are monotonic by construction (§3.1).
                self._garbled(
                    anomalies, rec, off,
                    f"timestamp regression {prev_ts32}->{hdr.timestamp}",
                )
                break
            if hdr.major == Major.CONTROL and hdr.minor == ControlMinor.FILLER:
                # A plain filler is just a header spanning the remainder;
                # the words underneath it are not event data.
                data = []
            else:
                data = [int(w) for w in words[off + 1 : off + length]]
            spec = (
                self.registry.lookup(hdr.major, hdr.minor)
                if self.registry is not None
                else None
            )
            events.append(
                TraceEvent(
                    cpu=rec.cpu,
                    seq=rec.seq,
                    offset=off,
                    ts32=hdr.timestamp,
                    major=hdr.major,
                    minor=hdr.minor,
                    data=data,
                    spec=spec,
                )
            )
            prev_ts32 = hdr.timestamp
            off += span
        if (
            self.check_committed
            and not rec.partial
            and rec.committed != rec.fill_words
        ):
            anomalies.append(
                Anomaly(
                    rec.cpu,
                    rec.seq,
                    0,
                    "committed-mismatch",
                    f"committed {rec.committed} words, buffer holds {rec.fill_words}",
                )
            )
        return events

    def _garbled(
        self, anomalies: List[Anomaly], rec: BufferRecord, off: int, detail: str
    ) -> None:
        anomalies.append(Anomaly(rec.cpu, rec.seq, off, "garbled", detail))

    # ------------------------------------------------------------------
    def _reconstruct_times(
        self,
        events: List[TraceEvent],
        rec: BufferRecord,
        anomalies: List[Anomaly],
        last_full: Optional[int],
        last_ts32: Optional[int],
    ) -> Tuple[Optional[int], Optional[int]]:
        """Assign full 64-bit times using the buffer's anchor event.

        Falls back to unwrapping from the previous buffer's last event
        when a buffer has no anchor (possible after garbling).
        """
        if not events:
            return (last_full, last_ts32)
        anchor_i = next(
            (
                i
                for i, e in enumerate(events)
                if e.major == Major.CONTROL
                and e.minor == ControlMinor.TIMESTAMP_ANCHOR
                and e.data
            ),
            None,
        )
        # Unwrapping is sequential: each consecutive 32-bit delta is small
        # (decode_buffer rejects regressions, and a healthy stream never
        # goes 2**31 ticks between adjacent events), so full times follow
        # by accumulation in both directions from the anchor.
        if anchor_i is not None:
            anchor = events[anchor_i]
            anchor.time = anchor.data[0]
            for i in range(anchor_i + 1, len(events)):
                events[i].time = events[i - 1].time + sdelta32(
                    events[i].ts32, events[i - 1].ts32
                )
            for i in range(anchor_i - 1, -1, -1):
                events[i].time = events[i + 1].time - sdelta32(
                    events[i + 1].ts32, events[i].ts32
                )
        elif last_full is not None and last_ts32 is not None:
            anomalies.append(
                Anomaly(rec.cpu, rec.seq, 0, "missing-anchor",
                        "no timestamp anchor; times unwrapped from previous buffer")
            )
            prev_full, prev32 = last_full, last_ts32
            for e in events:
                e.time = prev_full + sdelta32(e.ts32, prev32)
                prev_full, prev32 = e.time, e.ts32
        else:
            return (last_full, last_ts32)
        return (events[-1].time, events[-1].ts32)


# ----------------------------------------------------------------------
# Flat-array random access (§3.2 demonstration)
# ----------------------------------------------------------------------
def flat_records(
    words: Union[np.ndarray, Sequence[int]],
    buffer_words: int,
    cpu: int = 0,
    start_seq: int = 0,
) -> List[BufferRecord]:
    """View a flat word array (concatenated buffers) as buffer records.

    The array is what a raw on-disk trace looks like: back-to-back
    aligned buffers with no framing.  ``committed`` is unknown for raw
    data, so records are produced with committed checking disabled
    (callers should use a reader with ``check_committed=False``).
    """
    arr = np.asarray(words, dtype=np.uint64)
    records = []
    nbufs = (len(arr) + buffer_words - 1) // buffer_words
    for k in range(nbufs):
        chunk = arr[k * buffer_words : (k + 1) * buffer_words]
        fill = len(chunk)
        partial = fill < buffer_words
        records.append(
            BufferRecord(
                cpu=cpu,
                seq=start_seq + k,
                words=chunk,
                committed=fill,
                fill_words=fill,
                partial=partial,
            )
        )
    return records


def seek_boundary(word_offset: int, buffer_words: int) -> int:
    """Snap an arbitrary word offset back to its alignment boundary."""
    return (word_offset // buffer_words) * buffer_words


def decode_from_offset(
    words: Union[np.ndarray, Sequence[int]],
    buffer_words: int,
    word_offset: int,
    registry: Optional[EventRegistry] = None,
    cpu: int = 0,
) -> Trace:
    """Seek into the middle of a flat trace and decode from there.

    This is the end-to-end demonstration of the paper's random-access
    property: pick any offset, snap to the preceding alignment boundary,
    and parsing proceeds as if from the beginning.
    """
    start = seek_boundary(word_offset, buffer_words)
    arr = np.asarray(words, dtype=np.uint64)[start:]
    records = flat_records(arr, buffer_words, cpu=cpu, start_seq=start // buffer_words)
    reader = TraceReader(registry=registry, check_committed=False)
    return reader.decode_records(records)
