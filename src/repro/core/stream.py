"""Decoding the trace stream: sequential, random-access, and recovery.

Variable-length events normally destroy random access; K42 restores it
by guaranteeing that no event crosses a buffer (alignment) boundary
(§3.2).  A reader can therefore seek to any boundary and resume parsing.
This module implements:

* decoding of one buffer's words into events, with validity heuristics
  that detect the garbled regions a preempted/killed writer leaves
  behind (§3.1) and recover — by default *within* the buffer, rescanning
  forward for the next plausible header and salvaging the remainder
  (each salvage is reported as a ``recovered-region`` anomaly);
  ``strict=True`` restores the paper's minimal recovery of abandoning
  the rest of the buffer and resuming at the next alignment boundary;
* reconstruction of full 64-bit timestamps from the 32-bit header field
  plus the per-buffer timestamp-anchor events;
* checking of the per-buffer committed counts against buffer size (the
  ``traceCommit`` anomaly detection);
* merging per-CPU streams into one time-ordered stream;
* flat-array random access (seek to an arbitrary word offset, snap to
  the preceding boundary, decode from there).

Two decode implementations share this logic:

* the **scalar** path walks word by word with Python integers — the
  reference implementation, kept as ground truth;
* the **batched** path (:func:`scan_buffer`) unpacks every header field
  of a buffer in one set of numpy operations and walks precomputed
  columns, with timestamp unwrapping vectorized as a cumulative sum of
  exact 32-bit deltas.  It is bit-identical to the scalar path (the
  test suite fuzzes both against each other) and is the default.

:mod:`repro.core.parallel` builds on :func:`scan_buffer` to fan the
scan out over worker processes — the §3.2 boundary guarantee is what
makes each buffer independently parsable.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.buffers import BufferRecord
from repro.core.constants import (
    EXTENDED_FILLER_LENGTH,
    LENGTH_MASK,
    LENGTH_SHIFT,
    MAJOR_MASK,
    MAJOR_SHIFT,
    MINOR_MASK,
    TIMESTAMP_SHIFT,
)
from repro.core.header import unpack_header
from repro.core.majors import ControlMinor, Major
from repro.core.registry import EventRegistry, EventSpec

_U32 = 1 << 32
_HALF32 = 1 << 31

#: Minor IDs a CONTROL-class header may legitimately carry; anything else
#: in the CONTROL major is junk and disqualifies a resync candidate.
_KNOWN_CONTROL_MINORS = frozenset(int(m) for m in ControlMinor)


def sdelta32(a: int, b: int) -> int:
    """``a - b`` of 32-bit timestamps as a signed value in [-2^31, 2^31)."""
    d = (a - b) & (_U32 - 1)
    return d - _U32 if d >= _HALF32 else d


def _plausible_header(fields, o: int, limit: int,
                      prev_ts32: Optional[int]) -> bool:
    """Whether the word at ``o`` could be a live event header.

    ``fields(o)`` returns ``(ts32, length, major, minor)``.  Plausible
    means: a nonzero length that fits in the buffer, a believable
    major/minor combination (a CONTROL header must carry a known control
    minor), and — when ``prev_ts32`` is given — a timestamp that does
    not regress (mod 2^32) relative to the accepted stream.
    """
    ts, length, major, minor = fields(o)
    if length == 0 or o + length > limit:
        return False
    if major == Major.CONTROL and minor not in _KNOWN_CONTROL_MINORS:
        return False
    if prev_ts32 is not None and ((ts - prev_ts32) & (_U32 - 1)) >= _HALF32:
        # A full-width timestamp anchor is a legitimate resync point:
        # it exists precisely so the stream can span gaps the 32-bit
        # delta cannot represent (§3.2) — a late-attaching writer's
        # first words land seconds after the creator's buffer-0 anchor.
        if not _is_anchor_header(major, minor, length):
            return False
    return True


def _is_anchor_header(major: int, minor: int, length: int) -> bool:
    """Whether a header is a usable full-width timestamp anchor."""
    return (major == Major.CONTROL
            and minor == ControlMinor.TIMESTAMP_ANCHOR
            and length >= 2)


def find_resync(fields, start: int, limit: int,
                prev_ts32: Optional[int] = None) -> Optional[int]:
    """Locate the next plausible event header at or after ``start``.

    This is the §3.1 recovery story pushed below the alignment boundary:
    after a garble verdict, rescan forward word by word for a header
    whose length/major fields are valid, whose timestamp continues the
    accepted stream monotonically, and which *chains* — the header it
    points at must itself be plausible (or end the buffer exactly).
    Requiring two linked plausible headers keeps the false-acceptance
    rate on random garbage low (§3.1: "it is unlikely that random data
    will have the correct format of a trace event header").

    Two passes: the first holds candidates to the accepted timestamp
    state; if nothing qualifies — which happens when the accepted state
    itself was poisoned by a corrupt-but-well-shaped header — a second,
    shape-only pass requires only internal chain monotonicity.  Returns
    the offset of the accepted candidate, or ``None`` when the rest of
    the buffer holds nothing salvageable.
    """
    passes = (prev_ts32, None) if prev_ts32 is not None else (None,)
    for anchor in passes:
        for o in range(start, limit):
            if not _plausible_header(fields, o, limit, anchor):
                continue
            ts, length, _, _ = fields(o)
            nxt = o + length
            if nxt == limit or _plausible_header(fields, nxt, limit, ts):
                return o
    return None


@dataclass
class BufferColumns:
    """Per-word header fields of one buffer, unpacked in one batch.

    Four vectorized shift/mask operations plus ``tolist`` replace the
    per-word Python arithmetic of the scalar walk.  Every list has
    ``limit`` entries (the words actually reserved); entries at non-header
    offsets are meaningless and simply never consulted.
    """

    words: List[int]    # the raw words as Python ints
    ts32: List[int]     # bits 63..32 — the truncated timestamp
    length: List[int]   # bits 31..22 — total event length in words
    major: List[int]    # bits 21..16
    minor: List[int]    # bits 15..0
    limit: int
    #: The raw words as a uint64 array (the source the lists above were
    #: unpacked from).  The columnar reader slices payloads from it
    #: without a list round-trip; ``None`` for hand-built columns.
    arr: Optional[np.ndarray] = None


def buffer_columns(words: Union[np.ndarray, Sequence[int]],
                   fill_words: int) -> BufferColumns:
    """Unpack all header fields of a buffer with vectorized numpy ops."""
    arr = np.asarray(words, dtype=np.uint64)
    limit = min(fill_words, len(arr))
    arr = arr[:limit]
    return BufferColumns(
        words=arr.tolist(),
        ts32=(arr >> np.uint64(TIMESTAMP_SHIFT)).tolist(),
        length=((arr >> np.uint64(LENGTH_SHIFT)) & np.uint64(LENGTH_MASK)).tolist(),
        major=((arr >> np.uint64(MAJOR_SHIFT)) & np.uint64(MAJOR_MASK)).tolist(),
        minor=(arr & np.uint64(MINOR_MASK)).tolist(),
        limit=limit,
        arr=arr,
    )


@dataclass
class BufferScan:
    """One buffer's parse decisions: accepted event offsets plus garble.

    This is the unit of work decode workers ship back to the parent
    (:mod:`repro.core.parallel`): the offsets and the garble verdicts are
    the *only* outputs of the walk — every other event attribute is a
    pure function of the words, which the parent already holds.  A scan
    is therefore a few flat int lists, orders of magnitude cheaper to
    move between processes than a list of event objects.

    ``garbles`` and ``resumes`` run in parallel: for each garble verdict
    ``(offset, detail)`` the matching entry of ``resumes`` holds the
    offset where the recovery rescan resumed parsing, or ``None`` when
    the walk stopped there (strict mode, or nothing salvageable).
    """

    cols: BufferColumns
    offsets: List[int]      # word offset of each accepted event header
    garbles: List[Tuple[int, str]] = field(default_factory=list)
    resumes: List[Optional[int]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.offsets)

    @property
    def garble(self) -> Optional[Tuple[int, str]]:
        """The first garble verdict, if any (compatibility accessor)."""
        return self.garbles[0] if self.garbles else None

    def event_ts32(self) -> List[int]:
        """The accepted events' 32-bit timestamps, in stream order."""
        ts = self.cols.ts32
        return [ts[o] for o in self.offsets]


def scan_buffer(words: Union[np.ndarray, Sequence[int]],
                fill_words: int,
                cols: Optional[BufferColumns] = None,
                recover: bool = False) -> BufferScan:
    """Batched buffer walk: unpack all header fields at once, then parse.

    Semantically identical to the scalar walk in
    :meth:`TraceReader.decode_buffer` — same validity checks, same
    garble details, same recovery.  With ``recover=False`` parsing stops
    at the first bad header (the next alignment boundary is the next
    buffer); with ``recover=True`` each garble triggers a
    :func:`find_resync` rescan and parsing resumes at the next plausible
    header, salvaging the remainder of the buffer.
    """
    if cols is None:
        cols = buffer_columns(words, fill_words)
    limit = cols.limit
    wl = cols.words
    ts_l = cols.ts32
    len_l = cols.length
    maj_l = cols.major
    min_l = cols.minor

    offsets: List[int] = []
    append = offsets.append
    garbles: List[Tuple[int, str]] = []
    resumes: List[Optional[int]] = []
    mask32 = _U32 - 1

    def fields(o: int) -> Tuple[int, int, int, int]:
        return ts_l[o], len_l[o], maj_l[o], min_l[o]

    off = 0
    prev_ts32: Optional[int] = None
    while off < limit:
        length = len_l[off]
        end = off + length
        verdict: Optional[str] = None
        if length == 0 or end > limit:
            # Rare path: an extended filler (length field is 0) or garble.
            if (
                length == EXTENDED_FILLER_LENGTH
                and maj_l[off] == Major.CONTROL
                and min_l[off] == ControlMinor.FILLER_EXT
            ):
                if off + 1 >= limit:
                    verdict = "truncated extended filler"
                else:
                    span = wl[off + 1]
                    if span < 2 or off + span > limit:
                        verdict = f"bad extended filler span {span}"
                    else:
                        end = off + span
            else:
                verdict = f"invalid header {wl[off]:#018x} (length {length})"
        if verdict is None:
            ts = ts_l[off]
            if (prev_ts32 is not None
                    and ((ts - prev_ts32) & mask32) >= _HALF32
                    and not _is_anchor_header(maj_l[off], min_l[off], length)):
                # A large backwards jump cannot come from a healthy stream:
                # per-CPU timestamps are monotonic by construction (§3.1).
                # Anchors are exempt — they carry the full value and exist
                # to bridge exactly such gaps (§3.2).
                verdict = f"timestamp regression {prev_ts32}->{ts}"
        if verdict is not None:
            garbles.append((off, verdict))
            if not recover:
                resumes.append(None)
                break
            resume = find_resync(fields, off + 1, limit, prev_ts32)
            resumes.append(resume)
            if resume is None:
                break
            if (prev_ts32 is not None
                    and ((ts_l[resume] - prev_ts32) & mask32) >= _HALF32):
                # Shape-only (relaxed) resync: the accepted timestamp
                # state was itself poisoned; restart the chain here.
                prev_ts32 = None
            off = resume
            continue
        append(off)
        prev_ts32 = ts
        off = end
    return BufferScan(cols, offsets, garbles, resumes)


def find_anchors(scan: BufferScan) -> List[Tuple[int, int]]:
    """All usable timestamp anchors: ``[(event index, full value), ...]``.

    An anchor must carry its full-width value as data (length >= 2) — a
    truncated anchor is useless, exactly the ``e.data`` guard of the
    scalar path.  A buffer can legitimately hold several: the creator
    anchors sequence 0, and every late-attaching writer logs a fresh
    anchor so its stream carries its own absolute base (§3.2).
    """
    out: List[Tuple[int, int]] = []
    cols = scan.cols
    for i, off in enumerate(scan.offsets):
        if (
            cols.major[off] == Major.CONTROL
            and cols.minor[off] == ControlMinor.TIMESTAMP_ANCHOR
            and cols.length[off] >= 2
        ):
            out.append((i, cols.words[off + 1]))
    return out


def find_anchor(scan: BufferScan) -> Tuple[Optional[int], Optional[int]]:
    """The buffer's first anchor, or ``(None, None)`` — see
    :func:`find_anchors`."""
    anchors = find_anchors(scan)
    return anchors[0] if anchors else (None, None)


def unwrap_times(
    ts32: Sequence[int],
    anchor_i: Optional[int],
    anchor_time: Optional[int],
    last_full: Optional[int],
    last_ts32: Optional[int],
    anchors: Optional[Sequence[Tuple[int, int]]] = None,
) -> Optional[List[int]]:
    """Vectorized full-timestamp reconstruction for one buffer.

    Full times are sums of the per-event signed 32-bit deltas around a
    base — an anchor's full value, or the previous buffer's last event.
    Integer addition is associative, so a cumulative sum of the deltas
    (exact in int64: each delta is in [-2^31, 2^31) and a buffer holds
    far fewer than 2^31 events) anchored at the base reproduces the
    scalar event-by-event accumulation bit for bit.  The base itself
    stays a Python int, so arbitrarily large anchor values cannot
    overflow.

    ``anchors`` (from :func:`find_anchors`) supersedes the legacy
    ``anchor_i``/``anchor_time`` pair and may list several anchors: the
    reconstruction then re-bases at each one, because the 32-bit deltas
    *between* two anchors are not trustworthy — the gap they bridge can
    exceed what 32 bits can represent (a writer attaching seconds after
    the segment was created).  Events before the first anchor chain
    backward from it; events between anchor ``k`` and ``k+1`` chain
    forward from anchor ``k``.

    Returns the full times, or ``None`` when there is no basis (no
    anchor and no prior state) — the caller keeps times unset, exactly
    like the scalar path.
    """
    if anchors is None:
        anchors = [] if anchor_i is None else [(anchor_i, anchor_time)]
    n = len(ts32)
    if n == 0:
        return None
    if not anchors and (last_full is None or last_ts32 is None):
        return None
    if n == 1:
        base = (
            anchors[0][1]
            if anchors
            else last_full + sdelta32(ts32[0], last_ts32)
        )
        return [base]
    a = np.asarray(ts32, dtype=np.int64)
    d = (a[1:] - a[:-1]) & np.int64(_U32 - 1)
    d = np.where(d >= np.int64(_HALF32), d - np.int64(_U32), d)
    cum = np.empty(n, dtype=np.int64)
    cum[0] = 0
    np.cumsum(d, out=cum[1:])
    cl = cum.tolist()
    if not anchors:
        base = last_full + sdelta32(ts32[0], last_ts32)
        return [base + c for c in cl]
    times: List[int] = [0] * n
    first_i = anchors[0][0]
    base = anchors[0][1] - cl[first_i]
    for j in range(first_i):
        times[j] = base + cl[j]
    for k, (i_k, t_k) in enumerate(anchors):
        end = anchors[k + 1][0] if k + 1 < len(anchors) else n
        base = t_k - cl[i_k]
        for j in range(i_k, end):
            times[j] = base + cl[j]
    return times


_MISSING = object()   # sentinel for the per-buffer spec memo


@dataclass(slots=True)
class TraceEvent:
    """One decoded trace event."""

    cpu: int
    seq: int          # buffer sequence number it was found in
    offset: int       # word offset within that buffer
    ts32: int         # truncated 32-bit timestamp from the header
    major: int
    minor: int
    data: List[int]
    time: Optional[int] = None      # reconstructed full 64-bit timestamp
    spec: Optional[EventSpec] = None

    @property
    def is_filler(self) -> bool:
        return self.major == Major.CONTROL and self.minor in (
            ControlMinor.FILLER,
            ControlMinor.FILLER_EXT,
        )

    @property
    def is_control(self) -> bool:
        return self.major == Major.CONTROL

    @property
    def name(self) -> str:
        if self.spec is not None:
            return self.spec.name
        return f"TRC_UNKNOWN_{self.major}_{self.minor}"

    def values(self) -> list:
        """Field values decoded per the registered layout."""
        if self.spec is None:
            return list(self.data)
        return self.spec.decode(self.data)

    def render(self) -> str:
        """Human-readable description (Figure 5, third column)."""
        if self.spec is None:
            return "data " + " ".join(f"{int(w):#x}" for w in self.data)
        return self.spec.render(self.data)


@dataclass
class Anomaly:
    """A detected inconsistency in the stream (garble, count mismatch)."""

    cpu: int
    seq: int
    offset: int
    #: "garbled" | "recovered-region" | "committed-mismatch" | "missing-anchor"
    kind: str
    detail: str


@dataclass
class Trace:
    """A fully decoded trace: per-CPU event lists plus anomalies."""

    events_by_cpu: Dict[int, List[TraceEvent]] = field(default_factory=dict)
    anomalies: List[Anomaly] = field(default_factory=list)

    @property
    def ncpus(self) -> int:
        return len(self.events_by_cpu)

    def events(self, cpu: int) -> List[TraceEvent]:
        return self.events_by_cpu.get(cpu, [])

    def all_events(self) -> List[TraceEvent]:
        """All events from all CPUs merged into timestamp order.

        Events lacking a reconstructed time sort before everything else
        on their CPU (they can only come from a stream head with no
        anchor, which the logger never produces in normal operation).
        """
        def key(e: TraceEvent):
            return (e.time if e.time is not None else -1, e.cpu, e.seq, e.offset)

        streams = [sorted(evs, key=key) for evs in self.events_by_cpu.values()]
        return list(heapq.merge(*streams, key=key))

    def filter(
        self,
        major: Optional[int] = None,
        minor: Optional[int] = None,
        name: Optional[str] = None,
        include_control: bool = False,
    ) -> List[TraceEvent]:
        out = []
        for e in self.all_events():
            if not include_control and e.is_control:
                continue
            if major is not None and e.major != major:
                continue
            if minor is not None and e.minor != minor:
                continue
            if name is not None and e.name != name:
                continue
            out.append(e)
        return out


class TraceReader:
    """Decodes :class:`BufferRecord` streams into :class:`Trace` objects.

    ``batch=True`` (the default) uses the vectorized numpy scan and
    cumulative-sum timestamp unwrapping; ``batch=False`` selects the
    original word-at-a-time reference path.  Both produce bit-identical
    traces — the flag exists for benchmarking and cross-checking.

    ``strict=False`` (the default) resynchronizes after a garble verdict
    — rescanning forward for the next plausible header and salvaging the
    rest of the buffer, each salvage reported as a ``recovered-region``
    anomaly.  ``strict=True`` preserves the stop-at-first-garble
    behavior: the rest of a garbled buffer is abandoned and parsing
    resumes at the next alignment boundary.  Clean traces decode
    identically either way.
    """

    def __init__(
        self,
        registry: Optional[EventRegistry] = None,
        include_fillers: bool = False,
        check_committed: bool = True,
        batch: bool = True,
        strict: bool = False,
    ) -> None:
        self.registry = registry
        self.include_fillers = include_fillers
        self.check_committed = check_committed
        self.batch = batch
        self.strict = strict

    # ------------------------------------------------------------------
    def decode_records(self, records: Iterable[BufferRecord]) -> Trace:
        """Decode a collection of buffer records (any CPUs, any order)."""
        by_cpu: Dict[int, List[BufferRecord]] = {}
        for rec in records:
            by_cpu.setdefault(rec.cpu, []).append(rec)
        trace = Trace()
        batch = self.batch
        for cpu, recs in sorted(by_cpu.items()):
            recs.sort(key=lambda r: r.seq)
            events: List[TraceEvent] = []
            last_full: Optional[int] = None
            last_ts32: Optional[int] = None
            for rec in recs:
                if batch:
                    scan = scan_buffer(rec.words, rec.fill_words,
                                       recover=not self.strict)
                    evs, last_full, last_ts32 = self.assemble_scan(
                        rec, scan, trace.anomalies, last_full, last_ts32
                    )
                else:
                    evs = self.decode_buffer(rec, trace.anomalies)
                    last_full, last_ts32 = self._reconstruct_times(
                        evs, rec, trace.anomalies, last_full, last_ts32
                    )
                    if not self.include_fillers:
                        evs = [e for e in evs if not e.is_filler]
                events.extend(evs)
            trace.events_by_cpu[cpu] = events
        return trace

    def decode_one(self, record: BufferRecord) -> Trace:
        """Random access: decode a single buffer independently.

        Works from any alignment boundary because each buffer carries its
        own timestamp anchor — the §3.2 property.
        """
        return self.decode_records([record])

    # ------------------------------------------------------------------
    def decode_buffer(
        self, rec: BufferRecord, anomalies: List[Anomaly]
    ) -> List[TraceEvent]:
        """Walk one buffer, validating headers.

        In strict mode a garble verdict stops the walk — recovery is
        exactly what the paper prescribes: skip to the next alignment
        boundary, i.e. abandon the rest of this buffer.  In the default
        recovering mode the walk rescans forward for the next plausible
        header and salvages the remainder.
        """
        if self.batch:
            return self._decode_buffer_batch(rec, anomalies)
        return self._decode_buffer_scalar(rec, anomalies)

    def _decode_buffer_batch(
        self, rec: BufferRecord, anomalies: List[Anomaly]
    ) -> List[TraceEvent]:
        """Batched walk: scan columns first, then materialize events."""
        scan = scan_buffer(rec.words, rec.fill_words,
                           recover=not self.strict)
        events = self.materialize_scan(rec, scan, anomalies)
        self._check_committed(rec, anomalies)
        return events

    def materialize_scan(
        self,
        rec: BufferRecord,
        scan: BufferScan,
        anomalies: List[Anomaly],
        times: Optional[List[int]] = None,
        include_fillers: bool = True,
    ) -> List[TraceEvent]:
        """Turn a :class:`BufferScan` into :class:`TraceEvent` objects.

        Data words are sliced from the scan's own word column, so a scan
        whose offsets came back from a worker process needs no payload of
        its own.  ``times`` (when given) supplies the reconstructed full
        timestamps, indexed like the scan's events.  The garble (if any)
        is reported after the events so it lands in the same per-buffer
        position as the scalar path's report.
        """
        lookup = self.registry.lookup if self.registry is not None else None
        cols = scan.cols
        wl = cols.words
        ts_l = cols.ts32
        len_l = cols.length
        maj_l = cols.major
        min_l = cols.minor
        offs = scan.offsets
        if times is None:
            times = [None] * len(offs)
        cpu = rec.cpu
        seq = rec.seq
        ctrl = int(Major.CONTROL)
        filler = int(ControlMinor.FILLER)
        filler_ext = int(ControlMinor.FILLER_EXT)
        # Specs repeat heavily within a buffer; memoize the registry
        # lookup per (major, minor) so the hot loop pays a dict probe.
        specs: Dict[int, Optional[EventSpec]] = {}
        miss = _MISSING
        events: List[TraceEvent] = []
        append = events.append
        for i, off in enumerate(offs):
            major = maj_l[off]
            minor = min_l[off]
            if major == ctrl and (minor == filler or minor == filler_ext):
                if not include_fillers:
                    continue
                if minor == filler:
                    dl = 0          # filler payload words are not data
                else:
                    length = len_l[off]
                    # A real extended filler has header length 0 and its
                    # span word as payload; a FILLER_EXT minor with a
                    # nonzero length is an ordinary-shaped event.
                    dl = 1 if length == 0 else length - 1
            else:
                dl = len_l[off] - 1
            key = major << 16 | minor
            spec = specs.get(key, miss)
            if spec is miss:
                spec = specs[key] = (
                    lookup(major, minor) if lookup is not None else None
                )
            append(
                TraceEvent(
                    cpu, seq, off, ts_l[off], major, minor,
                    wl[off + 1 : off + 1 + dl], times[i], spec,
                )
            )
        self._emit_garbles(anomalies, rec, scan.garbles, scan.resumes)
        return events

    def assemble_scan(
        self,
        rec: BufferRecord,
        scan: BufferScan,
        anomalies: List[Anomaly],
        last_full: Optional[int],
        last_ts32: Optional[int],
        times: Optional[List[int]] = None,
        anchored: bool = False,
    ) -> Tuple[List[TraceEvent], Optional[int], Optional[int]]:
        """Full per-buffer batch pipeline: times, events, anomalies, state.

        ``times``/``anchored`` may be precomputed (by a decode worker);
        when ``times`` is ``None`` they are reconstructed here from the
        buffer's anchor or the carried ``(last_full, last_ts32)`` state —
        which is also how a worker's head-of-shard buffer (whose state
        lives in the previous shard) gets stitched by the parent.
        Returns the (filler-filtered, per ``include_fillers``) events and
        the updated timestamp state.
        """
        if times is None:
            anchors = find_anchors(scan)
            times = unwrap_times(
                scan.event_ts32(), None, None, last_full, last_ts32,
                anchors=anchors,
            )
            anchored = bool(anchors)
        events = self.materialize_scan(
            rec, scan, anomalies,
            times=times, include_fillers=self.include_fillers,
        )
        self._check_committed(rec, anomalies)
        if times is not None:
            if not anchored:
                anomalies.append(
                    Anomaly(rec.cpu, rec.seq, 0, "missing-anchor",
                            "no timestamp anchor; times unwrapped "
                            "from previous buffer")
                )
            last_full = times[-1]
            last_ts32 = scan.cols.ts32[scan.offsets[-1]]
        return events, last_full, last_ts32

    def _decode_buffer_scalar(
        self, rec: BufferRecord, anomalies: List[Anomaly]
    ) -> List[TraceEvent]:
        """The reference word-at-a-time walk (the seed implementation).

        Makes exactly the same accept/garble/resync decisions as
        :func:`scan_buffer` — the test suite fuzzes the two against each
        other on corrupted streams.
        """
        words = rec.words
        limit = min(rec.fill_words, len(words))
        recover = not self.strict
        events: List[TraceEvent] = []
        garbles: List[Tuple[int, str]] = []
        resumes: List[Optional[int]] = []

        def fields(o: int) -> Tuple[int, int, int, int]:
            h = unpack_header(int(words[o]))
            return h.timestamp, h.length, h.major, h.minor

        off = 0
        prev_ts32: Optional[int] = None
        while off < limit:
            word = int(words[off])
            hdr = unpack_header(word)
            length = hdr.length
            span = length
            verdict: Optional[str] = None
            if (
                length == EXTENDED_FILLER_LENGTH
                and hdr.major == Major.CONTROL
                and hdr.minor == ControlMinor.FILLER_EXT
            ):
                if off + 1 >= limit:
                    verdict = "truncated extended filler"
                else:
                    span = int(words[off + 1])
                    length = 2  # header + span word are the real payload
                    if span < 2 or off + span > limit:
                        verdict = f"bad extended filler span {span}"
            elif length == 0 or off + length > limit:
                verdict = f"invalid header {word:#018x} (length {length})"
            if verdict is None and prev_ts32 is not None \
                    and sdelta32(hdr.timestamp, prev_ts32) < 0 \
                    and not _is_anchor_header(hdr.major, hdr.minor,
                                              hdr.length):
                # A large backwards jump cannot come from a healthy stream:
                # per-CPU timestamps are monotonic by construction (§3.1).
                # Anchors are exempt — they carry the full value and exist
                # to bridge exactly such gaps (§3.2).
                verdict = f"timestamp regression {prev_ts32}->{hdr.timestamp}"
            if verdict is not None:
                garbles.append((off, verdict))
                if not recover:
                    resumes.append(None)
                    break
                resume = find_resync(fields, off + 1, limit, prev_ts32)
                resumes.append(resume)
                if resume is None:
                    break
                if prev_ts32 is not None \
                        and sdelta32(fields(resume)[0], prev_ts32) < 0:
                    # Shape-only (relaxed) resync: restart the chain.
                    prev_ts32 = None
                off = resume
                continue
            if hdr.major == Major.CONTROL and hdr.minor == ControlMinor.FILLER:
                # A plain filler is just a header spanning the remainder;
                # the words underneath it are not event data.
                data = []
            else:
                data = [int(w) for w in words[off + 1 : off + length]]
            spec = (
                self.registry.lookup(hdr.major, hdr.minor)
                if self.registry is not None
                else None
            )
            events.append(
                TraceEvent(
                    cpu=rec.cpu,
                    seq=rec.seq,
                    offset=off,
                    ts32=hdr.timestamp,
                    major=hdr.major,
                    minor=hdr.minor,
                    data=data,
                    spec=spec,
                )
            )
            prev_ts32 = hdr.timestamp
            off += span
        self._emit_garbles(anomalies, rec, garbles, resumes)
        self._check_committed(rec, anomalies)
        return events

    def _check_committed(
        self, rec: BufferRecord, anomalies: List[Anomaly]
    ) -> None:
        """The per-buffer ``traceCommit`` consistency check (§3.1)."""
        if (
            self.check_committed
            and not rec.partial
            and rec.committed != rec.fill_words
        ):
            anomalies.append(
                Anomaly(
                    rec.cpu,
                    rec.seq,
                    0,
                    "committed-mismatch",
                    f"committed {rec.committed} words, buffer holds {rec.fill_words}",
                )
            )

    def _emit_garbles(
        self,
        anomalies: List[Anomaly],
        rec: BufferRecord,
        garbles: List[Tuple[int, str]],
        resumes: List[Optional[int]],
    ) -> None:
        """Report each garble verdict, and the salvage that followed it."""
        for (off, detail), resume in zip(garbles, resumes):
            anomalies.append(Anomaly(rec.cpu, rec.seq, off, "garbled", detail))
            if resume is not None:
                anomalies.append(
                    Anomaly(
                        rec.cpu, rec.seq, off, "recovered-region",
                        f"skipped {resume - off} words; resynchronized at "
                        f"offset {resume}",
                    )
                )

    # ------------------------------------------------------------------
    def _reconstruct_times(
        self,
        events: List[TraceEvent],
        rec: BufferRecord,
        anomalies: List[Anomaly],
        last_full: Optional[int],
        last_ts32: Optional[int],
    ) -> Tuple[Optional[int], Optional[int]]:
        """Assign full 64-bit times using the buffer's anchor event.

        Falls back to unwrapping from the previous buffer's last event
        when a buffer has no anchor (possible after garbling).
        """
        if self.batch:
            return self._reconstruct_times_vector(
                events, rec, anomalies, last_full, last_ts32
            )
        return self._reconstruct_times_scalar(
            events, rec, anomalies, last_full, last_ts32
        )

    def _reconstruct_times_vector(
        self,
        events: List[TraceEvent],
        rec: BufferRecord,
        anomalies: List[Anomaly],
        last_full: Optional[int],
        last_ts32: Optional[int],
    ) -> Tuple[Optional[int], Optional[int]]:
        """Vectorized time reconstruction via :func:`unwrap_times`."""
        if not events:
            return (last_full, last_ts32)
        anchors = [
            (i, e.data[0])
            for i, e in enumerate(events)
            if e.major == Major.CONTROL
            and e.minor == ControlMinor.TIMESTAMP_ANCHOR
            and e.data
        ]
        times = unwrap_times(
            [e.ts32 for e in events], None, None,
            last_full, last_ts32, anchors=anchors,
        )
        if times is None:
            return (last_full, last_ts32)
        if not anchors:
            anomalies.append(
                Anomaly(rec.cpu, rec.seq, 0, "missing-anchor",
                        "no timestamp anchor; times unwrapped from previous buffer")
            )
        for e, t in zip(events, times):
            e.time = t
        return (events[-1].time, events[-1].ts32)

    def _reconstruct_times_scalar(
        self,
        events: List[TraceEvent],
        rec: BufferRecord,
        anomalies: List[Anomaly],
        last_full: Optional[int],
        last_ts32: Optional[int],
    ) -> Tuple[Optional[int], Optional[int]]:
        """The reference event-by-event accumulation (the seed path)."""
        if not events:
            return (last_full, last_ts32)
        def is_anchor(e: TraceEvent) -> bool:
            return (e.major == Major.CONTROL
                    and e.minor == ControlMinor.TIMESTAMP_ANCHOR
                    and bool(e.data))

        anchor_i = next(
            (i for i, e in enumerate(events) if is_anchor(e)), None)
        # Unwrapping is sequential: each consecutive 32-bit delta is small
        # (decode_buffer rejects regressions, and a healthy stream never
        # goes 2**31 ticks between adjacent events *except* across a
        # later anchor, which restates the full value), so full times
        # follow by accumulation in both directions from the anchor,
        # re-basing whenever another anchor appears.
        if anchor_i is not None:
            anchor = events[anchor_i]
            anchor.time = anchor.data[0]
            for i in range(anchor_i + 1, len(events)):
                if is_anchor(events[i]):
                    events[i].time = events[i].data[0]
                    continue
                events[i].time = events[i - 1].time + sdelta32(
                    events[i].ts32, events[i - 1].ts32
                )
            for i in range(anchor_i - 1, -1, -1):
                events[i].time = events[i + 1].time - sdelta32(
                    events[i + 1].ts32, events[i].ts32
                )
        elif last_full is not None and last_ts32 is not None:
            anomalies.append(
                Anomaly(rec.cpu, rec.seq, 0, "missing-anchor",
                        "no timestamp anchor; times unwrapped from previous buffer")
            )
            prev_full, prev32 = last_full, last_ts32
            for e in events:
                e.time = prev_full + sdelta32(e.ts32, prev32)
                prev_full, prev32 = e.time, e.ts32
        else:
            return (last_full, last_ts32)
        return (events[-1].time, events[-1].ts32)


# ----------------------------------------------------------------------
# Flat-array random access (§3.2 demonstration)
# ----------------------------------------------------------------------
def flat_records(
    words: Union[np.ndarray, Sequence[int]],
    buffer_words: int,
    cpu: int = 0,
    start_seq: int = 0,
) -> List[BufferRecord]:
    """View a flat word array (concatenated buffers) as buffer records.

    The array is what a raw on-disk trace looks like: back-to-back
    aligned buffers with no framing.  ``committed`` is unknown for raw
    data, so records are produced with committed checking disabled
    (callers should use a reader with ``check_committed=False``).
    """
    arr = np.asarray(words, dtype=np.uint64)
    records = []
    nbufs = (len(arr) + buffer_words - 1) // buffer_words
    for k in range(nbufs):
        chunk = arr[k * buffer_words : (k + 1) * buffer_words]
        fill = len(chunk)
        partial = fill < buffer_words
        records.append(
            BufferRecord(
                cpu=cpu,
                seq=start_seq + k,
                words=chunk,
                committed=fill,
                fill_words=fill,
                partial=partial,
            )
        )
    return records


def seek_boundary(word_offset: int, buffer_words: int) -> int:
    """Snap an arbitrary word offset back to its alignment boundary.

    ``word_offset`` must be non-negative and ``buffer_words`` positive —
    floor division would silently keep a negative offset negative and
    "snap" to a boundary that exists in no trace.
    """
    if buffer_words <= 0:
        raise ValueError(f"buffer_words must be positive, got {buffer_words}")
    if word_offset < 0:
        raise ValueError(f"word offset must be non-negative, got {word_offset}")
    return (word_offset // buffer_words) * buffer_words


def decode_from_offset(
    words: Union[np.ndarray, Sequence[int]],
    buffer_words: int,
    word_offset: int,
    registry: Optional[EventRegistry] = None,
    cpu: int = 0,
    strict: bool = False,
) -> Trace:
    """Seek into the middle of a flat trace and decode from there.

    This is the end-to-end demonstration of the paper's random-access
    property: pick any offset, snap to the preceding alignment boundary,
    and parsing proceeds as if from the beginning.  The offset must
    land inside the array: a negative or past-the-end offset names no
    boundary (the old behavior decoded from a wrong one — a negative
    offset sliced from the array's tail, a past-EOF offset produced an
    empty trace with an overshot start sequence — both silently).
    """
    n_words = len(words)
    if word_offset < 0 or (word_offset >= n_words and n_words > 0):
        raise ValueError(
            f"word offset {word_offset} outside the trace "
            f"(0 .. {n_words - 1})"
        )
    start = seek_boundary(word_offset, buffer_words)
    arr = np.asarray(words, dtype=np.uint64)[start:]
    records = flat_records(arr, buffer_words, cpu=cpu, start_seq=start // buffer_words)
    reader = TraceReader(registry=registry, check_committed=False, strict=strict)
    return reader.decode_records(records)
