"""Per-processor trace memory: buffers, control structure, completion.

The trace memory of one CPU is a ring of ``num_buffers`` buffers of
``buffer_words`` 64-bit words each (§3.1).  All frequently-referenced
control state — the reservation index, the per-buffer committed counts —
lives in this per-CPU structure so that logging on different CPUs never
shares cache lines (§2, "User-mapped per-processor buffers").

The reservation ``index`` is a monotonically increasing word counter;
``index & index_mask`` (the pseudo-code's ``INDEXMASK``) confines it to
the trace memory.  Buffer *sequence* ``index // buffer_words`` increases
forever; sequence ``s`` occupies slot ``s % num_buffers``.

Two modes:

* ``writeout`` — each completed buffer is copied into a
  :class:`BufferRecord` and queued for the sink ("available to be
  written out", §3.1).
* ``flight`` — no copies; the ring overwrites itself and
  :meth:`TraceControl.snapshot` reconstructs the most recent history
  (the "flight recorder" of §4.2).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Literal, Optional, Tuple

import numpy as np

from repro.atomic import AtomicArray, AtomicWord
from repro.core.constants import (
    COMMIT_COUNT_MASK,
    COMMIT_SEQ_SHIFT,
    DEFAULT_BUFFER_WORDS,
    DEFAULT_NUM_BUFFERS,
)

Mode = Literal["writeout", "flight"]


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def decode_commit_word(seq: int, word: int) -> int:
    """Committed word count carried by a raw (generation-tagged) commit word.

    Returns the low-half count when the word's tag matches buffer ``seq``,
    else 0 — the word belongs to a different occupant of the slot (either
    the count was never started for ``seq``, or the slot has been recycled).
    Shared by :class:`TraceControl` and the crash-dump reader, which sees
    the same words in a raw memory image.
    """
    if (word >> COMMIT_SEQ_SHIFT) == (seq & COMMIT_COUNT_MASK):
        return word & COMMIT_COUNT_MASK
    return 0


@dataclass
class BufferRecord:
    """A completed (or flushed-partial) trace buffer, ready for a sink."""

    cpu: int
    seq: int                 # monotonically increasing buffer sequence number
    words: np.ndarray        # uint64 words (a read-only view for mmap reads)
    committed: int           # per-buffer committed word count at completion
    fill_words: int          # words actually reserved (== len(words) unless partial)
    partial: bool = False    # True for the in-progress buffer emitted by flush()
    #: On-disk provenance of an mmap-backed payload — ``(path,
    #: payload_byte_offset, file_size, file_mtime_ns)``, stamped by the
    #: trace-file reader.  Lets the parallel decoder hand pool workers a
    #: descriptor to re-map instead of the payload bytes.  Not part of
    #: the record's value (excluded from repr/eq).
    _file_ref: Optional[Tuple[str, int, int, int]] = \
        field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.words = np.asarray(self.words, dtype=np.uint64)


class TraceControl:
    """Per-CPU trace control structure and trace memory.

    ``atomic_word_factory`` lets the discrete simulator substitute
    :class:`~repro.atomic.simatomic.SimAtomicWord` (including interference
    hooks) for the thread-safe default.  ``atomic_array_factory`` and
    ``array_factory`` are the matching seams for the per-buffer commit
    counts and the trace memory itself: the schedule-exploring model
    checker (:mod:`repro.check`) substitutes step-instrumented variants
    so that every atomic operation and buffer write becomes an explicit
    scheduling point.  Defaults are unchanged, so the hot path pays
    nothing for the seams.

    ``zero_ahead`` enables the paper's optional "cheaply zero-filling a
    buffer before use" mitigation (§3.1): unwritten holes then decode as
    definitively-invalid zero headers.  It is only safe where the
    buffer-start bookkeeping cannot be preempted for long — a real
    kernel's disabled context, or the deterministic simulator.  A
    user-level thread descheduled between deciding to zero and zeroing
    could destroy live events, so the default is off.
    """

    def __init__(
        self,
        cpu: int = 0,
        buffer_words: int = DEFAULT_BUFFER_WORDS,
        num_buffers: int = DEFAULT_NUM_BUFFERS,
        mode: Mode = "writeout",
        zero_ahead: bool = False,
        max_pending: Optional[int] = None,
        atomic_word_factory: Callable[[int], AtomicWord] = AtomicWord,
        atomic_array_factory: Callable[[int], AtomicArray] = AtomicArray,
        array_factory: Optional[Callable[[int], List[int]]] = None,
    ) -> None:
        if not _is_pow2(buffer_words):
            raise ValueError("buffer_words must be a power of two")
        if not _is_pow2(num_buffers) or num_buffers < 2:
            raise ValueError("num_buffers must be a power of two >= 2")
        if mode not in ("writeout", "flight"):
            raise ValueError(f"unknown mode {mode!r}")
        self.cpu = cpu
        self.buffer_words = buffer_words
        self.num_buffers = num_buffers
        self.total_words = buffer_words * num_buffers
        self.index_mask = self.total_words - 1
        self.mode: Mode = mode
        self.zero_ahead = zero_ahead
        self.max_pending = max_pending

        #: The trace memory itself (user-mapped in K42).  A plain list of
        #: ints: single-word stores are ~2x faster than numpy element
        #: assignment, and the write path is the hot path — records are
        #: converted to numpy only at (rare) copy-out.
        self.array: List[int] = (
            [0] * self.total_words if array_factory is None
            else array_factory(self.total_words)
        )
        self._zero_buffer: List[int] = [0] * buffer_words
        #: The reservation index the lockless algorithm CASes on.
        self.index = atomic_word_factory(0)
        #: Per-buffer committed word counts (traceCommit target).  Each
        #: word is generation-tagged (see :func:`decode_commit_word`).
        self.committed = atomic_array_factory(num_buffers)
        #: Highest buffer sequence whose start bookkeeping has been claimed.
        self.booked_seq = atomic_word_factory(0)
        #: Sequence number currently occupying each slot (flight snapshots).
        self.slot_seq: List[int] = [0] * num_buffers

        #: Completed-buffer descriptors (slot, seq) awaiting write-out
        #: (writeout mode only).  Payloads are copied out only once the
        #: queue exceeds ``num_buffers - 2`` — an emulated write-out
        #: daemon with slack, giving preempted writers almost a full
        #: ring's time to finish filling in their events ("the process
        #: will run again soon and finish filling in the event before
        #: another entity notices", §3.1) while still copying before the
        #: ring can recycle the slot.
        self.completed: Deque[tuple] = deque()
        # A deque: max_pending eviction drops from the front, and
        # list.pop(0) is O(n) per drop where popleft is O(1).
        self._written: Deque[BufferRecord] = deque()
        self._high_water = max(1, num_buffers - 2)

        # Statistics (plain ints: updated under the GIL, read for reporting;
        # exactness is not required and K42 kept these unsynchronized too).
        self.stats_fillers = 0
        self.stats_filler_words = 0
        self.stats_buffers_completed = 0
        self.stats_dropped_buffers = 0
        self.stats_events_logged = 0
        self.stats_words_logged = 0
        self.stats_cas_retries = 0
        self.stats_exact_boundary = 0

    def adopt_state(
        self,
        *,
        index: Optional[AtomicWord] = None,
        booked_seq: Optional[AtomicWord] = None,
        committed: Optional[AtomicArray] = None,
        array: Optional[List[int]] = None,
        slot_seq: Optional[List[int]] = None,
    ) -> "TraceControl":
        """Swap in externally-owned control state after construction.

        The factory parameters cover the common substitution (one
        factory per kind of state), but shared-memory backing needs each
        word placed at a *specific* offset of an existing segment — the
        factories' ``(initial)``/``(length)`` signatures cannot express
        that.  :class:`repro.shm.ShmTraceRegion` therefore constructs the
        control structure normally and adopts the shm-backed words here.
        Adopted state must present the same interface (and, for a
        re-attach, already hold protocol-consistent values); the protocol
        methods never cache references to the swapped attributes across
        calls, so adoption immediately after construction is safe.
        """
        if index is not None:
            self.index = index
        if booked_seq is not None:
            self.booked_seq = booked_seq
        if committed is not None:
            self.committed = committed
        if array is not None:
            if len(array) != self.total_words:
                raise ValueError(
                    f"adopted trace memory has {len(array)} words, "
                    f"geometry needs {self.total_words}")
            self.array = array
        if slot_seq is not None:
            if len(slot_seq) != self.num_buffers:
                raise ValueError(
                    f"adopted slot_seq has {len(slot_seq)} entries, "
                    f"geometry needs {self.num_buffers}")
            self.slot_seq = slot_seq
        return self

    # -- geometry helpers --------------------------------------------------
    def slot_of(self, seq: int) -> int:
        return seq % self.num_buffers

    def pos_of(self, index: int) -> int:
        """Physical word offset of a reservation index (INDEXMASK)."""
        return index & self.index_mask

    def buffer_of(self, index: int) -> int:
        """Buffer sequence number containing ``index``."""
        return index // self.buffer_words

    def used_in_buffer(self, index: int) -> int:
        """Words already reserved in the buffer containing ``index``."""
        return index & (self.buffer_words - 1)

    # -- committed counts (traceCommit) ------------------------------------
    def commit(self, seq: int, length: int) -> None:
        """traceCommit: add ``length`` to buffer ``seq``'s committed count.

        Lock-free CAS loop on the slot's generation-tagged word.  The
        first committer of a new occupant installs the new tag with its
        own length, resetting the recycled slot implicitly; this is what
        makes the reset safe without ordering it against the buffer-start
        bookkeeping (the schedule checker found that a booking-time
        ``store(slot, 0)`` can erase commits from writers that entered
        the buffer before the booker ran).  A commit whose buffer has
        already been recycled (a writer descheduled for a whole ring
        trip) is dropped — its buffer is gone, and polluting the new
        occupant's count would turn one lost event into a falsely
        garbled buffer.
        """
        slot = seq % self.num_buffers
        tag = seq & COMMIT_COUNT_MASK
        committed = self.committed
        while True:
            cur = committed.load(slot)
            cur_tag = cur >> COMMIT_SEQ_SHIFT
            if cur_tag == tag:
                new = cur + length
            elif ((tag - cur_tag) & COMMIT_COUNT_MASK) <= COMMIT_COUNT_MASK // 2:
                # Tag is older than ours (mod 2**32): first commit for the
                # new occupant resets the count.
                new = (tag << COMMIT_SEQ_SHIFT) | length
            else:
                return  # our buffer was recycled; the commit is moot
            if committed.compare_and_store(slot, cur, new):
                return

    def committed_count(self, seq: int) -> int:
        """Committed words recorded for buffer ``seq`` (0 if recycled)."""
        return decode_commit_word(seq, self.committed.load(seq % self.num_buffers))

    # -- completion --------------------------------------------------------
    def complete_buffer(self, seq: int) -> None:
        """Queue buffer ``seq`` for write-out.

        Called by the (single) thread that claimed the start-of-buffer
        bookkeeping for ``seq + 1``; in flight mode the ring is the
        recorder and nothing is queued.
        """
        self.stats_buffers_completed += 1
        if self.mode != "writeout":
            return
        self.completed.append((self.slot_of(seq), seq))
        while len(self.completed) > self._high_water:
            self._writeout_one()

    def _writeout_one(self) -> None:
        """Copy the oldest completed buffer out of the ring.

        A descriptor whose slot was already recycled by a newer buffer
        counts as dropped — the write-out side failed to keep up, the
        same data-loss mode a real system has.
        """
        try:
            slot, seq = self.completed.popleft()
        except IndexError:
            return
        if self.slot_seq[slot] != seq:
            self.stats_dropped_buffers += 1
            return
        start = slot * self.buffer_words
        self._written.append(
            BufferRecord(
                cpu=self.cpu,
                seq=seq,
                words=self.array[start : start + self.buffer_words],
                committed=self.committed_count(seq),
                fill_words=self.buffer_words,
            )
        )
        if self.max_pending is not None:
            while len(self._written) > self.max_pending:
                self._written.popleft()
                self.stats_dropped_buffers += 1

    def drain(self) -> List[BufferRecord]:
        """Write out everything completed so far and return it."""
        while self.completed:
            self._writeout_one()
        out = list(self._written)
        self._written.clear()
        return out

    def flush(self) -> List[BufferRecord]:
        """Drain completed buffers plus the current partial buffer.

        Only meaningful once logging has quiesced; the partial record is
        marked so readers know not to expect a filler at its end.  A
        buffer whose last event ended exactly on the boundary with no
        subsequent reservation (so its completion bookkeeping never ran)
        is emitted here too — otherwise its events would be lost.
        """
        records = self.drain()
        index = self.index.load()
        fill = self.used_in_buffer(index)
        seq = self.buffer_of(index)
        if fill > 0:
            slot = self.slot_of(seq)
            start = slot * self.buffer_words
            records.append(
                BufferRecord(
                    cpu=self.cpu,
                    seq=seq,
                    words=self.array[start : start + self.buffer_words],
                    committed=self.committed_count(seq),
                    fill_words=fill,
                    partial=True,
                )
            )
        elif index > 0 and self.booked_seq.load() < seq:
            # Exact fill at quiescence: buffer seq-1 is complete but was
            # never booked (no reservation followed it).
            prev = seq - 1
            slot = self.slot_of(prev)
            start = slot * self.buffer_words
            records.append(
                BufferRecord(
                    cpu=self.cpu,
                    seq=prev,
                    words=self.array[start : start + self.buffer_words],
                    committed=self.committed_count(prev),
                    fill_words=self.buffer_words,
                )
            )
        return records

    def snapshot(self) -> List[BufferRecord]:
        """Flight-recorder snapshot: the most recent buffers, oldest first.

        Reconstructs records straight from the ring; the currently-active
        buffer is included as partial.  Usable in either mode (in writeout
        mode it duplicates data already queued).
        """
        index = self.index.load()
        cur_seq = self.buffer_of(index)
        fill = self.used_in_buffer(index)
        cur_slot = self.slot_of(cur_seq)
        ahead_slot = self.slot_of(cur_seq + 1)
        records: List[BufferRecord] = []
        for slot in range(self.num_buffers):
            seq = self.slot_seq[slot]
            if seq == cur_seq and fill == 0:
                continue  # fresh, nothing reserved yet
            if self.zero_ahead and slot == ahead_slot and slot != cur_slot:
                continue  # zero-ahead destroyed this slot's old contents
            start = slot * self.buffer_words
            partial = seq == cur_seq
            records.append(
                BufferRecord(
                    cpu=self.cpu,
                    seq=seq,
                    words=self.array[start : start + self.buffer_words],
                    committed=self.committed_count(seq),
                    fill_words=fill if partial else self.buffer_words,
                    partial=partial,
                )
            )
        records.sort(key=lambda r: r.seq)
        return records

    def zero_slot(self, slot: int) -> None:
        start = slot * self.buffer_words
        self.array[start : start + self.buffer_words] = self._zero_buffer

    def reset(self) -> None:
        """Reset to the pristine state (index 0, empty ring)."""
        self.array[:] = [0] * self.total_words
        self.index.store(0)
        self.booked_seq.store(0)
        for slot in range(self.num_buffers):
            self.committed.store(slot, 0)
        self.slot_seq[:] = [0] * self.num_buffers
        self.completed.clear()
        self._written.clear()
