"""Lockless variable-length event logging (the paper's Figure 2).

``traceReserve``/``traceLog``/``traceCommit`` translated faithfully:

* a writer reserves space by atomically advancing the per-CPU index with
  compare-and-store; the winner owns the reserved words and fills them in
  with **no lock held**;
* the timestamp is (re)obtained inside the retry loop, which — as the
  paper argues — guarantees monotonically increasing timestamps in
  reservation order on each CPU;
* when an event would cross the buffer boundary the slow path claims the
  remainder with the same CAS, writes a filler event over it, and the
  buffer-start bookkeeping (completion of the previous buffer, committed
  count reset, zero-ahead, timestamp anchor) is claimed exactly once per
  buffer through a CAS on ``booked_seq``;
* ``traceCommit`` adds the event length to the per-buffer committed
  count so that write-out can detect buffers garbled by writers that
  were preempted or killed mid-log (§3.1).

A writer preempted between reserve and log leaves a hole — exactly the
failure mode §3.1 analyses.  Nothing here prevents it (that would need
locking); the reader's validity heuristics and the committed counts
detect it.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

from repro.core.buffers import TraceControl
from repro.core.constants import (
    EXTENDED_FILLER_LENGTH,
    MAX_EVENT_WORDS,
    TIMESTAMP_MASK,
    WORD_MASK,
)
from repro.core.header import pack_header
from repro.core.majors import ControlMinor, Major
from repro.core.mask import TraceMask
from repro.core.packing import pack_values
from repro.core.registry import EventRegistry, EventSpec
from repro.core.timestamps import ClockSource


class EventTooLargeError(ValueError):
    """Raised when an event cannot fit in a single trace buffer."""


class TraceLogger:
    """Per-CPU lockless logger bound to one :class:`TraceControl`.

    In K42 the equivalent state is mapped into every address space so
    that applications, libraries, servers and the kernel all log through
    the same per-CPU structures without system calls.
    """

    def __init__(
        self,
        control: TraceControl,
        mask: TraceMask,
        clock: ClockSource,
        registry: Optional[EventRegistry] = None,
        commit_counts: bool = True,
    ) -> None:
        self.control = control
        self.mask = mask
        self.clock = clock
        self.registry = registry
        self.commit_counts = commit_counts
        self.cpu = control.cpu

    # ------------------------------------------------------------------
    # Fast-path logging API (per-major constant-arity macros, §3.2)
    # ------------------------------------------------------------------
    def log0(self, major: int, minor: int) -> bool:
        """Log a header-only event (no data words)."""
        if not (self.mask.value >> major) & 1:
            return False
        return self._log_unmasked(major, minor, ())

    def log1(self, major: int, minor: int, w0: int) -> bool:
        if not (self.mask.value >> major) & 1:
            return False
        return self._log_unmasked(major, minor, (w0,))

    def log2(self, major: int, minor: int, w0: int, w1: int) -> bool:
        if not (self.mask.value >> major) & 1:
            return False
        return self._log_unmasked(major, minor, (w0, w1))

    def log3(self, major: int, minor: int, w0: int, w1: int, w2: int) -> bool:
        if not (self.mask.value >> major) & 1:
            return False
        return self._log_unmasked(major, minor, (w0, w1, w2))

    def log_words(self, major: int, minor: int, data: Sequence[int] = ()) -> bool:
        """Log an event whose data words are already packed."""
        if not (self.mask.value >> major) & 1:
            return False
        return self._log_unmasked(major, minor, data)

    def log_event(self, spec: Union[str, EventSpec], *values) -> bool:
        """Log a registered event by name or spec, packing ``values``
        according to its layout string (the generic, non-constant-length
        path of §3.2)."""
        if isinstance(spec, str):
            if self.registry is None:
                raise ValueError("log_event by name requires a registry")
            found = self.registry.by_name(spec)
            if found is None:
                raise KeyError(f"unknown event name {spec!r}")
            spec = found
        if not (self.mask.value >> spec.major) & 1:
            return False
        words = pack_values(spec.layout, values)
        return self._log_unmasked(spec.major, spec.minor, words)

    # ------------------------------------------------------------------
    # Core algorithm
    # ------------------------------------------------------------------
    def _log_unmasked(self, major: int, minor: int, data: Sequence[int]) -> bool:
        """traceLog: reserve, write header + data, commit.

        Header packing and slot arithmetic are inlined — this is the
        system's hottest path and per-call overhead is the product the
        paper spent a page of assembler on.
        """
        ctl = self.control
        length = len(data) + 1  # +1 for the header word
        if length > MAX_EVENT_WORDS:
            raise EventTooLargeError(
                f"event of {length} words exceeds the 10-bit length field"
            )
        if length > ctl.buffer_words:
            raise EventTooLargeError(
                f"event of {length} words exceeds buffer of {ctl.buffer_words}"
            )
        index, ts = self._reserve(length)
        arr = ctl.array
        pos = index & ctl.index_mask
        # Inline pack_header (fields are in range by construction here).
        arr[pos] = (
            ((ts & TIMESTAMP_MASK) << 32)
            | (length << 22)
            | (major << 16)
            | (minor & 0xFFFF)
        )
        i = pos + 1
        for w in data:
            arr[i] = w & WORD_MASK
            i += 1
        if self.commit_counts:
            ctl.commit(index // ctl.buffer_words, length)
        ctl.stats_events_logged += 1
        ctl.stats_words_logged += length
        return True

    def _reserve(self, length: int) -> Tuple[int, int]:
        """traceReserve: CAS-advance the index; returns (index, full_ts).

        The timestamp is re-read on every retry so that timestamps are
        monotonic in reservation order (Figure 2 and §3.1).  The full
        64-bit value is returned; callers truncate to 32 bits for the
        header, and the anchor event stores the full value as its data
        word — from the *same* clock read, so reconstruction is exact.
        """
        ctl = self.control
        index = ctl.index
        bw = ctl.buffer_words
        bmask = bw - 1
        clock_now = self.clock.now
        cpu = self.cpu
        while True:
            old = index.load()
            used = old & bmask
            if used + length > bw:
                self._reserve_slow(old, length)
                continue
            ts = clock_now(cpu)
            if index.compare_and_store(old, old + length):
                if used == 0 and old > 0:
                    # First reservation in a buffer entered by exact fill:
                    # claim the start-of-buffer bookkeeping.
                    self._maybe_book(old // bw, exact=True)
                return old, ts
            ctl.stats_cas_retries += 1

    def _reserve_slow(self, old: int, length: int) -> None:
        """traceReserveSlow: filler event + move to the next buffer.

        Claims the remainder of the current buffer with the same CAS the
        fast path uses; the winner writes a filler spanning it so events
        never cross the alignment boundary (§3.2).  Win or lose, the
        caller retries the fast path.
        """
        ctl = self.control
        bw = ctl.buffer_words
        used = old & (bw - 1)
        if used == 0:
            return  # raced: buffer already advanced under us
        rem = bw - used
        ts = self.clock.now(self.cpu) & TIMESTAMP_MASK
        if not ctl.index.compare_and_store(old, old + rem):
            ctl.stats_cas_retries += 1
            return
        arr = ctl.array
        pos = old & ctl.index_mask
        if rem <= MAX_EVENT_WORDS:
            # A filler is just a header whose length is the remainder.
            arr[pos] = pack_header(ts, rem, Major.CONTROL, ControlMinor.FILLER)
        else:
            # Remainder too large for the 10-bit length field: extended
            # filler carries the true span in its single data word.
            arr[pos] = pack_header(
                ts, EXTENDED_FILLER_LENGTH, Major.CONTROL, ControlMinor.FILLER_EXT
            )
            arr[pos + 1] = rem
        seq = old // bw
        if self.commit_counts:
            ctl.commit(seq, rem)
        ctl.stats_fillers += 1
        ctl.stats_filler_words += rem
        self._maybe_book(seq + 1, exact=False)

    def _maybe_book(self, seq: int, exact: bool) -> None:
        """Claim and perform start-of-buffer bookkeeping for ``seq``.

        Exactly one thread wins the CAS on ``booked_seq`` per buffer.  The
        winner completes the previous buffer(s), zeroes the buffer *ahead*
        (so unwritten holes decode as invalid, one of §3.1's proposed
        mitigations), and logs the full-width timestamp anchor that random
        access needs.  The new buffer's committed count is *not* reset
        here: writers can reserve into buffer ``seq`` the moment the index
        crosses the boundary — before the booker runs — so a store of 0
        here can erase their commits and falsely garble a clean buffer
        (found by the schedule checker, :mod:`repro.check`).  The reset is
        instead folded into :meth:`TraceControl.commit` via the
        generation tag.
        """
        ctl = self.control
        booked = ctl.booked_seq
        while True:
            cur = booked.load()
            if cur >= seq:
                return
            if booked.compare_and_store(cur, seq):
                break
        slot = ctl.slot_of(seq)
        # Normally completes just seq-1; the range covers transitions whose
        # booker was preempted before claiming (see DESIGN.md §3.2 notes).
        for s in range(cur, seq):
            ctl.complete_buffer(s)
        ctl.slot_seq[slot] = seq
        if exact:
            ctl.stats_exact_boundary += 1
        if ctl.zero_ahead and ctl.index.load() < (seq + 1) * ctl.buffer_words:
            # Only zero the slot ahead while the index is still inside
            # buffer ``seq``: a booker descheduled long enough for the
            # index to advance must not destroy live data.  (The residual
            # check-to-zero window is the per-buffer-count heuristic's
            # job to catch, exactly as §3.1 frames it.)
            nxt = ctl.slot_of(seq + 1)
            if nxt != slot and ctl.index.load() < (seq + 1) * ctl.buffer_words:
                ctl.zero_slot(nxt)
        self._log_anchor(seq)

    def _log_anchor(self, seq: int) -> None:
        """Log the 64-bit timestamp anchor + buffer-sequence marker.

        These are infrastructure events: they bypass the mask so random
        access works regardless of which majors the user enabled.
        """
        self.log_timestamp_anchor()
        self._log_unmasked(Major.CONTROL, ControlMinor.BUFFER_START, (seq,))

    def log_timestamp_anchor(self) -> None:
        """Log a standalone full-width timestamp anchor (§3.2).

        The anchor's header timestamp and its full-width data word come
        from one clock read (via ``_reserve``), so a reader can
        reconstruct absolute times exactly.  Loggers that start on an
        already-anchored buffer long after its anchor was written — a
        writer process attaching to a shared-memory region seconds
        after its creation — must call this before their first event:
        a forward gap of 2^31 ticks or more is indistinguishable from
        a backwards wrap in the 32-bit header timestamps, and only a
        fresh full-width anchor lets the readers bridge it.
        """
        ctl = self.control
        index, ts = self._reserve(2)
        pos = index & ctl.index_mask
        ctl.array[pos] = pack_header(
            ts & TIMESTAMP_MASK, 2, Major.CONTROL, ControlMinor.TIMESTAMP_ANCHOR
        )
        ctl.array[pos + 1] = ts & WORD_MASK
        if self.commit_counts:
            ctl.commit(ctl.buffer_of(index), 2)
        ctl.stats_events_logged += 1
        ctl.stats_words_logged += 2

    def start(self) -> None:
        """Log the anchor for the very first buffer (sequence 0)."""
        self._log_anchor(0)


class NullTraceLogger:
    """The "compiled out" configuration (§2, goal 6).

    Presents the same API as :class:`TraceLogger` but contains no trace
    statements at all — used to measure the zero-impact configuration.
    """

    def __init__(self, *args, **kwargs) -> None:
        pass

    def log0(self, major: int, minor: int) -> bool:
        return False

    def log1(self, major: int, minor: int, w0: int) -> bool:
        return False

    def log2(self, major: int, minor: int, w0: int, w1: int) -> bool:
        return False

    def log3(self, major: int, minor: int, w0: int, w1: int, w2: int) -> bool:
        return False

    def log_words(self, major: int, minor: int, data: Sequence[int] = ()) -> bool:
        return False

    def log_event(self, spec, *values) -> bool:
        return False

    def start(self) -> None:
        pass

    def log_timestamp_anchor(self) -> None:
        pass
