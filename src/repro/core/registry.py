"""Self-describing trace events: the ``eventParse`` registry (§4.4).

When a developer defines a new event in K42 they fill in an ``eventParse``
structure with three fields: a ``__TR(arg)`` macro that makes the event
name available as both a constant and a string, a layout string giving
the binary format of the event data (space-separated ``8``/``16``/``32``/
``64``/``str`` tokens), and a printf-like display string in which
``%N[fmt]`` interpolates token ``N`` with C format ``fmt``.  The paper's
example::

    {__TR(TRACE_MEM_FCMCOM_ATCH_REG), "64 64",
     "Region %0[%llx] attach to FCM %1[%llx]"}

This structure lets generic tools display any event without special
knowledge of it — the property the listing tool (Figure 5) relies on.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Sequence, Tuple, Union

from repro.core import majors as M
from repro.core.packing import LayoutPlan, compile_layout, parse_layout, unpack_values

Value = Union[int, str]

_REF_RE = re.compile(r"%(\d+)\[([^\]]*)\]")

# C printf conversions we translate; anything unrecognized falls back to str().
_C_FORMATS = {
    "%llx": "{:x}", "%lx": "{:x}", "%x": "{:x}",
    "%llX": "{:X}", "%X": "{:X}",
    "%lld": "{:d}", "%ld": "{:d}", "%d": "{:d}",
    "%llu": "{:d}", "%lu": "{:d}", "%u": "{:d}",
    "%s": "{}", "%c": "{}",
    "%016llx": "{:016x}", "%08x": "{:08x}",
}


def _apply_c_format(fmt: str, value: Value) -> str:
    py = _C_FORMATS.get(fmt)
    if py is None:
        return str(value)
    return py.format(value)


@dataclass(frozen=True)
class EventSpec:
    """One entry of the self-describing event table."""

    major: int
    minor: int
    name: str          # the __TR name, e.g. "TRC_MEM_FCMCOM_ATCH_REG"
    layout: str        # e.g. "64 64" or "64 str"
    fmt: str           # e.g. "Region %0[%llx] attach to FCM %1[%llx]"

    def __post_init__(self) -> None:
        tokens = parse_layout(self.layout)
        for m in _REF_RE.finditer(self.fmt):
            idx = int(m.group(1))
            if idx >= len(tokens):
                raise ValueError(
                    f"{self.name}: format references token %{idx} but layout "
                    f"{self.layout!r} has only {len(tokens)} tokens"
                )

    @property
    def plan(self) -> LayoutPlan:
        """The compiled (memoized) decode plan for this event's layout."""
        return compile_layout(self.layout)

    @property
    def fixed_data_words(self) -> Optional[int]:
        """Data-word count if the layout is constant-length, else None.

        Mirrors K42's per-major-ID macros: constant-length events are
        logged without variable-argument machinery (§3.2).
        """
        return self.plan.data_words

    def decode(self, words: Sequence[int]) -> list[Value]:
        """Decode raw data words into field values per the layout."""
        return unpack_values(self.layout, words)

    def render(self, words: Sequence[int]) -> str:
        """Produce the human-readable description (third column, Fig 5)."""
        try:
            values = self.decode(words)
        except (ValueError, UnicodeDecodeError):
            return f"<undecodable data: {[hex(int(w)) for w in words]}>"

        def sub(m: re.Match[str]) -> str:
            return _apply_c_format(m.group(2), values[int(m.group(1))])

        return _REF_RE.sub(sub, self.fmt)


class EventRegistry:
    """Registry of :class:`EventSpec` keyed by (major, minor)."""

    def __init__(self) -> None:
        self._by_id: Dict[Tuple[int, int], EventSpec] = {}
        self._by_name: Dict[str, EventSpec] = {}

    def register(self, spec: EventSpec) -> EventSpec:
        key = (spec.major, spec.minor)
        if key in self._by_id:
            raise ValueError(f"event {key} already registered as {self._by_id[key].name}")
        if spec.name in self._by_name:
            raise ValueError(f"event name {spec.name!r} already registered")
        self._by_id[key] = spec
        self._by_name[spec.name] = spec
        return spec

    def define(self, major: int, minor: int, name: str, layout: str, fmt: str) -> EventSpec:
        return self.register(EventSpec(major, minor, name, layout, fmt))

    def lookup(self, major: int, minor: int) -> Optional[EventSpec]:
        return self._by_id.get((major, minor))

    def by_name(self, name: str) -> Optional[EventSpec]:
        return self._by_name.get(name)

    def __iter__(self) -> Iterator[EventSpec]:
        return iter(self._by_id.values())

    def __len__(self) -> int:
        return len(self._by_id)

    def __contains__(self, key: Tuple[int, int]) -> bool:
        return key in self._by_id

    def to_markdown(self) -> str:
        """Render the event table as a reference document.

        The registry is self-describing (§4.4), so the complete event
        reference is generated from it — docs/events.md is this output.
        """
        from repro.core.majors import Major

        lines = [
            "# Trace event reference",
            "",
            "Generated from the default event registry "
            "(`repro.core.registry.default_registry`).",
            "Regenerate with `python docs/generate.py`.",
            "",
        ]
        by_major: Dict[int, list] = {}
        for spec in self:
            by_major.setdefault(spec.major, []).append(spec)
        for major in sorted(by_major):
            try:
                title = Major(major).name
            except ValueError:
                title = str(major)
            lines.append(f"## Major {major} — {title}")
            lines.append("")
            lines.append("| minor | name | layout | rendering |")
            lines.append("|---|---|---|---|")
            for spec in sorted(by_major[major], key=lambda s: s.minor):
                layout = spec.layout if spec.layout else "(no data)"
                fmt = spec.fmt.replace("|", "\\|")
                lines.append(
                    f"| {spec.minor} | `{spec.name}` | `{layout}` | {fmt} |"
                )
            lines.append("")
        return "\n".join(lines)


def default_registry() -> EventRegistry:
    """The built-in event table covering every event the simulator logs.

    Names follow the paper's figures (TRC_EXCEPTION_PGFLT, and so on).
    """
    r = EventRegistry()
    d = r.define
    C, Mem, P, E, IO, L, U, S, HW, PC, A = (
        M.Major.CONTROL, M.Major.MEM, M.Major.PROC, M.Major.EXC, M.Major.IO,
        M.Major.LOCK, M.Major.USER, M.Major.SYSCALL, M.Major.HWPERF,
        M.Major.PCSAMPLE, M.Major.APP,
    )

    # -- infrastructure --------------------------------------------------
    d(C, M.ControlMinor.FILLER, "TRC_CTRL_FILLER", "", "filler to alignment boundary")
    d(C, M.ControlMinor.FILLER_EXT, "TRC_CTRL_FILLER_EXT", "64",
      "extended filler spanning %0[%llu] words")
    d(C, M.ControlMinor.TIMESTAMP_ANCHOR, "TRC_CTRL_TS_ANCHOR", "64",
      "timestamp anchor %0[%llu]")
    d(C, M.ControlMinor.BUFFER_START, "TRC_CTRL_BUFFER_START", "64",
      "buffer sequence %0[%llu]")
    d(C, M.ControlMinor.MASK_CHANGE, "TRC_CTRL_MASK_CHANGE", "64 64",
      "trace mask changed from %0[%llx] to %1[%llx]")

    # -- test / app scratch ---------------------------------------------
    d(M.Major.TEST, 0, "TRC_TEST_EVENT0", "", "test event with no data")
    d(M.Major.TEST, 1, "TRC_TEST_EVENT1", "64", "test event value %0[%llx]")
    d(M.Major.TEST, 2, "TRC_TEST_EVENT2", "64 64", "test pair %0[%llx] %1[%llx]")
    d(M.Major.TEST, 3, "TRC_TEST_STR", "64 str", "test tagged %0[%llu] name %1[%s]")
    d(M.Major.TEST, 4, "TRC_TEST_PACKED", "8 16 32", "packed %0[%u] %1[%u] %2[%u]")

    # -- memory (Figure 5 names) -----------------------------------------
    d(Mem, M.MemMinor.FCM_ATTACH_REGION, "TRC_MEM_FCMCOM_ATCH_REG", "64 64",
      "Region %0[%llx] attached to FCM %1[%llx]")
    d(Mem, M.MemMinor.FCM_CREATE, "TRC_MEM_FCMCRW_CREATE", "64", "ref %0[%llx]")
    d(Mem, M.MemMinor.REGION_CREATE_FIXED, "TRC_MEM_REG_CREATE_FIX", "64 64 64",
      "Region default %0[%llx] created fixlen addr %1[%llx] size %2[%llx]")
    d(Mem, M.MemMinor.REGION_INIT_FIXED, "TRC_MEM_REG_DEF_INITFIXED", "64 64",
      "region default init fixed %0[%llx] addr %1[%llx]")
    d(Mem, M.MemMinor.ALLOC_REGION_HOLD, "TRC_MEM_ALLOC_REG_HOLD", "64 64",
      "alloc region holder addr %0[%llx] size %1[%llx]")
    d(Mem, M.MemMinor.PAGE_ALLOC, "TRC_MEM_PAGE_ALLOC", "64 64",
      "alloc %1[%llu] pages at %0[%llx]")
    d(Mem, M.MemMinor.PAGE_DEALLOC, "TRC_MEM_PAGE_DEALLOC", "64 64",
      "dealloc %1[%llu] pages at %0[%llx]")

    # -- process / scheduling --------------------------------------------
    d(P, M.ProcMinor.CREATE, "TRC_PROC_CREATE", "64 64 str",
      "process %0[%llu] created by %1[%llu] name %2[%s]")
    d(P, M.ProcMinor.EXIT, "TRC_PROC_EXIT", "64 64",
      "process %0[%llu] exited status %1[%lld]")
    d(P, M.ProcMinor.CONTEXT_SWITCH, "TRC_PROC_CTX_SWITCH", "64 64",
      "context switch from thread %0[%llx] to thread %1[%llx]")
    d(P, M.ProcMinor.THREAD_CREATE, "TRC_PROC_THR_CREATE", "64 64",
      "thread %0[%llx] created in process %1[%llu]")
    d(P, M.ProcMinor.THREAD_EXIT, "TRC_PROC_THR_EXIT", "64",
      "thread %0[%llx] exited")
    d(P, M.ProcMinor.MIGRATE, "TRC_PROC_MIGRATE", "64 16 16",
      "thread %0[%llx] migrated from cpu %1[%u] to cpu %2[%u]")
    d(P, M.ProcMinor.IDLE_START, "TRC_PROC_IDLE_START", "", "cpu went idle")
    d(P, M.ProcMinor.IDLE_END, "TRC_PROC_IDLE_END", "", "cpu left idle")

    # -- exceptions (Figure 5 names) --------------------------------------
    d(E, M.ExcMinor.PGFLT, "TRC_EXCEPTION_PGFLT", "64 64",
      "PGFLT, kernel thread %0[%llx], faultAddr %1[%llx]")
    d(E, M.ExcMinor.PGFLT_DONE, "TRC_EXCEPTION_PGFLT_DONE", "64 64",
      "PGFLT DONE, kernel thread %0[%llx], faultAddr %1[%llx]")
    d(E, M.ExcMinor.PPC_CALL, "TRC_EXCEPTION_PPC_CALL", "64",
      "PPC CALL, commID %0[%llx]")
    d(E, M.ExcMinor.PPC_RETURN, "TRC_EXCEPTION_PPC_RETURN", "64",
      "PPC RETURN, commID %0[%llx]")
    d(E, M.ExcMinor.TIMER_INTERRUPT, "TRC_EXCEPTION_TIMER", "64",
      "timer interrupt tick %0[%llu]")
    d(E, M.ExcMinor.IO_INTERRUPT, "TRC_EXCEPTION_IO_INTR", "64",
      "I/O interrupt device %0[%llu]")

    # -- I/O ---------------------------------------------------------------
    d(IO, M.IOMinor.OPEN, "TRC_IO_OPEN", "64 str",
      "process %0[%llu] open %1[%s]")
    d(IO, M.IOMinor.CLOSE, "TRC_IO_CLOSE", "64 64",
      "process %0[%llu] close fd %1[%llu]")
    d(IO, M.IOMinor.READ_START, "TRC_IO_READ_START", "64 64 64",
      "process %0[%llu] read fd %1[%llu] bytes %2[%llu]")
    d(IO, M.IOMinor.READ_DONE, "TRC_IO_READ_DONE", "64 64",
      "process %0[%llu] read done fd %1[%llu]")
    d(IO, M.IOMinor.WRITE_START, "TRC_IO_WRITE_START", "64 64 64",
      "process %0[%llu] write fd %1[%llu] bytes %2[%llu]")
    d(IO, M.IOMinor.WRITE_DONE, "TRC_IO_WRITE_DONE", "64 64",
      "process %0[%llu] write done fd %1[%llu]")
    d(IO, M.IOMinor.LOOKUP, "TRC_IO_LOOKUP", "str",
      "path lookup %0[%s]")

    # -- locks (drives Figure 7) -------------------------------------------
    d(L, M.LockMinor.ACQUIRE, "TRC_LOCK_ACQUIRE", "64",
      "lock %0[%llx] acquired uncontended")
    d(L, M.LockMinor.CONTEND_START, "TRC_LOCK_CONTEND_START", "64 64",
      "lock %0[%llx] contended, call chain %1[%llx]")
    d(L, M.LockMinor.CONTEND_END, "TRC_LOCK_CONTEND_END", "64 64",
      "lock %0[%llx] acquired after %1[%llu] spins")
    d(L, M.LockMinor.RELEASE, "TRC_LOCK_RELEASE", "64",
      "lock %0[%llx] released")
    d(L, M.LockMinor.BLOCK, "TRC_LOCK_BLOCK", "64",
      "lock %0[%llx] waiter blocked")

    # -- user (Figure 4 marked events) --------------------------------------
    d(U, M.UserMinor.RUN_ULOADER, "TRC_USER_RUN_UL_LOADER", "64 64 str",
      "process %0[%llu] created new process with id %1[%llu] name %2[%s]")
    d(U, M.UserMinor.RETURNED_MAIN, "TRC_USER_RETURNED_MAIN", "64",
      "process %0[%llu] returned from main")
    d(U, M.UserMinor.APP_MARK, "TRC_USER_APP_MARK", "64 str",
      "app mark %0[%llu] %1[%s]")
    d(U, M.UserMinor.EMU_ENTER, "TRC_USER_EMU_ENTER", "64",
      "enter Linux emulation, call %0[%llu]")
    d(U, M.UserMinor.EMU_EXIT, "TRC_USER_EMU_EXIT", "64",
      "exit Linux emulation, call %0[%llu]")

    # -- syscalls (drives Figure 8) ------------------------------------------
    d(S, M.SyscallMinor.ENTER, "TRC_SYSCALL_ENTER", "64 64",
      "process %0[%llu] syscall %1[%llu] enter")
    d(S, M.SyscallMinor.EXIT, "TRC_SYSCALL_EXIT", "64 64 64",
      "process %0[%llu] syscall %1[%llu] exit elapsed %2[%llu]")

    # -- hardware counters / pc samples ---------------------------------------
    d(HW, M.HwPerfMinor.COUNTER_SAMPLE, "TRC_HWPERF_SAMPLE", "64 64",
      "hw counter %0[%llu] value %1[%llu]")
    d(PC, M.PcSampleMinor.SAMPLE, "TRC_PCSAMPLE", "64 64",
      "pid %0[%llu] pc %1[%llx]")

    # -- application ------------------------------------------------------------
    d(A, M.AppMinor.GENERIC, "TRC_APP_GENERIC", "64 64",
      "app event %0[%llx] %1[%llx]")
    d(A, M.AppMinor.PHASE_BEGIN, "TRC_APP_PHASE_BEGIN", "64 str",
      "phase %1[%s] begin (id %0[%llu])")
    d(A, M.AppMinor.PHASE_END, "TRC_APP_PHASE_END", "64 str",
      "phase %1[%s] end (id %0[%llu])")
    d(A, M.AppMinor.PROBE, "TRC_APP_PROBE", "64 64",
      "dynamic probe %0[%llu] fired at pc %1[%llx]")

    return r
