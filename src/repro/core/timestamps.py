"""Timestamp sources.

K42 was developed on PowerPC, whose timebase register is synchronized
across CPUs and cheap to read from user space; x86 of the era had only
per-CPU ``tsc`` counters that drift relative to each other, plus an
expensive synchronized ``gettimeofday`` (§4.1).  The logger takes any
object with ``now(cpu) -> int``; the sources below model the three
hardware situations plus a manually-advanced clock for the simulator and
tests.

``cost_cycles`` is the abstract read cost charged by the simulator's cost
model; it does not affect wall-clock behaviour of the source itself.
"""

from __future__ import annotations

import time
from typing import Callable, Protocol, Sequence


class ClockSource(Protocol):
    """Anything the logger can read timestamps from."""

    cost_cycles: int

    def now(self, cpu: int = 0) -> int:
        """Current tick count as seen from ``cpu`` (64-bit)."""
        ...


class WallClock:
    """Cheap synchronized clock — the PowerPC timebase situation.

    Backed by ``time.perf_counter_ns``; identical on every CPU.
    """

    cost_cycles = 10

    def __init__(self, tick_ns: int = 1) -> None:
        if tick_ns < 1:
            raise ValueError("tick_ns must be >= 1")
        self.tick_ns = tick_ns
        self._origin = time.perf_counter_ns()

    def now(self, cpu: int = 0) -> int:
        return (time.perf_counter_ns() - self._origin) // self.tick_ns


class ExpensiveWallClock:
    """Synchronized but costly clock — the ``gettimeofday`` situation.

    ``penalty_iters`` spins a short loop per read to model the syscall
    cost in wall-clock benchmarks (the simulator instead charges
    ``cost_cycles``).
    """

    cost_cycles = 1200

    def __init__(self, tick_ns: int = 1, penalty_iters: int = 120) -> None:
        self.tick_ns = tick_ns
        self.penalty_iters = penalty_iters
        self._origin = time.perf_counter_ns()

    def now(self, cpu: int = 0) -> int:
        acc = 0
        for i in range(self.penalty_iters):  # deliberate busy cost
            acc += i
        return (time.perf_counter_ns() - self._origin) // self.tick_ns


class ManualClock:
    """Explicitly advanced clock for the discrete-event simulator and tests."""

    cost_cycles = 10

    def __init__(self, start: int = 0) -> None:
        self._now = start

    def now(self, cpu: int = 0) -> int:
        return self._now

    def advance(self, ticks: int = 1) -> int:
        if ticks < 0:
            raise ValueError("clock cannot go backwards")
        self._now += ticks
        return self._now

    def set(self, value: int) -> None:
        if value < self._now:
            raise ValueError("clock cannot go backwards")
        self._now = value


class DriftingTscClock:
    """Per-CPU unsynchronized counters — the x86 ``tsc`` situation (§4.1).

    Each CPU sees ``offset[cpu] + rate[cpu] * base()`` where ``base`` is
    the true underlying time.  Rates differ by parts-per-million the way
    real crystal oscillators do, so per-CPU streams cannot be merged until
    :mod:`repro.ltt.tscsync` interpolates them onto a common axis.
    """

    cost_cycles = 12

    def __init__(
        self,
        offsets: Sequence[int],
        rates: Sequence[float],
        base: Callable[[], int] | None = None,
    ) -> None:
        if len(offsets) != len(rates):
            raise ValueError("offsets and rates must have equal length")
        if any(r <= 0 for r in rates):
            raise ValueError("tsc rates must be positive")
        self.offsets = list(offsets)
        self.rates = list(rates)
        if base is None:
            origin = time.perf_counter_ns()
            base = lambda: time.perf_counter_ns() - origin  # noqa: E731
        self._base = base

    @property
    def ncpus(self) -> int:
        return len(self.offsets)

    def base_now(self) -> int:
        """The true time — what a perfectly synchronized clock would read."""
        return self._base()

    def now(self, cpu: int = 0) -> int:
        return int(self.offsets[cpu] + self.rates[cpu] * self._base())
