"""The locking logger — the baseline the lockless algorithm replaces.

LTT retained a locking option after adopting K42's technology (§4.1):
it "disables interrupts and process-state transitions, though slower,
provides a greater likelihood that events will not be garbled".  This
implementation holds one lock across the entire reserve/log/commit
sequence, optionally simulating the interrupt-disable cost, and may be
shared by all CPUs over a single control structure — the classic shared
global trace buffer that the per-CPU design eliminated.

It reuses :class:`~repro.core.buffers.TraceControl` so the exact same
readers and tools consume its output; only the synchronization strategy
differs, making the lockless-vs-locking benchmarks a pure ablation.
"""

from __future__ import annotations

import threading
from typing import Optional, Sequence

from repro.core.buffers import TraceControl
from repro.core.constants import (
    EXTENDED_FILLER_LENGTH,
    MAX_EVENT_WORDS,
    TIMESTAMP_MASK,
    WORD_MASK,
)
from repro.core.header import pack_header
from repro.core.logger import EventTooLargeError
from repro.core.majors import ControlMinor, Major
from repro.core.mask import TraceMask
from repro.core.registry import EventRegistry
from repro.core.timestamps import ClockSource


class LockingTraceLogger:
    """Logs events under a single lock held across the whole operation.

    ``irq_disable_iters`` spins briefly inside the critical section to
    model the interrupt-disable/enable cost of the original LTT scheme
    in wall-clock benchmarks.
    """

    def __init__(
        self,
        control: TraceControl,
        mask: TraceMask,
        clock: ClockSource,
        registry: Optional[EventRegistry] = None,
        commit_counts: bool = True,
        lock: Optional[threading.Lock] = None,
        irq_disable_iters: int = 0,
        cpu: Optional[int] = None,
    ) -> None:
        self.control = control
        self.mask = mask
        self.clock = clock
        self.registry = registry
        self.commit_counts = commit_counts
        self.lock = lock if lock is not None else threading.Lock()
        self.irq_disable_iters = irq_disable_iters
        self.cpu = cpu if cpu is not None else control.cpu

    def log0(self, major: int, minor: int) -> bool:
        return self.log_words(major, minor, ())

    def log1(self, major: int, minor: int, w0: int) -> bool:
        return self.log_words(major, minor, (w0,))

    def log2(self, major: int, minor: int, w0: int, w1: int) -> bool:
        return self.log_words(major, minor, (w0, w1))

    def log3(self, major: int, minor: int, w0: int, w1: int, w2: int) -> bool:
        return self.log_words(major, minor, (w0, w1, w2))

    def log_words(self, major: int, minor: int, data: Sequence[int] = ()) -> bool:
        if not (self.mask.value >> major) & 1:
            return False
        return self._log_unmasked(major, minor, data)

    def start(self) -> None:
        """Log the anchor for buffer 0 (mirrors TraceLogger.start)."""
        with self.lock:
            self._write_anchor_inline()
            self._write_inline(Major.CONTROL, ControlMinor.BUFFER_START, (0,))

    # ------------------------------------------------------------------
    def _log_unmasked(self, major: int, minor: int, data: Sequence[int]) -> bool:
        ctl = self.control
        length = len(data) + 1
        if length > MAX_EVENT_WORDS or length > ctl.buffer_words:
            raise EventTooLargeError(f"event of {length} words too large")
        with self.lock:
            acc = 0
            for i in range(self.irq_disable_iters):  # modelled irq-off cost
                acc += i
            index = self._reserve_locked(length)
            ts = self.clock.now(self.cpu) & TIMESTAMP_MASK
            arr = ctl.array
            pos = index & ctl.index_mask
            arr[pos] = pack_header(ts, length, major, minor)
            for i, w in enumerate(data):
                arr[pos + 1 + i] = w & WORD_MASK
            if self.commit_counts:
                ctl.commit(ctl.buffer_of(index), length)
            ctl.stats_events_logged += 1
            ctl.stats_words_logged += length
        return True

    def _reserve_locked(self, length: int) -> int:
        """Reserve under the lock; handles boundary fillers inline.

        Loops because starting a new buffer writes anchor events, after
        which the requested event may again cross a boundary.
        """
        ctl = self.control
        bw = ctl.buffer_words
        while True:
            old = ctl.index.load()
            used = old & (bw - 1)
            if used == 0 and old > 0 and ctl.booked_seq.load() < old // bw:
                # Exact fill: previous event ended on the boundary.
                self._start_buffer_locked(old // bw)
                ctl.stats_exact_boundary += 1
                continue
            if used + length > bw:
                rem = bw - used
                ts = self.clock.now(self.cpu) & TIMESTAMP_MASK
                pos = old & ctl.index_mask
                if rem <= MAX_EVENT_WORDS:
                    ctl.array[pos] = pack_header(
                        ts, rem, Major.CONTROL, ControlMinor.FILLER
                    )
                else:
                    ctl.array[pos] = pack_header(
                        ts, EXTENDED_FILLER_LENGTH,
                        Major.CONTROL, ControlMinor.FILLER_EXT,
                    )
                    ctl.array[pos + 1] = rem
                seq = old // bw
                if self.commit_counts:
                    ctl.commit(seq, rem)
                ctl.stats_fillers += 1
                ctl.stats_filler_words += rem
                ctl.index.store(old + rem)
                self._start_buffer_locked(seq + 1)
                continue
            ctl.index.store(old + length)
            return old

    def _start_buffer_locked(self, seq: int) -> None:
        ctl = self.control
        if ctl.booked_seq.load() >= seq:
            return
        ctl.booked_seq.store(seq)
        slot = ctl.slot_of(seq)
        # No committed reset: the generation tag in TraceControl.commit
        # resets the recycled slot's count at the first commit instead.
        ctl.complete_buffer(seq - 1)
        ctl.slot_seq[slot] = seq
        if ctl.zero_ahead:
            nxt = ctl.slot_of(seq + 1)
            if nxt != slot:
                ctl.zero_slot(nxt)
        # Anchor events for the new buffer (re-entrant: we already hold
        # the lock, so write them inline).
        self._write_anchor_inline()
        self._write_inline(Major.CONTROL, ControlMinor.BUFFER_START, (seq,))

    def _write_anchor_inline(self) -> None:
        """Write the timestamp anchor from a single clock read, so the
        header's 32-bit stamp and the full data word correspond exactly."""
        ctl = self.control
        old = ctl.index.load()
        ts = self.clock.now(self.cpu)
        pos = old & ctl.index_mask
        ctl.array[pos] = pack_header(
            ts & TIMESTAMP_MASK, 2, Major.CONTROL, ControlMinor.TIMESTAMP_ANCHOR
        )
        ctl.array[pos + 1] = ts & WORD_MASK
        if self.commit_counts:
            ctl.commit(ctl.buffer_of(old), 2)
        ctl.index.store(old + 2)
        ctl.stats_events_logged += 1
        ctl.stats_words_logged += 2

    def _write_inline(self, major: int, minor: int, data: Sequence[int]) -> None:
        """Write one event while already holding the lock."""
        ctl = self.control
        length = len(data) + 1
        old = ctl.index.load()
        ts = self.clock.now(self.cpu) & TIMESTAMP_MASK
        pos = old & ctl.index_mask
        ctl.array[pos] = pack_header(ts, length, major, minor)
        for i, w in enumerate(data):
            ctl.array[pos + 1 + i] = w & WORD_MASK
        if self.commit_counts:
            ctl.commit(ctl.buffer_of(old), length)
        ctl.index.store(old + length)
        ctl.stats_events_logged += 1
        ctl.stats_words_logged += length
