"""Privilege-separated tracing domains (§5's protection future work).

"Currently, all data is logged to a single shared buffer.  Although this
has good performance and analytical properties, different users may not
desire to have information about their behavior available to other
users.  To solve this, we intend to map in different buffers to user
applications that do not have sufficient privileges to see all data."

Implemented here: a privileged *global* facility (kernel, servers,
privileged processes) plus a private facility per unprivileged process.
An unprivileged process logs into — and can read back — only its own
buffers; the privileged view merges every domain into the single
time-ordered stream the analysis tools expect (all domains share one
clock, so the merge is exact).  The mask and registry are shared, so
"which events exist" stays unified; only *visibility* is partitioned.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.facility import TraceFacility
from repro.core.mask import TraceMask
from repro.core.registry import EventRegistry, default_registry
from repro.core.stream import Trace
from repro.core.timestamps import ClockSource, WallClock


class PermissionError_(PermissionError):
    """Raised when a domain reads data it has no privilege for."""


def merge_traces(*traces: Trace) -> Trace:
    """Merge decoded traces (same clock domain) into one Trace."""
    merged = Trace()
    for trace in traces:
        for cpu, events in trace.events_by_cpu.items():
            merged.events_by_cpu.setdefault(cpu, []).extend(events)
        merged.anomalies.extend(trace.anomalies)
    for cpu, events in merged.events_by_cpu.items():
        events.sort(key=lambda e: (e.time if e.time is not None else -1,
                                   e.seq, e.offset))
    return merged


class TraceDomains:
    """The privilege-partitioned tracing arrangement."""

    def __init__(
        self,
        ncpus: int,
        clock: Optional[ClockSource] = None,
        registry: Optional[EventRegistry] = None,
        buffer_words: int = 1024,
        num_buffers: int = 8,
        private_buffer_words: int = 256,
        private_num_buffers: int = 4,
    ) -> None:
        self.ncpus = ncpus
        self.clock = clock if clock is not None else WallClock()
        self.registry = registry if registry is not None else default_registry()
        self.mask = TraceMask()
        self._fac_kw = dict(clock=self.clock, registry=self.registry,
                            mask=self.mask)
        #: The privileged global domain (kernel, servers).
        self.global_facility = TraceFacility(
            ncpus=ncpus, buffer_words=buffer_words, num_buffers=num_buffers,
            **self._fac_kw,
        )
        self.private_buffer_words = private_buffer_words
        self.private_num_buffers = private_num_buffers
        self._private: Dict[int, TraceFacility] = {}
        self._privileged: Dict[int, bool] = {}

    # ------------------------------------------------------------------
    def register(self, pid: int, privileged: bool = False) -> None:
        """Declare a process and its privilege level."""
        if pid in self._privileged:
            raise ValueError(f"pid {pid} already registered")
        self._privileged[pid] = privileged
        if not privileged:
            self._private[pid] = TraceFacility(
                ncpus=self.ncpus,
                buffer_words=self.private_buffer_words,
                num_buffers=self.private_num_buffers,
                **self._fac_kw,
            )

    def is_privileged(self, pid: int) -> bool:
        return self._privileged.get(pid, False)

    def facility_for(self, pid: int) -> TraceFacility:
        """The facility whose buffers are mapped into ``pid``'s space."""
        if pid not in self._privileged:
            raise KeyError(f"pid {pid} not registered")
        if self._privileged[pid]:
            return self.global_facility
        return self._private[pid]

    def logger(self, pid: int, cpu: int):
        """The per-CPU logger ``pid`` logs through — still lockless and
        per-CPU; the partitioning costs nothing on the log path."""
        return self.facility_for(pid).logger(cpu)

    # ------------------------------------------------------------------
    def view(self, pid: int) -> Trace:
        """What ``pid`` may read: its own private stream, or — for a
        privileged process — everything."""
        if pid not in self._privileged:
            raise KeyError(f"pid {pid} not registered")
        if self._privileged[pid]:
            return self.view_privileged(pid)
        return self._private[pid].decode()

    def view_privileged(self, pid: Optional[int] = None) -> Trace:
        """The complete merged stream; requires privilege."""
        if pid is not None and not self._privileged.get(pid, False):
            raise PermissionError_(
                f"pid {pid} lacks privilege to read the global trace"
            )
        traces = [self.global_facility.decode()]
        traces.extend(fac.decode() for fac in self._private.values())
        return merge_traces(*traces)

    # ------------------------------------------------------------------
    def enable(self, *majors: int) -> None:
        self.mask.enable(*majors)

    def enable_all(self) -> None:
        self.mask.enable_all()

    @property
    def domain_count(self) -> int:
        return 1 + len(self._private)
