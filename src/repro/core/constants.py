"""Word-layout constants for the K42-style trace event encoding.

The paper (§3.2, "Details of the Implementation"): a trace event is a
series of 64-bit words.  The first word contains 32 bits of timestamp,
10 bits of length (in 64-bit words, including the header word itself),
6 bits of major ID, and 16 bits of major-class-defined data (typically a
minor ID).  Following the header are zero or more 64-bit data words.

Layout used here (bit 63 = most significant)::

    63........32 31....22 21..16 15.....0
    timestamp    length   major  minordata

"""

from __future__ import annotations

WORD_BITS = 64
WORD_BYTES = 8
WORD_MASK = (1 << 64) - 1

# Header field widths (sum to 64).
TIMESTAMP_BITS = 32
LENGTH_BITS = 10
MAJOR_BITS = 6
MINOR_BITS = 16

TIMESTAMP_SHIFT = 32
LENGTH_SHIFT = 22
MAJOR_SHIFT = 16
MINOR_SHIFT = 0

TIMESTAMP_MASK = (1 << TIMESTAMP_BITS) - 1
LENGTH_MASK = (1 << LENGTH_BITS) - 1
MAJOR_MASK = (1 << MAJOR_BITS) - 1
MINOR_MASK = (1 << MINOR_BITS) - 1

#: Maximum total event length in words (header + data) expressible in the
#: 10-bit length field.
MAX_EVENT_WORDS = LENGTH_MASK  # 1023
#: Maximum number of data words in an ordinary event.
MAX_DATA_WORDS = MAX_EVENT_WORDS - 1

#: Maximum number of distinct major classes (6-bit field + 64-bit mask).
NUM_MAJORS = 64

#: Default size of one trace buffer — the medium-scale alignment boundary
#: of §3.2.  Events never cross a multiple of this many words, so readers
#: can seek to any multiple and resume parsing.  K42 used boundaries on the
#: order of 128KB; the default here is 16K words = 128KB.
DEFAULT_BUFFER_WORDS = 16 * 1024

#: Default number of buffers in each per-CPU ring.
DEFAULT_NUM_BUFFERS = 8

#: Commit-count words are generation-tagged: the high 32 bits hold the
#: buffer sequence (mod 2**32) the count belongs to, the low 32 bits the
#: committed word count.  The tag lets ``traceCommit`` reset a recycled
#: slot's count lazily and locklessly — the first committer of a new
#: buffer installs the new tag via CAS — instead of the buffer-start
#: bookkeeping storing 0, which could race with (and erase) commits made
#: by writers that entered the buffer before the booker ran.
COMMIT_SEQ_SHIFT = 32
COMMIT_COUNT_MASK = (1 << 32) - 1

#: Length-field value marking an *extended* filler event: the true span
#: (in words, including both filler words) is stored in the single data
#: word.  Plain fillers (span <= MAX_EVENT_WORDS) put the span directly in
#: the length field.  A length of zero is otherwise impossible (the header
#: always counts itself), so it is unambiguous.
EXTENDED_FILLER_LENGTH = 0
