"""The unified tracing facility (§2).

One :class:`TraceFacility` serves correctness debugging, performance
debugging, and performance monitoring: applications, libraries, servers,
and the kernel all log into the same per-CPU buffers through the same
mask, and the analysis tools decide afterwards which events matter for a
given purpose — the separation of collection from analysis the paper
calls out as goal 5.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Literal, Optional, Sequence, Union

from repro.core.buffers import BufferRecord, TraceControl
from repro.core.constants import DEFAULT_BUFFER_WORDS, DEFAULT_NUM_BUFFERS
from repro.core.locking_logger import LockingTraceLogger
from repro.core.logger import NullTraceLogger, TraceLogger
from repro.core.majors import ControlMinor, Major
from repro.core.mask import TraceMask
from repro.core.registry import EventRegistry, default_registry
from repro.core.stream import Trace, TraceReader
from repro.core.timestamps import ClockSource, WallClock

LoggerKind = Literal["lockless", "locking", "locking-shared", "null"]


class TraceFacility:
    """Per-CPU trace controls + mask + registry + clock, assembled.

    ``kind`` selects the synchronization strategy, making ablation
    configurations one-liners:

    * ``"lockless"`` — the paper's design: per-CPU buffers, CAS reserve.
    * ``"locking"`` — per-CPU buffers, but a lock held across each log.
    * ``"locking-shared"`` — one global buffer and one global lock for
      all CPUs (the original-LTT configuration of §4.1).
    * ``"null"`` — trace statements compiled out (goal 6).
    """

    def __init__(
        self,
        ncpus: int = 1,
        kind: LoggerKind = "lockless",
        buffer_words: int = DEFAULT_BUFFER_WORDS,
        num_buffers: int = DEFAULT_NUM_BUFFERS,
        mode: Literal["writeout", "flight"] = "writeout",
        clock: Optional[ClockSource] = None,
        registry: Optional[EventRegistry] = None,
        mask: Optional[TraceMask] = None,
        commit_counts: bool = True,
        zero_ahead: bool = False,
        irq_disable_iters: int = 0,
    ) -> None:
        if ncpus < 1:
            raise ValueError("ncpus must be >= 1")
        self.ncpus = ncpus
        self.kind: LoggerKind = kind
        self.clock = clock if clock is not None else WallClock()
        self.registry = registry if registry is not None else default_registry()
        self.mask = mask if mask is not None else TraceMask()
        # Infrastructure events (fillers, anchors) must always flow.
        self.mask.enable(Major.CONTROL)
        self.buffer_words = buffer_words
        self.num_buffers = num_buffers

        self.controls: List[TraceControl] = []
        self.loggers: List[Union[TraceLogger, LockingTraceLogger, NullTraceLogger]] = []

        if kind == "null":
            self.controls = []
            self.loggers = [NullTraceLogger() for _ in range(ncpus)]
            return

        if kind == "locking-shared":
            shared = TraceControl(
                cpu=0, buffer_words=buffer_words, num_buffers=num_buffers,
                mode=mode, zero_ahead=zero_ahead,
            )
            shared_lock = threading.Lock()
            self.controls = [shared]
            for cpu in range(ncpus):
                self.loggers.append(
                    LockingTraceLogger(
                        shared, self.mask, self.clock, registry=self.registry,
                        commit_counts=commit_counts, lock=shared_lock,
                        irq_disable_iters=irq_disable_iters, cpu=cpu,
                    )
                )
            self.loggers[0].start()
            return

        for cpu in range(ncpus):
            control = TraceControl(
                cpu=cpu, buffer_words=buffer_words, num_buffers=num_buffers,
                mode=mode, zero_ahead=zero_ahead,
            )
            self.controls.append(control)
            if kind == "lockless":
                logger = TraceLogger(
                    control, self.mask, self.clock, registry=self.registry,
                    commit_counts=commit_counts,
                )
            elif kind == "locking":
                logger = LockingTraceLogger(
                    control, self.mask, self.clock, registry=self.registry,
                    commit_counts=commit_counts,
                    irq_disable_iters=irq_disable_iters,
                )
            else:
                raise ValueError(f"unknown facility kind {kind!r}")
            self.loggers.append(logger)
            logger.start()

    # ------------------------------------------------------------------
    def logger(self, cpu: int):
        """The per-CPU logger; user code holds this, K42-style, to log
        without any system call."""
        return self.loggers[cpu]

    def log(self, cpu: int, major: int, minor: int, data: Sequence[int] = ()) -> bool:
        return self.loggers[cpu].log_words(major, minor, data)

    def log_event(self, cpu: int, name: str, *values) -> bool:
        return self.loggers[cpu].log_event(name, *values)

    # -- dynamic enable/disable (goal 4) --------------------------------
    def enable(self, *majors: int) -> None:
        old = self.mask.value
        self.mask.enable(*majors)
        self._log_mask_change(old)

    def disable(self, *majors: int) -> None:
        old = self.mask.value
        self.mask.disable(*majors)
        self.mask.enable(Major.CONTROL)
        self._log_mask_change(old)

    def enable_all(self) -> None:
        old = self.mask.value
        self.mask.enable_all()
        self._log_mask_change(old)

    def disable_all(self) -> None:
        old = self.mask.value
        self.mask.disable_all()
        self.mask.enable(Major.CONTROL)
        self._log_mask_change(old)

    def _log_mask_change(self, old: int) -> None:
        if self.kind == "null" or not self.loggers:
            return
        self.loggers[0].log_words(
            Major.CONTROL, ControlMinor.MASK_CHANGE, (old, self.mask.value)
        )

    # -- data extraction --------------------------------------------------
    def drain(self) -> List[BufferRecord]:
        """Completed buffers queued so far (writeout mode)."""
        out: List[BufferRecord] = []
        for control in self.controls:
            out.extend(control.drain())
        return out

    def flush(self) -> List[BufferRecord]:
        """All data: completed buffers plus in-progress partial buffers.

        Call once logging has quiesced (end of run / benchmark region).
        """
        out: List[BufferRecord] = []
        for control in self.controls:
            out.extend(control.flush())
        return out

    def snapshot(self) -> List[BufferRecord]:
        """Flight-recorder snapshot of every CPU's recent history."""
        out: List[BufferRecord] = []
        for control in self.controls:
            out.extend(control.snapshot())
        return out

    def decode(self, records: Optional[List[BufferRecord]] = None,
               include_fillers: bool = False) -> Trace:
        """Decode records (default: flush everything) into a Trace."""
        if records is None:
            records = self.flush()
        reader = TraceReader(
            registry=self.registry, include_fillers=include_fillers,
            check_committed=True,
        )
        return reader.decode_records(records)

    # -- statistics ---------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        keys = (
            "stats_events_logged", "stats_words_logged", "stats_fillers",
            "stats_filler_words", "stats_buffers_completed",
            "stats_dropped_buffers", "stats_cas_retries",
            "stats_exact_boundary",
        )
        totals = {k.removeprefix("stats_"): 0 for k in keys}
        for control in self.controls:
            for k in keys:
                totals[k.removeprefix("stats_")] += getattr(control, k)
        return totals
