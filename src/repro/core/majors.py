"""Major trace classes and the minor IDs used by the default event table.

K42 associates major classes with subsystems (§3.2): ``traceMem`` for the
memory subsystem, ``traceProc``, ``traceIO``, and so on, with at most 64
major IDs so a single 64-bit mask comparison decides whether to log.

The minor-ID enumerations below cover every event the reproduction's
kernel simulator and tools use, modelled on the event names visible in
the paper's Figures 4, 5, 6, 7, and 8.
"""

from __future__ import annotations

import enum


class Major(enum.IntEnum):
    """The 6-bit major trace classes (subsystems)."""

    CONTROL = 0      # infrastructure-internal: fillers, anchors, buffer marks
    TEST = 1         # scratch class used by unit tests and examples
    MEM = 2          # memory subsystem (regions, FCMs, page allocator)
    PROC = 3         # process/thread lifecycle and scheduling
    EXC = 4          # exceptions: page faults, PPC (IPC) calls, interrupts
    IO = 5           # file-system / device activity
    LOCK = 6         # lock acquire/contend/release paths
    USER = 7         # user-level events (run loader, returned main, ...)
    SYSCALL = 8      # Linux-emulation syscall entry/exit
    HWPERF = 9       # hardware performance counters sampled into the trace
    PCSAMPLE = 10    # statistical program-counter samples (timer driven)
    APP = 11         # application-defined events


class ControlMinor(enum.IntEnum):
    """Minor IDs within Major.CONTROL."""

    FILLER = 0           # pads to the alignment boundary; no data
    FILLER_EXT = 1       # extended filler; 1 data word holds the true span
    TIMESTAMP_ANCHOR = 2  # full 64-bit timestamp at buffer start
    BUFFER_START = 3     # logical buffer sequence number
    MASK_CHANGE = 4      # trace mask was changed (old, new)


class MemMinor(enum.IntEnum):
    FCM_ATTACH_REGION = 0     # TRC_MEM_FCMCOM_ATCH_REG
    FCM_CREATE = 1            # TRC_MEM_FCMCRW_CREATE
    REGION_CREATE_FIXED = 2   # TRC_MEM_REG_CREATE_FIX
    REGION_INIT_FIXED = 3     # TRC_MEM_REG_DEF_INITFIXED
    ALLOC_REGION_HOLD = 4     # TRC_MEM_ALLOC_REG_HOLD
    PAGE_ALLOC = 5
    PAGE_DEALLOC = 6


class ProcMinor(enum.IntEnum):
    CREATE = 0
    EXIT = 1
    CONTEXT_SWITCH = 2        # (from_tid, to_tid)
    THREAD_CREATE = 3
    THREAD_EXIT = 4
    MIGRATE = 5               # (tid, from_cpu, to_cpu)
    IDLE_START = 6
    IDLE_END = 7


class ExcMinor(enum.IntEnum):
    PGFLT = 0                 # TRC_EXCEPTION_PGFLT
    PGFLT_DONE = 1            # TRC_EXCEPTION_PGFLT_DONE
    PPC_CALL = 2              # TRC_EXCEPTION_PPC_CALL (IPC request)
    PPC_RETURN = 3            # TRC_EXCEPTION_PPC_RETURN (IPC reply)
    TIMER_INTERRUPT = 4
    IO_INTERRUPT = 5


class IOMinor(enum.IntEnum):
    OPEN = 0
    CLOSE = 1
    READ_START = 2
    READ_DONE = 3
    WRITE_START = 4
    WRITE_DONE = 5
    LOOKUP = 6


class LockMinor(enum.IntEnum):
    ACQUIRE = 0               # uncontended acquire (only traced when asked)
    CONTEND_START = 1         # began spinning/waiting (lockid, chain)
    CONTEND_END = 2           # got the lock after contention (spin count)
    RELEASE = 3
    BLOCK = 4                 # gave up spinning and blocked


class UserMinor(enum.IntEnum):
    RUN_ULOADER = 0           # TRACE_USER_RUN_ULoader: process created
    RETURNED_MAIN = 1         # TRACE_USER_RETURNED_MAIN: process finished
    APP_MARK = 2              # generic user-space marker
    EMU_ENTER = 3             # entered the Linux-emulation layer
    EMU_EXIT = 4


class SyscallMinor(enum.IntEnum):
    ENTER = 0                 # (syscall number) — name via syscall table
    EXIT = 1                  # (syscall number, elapsed cycles)


class HwPerfMinor(enum.IntEnum):
    COUNTER_SAMPLE = 0        # (counter id, value) — e.g. cache misses


class PcSampleMinor(enum.IntEnum):
    SAMPLE = 0                # (pid, pc)


class AppMinor(enum.IntEnum):
    GENERIC = 0
    PHASE_BEGIN = 1
    PHASE_END = 2
    PROBE = 3                 # dynamically-inserted instrumentation (§5)
