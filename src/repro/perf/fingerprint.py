"""Environment fingerprint embedded in every benchmark report.

A timing number is meaningless without the machine it came from; the
fingerprint makes every ``BENCH_*.json`` self-describing so cross-run
comparisons can tell "the code got slower" apart from "the machine got
slower".  Only stable, non-identifying facts are recorded.
"""

from __future__ import annotations

import os
import platform
import sys
from typing import Any, Dict


def environment_fingerprint() -> Dict[str, Any]:
    """Facts about the interpreter and host that affect timings."""
    fp: Dict[str, Any] = {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "byte_order": sys.byteorder,
    }
    try:
        import numpy

        fp["numpy"] = str(numpy.__version__)
    except Exception:  # pragma: no cover - numpy is a hard dep in practice
        fp["numpy"] = None
    return fp
