"""Report assembly and rendering for the benchmark harness.

The JSON document (schema.py) is the source of truth; the human-facing
``benchmarks/results/*.txt`` tables are *renderings* of it.  Benchmark
code produces narrative text through :func:`write_result`; when a
harness run is active the text is captured into the run's report (and
written to disk when the report is saved), otherwise — e.g. under a
plain pytest invocation — it is written straight to the results
directory exactly as the pre-harness ``_benchutil.write_result`` did.
"""

from __future__ import annotations

import datetime
import json
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.perf.schema import REPORT_KIND, SCHEMA_VERSION, validate_report

#: Default directory for the human-readable .txt renderings; callers
#: (the CLI, _benchutil) may point this at a checkout's benchmarks/results.
RESULTS_DIR = Path("benchmarks") / "results"

#: When a harness run is active, narratives are captured here instead of
#: (only) being written to disk immediately.
_ACTIVE_NARRATIVES: Optional[Dict[str, str]] = None


def set_results_dir(path: Path) -> None:
    global RESULTS_DIR
    RESULTS_DIR = Path(path)


def begin_capture() -> Dict[str, str]:
    """Start capturing narratives for a harness run."""
    global _ACTIVE_NARRATIVES
    _ACTIVE_NARRATIVES = {}
    return _ACTIVE_NARRATIVES


def end_capture() -> None:
    global _ACTIVE_NARRATIVES
    _ACTIVE_NARRATIVES = None


def write_result(name: str, text: str) -> Path:
    """Record a narrative table and write its .txt rendering.

    Drop-in replacement for the old ``_benchutil.write_result``: same
    path, same printed echo — plus capture into the active harness run.
    """
    if _ACTIVE_NARRATIVES is not None:
        _ACTIVE_NARRATIVES[name] = text
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}\n[written to {path}]")
    return path


def utc_timestamp() -> str:
    return datetime.datetime.now(datetime.timezone.utc).strftime(
        "%Y-%m-%dT%H:%M:%SZ")


def make_report(*, environment: Dict[str, Any], quick: bool,
                filter_pattern: Optional[str],
                benchmarks: List[Dict[str, Any]],
                narratives: Dict[str, str]) -> Dict[str, Any]:
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": REPORT_KIND,
        "created": utc_timestamp(),
        "quick": quick,
        "filter": filter_pattern,
        "environment": environment,
        "benchmarks": benchmarks,
        "narratives": narratives,
    }


def default_report_path(directory: Path = Path(".")) -> Path:
    stamp = datetime.datetime.now(datetime.timezone.utc).strftime(
        "%Y%m%dT%H%M%SZ")
    return Path(directory) / f"BENCH_{stamp}.json"


def save_report(report: Dict[str, Any], path: Path,
                render_narratives: bool = True) -> Path:
    """Validate and write the consolidated JSON; re-render .txt tables.

    Refuses to persist a schema-invalid document — the gate must never
    compare against garbage.
    """
    problems = validate_report(report)
    if problems:
        raise ValueError("refusing to save schema-invalid report: "
                         + "; ".join(problems))
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
    if render_narratives:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        for name, text in report.get("narratives", {}).items():
            (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    return path


def load_report(path: Path) -> Dict[str, Any]:
    """Load and schema-check a report; raises ValueError with details."""
    with open(path) as fh:
        doc = json.load(fh)
    problems = validate_report(doc)
    if problems:
        raise ValueError(f"{path}: " + "; ".join(problems))
    return doc


def _fmt_ns(ns: float) -> str:
    if ns >= 1e9:
        return f"{ns / 1e9:.2f} s"
    if ns >= 1e6:
        return f"{ns / 1e6:.2f} ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.2f} us"
    return f"{ns:.0f} ns"


def render_report(report: Dict[str, Any]) -> str:
    """The console table: one row per benchmark, median +/- MAD."""
    env = report.get("environment", {})
    lines = [
        f"repro benchmark report — {report.get('created', '?')}"
        + ("  [quick tier]" if report.get("quick") else ""),
        f"python {env.get('python')} on {env.get('platform')} "
        f"({env.get('cpu_count')} cpus)",
        "",
        f"{'benchmark':<38} {'median':>12} {'mad':>10} "
        f"{'repeats':>8} {'loops':>8}",
    ]
    for entry in report.get("benchmarks", []):
        lines.append(
            f"{entry['name']:<38} {_fmt_ns(entry['median_ns']):>12} "
            f"{_fmt_ns(entry['mad_ns']):>10} {entry['repeats']:>8} "
            f"{entry['inner_loops']:>8}")
    n = len(report.get("benchmarks", []))
    lines.append("")
    lines.append(f"{n} benchmark{'s' if n != 1 else ''}; "
                 f"{len(report.get('narratives', {}))} narrative tables")
    return "\n".join(lines)
