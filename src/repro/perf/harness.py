"""The unified benchmark harness: registration, execution, reporting.

Usage in a benchmark module::

    from repro.perf import benchmark

    @benchmark("event_cost.one_word", quick=True)
    def bench_one_word(b):
        logger = make_logger()          # setup, untimed
        b(lambda: logger.log1(Major.TEST, 1, 42))   # timed kernel
        b.note("buffer_words", 16 * 1024)           # optional extras

The decorated function receives a :class:`Bench` handle; calling it with
a zero-argument kernel performs the calibrated warmup/repeat measurement
(timing.py) and returns the kernel's last return value, so correctness
assertions can ride along.  ``b.quick`` tells the function whether it is
running in the quick tier and should downscale its workload.

``run_benchmarks`` executes a selection and returns the consolidated,
schema-valid report dict; ``module_main`` is the tiny argv front end
that makes every ``benchmarks/bench_*.py`` runnable standalone.
"""

from __future__ import annotations

import argparse
import fnmatch
import importlib.util
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from repro.perf import report as report_mod
from repro.perf.fingerprint import environment_fingerprint
from repro.perf.timing import TimingResult, measure

#: Default per-benchmark regression band for compare.py: flag a
#: slowdown greater than 25% of the baseline median.
DEFAULT_TOLERANCE = 0.25

#: Name of the machine-speed calibration benchmark (always registered).
CALIBRATION_BENCH = "_calibration.spin"


class DuplicateBenchmarkError(ValueError):
    """Two different functions registered under one benchmark name."""


@dataclass
class BenchmarkDef:
    """One registered benchmark."""

    name: str
    func: Callable[["Bench"], Any]
    group: str
    quick: bool
    tolerance: float
    module: str


@dataclass
class Tier:
    """Measurement knobs for one tier (full vs quick)."""

    repeats: int = 9
    warmup: int = 2
    min_time_s: float = 0.005
    max_total_s: float = 20.0


FULL_TIER = Tier()
QUICK_TIER = Tier(repeats=5, warmup=1, min_time_s=0.002, max_total_s=2.0)


class BenchmarkRegistry:
    """Name -> BenchmarkDef, with pattern/tier selection."""

    def __init__(self) -> None:
        self._defs: Dict[str, BenchmarkDef] = {}

    def register(self, defn: BenchmarkDef) -> None:
        existing = self._defs.get(defn.name)
        if existing is not None and \
                existing.func.__qualname__ != defn.func.__qualname__:
            raise DuplicateBenchmarkError(
                f"benchmark {defn.name!r} registered twice: "
                f"{existing.module}.{existing.func.__qualname__} vs "
                f"{defn.module}.{defn.func.__qualname__}")
        # Same function re-imported under another module name (pytest vs
        # CLI discovery) silently replaces itself.
        self._defs[defn.name] = defn

    def names(self) -> List[str]:
        return sorted(self._defs)

    def get(self, name: str) -> BenchmarkDef:
        return self._defs[name]

    def __len__(self) -> int:
        return len(self._defs)

    def __contains__(self, name: str) -> bool:
        return name in self._defs

    def select(self, pattern: Optional[str] = None,
               quick: bool = False,
               module: Optional[str] = None) -> List[BenchmarkDef]:
        """Benchmarks matching a shell-style ``pattern`` (substring match
        when the pattern has no wildcard), restricted to the quick tier
        and/or one defining module when asked."""
        chosen = []
        for name in self.names():
            defn = self._defs[name]
            if quick and not defn.quick:
                continue
            if module is not None and defn.module != module:
                continue
            if pattern:
                if any(ch in pattern for ch in "*?["):
                    if not fnmatch.fnmatch(name, pattern):
                        continue
                elif pattern not in name:
                    continue
            chosen.append(defn)
        return chosen

    def clear(self) -> None:
        self._defs.clear()


#: The process-global registry that ``@benchmark`` populates.
REGISTRY = BenchmarkRegistry()


def benchmark(name: str, *, group: Optional[str] = None, quick: bool = False,
              tolerance: float = DEFAULT_TOLERANCE,
              registry: Optional[BenchmarkRegistry] = None) -> Callable[
                  [Callable[["Bench"], Any]], Callable[["Bench"], Any]]:
    """Register a benchmark function under ``name``.

    ``group`` defaults to the dotted prefix of the name; ``quick=True``
    includes it in the fast CI tier; ``tolerance`` is the per-benchmark
    regression band used by compare.py (fraction of baseline median).
    """
    if tolerance <= 0:
        raise ValueError("tolerance must be > 0")

    def deco(func: Callable[["Bench"], Any]) -> Callable[["Bench"], Any]:
        reg = REGISTRY if registry is None else registry
        reg.register(BenchmarkDef(
            name=name,
            func=func,
            group=group if group is not None else name.rsplit(".", 1)[0],
            quick=quick,
            tolerance=tolerance,
            module=func.__module__,
        ))
        return func

    return deco


class Bench:
    """Handle passed to each benchmark function."""

    def __init__(self, defn: BenchmarkDef, tier: Tier, quick: bool) -> None:
        self.defn = defn
        self.tier = tier
        self.quick = quick
        self.timing: Optional[TimingResult] = None
        self.notes: Dict[str, Any] = {}

    def __call__(self, fn: Callable[[], Any]) -> Any:
        """Measure ``fn``; returns its last return value."""
        self.timing = measure(
            fn,
            repeats=self.tier.repeats,
            warmup=self.tier.warmup,
            min_time_s=self.tier.min_time_s,
            max_total_s=self.tier.max_total_s,
        )
        return self.timing.last_return

    def note(self, key: str, value: Any) -> None:
        """Attach a benchmark-specific fact to the JSON entry."""
        self.notes[key] = value


@dataclass
class RunProgress:
    """Callback payloads for run_benchmarks(on_progress=...)."""

    index: int
    total: int
    name: str
    seconds: float = 0.0
    done: bool = False


def _entry_for(defn: BenchmarkDef, bench: Bench) -> Dict[str, Any]:
    timing = bench.timing
    assert timing is not None
    return {
        "name": defn.name,
        "group": defn.group,
        "module": defn.module,
        "quick": defn.quick,
        "tolerance": defn.tolerance,
        "repeats": timing.repeats,
        "warmup": timing.warmup,
        "inner_loops": timing.inner_loops,
        "median_ns": timing.median_ns,
        "mad_ns": timing.mad_ns,
        "mean_ns": timing.mean_ns,
        "min_ns": timing.min_ns,
        "max_ns": timing.max_ns,
        "samples_ns": list(timing.samples_ns),
        "notes": dict(bench.notes),
    }


def run_benchmarks(*, registry: Optional[BenchmarkRegistry] = None,
                   quick: bool = False,
                   filter_pattern: Optional[str] = None,
                   module: Optional[str] = None,
                   tier: Optional[Tier] = None,
                   on_progress: Optional[Callable[[RunProgress], None]] = None,
                   ) -> Dict[str, Any]:
    """Run the selected benchmarks and return the report document.

    The calibration benchmark is always included (when registered) so
    every report carries a machine-speed yardstick for compare.py's
    normalization, regardless of ``--filter``.
    """
    reg = REGISTRY if registry is None else registry
    selection = reg.select(pattern=filter_pattern, quick=quick,
                           module=module)
    if CALIBRATION_BENCH in reg and \
            all(d.name != CALIBRATION_BENCH for d in selection):
        selection.insert(0, reg.get(CALIBRATION_BENCH))

    active_tier = tier if tier is not None else (
        QUICK_TIER if quick else FULL_TIER)
    narratives = report_mod.begin_capture()
    entries: List[Dict[str, Any]] = []
    try:
        for i, defn in enumerate(selection):
            if on_progress:
                on_progress(RunProgress(i, len(selection), defn.name))
            bench = Bench(defn, active_tier, quick)
            t0 = time.perf_counter()
            try:
                defn.func(bench)
            except Exception as exc:
                raise RuntimeError(
                    f"benchmark {defn.name!r} failed: {exc}") from exc
            if bench.timing is None:
                raise RuntimeError(
                    f"benchmark {defn.name!r} never invoked its timed "
                    "kernel (call b(fn) inside the function)")
            entries.append(_entry_for(defn, bench))
            if on_progress:
                on_progress(RunProgress(i, len(selection), defn.name,
                                        time.perf_counter() - t0, True))
        captured = dict(narratives)
    finally:
        report_mod.end_capture()
    return report_mod.make_report(
        environment=environment_fingerprint(),
        quick=quick,
        filter_pattern=filter_pattern,
        benchmarks=entries,
        narratives=captured,
    )


def discover_benchmarks(bench_dir: Path,
                        pattern: str = "bench_*.py") -> List[str]:
    """Import every benchmark module under ``bench_dir`` so their
    ``@benchmark`` registrations land in the global registry.

    Returns the imported module names.  The directory itself is put on
    ``sys.path`` so the modules' ``from _benchutil import ...`` and
    sibling imports keep working, exactly as under pytest's conftest.
    """
    bench_dir = Path(bench_dir)
    if not bench_dir.is_dir():
        raise FileNotFoundError(f"benchmark directory {bench_dir} not found")
    if str(bench_dir) not in sys.path:
        sys.path.insert(0, str(bench_dir))
    imported: List[str] = []
    for path in sorted(bench_dir.glob(pattern)):
        mod_name = path.stem
        if mod_name in sys.modules:
            imported.append(mod_name)
            continue
        spec = importlib.util.spec_from_file_location(mod_name, path)
        if spec is None or spec.loader is None:  # pragma: no cover
            continue
        module = importlib.util.module_from_spec(spec)
        sys.modules[mod_name] = module
        try:
            spec.loader.exec_module(module)
        except Exception:
            del sys.modules[mod_name]
            raise
        imported.append(mod_name)
    return imported


def module_main(module_name: str,
                argv: Optional[List[str]] = None) -> int:
    """Standalone entry point for one benchmark module.

    ``python benchmarks/bench_event_cost.py [--quick] [--filter PAT]
    [--output PATH]`` runs just that module's registered benchmarks,
    prints the table, and writes a consolidated BENCH_*.json.
    """
    parser = argparse.ArgumentParser(
        description=f"run the benchmarks registered by {module_name}")
    parser.add_argument("--quick", action="store_true",
                        help="fast tier: fewer repeats, smaller workloads")
    parser.add_argument("--filter", metavar="PAT",
                        help="only benchmarks whose name matches")
    parser.add_argument("--output", metavar="PATH",
                        help="where to write BENCH_*.json "
                             "(default: ./BENCH_<timestamp>.json)")
    args = parser.parse_args(argv)

    doc = run_benchmarks(quick=args.quick, filter_pattern=args.filter,
                         module=module_name)
    out = Path(args.output) if args.output else \
        report_mod.default_report_path()
    report_mod.save_report(doc, out)
    print(report_mod.render_report(doc))
    print(f"\nreport written to {out}")
    return 0


def _spin() -> int:
    """Fixed pure-python arithmetic loop: the machine-speed yardstick."""
    acc = 0
    for i in range(2048):
        acc += i * i
    return acc


@benchmark(CALIBRATION_BENCH, group="_calibration", quick=True,
           tolerance=1.0)
def _calibration_spin(b: Bench) -> None:
    """Calibrates host speed so compare.py can normalize across machines;
    never itself gated (compare skips the ``_calibration`` group)."""
    assert b(_spin) == sum(i * i for i in range(2048))
