"""Performance-regression detector: diff a run against a baseline.

``python -m repro.perf.compare RUN.json BASELINE.json`` exits non-zero
iff any benchmark regressed beyond its tolerance band.  The verdict per
benchmark present in both reports:

* **regression** — normalized run median exceeds
  ``baseline_median * (1 + tolerance) + mad_guard * max(MADs)``;
* **speedup** — normalized run median is below
  ``baseline_median * (1 - tolerance)`` (reported, never fatal);
* **ok** — inside the band.

``tolerance`` comes from the baseline entry (falling back to the run
entry, then ``--tolerance``), so a noisy benchmark can carry a wider
band than the default 25% without loosening the gate for everything
else.  The MAD guard absorbs scheduler jitter on very stable baselines.

**Machine-speed normalization**: when both reports carry the
``_calibration.spin`` yardstick, every run median is divided by
``run_spin / baseline_spin`` before comparison, so a CI runner that is
uniformly 1.7x slower than the machine that recorded the baseline does
not read as a regression (disable with ``--no-normalize``).  Benchmarks
in the ``_calibration`` group are never themselves gated.

Benchmarks only present on one side are listed as *new*/*missing*;
missing ones fail the gate only under ``--require-all`` (the quick tier
legitimately runs a subset of a full baseline).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.perf.harness import CALIBRATION_BENCH
from repro.perf.report import load_report

#: Multiplier on max(baseline MAD, run MAD) added to the regression
#: threshold; absorbs sampling jitter without hiding real slowdowns.
MAD_GUARD = 3.0


@dataclass
class Verdict:
    """One benchmark's comparison outcome."""

    name: str
    status: str                    # "ok" | "regression" | "speedup"
    baseline_ns: float
    run_ns: float                  # normalized when normalization is on
    raw_run_ns: float
    tolerance: float
    limit_ns: float

    @property
    def ratio(self) -> float:
        return self.run_ns / self.baseline_ns if self.baseline_ns else \
            float("inf")


@dataclass
class Comparison:
    """Full diff of a run against a baseline."""

    verdicts: List[Verdict]
    new_benchmarks: List[str]
    missing_benchmarks: List[str]
    scale: float                   # run/baseline machine-speed ratio
    normalized: bool

    @property
    def regressions(self) -> List[Verdict]:
        return [v for v in self.verdicts if v.status == "regression"]

    @property
    def speedups(self) -> List[Verdict]:
        return [v for v in self.verdicts if v.status == "speedup"]

    def ok(self, require_all: bool = False) -> bool:
        if self.regressions:
            return False
        if require_all and self.missing_benchmarks:
            return False
        return True


def _by_name(report: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    return {e["name"]: e for e in report.get("benchmarks", [])}


def _speed_scale(run: Dict[str, Dict[str, Any]],
                 base: Dict[str, Dict[str, Any]]) -> Optional[float]:
    run_cal = run.get(CALIBRATION_BENCH)
    base_cal = base.get(CALIBRATION_BENCH)
    if not run_cal or not base_cal:
        return None
    if run_cal["median_ns"] <= 0 or base_cal["median_ns"] <= 0:
        return None
    return run_cal["median_ns"] / base_cal["median_ns"]


def compare_reports(run: Dict[str, Any], baseline: Dict[str, Any], *,
                    default_tolerance: float = 0.25,
                    normalize: bool = True,
                    mad_guard: float = MAD_GUARD) -> Comparison:
    """Pure comparison of two schema-valid report documents."""
    run_by = _by_name(run)
    base_by = _by_name(baseline)

    scale = _speed_scale(run_by, base_by) if normalize else None
    normalized = scale is not None
    effective_scale = scale if scale is not None else 1.0

    verdicts: List[Verdict] = []
    for name in sorted(set(run_by) & set(base_by)):
        if run_by[name].get("group") == "_calibration":
            continue
        base_entry = base_by[name]
        run_entry = run_by[name]
        tolerance = float(
            base_entry.get("tolerance")
            or run_entry.get("tolerance")
            or default_tolerance)
        base_ns = float(base_entry["median_ns"])
        raw_run_ns = float(run_entry["median_ns"])
        run_ns = raw_run_ns / effective_scale
        guard = mad_guard * max(float(base_entry.get("mad_ns", 0.0)),
                                float(run_entry.get("mad_ns", 0.0))
                                / effective_scale)
        limit = base_ns * (1.0 + tolerance) + guard
        if run_ns > limit:
            status = "regression"
        elif run_ns < base_ns * (1.0 - tolerance):
            status = "speedup"
        else:
            status = "ok"
        verdicts.append(Verdict(name=name, status=status,
                                baseline_ns=base_ns, run_ns=run_ns,
                                raw_run_ns=raw_run_ns,
                                tolerance=tolerance, limit_ns=limit))

    gated = {n for n in run_by if run_by[n].get("group") != "_calibration"}
    gated_base = {n for n in base_by
                  if base_by[n].get("group") != "_calibration"}
    return Comparison(
        verdicts=verdicts,
        new_benchmarks=sorted(gated - gated_base),
        missing_benchmarks=sorted(gated_base - gated),
        scale=effective_scale,
        normalized=normalized,
    )


def _fmt_ns(ns: float) -> str:
    if ns >= 1e6:
        return f"{ns / 1e6:.3f} ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.2f} us"
    return f"{ns:.0f} ns"


def format_comparison(cmp: Comparison, *, verbose: bool = False) -> str:
    lines: List[str] = []
    if cmp.normalized:
        lines.append(f"machine-speed normalization: run/baseline = "
                     f"{cmp.scale:.3f}x (via {CALIBRATION_BENCH})")
    else:
        lines.append("machine-speed normalization: off "
                     "(calibration benchmark absent on one side)")
    lines.append("")
    header = (f"{'benchmark':<38} {'baseline':>12} {'run':>12} "
              f"{'ratio':>7} {'band':>7}  verdict")
    lines.append(header)
    for v in cmp.verdicts:
        if not verbose and v.status == "ok":
            continue
        lines.append(
            f"{v.name:<38} {_fmt_ns(v.baseline_ns):>12} "
            f"{_fmt_ns(v.run_ns):>12} {v.ratio:>6.2f}x "
            f"{v.tolerance * 100:>5.0f}%  {v.status.upper()}")
    if not verbose:
        n_ok = sum(1 for v in cmp.verdicts if v.status == "ok")
        if n_ok:
            lines.append(f"... and {n_ok} benchmark(s) inside their bands")
    if cmp.new_benchmarks:
        lines.append(f"new (not in baseline): "
                     f"{', '.join(cmp.new_benchmarks)}")
    if cmp.missing_benchmarks:
        lines.append(f"missing from run: "
                     f"{', '.join(cmp.missing_benchmarks)}")
    lines.append("")
    lines.append(
        f"{len(cmp.verdicts)} compared: "
        f"{len(cmp.regressions)} regression(s), "
        f"{len(cmp.speedups)} speedup(s)")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf.compare",
        description="fail (exit 1) when RUN regressed against BASELINE")
    parser.add_argument("run", help="BENCH_*.json from the run under test")
    parser.add_argument("baseline",
                        help="committed baseline (benchmarks/"
                             "BENCH_baseline.json)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="default regression band when an entry "
                             "carries none (fraction of baseline median; "
                             "default 0.25)")
    parser.add_argument("--no-normalize", action="store_true",
                        help="skip machine-speed normalization")
    parser.add_argument("--require-all", action="store_true",
                        help="also fail when a baseline benchmark is "
                             "missing from the run")
    parser.add_argument("--verbose", action="store_true",
                        help="list every benchmark, not just the ones "
                             "outside their band")
    args = parser.parse_args(argv)

    try:
        run_doc = load_report(Path(args.run))
        base_doc = load_report(Path(args.baseline))
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    cmp = compare_reports(run_doc, base_doc,
                          default_tolerance=args.tolerance,
                          normalize=not args.no_normalize)
    print(format_comparison(cmp, verbose=args.verbose))
    if not cmp.ok(require_all=args.require_all):
        print("\nPERF GATE: FAIL", file=sys.stderr)
        return 1
    print("\nPERF GATE: ok")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
