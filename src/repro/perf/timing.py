"""Robust wall-clock timing for the benchmark harness.

Every benchmark kernel is measured the same way (Metz & Lencevicius:
instrumentation cost must be *measured*, not asserted — and measured
uniformly, or runs cannot be compared):

1. **calibrate** — double the inner-loop count until one batch takes at
   least ``min_time_s``, so ``perf_counter`` granularity is amortized
   even for nanosecond-scale kernels;
2. **warm up** — run ``warmup`` uncounted batches (caches, allocator,
   JIT-less but still branch-predictor warm);
3. **repeat** — time ``repeats`` batches, each yielding one per-call
   sample in nanoseconds;
4. **summarize** — the median is the reported cost and the MAD (median
   absolute deviation) the reported spread; both are robust to the
   one-off scheduling hiccups that poison mean/stddev on shared
   machines.

The GC is paused inside timed regions (re-enabled between batches) so
collector pauses over benchmark-built object graphs don't swamp
microsecond kernels; the pause is applied identically to every
benchmark, keeping results comparable.
"""

from __future__ import annotations

import gc
import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence


def median(values: Sequence[float]) -> float:
    """Median of a non-empty sequence."""
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        raise ValueError("median of empty sequence")
    mid = n // 2
    if n % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad(values: Sequence[float], center: Optional[float] = None) -> float:
    """Median absolute deviation around ``center`` (default: the median)."""
    if center is None:
        center = median(values)
    return median([abs(v - center) for v in values])


@dataclass
class TimingResult:
    """Summary statistics for one measured kernel."""

    samples_ns: List[float] = field(default_factory=list)
    inner_loops: int = 1
    warmup: int = 0
    last_return: Any = None

    @property
    def repeats(self) -> int:
        return len(self.samples_ns)

    @property
    def median_ns(self) -> float:
        return median(self.samples_ns)

    @property
    def mad_ns(self) -> float:
        return mad(self.samples_ns)

    @property
    def mean_ns(self) -> float:
        return sum(self.samples_ns) / len(self.samples_ns)

    @property
    def min_ns(self) -> float:
        return min(self.samples_ns)

    @property
    def max_ns(self) -> float:
        return max(self.samples_ns)


def _run_batch(fn: Callable[[], Any], loops: int) -> tuple[float, Any]:
    """Time ``loops`` consecutive calls with the GC paused; returns
    (elapsed_seconds, last_return_value)."""
    result = None
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        t0 = time.perf_counter()
        for _ in range(loops):
            result = fn()
        elapsed = time.perf_counter() - t0
    finally:
        if gc_was_enabled:
            gc.enable()
    return elapsed, result


def calibrate_loops(fn: Callable[[], Any], min_time_s: float,
                    max_loops: int = 1 << 20) -> int:
    """Smallest power-of-two loop count whose batch takes >= ``min_time_s``."""
    loops = 1
    while loops < max_loops:
        elapsed, _ = _run_batch(fn, loops)
        if elapsed >= min_time_s:
            break
        # Jump straight toward the target rather than doubling blindly
        # when a batch finished quickly but measurably.
        if elapsed > 0:
            needed = int(math.ceil(min_time_s / elapsed))
            loops = min(max_loops, max(loops * 2, loops * min(needed, 16)))
        else:
            loops *= 4
    return loops


def measure(fn: Callable[[], Any], *, repeats: int = 9, warmup: int = 2,
            min_time_s: float = 0.005,
            max_total_s: float = 20.0) -> TimingResult:
    """Measure ``fn`` per the module protocol.

    ``max_total_s`` bounds total measurement time: once exceeded, the
    remaining repeats are skipped (at least 3 samples are always
    collected so median/MAD stay meaningful).
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    loops = calibrate_loops(fn, min_time_s)
    result: Any = None
    for _ in range(warmup):
        _, result = _run_batch(fn, loops)
    samples: List[float] = []
    budget_t0 = time.perf_counter()
    for i in range(repeats):
        elapsed, result = _run_batch(fn, loops)
        samples.append(elapsed / loops * 1e9)
        if (time.perf_counter() - budget_t0 > max_total_s
                and len(samples) >= 3):
            break
    return TimingResult(samples_ns=samples, inner_loops=loops,
                        warmup=warmup, last_return=result)
