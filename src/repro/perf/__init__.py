"""Unified benchmark harness and perf-regression gate.

The paper's claims are quantitative (<1% active-tracing overhead, ~0
masked, per-event cycle costs); this package is how the repro keeps its
own numbers honest: every benchmark registers with one harness, every
run emits one schema-versioned JSON report, and CI diffs that report
against a committed baseline.

* :mod:`repro.perf.timing` — calibrated warmup/repeat measurement,
  median-and-MAD summaries;
* :mod:`repro.perf.harness` — the ``@benchmark`` registry, ``Bench``
  handle, tier selection (full vs ``--quick``), module discovery;
* :mod:`repro.perf.fingerprint` — the environment block every report
  embeds;
* :mod:`repro.perf.schema` — the versioned report format + validator;
* :mod:`repro.perf.report` — JSON emission and the human-readable
  renderings (``benchmarks/results/*.txt`` are views of the JSON);
* :mod:`repro.perf.compare` — the regression detector behind the CI
  ``perf-gate`` job (``python -m repro.perf.compare``).
"""

from repro.perf.compare import (
    Comparison,
    Verdict,
    compare_reports,
    format_comparison,
)
from repro.perf.fingerprint import environment_fingerprint
from repro.perf.harness import (
    CALIBRATION_BENCH,
    DEFAULT_TOLERANCE,
    FULL_TIER,
    QUICK_TIER,
    Bench,
    BenchmarkDef,
    BenchmarkRegistry,
    DuplicateBenchmarkError,
    REGISTRY,
    Tier,
    benchmark,
    discover_benchmarks,
    module_main,
    run_benchmarks,
)
from repro.perf.report import (
    RESULTS_DIR,
    default_report_path,
    load_report,
    make_report,
    render_report,
    save_report,
    set_results_dir,
    write_result,
)
from repro.perf.schema import REPORT_KIND, SCHEMA_VERSION, validate_report
from repro.perf.timing import TimingResult, mad, measure, median

__all__ = [
    "Bench",
    "BenchmarkDef",
    "BenchmarkRegistry",
    "CALIBRATION_BENCH",
    "Comparison",
    "DEFAULT_TOLERANCE",
    "DuplicateBenchmarkError",
    "FULL_TIER",
    "QUICK_TIER",
    "REGISTRY",
    "REPORT_KIND",
    "RESULTS_DIR",
    "SCHEMA_VERSION",
    "Tier",
    "TimingResult",
    "Verdict",
    "benchmark",
    "compare_reports",
    "default_report_path",
    "discover_benchmarks",
    "environment_fingerprint",
    "format_comparison",
    "load_report",
    "mad",
    "make_report",
    "measure",
    "median",
    "module_main",
    "render_report",
    "run_benchmarks",
    "save_report",
    "set_results_dir",
    "validate_report",
    "write_result",
]
