"""Versioned schema for machine-readable benchmark reports.

One consolidated JSON document per harness run (Recorder's lesson: a
uniform result format is what makes runs comparable at all).  The
schema is versioned so future PRs can evolve the format without
silently breaking ``compare.py`` against old baselines.

Schema version 1::

    {
      "schema_version": 1,
      "kind": "repro-bench-report",
      "created": "2026-08-05T12:00:00Z",       # UTC, ISO-8601
      "quick": false,                           # quick tier?
      "filter": null,                           # --filter pattern or null
      "environment": { ... },                   # fingerprint.py
      "benchmarks": [
        {
          "name": "event_cost.one_word",
          "group": "event_cost",
          "module": "bench_event_cost",
          "quick": true,                        # registered in quick tier
          "tolerance": 0.25,                    # regression band
          "repeats": 9, "warmup": 2, "inner_loops": 4096,
          "median_ns": 812.4, "mad_ns": 6.1, "mean_ns": 815.0,
          "min_ns": 801.2, "max_ns": 840.9,
          "samples_ns": [ ... ],
          "notes": { ... }                      # benchmark-specific extras
        }, ...
      ],
      "narratives": { "<result name>": "<text table>", ... }
    }

Validation is hand-rolled (no jsonschema dependency): ``validate_report``
returns a list of human-readable problems, empty when the document is
schema-valid.
"""

from __future__ import annotations

from typing import Any, Dict, List

SCHEMA_VERSION = 1
REPORT_KIND = "repro-bench-report"

_REQUIRED_TOP = {
    "schema_version": int,
    "kind": str,
    "created": str,
    "quick": bool,
    "environment": dict,
    "benchmarks": list,
    "narratives": dict,
}

_REQUIRED_BENCH = {
    "name": str,
    "group": str,
    "module": str,
    "quick": bool,
    "tolerance": (int, float),
    "repeats": int,
    "warmup": int,
    "inner_loops": int,
    "median_ns": (int, float),
    "mad_ns": (int, float),
    "mean_ns": (int, float),
    "min_ns": (int, float),
    "max_ns": (int, float),
    "samples_ns": list,
    "notes": dict,
}


def _type_name(expected: Any) -> str:
    if isinstance(expected, tuple):
        return " or ".join(t.__name__ for t in expected)
    return expected.__name__


def validate_report(doc: Any) -> List[str]:
    """Return all schema problems in ``doc`` (empty list == valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return [f"report must be a JSON object, got {type(doc).__name__}"]

    for key, expected in _REQUIRED_TOP.items():
        if key not in doc:
            problems.append(f"missing top-level key {key!r}")
        elif not isinstance(doc[key], expected):
            # bool is an int subclass; schema_version must be a real int.
            problems.append(
                f"top-level {key!r} must be {_type_name(expected)}, "
                f"got {type(doc[key]).__name__}")
    if isinstance(doc.get("schema_version"), bool):
        problems.append("top-level 'schema_version' must be int, got bool")

    version = doc.get("schema_version")
    if isinstance(version, int) and not isinstance(version, bool) \
            and version > SCHEMA_VERSION:
        problems.append(
            f"schema_version {version} is newer than supported "
            f"{SCHEMA_VERSION}")
    if doc.get("kind") not in (None, REPORT_KIND):
        problems.append(
            f"kind must be {REPORT_KIND!r}, got {doc.get('kind')!r}")
    if "filter" in doc and doc["filter"] is not None \
            and not isinstance(doc["filter"], str):
        problems.append("top-level 'filter' must be a string or null")

    benches = doc.get("benchmarks")
    if not isinstance(benches, list):
        return problems
    seen: Dict[str, int] = {}
    for i, entry in enumerate(benches):
        where = f"benchmarks[{i}]"
        if not isinstance(entry, dict):
            problems.append(f"{where} must be an object")
            continue
        for key, expected in _REQUIRED_BENCH.items():
            if key not in entry:
                problems.append(f"{where} missing key {key!r}")
            elif not isinstance(entry[key], expected) or (
                    isinstance(entry[key], bool)
                    and expected in (int, (int, float))):
                problems.append(
                    f"{where}.{key} must be {_type_name(expected)}, "
                    f"got {type(entry[key]).__name__}")
        name = entry.get("name")
        if isinstance(name, str):
            if name in seen:
                problems.append(
                    f"{where}.name {name!r} duplicates benchmarks[{seen[name]}]")
            seen[name] = i
        samples = entry.get("samples_ns")
        if isinstance(samples, list):
            if not samples:
                problems.append(f"{where}.samples_ns must be non-empty")
            for s in samples:
                if not isinstance(s, (int, float)) or isinstance(s, bool):
                    problems.append(
                        f"{where}.samples_ns entries must be numbers")
                    break
                if s < 0:
                    problems.append(
                        f"{where}.samples_ns entries must be >= 0")
                    break
        for key in ("median_ns", "mad_ns", "mean_ns", "min_ns", "max_ns"):
            value = entry.get(key)
            if isinstance(value, (int, float)) and not isinstance(value, bool) \
                    and value < 0:
                problems.append(f"{where}.{key} must be >= 0")
        tol = entry.get("tolerance")
        if isinstance(tol, (int, float)) and not isinstance(tol, bool) \
                and tol <= 0:
            problems.append(f"{where}.tolerance must be > 0")

    narratives = doc.get("narratives")
    if isinstance(narratives, dict):
        for key, value in narratives.items():
            if not isinstance(key, str) or not isinstance(value, str):
                problems.append("narratives must map str -> str")
                break
    return problems
