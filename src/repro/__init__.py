"""repro — reproduction of "Efficient, Unified, and Scalable Performance
Monitoring for Multiprocessor Operating Systems" (Wisniewski & Rosenberg,
SC 2003): the K42 tracing infrastructure.

Public surface:

* :mod:`repro.core` — the tracing infrastructure itself (lockless
  variable-length event logging, per-CPU buffers, random-access streams,
  self-describing events, the unified :class:`~repro.core.TraceFacility`).
* :mod:`repro.atomic` — emulated hardware atomic primitives.
* :mod:`repro.ksim` — the K42-like multiprocessor OS simulator substrate
  whose instrumented kernel paths generate realistic traces.
* :mod:`repro.workloads` — SDET-like and other workload generators.
* :mod:`repro.ltt` — the Linux Trace Toolkit baseline configurations and
  x86 TSC interpolation (§4.1).
* :mod:`repro.tools` — post-processing: event listing, kmon timeline,
  PC-sample profiles, lock-contention analysis, time breakdowns,
  deadlock detection, anomaly reporting.
"""

from repro.core import (
    Major,
    TraceEvent,
    TraceFacility,
    TraceMask,
    TraceReader,
    default_registry,
)

__version__ = "1.0.0"

__all__ = [
    "TraceFacility",
    "TraceMask",
    "TraceReader",
    "TraceEvent",
    "Major",
    "default_registry",
    "__version__",
]
