"""repro-trace — command-line front end to the analysis tools.

A downstream user's workflow: run a simulation (or collect buffers from
an embedding application), ``save_records`` them to a ``.k42`` trace
file, optionally save the symbol table as JSON, then analyze offline::

    repro-trace info trace.k42
    repro-trace verify trace.k42
    repro-trace list trace.k42 --limit 40 --name TRC_SYSCALL_ENTER
    repro-trace kmon trace.k42 --mark TRC_USER_RETURNED_MAIN --svg out.svg
    repro-trace kmon trace.k42 --interactive      # zoom/mark/click REPL
    repro-trace follow live.k42 --tool kmon --window-events 20000
    repro-trace follow --shm k42-region --tool sched
    repro-trace follow trace.k42 --replay 2x --tool locks
    repro-trace locks trace.k42 --symbols syms.json --sort time --top 10
    repro-trace holds trace.k42 --symbols syms.json
    repro-trace profile trace.k42 --symbols syms.json --pid 1
    repro-trace breakdown trace.k42 --symbols syms.json --pid 2
    repro-trace compare before.k42 after.k42 --symbols syms.json
    repro-trace histogram trace.k42
    repro-trace memprofile trace.k42 --symbols syms.json
    repro-trace iostats trace.k42
    repro-trace crashdump core.img
    repro-trace doctor damaged.k42               # damage + salvage report
    repro-trace inject trace.k42 bad.k42 --kind header-bitflip --seed 7
    repro-trace export-ltt trace.k42 --cpu 0 -o cpu0.ltt
    repro-trace pack trace.k42 trace.store --shard-events 16384
    repro-trace query trace.store --cpu 1 --start 0.0 --end 0.5 --limit 20
    repro-trace query trace.store --aggregate name --top 10
    repro-trace query trace.store --name TRC_LOCK_CONTEND_START \
        --project seconds,cpu,pid,data0
    repro-trace locks trace.store --store      # any tool reads a store
    repro-trace merge node-*.k42 -o fleet.store --tool locks
    repro-trace fleet-run -o /tmp/fleet --nodes 3 --tool sched
    repro-trace query fleet.store --node 1 --name TRC_LOCK_CONTEND_START
    repro-trace bench --quick --baseline benchmarks/BENCH_baseline.json
    repro-trace check --writers 2 --events 2 --preemption-bound 2
    repro-trace check --mutant reset-on-book --save counterexample.json
    repro-trace check --replay counterexample.json
    repro-trace check --shm --shm-cpus 2 --collector-steps 2
    repro-trace check --mutant stale-attach-offset
    repro-trace shm-demo --writers 4 --events 2000 -o /tmp/shm.k42

Every trace-analysis subcommand accepts ``--strict`` (stop at the first
damage instead of resynchronizing past it) and ``--workers N``
(parallel decode).  The analysis subcommands (``info``, ``list``,
``kmon``, ``locks``, ``profile``, ``breakdown``, ``sched``) default to
the columnar structure-of-arrays fast path; ``--no-columnar`` forces
the scalar per-event walk — output is identical either way.  They also
all accept a packed store directory (``repro-trace pack``) in place of a
raw trace — auto-detected, or forced with ``--store`` — and produce
byte-identical output from it; ``query`` reads only the shards whose
min/max statistics overlap the predicate.  ``bench`` runs the unified benchmark harness
(``repro.perf``) over ``benchmarks/bench_*.py``, writes a consolidated
``BENCH_<timestamp>.json``, and — with ``--baseline`` — exits non-zero
on a performance regression.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.parallel import ParallelTraceReader
from repro.core.registry import default_registry
from repro.core.stream import TraceReader
from repro.core.writer import load_records
from repro.store.query import PROJECTABLE
from repro.store.writer import DEFAULT_SHARD_EVENTS


def _decode(records, include_fillers: bool = False, workers: int = 1,
            strict: bool = False, columnar: bool = False):
    """Decode records sequentially or on a worker pool (``--workers``).

    ``workers=1`` is the plain in-process reader; ``workers=0`` means
    "one per CPU"; anything else fans the boundary-sharded scan out over
    that many processes.  Output is identical either way.  ``strict``
    stops at the first garbled event per buffer instead of
    resynchronizing past damage (``--strict``).  ``columnar`` returns a
    :class:`~repro.core.columnar.ColumnarTrace` (structure-of-arrays
    event batches) instead of a scalar :class:`Trace`; the event stream
    and anomalies are identical.
    """
    if columnar:
        from repro.core.columnar import ColumnarTraceReader
        from repro.core.parallel import decode_records_columnar_parallel

        if workers != 1:
            return decode_records_columnar_parallel(
                records,
                registry=default_registry(),
                include_fillers=include_fillers,
                workers=None if workers == 0 else workers,
                strict=strict,
            )
        return ColumnarTraceReader(
            registry=default_registry(),
            include_fillers=include_fillers,
            strict=strict,
        ).decode_records(records)
    if workers != 1:
        reader = ParallelTraceReader(
            registry=default_registry(),
            include_fillers=include_fillers,
            workers=None if workers == 0 else workers,
            strict=strict,
        )
    else:
        reader = TraceReader(registry=default_registry(),
                             include_fillers=include_fillers,
                             strict=strict)
    return reader.decode_records(records)


def _load_trace(path: str, include_fillers: bool = False,
                workers: int = 1, strict: bool = False,
                columnar: bool = False, store: bool = False,
                use_mmap: bool = True):
    """Load a raw ``.k42`` trace — or a packed store directory.

    With ``store=True`` (``--store``), or when ``path`` is a store
    directory, the decoded columns come straight from the store's npz
    shards: no word-stream decode happens, and the resulting trace is
    bit-identical to one.  ``columnar=False`` materializes the scalar
    ``Trace`` view on top, so even ``--no-columnar`` tool runs work
    from a store.
    """
    from repro.store import is_store

    if store or is_store(path):
        from repro.store import TraceStore

        trace = TraceStore(path, registry=default_registry(),
                           workers=None if workers == 0 else workers).trace()
        return trace if columnar else trace.to_trace()
    return _decode(load_records(path, strict=strict, use_mmap=use_mmap),
                   include_fillers, workers, strict, columnar)


def _load_symbols(path: Optional[str]):
    from repro.ksim.kernel import SymbolTable

    if path is None:
        return SymbolTable()
    return SymbolTable.load(path)


def cmd_info(args) -> int:
    from repro.store import is_store

    if args.store or is_store(args.trace):
        from repro.store import TraceStore

        st = TraceStore(args.trace, registry=default_registry())
        trace = st.trace() if args.columnar else st.trace().to_trace()
        frames = st.source.get("frames", 0)
        buffer_words = st.source.get("buffer_words", 0)
    else:
        records = load_records(args.trace, use_mmap=args.mmap)
        trace = _decode(records, workers=args.workers, strict=args.strict,
                        columnar=args.columnar)
        frames = len(records)
        buffer_words = len(records[0].words) if records else 0
    print(f"trace file: {args.trace}")
    print(f"frames: {frames}  buffer words: {buffer_words}")
    if args.columnar:
        import numpy as np

        from repro.core.columnar import ColumnarTrace, as_batch

        b = as_batch(trace)
        cpus = (trace.cpus if isinstance(trace, ColumnarTrace)
                else sorted(trace.events_by_cpu))
        print(f"cpus: {cpus}")
        print(f"events: {len(b)}  anomalies: {len(trace.anomalies)}")
        t_idx = np.flatnonzero(b.timed)
        if len(t_idx):
            tvals = b.time[t_idx]
            if tvals.dtype == object:
                tl = tvals.tolist()
                t_min, t_max = min(tl), max(tl)
            else:
                t_min, t_max = int(tvals.min()), int(tvals.max())
            span = (t_max - t_min) / 1e9
            print(f"time span: {span:.6f} s "
                  f"({t_min:,} .. {t_max:,} cycles)")
        maj, first, cnt = np.unique(b.major, return_index=True,
                                    return_counts=True)
        # Match Counter.most_common(): count desc, first-seen on ties.
        for i in sorted(range(len(maj)), key=lambda i: (-cnt[i], first[i])):
            print(f"  major {int(maj[i]):>2}: {int(cnt[i]):>8} events")
        return 0
    from collections import Counter

    events = trace.all_events()
    cpus = sorted(trace.events_by_cpu)
    times = [e.time for e in events if e.time is not None]
    print(f"cpus: {cpus}")
    print(f"events: {len(events)}  anomalies: {len(trace.anomalies)}")
    if times:
        span = (max(times) - min(times)) / 1e9
        print(f"time span: {span:.6f} s "
              f"({min(times):,} .. {max(times):,} cycles)")
    majors = Counter(e.major for e in events)
    for major, count in majors.most_common():
        print(f"  major {major:>2}: {count:>8} events")
    return 0


def cmd_verify(args) -> int:
    from repro.tools.anomaly import verify_trace

    report = verify_trace(_load_trace(args.trace, workers=args.workers, strict=args.strict,
                        use_mmap=args.mmap))
    print(report.describe())
    return 0 if report.ok else 1


def cmd_list(args) -> int:
    from repro.tools.listing import format_listing

    text = format_listing(
        _load_trace(args.trace, workers=args.workers, strict=args.strict,
                    columnar=args.columnar, store=args.store,
                    use_mmap=args.mmap),
        names=args.name or None,
        cpu=args.cpu,
        start=args.start,
        end=args.end,
        limit=args.limit,
        include_control=args.control,
        columnar=args.columnar,
    )
    print(text)
    return 0


def cmd_kmon(args) -> int:
    from repro.tools.kmon import Timeline

    if args.interactive:
        from repro.tools.kmon_session import KmonSession

        sym = _load_symbols(args.symbols)
        session = KmonSession(
            _load_trace(args.trace, workers=args.workers,
                        strict=args.strict, columnar=args.columnar,
                        store=args.store, use_mmap=args.mmap),
            sym.process_names)
        session.run(sys.stdin, sys.stdout)
        return 0
    tl = Timeline(_load_trace(args.trace, workers=args.workers,
                              strict=args.strict, columnar=args.columnar,
                              store=args.store, use_mmap=args.mmap),
                  columnar=args.columnar)
    if args.mark:
        tl.mark(*args.mark)
    if args.zoom:
        tl = tl.zoom(args.zoom[0], args.zoom[1])
    print(tl.render(width=args.width))
    if args.svg:
        with open(args.svg, "w") as fh:
            fh.write(tl.render_svg())
        print(f"SVG written to {args.svg}")
    return 0


def cmd_locks(args) -> int:
    from repro.tools.lockstats import format_lockstats, lock_statistics

    sym = _load_symbols(args.symbols)
    trace = _load_trace(args.trace, workers=args.workers, strict=args.strict,
                        columnar=args.columnar, store=args.store,
                        use_mmap=args.mmap)
    stats = lock_statistics(trace, sort_by=args.sort,
                            columnar=args.columnar)
    print(format_lockstats(stats, sym.lock_names, sym.chains,
                           top=args.top, sort_label=args.sort))
    return 0


def cmd_profile(args) -> int:
    from repro.tools.pcprofile import format_profile, pc_profile

    sym = _load_symbols(args.symbols)
    trace = _load_trace(args.trace, workers=args.workers, strict=args.strict,
                        columnar=args.columnar, store=args.store,
                        use_mmap=args.mmap)
    hist = pc_profile(trace, sym.pc_names, pid=args.pid,
                      columnar=args.columnar)
    print(format_profile(hist, pid=args.pid, top=args.top))
    return 0


def cmd_breakdown(args) -> int:
    from repro.ksim.ipc import FS_FUNCTION_NAMES
    from repro.tools.breakdown import format_breakdown, process_breakdown

    sym = _load_symbols(args.symbols)
    bds = process_breakdown(
        _load_trace(args.trace, workers=args.workers, strict=args.strict,
                    columnar=args.columnar, store=args.store,
                    use_mmap=args.mmap),
        sym.syscall_names, sym.process_names,
        FS_FUNCTION_NAMES,
        columnar=args.columnar,
    )
    pids = [args.pid] if args.pid is not None else sorted(bds)
    for pid in pids:
        if pid not in bds:
            print(f"no data for pid {pid}", file=sys.stderr)
            return 1
        print(format_breakdown(bds[pid]))
        print()
    return 0


def cmd_histogram(args) -> int:
    from repro.tools.pathstats import event_histogram

    trace = _load_trace(args.trace, workers=args.workers, strict=args.strict,
                        use_mmap=args.mmap)
    for count, name in event_histogram(trace)[: args.top]:
        print(f"{count:>8} {name}")
    return 0


def cmd_memprofile(args) -> int:
    from repro.tools.memprofile import format_memory_report, memory_profile

    sym = _load_symbols(args.symbols)
    trace = _load_trace(args.trace, workers=args.workers, strict=args.strict,
                        use_mmap=args.mmap)
    report = memory_profile(trace, sym.process_names)
    print(format_memory_report(report, top=args.top))
    return 0


def cmd_holds(args) -> int:
    from repro.tools.holdtimes import format_hold_report, hold_times

    sym = _load_symbols(args.symbols)
    report = hold_times(_load_trace(args.trace, workers=args.workers, strict=args.strict,
                        use_mmap=args.mmap))
    print(format_hold_report(report, sym.lock_names, top=args.top))
    return 0


def cmd_sched(args) -> int:
    from repro.tools.schedstats import format_sched_report, sched_statistics

    sym = _load_symbols(args.symbols)
    report = sched_statistics(
        _load_trace(args.trace, workers=args.workers, strict=args.strict,
                    columnar=args.columnar, store=args.store,
                    use_mmap=args.mmap),
        columnar=args.columnar)
    print(format_sched_report(report, sym.process_names, top=args.top))
    return 0


def _render_live_tool(args, sym, monitor) -> str:
    """Render ``--tool`` over the monitor's current window.

    Defaults mirror the post-mortem subcommands exactly, so a replay at
    instant speed prints byte-identical output to them.
    """
    trace = monitor.trace()
    if args.tool == "kmon":
        from repro.tools.kmon import live_render

        return live_render(trace, width=args.width)
    if args.tool == "locks":
        from repro.tools.lockstats import live_render

        return live_render(trace, sym.lock_names, sym.chains,
                           sort_by=args.sort,
                           top=args.top if args.top is not None else 10)
    if args.tool == "profile":
        from repro.tools.pcprofile import live_render

        return live_render(trace, sym.pc_names, pid=args.pid,
                           top=args.top if args.top is not None else 20)
    from repro.tools.schedstats import live_render

    return live_render(trace, sym.process_names,
                       top=args.top if args.top is not None else 10)


def cmd_follow(args) -> int:
    """Follow a live trace — file tail, shm region, or paced replay."""
    from repro.live.monitor import LiveMonitor
    from repro.live.source import (
        Replayer,
        ShmFollower,
        TraceFileFollower,
        parse_speed,
    )

    sym = _load_symbols(args.symbols)
    region = None
    follower = None
    if args.shm:
        from repro.shm.region import ShmTraceRegion

        region = ShmTraceRegion.attach(args.shm)
        source = ShmFollower(region, lag=args.lag)
    elif args.trace is None:
        print("follow needs a trace file or --shm NAME", file=sys.stderr)
        return 2
    elif args.replay is not None:
        source = Replayer(load_records(args.trace, strict=args.strict),
                          speed=parse_speed(args.replay))
    else:
        source = follower = TraceFileFollower(args.trace)

    monitor = LiveMonitor(registry=default_registry(),
                          window_events=args.window_events,
                          strict=args.strict)
    on_update = None
    if args.refresh:
        def on_update(m):
            print(_render_live_tool(args, sym, m), file=sys.stderr)
            print(m.describe(), file=sys.stderr)
    try:
        monitor.drain(source,
                      poll_interval_s=args.poll_interval,
                      idle_timeout_s=args.idle_timeout,
                      max_polls=args.max_polls,
                      on_update=on_update)
    finally:
        if region is not None:
            region.close()
        if follower is not None:
            follower.close()
    print(_render_live_tool(args, sym, monitor))
    print(monitor.describe(), file=sys.stderr)
    for issue in getattr(source, "issues", []):
        print(f"file issue: {issue}", file=sys.stderr)
    return 0


def cmd_compare(args) -> int:
    from repro.tools.compare import compare_traces, format_comparison

    sym = _load_symbols(args.symbols)
    comparison = compare_traces(
        _load_trace(args.before, workers=args.workers, strict=args.strict,
                    use_mmap=args.mmap),
        _load_trace(args.after, workers=args.workers, strict=args.strict,
                    use_mmap=args.mmap),
        sym.pc_names,
    )
    print(format_comparison(comparison, sym.lock_names, top=args.top))
    return 0


def cmd_iostats(args) -> int:
    from repro.tools.iostats import format_io_report, io_statistics

    trace = _load_trace(args.trace, workers=args.workers, strict=args.strict,
                        use_mmap=args.mmap)
    print(format_io_report(io_statistics(trace), top=args.top))
    return 0


def cmd_crashdump(args) -> int:
    from repro.core.crashdump import read_dump
    from repro.tools.listing import format_event

    with open(args.dump, "rb") as fh:
        dump = read_dump(fh)
    if not dump.intact:
        for issue in dump.issues:
            print(f"dump issue (cpu section {issue.cpu}): {issue.detail}",
                  file=sys.stderr)
    trace = _decode(dump.records, workers=args.workers, strict=args.strict)
    events = [e for e in trace.all_events() if not e.is_control]
    print(f"flight recorder: {len(events)} events recovered from "
          f"{len(dump.records)} buffers on {dump.ncpus} cpus")
    for e in events[-args.last:]:
        print(format_event(e))
    return 0 if dump.intact else 1


def cmd_doctor(args) -> int:
    """Damage report: file issues, anomalies, and what recovery salvaged."""
    from repro.core.writer import TraceFileReader
    from repro.tools.anomaly import verify_trace

    with open(args.trace, "rb") as fh:
        reader = TraceFileReader(fh, strict=args.strict,
                                 use_mmap=args.mmap)
        records = reader.read_all()
    print(f"trace file: {args.trace}")
    print("read path: " + ("mmap (zero-copy)" if reader.read_path == "mmap"
                           else "read() (buffered)"))
    print(f"frames read: {len(records)}")
    if reader.issues:
        print(f"file-level damage ({len(reader.issues)} issues):")
        for issue in reader.issues:
            print(f"  {issue}")
    else:
        print("file-level damage: none")
    if reader.tail_state == "growing":
        print(f"note: {reader.trailing_bytes}-byte partial frame at EOF "
              f"looks like an in-progress write, not damage "
              f"(follow it with `repro-trace follow`)")

    strict_trace = _decode(records, workers=args.workers, strict=True)
    trace = _decode(records, workers=args.workers, strict=args.strict)
    report = verify_trace(trace)
    n_strict = len(strict_trace.all_events())
    print(report.describe())
    if not args.strict and report.total_events > n_strict:
        print(f"recovery salvaged {report.total_events - n_strict} events "
              f"that strict decoding would discard "
              f"({n_strict} -> {report.total_events})")
    clean = report.ok and not reader.issues
    return 0 if clean else 1


def cmd_inject(args) -> int:
    """Deterministically corrupt a trace/dump for testing the read path."""
    from repro.core.faults import (
        DUMP_KINDS,
        FILE_KINDS,
        FaultInjector,
        InjectionReport,
    )
    from repro.core.writer import save_records

    injector = FaultInjector(args.seed)
    report: InjectionReport
    if args.kind in FILE_KINDS:
        with open(args.input, "rb") as fh:
            data = fh.read()
        out, report = injector.inject_trace_bytes(data, args.kind)
        with open(args.output, "wb") as fh:
            fh.write(out)
    elif args.kind in DUMP_KINDS:
        with open(args.input, "rb") as fh:
            data = fh.read()
        out, report = injector.inject_dump_bytes(data, args.kind)
        with open(args.output, "wb") as fh:
            fh.write(out)
    else:
        records = load_records(args.input)
        damaged, report = injector.inject_records(records, args.kind)
        save_records(args.output, damaged,
                     buffer_words=len(records[0].words) if records else None)
    print(report.describe())
    print(f"damaged copy written to {args.output}")
    return 0


def cmd_pack(args) -> int:
    """Pack a trace into a persistent columnar store directory."""
    import os

    from repro.store.writer import pack_trace

    records = load_records(args.trace, strict=args.strict,
                           use_mmap=args.mmap)
    trace = _decode(records, workers=args.workers, strict=args.strict,
                    columnar=True)
    try:
        res = pack_trace(
            trace, args.output,
            shard_events=args.shard_events,
            compress=not args.no_compress,
            source={
                "path": os.path.abspath(args.trace),
                "frames": len(records),
                "buffer_words": len(records[0].words) if records else 0,
            },
            force=args.force,
            workers=None if args.workers == 0 else args.workers,
        )
    except FileExistsError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    raw = os.path.getsize(args.trace)
    ratio = res.bytes_written / raw if raw else 0.0
    print(f"packed {args.trace} -> {res.path}")
    print(f"events: {res.events}  shards: {res.shards}  "
          f"cpus: {res.cpus}  anomalies: {res.anomalies}")
    print(f"bytes: {res.bytes_written:,} "
          f"({ratio:.2f}x of the raw trace's {raw:,})")
    return 0


def cmd_query(args) -> int:
    """Query a packed store with predicate pushdown."""
    from repro.store import Predicate, TraceStore
    from repro.store.query import aggregate, project
    from repro.tools.listing import format_event

    store = TraceStore(args.store, registry=default_registry(),
                       workers=None if args.workers == 0 else args.workers)
    pred = Predicate(
        cpus=tuple(args.cpu) if args.cpu else None,
        nodes=tuple(args.node) if args.node else None,
        majors=tuple(args.major) if args.major else None,
        minors=tuple(args.minor) if args.minor else None,
        names=tuple(args.name) if args.name else None,
        pid=args.pid,
        start_s=args.start,
        end_s=args.end,
        min_data=args.min_data,
        timed_only=args.timed_only,
        include_control=args.control,
    )
    qr = store.query(pred)
    order = qr.batch.order_by_time()
    if args.aggregate:
        for count, key in aggregate(qr.batch, by=args.aggregate,
                                    pid=qr.pid,
                                    pid_known=qr.pid_known)[: args.top]:
            print(f"{count:>8} {key}")
    elif args.project:
        cols = [c.strip() for c in args.project.split(",") if c.strip()]
        sel = order if args.limit is None else order[: args.limit]
        data = project(qr.batch, cols, sel=sel,
                       pid=qr.pid, pid_known=qr.pid_known)
        print("\t".join(cols))
        for row in zip(*(data[c] for c in cols)):
            print("\t".join(str(v) for v in row))
    else:
        sel = order if args.limit is None else order[: args.limit]
        for e in qr.batch.events(sel):
            print(format_event(e))
    print(f"store: read {qr.shards_read}/{qr.shards_total} shards "
          f"({qr.shards_pruned} pruned by statistics), "
          f"{qr.rows_scanned} rows scanned, {len(qr)} matched",
          file=sys.stderr)
    # Per-node accounting exists only for fleet stores, so single-node
    # stores keep byte-identical stdout *and* stderr.
    for node in sorted(qr.node_shards):
        read, total = qr.node_shards[node]
        print(f"  node {node}: read {read}/{total} shards",
              file=sys.stderr)
    return 0


def _render_fleet_tool(args, sym, view) -> str:
    """Render ``--tool`` as per-node sections plus a fleet rollup."""
    if args.tool == "kmon":
        from repro.tools.kmon import fleet_render

        return fleet_render(view, width=args.width)
    if args.tool == "locks":
        from repro.tools.lockstats import fleet_render

        return fleet_render(view, sym.lock_names, sym.chains,
                            sort_by=args.sort,
                            top=args.top if args.top is not None else 10)
    if args.tool == "profile":
        from repro.tools.pcprofile import fleet_render

        return fleet_render(view, sym.pc_names, pid=args.pid,
                            top=args.top if args.top is not None else 20)
    from repro.tools.schedstats import fleet_render

    return fleet_render(view, sym.process_names,
                        top=args.top if args.top is not None else 10)


def _print_fleet_summary(view) -> None:
    s = view.summary()
    print(f"fleet: {len(s['nodes'])} nodes, {s['events']} events, "
          f"residual skew bound <= {s['skew_bound']} cycles")
    for node in view.nodes:
        info = s["per_node"][str(node)]
        basis = "anchored" if info["aligned"] else "identity"
        cpus = ",".join(str(c) for c in info["cpus"])
        print(f"  node {node}: {info['events']} events, cpus [{cpus}], "
              f"{info['anomalies']} anomalies, {basis} clock")


def cmd_merge(args) -> int:
    """Merge N per-node traces into one clock-aligned fleet view."""
    import os

    from repro.fleet.merge import merge_paths, pack_fleet_view

    view = merge_paths(args.traces, registry=default_registry(),
                       strict=args.strict)
    if args.tool:
        print(_render_fleet_tool(args, _load_symbols(args.symbols), view))
    else:
        _print_fleet_summary(view)
    if args.output:
        try:
            res = pack_fleet_view(
                view, args.output,
                shard_events=args.shard_events,
                compress=not args.no_compress,
                source={"paths": [p if p.startswith("shm:")
                                  else os.path.abspath(p)
                                  for p in args.traces]},
                force=args.force,
            )
        except FileExistsError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        print(f"packed fleet store: {res.path} "
              f"({res.events} events, {res.shards} shards, "
              f"nodes {view.nodes})")
    return 0


def cmd_fleet_run(args) -> int:
    """Launch K node workloads end to end and merge their traces."""
    from repro.fleet.launch import fleet_run

    try:
        result = fleet_run(
            args.out_dir,
            nodes=args.nodes,
            backend=args.backend,
            start_method=args.start_method,
            seed=args.seed,
            ncpus=args.ncpus,
            workers_per_cpu=args.workers_per_cpu,
            iterations=args.iterations,
        )
    except NotImplementedError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    for nr in result.node_results:
        print(f"node {nr.node}: {nr.trace_path}")
    _print_fleet_summary(result.view)
    if args.tool:
        print(_render_fleet_tool(args, _load_symbols(args.symbols),
                                 result.view))
    return 0


def cmd_bench(args) -> int:
    """Run the unified benchmark harness and optionally gate on a baseline."""
    from pathlib import Path

    from repro.perf import (
        REGISTRY,
        compare_reports,
        default_report_path,
        discover_benchmarks,
        format_comparison,
        load_report,
        render_report,
        run_benchmarks,
        save_report,
        set_results_dir,
    )

    bench_dir = Path(args.dir)
    discover_benchmarks(bench_dir)
    set_results_dir(bench_dir / "results")

    if args.list:
        try:
            for defn in REGISTRY.select(pattern=args.filter, quick=args.quick):
                tier = "quick" if defn.quick else "full "
                print(f"[{tier}] {defn.name:<38} tolerance {defn.tolerance:.0%}"
                      f"  ({defn.module})")
        except BrokenPipeError:   # e.g. `bench --list | head`
            sys.stderr.close()    # suppress the interpreter's epipe warning
        return 0

    def progress(p) -> None:
        if p.done:
            print(f"[{p.index + 1}/{p.total}] {p.name}  ({p.seconds:.1f}s)",
                  file=sys.stderr)

    doc = run_benchmarks(quick=args.quick, filter_pattern=args.filter,
                         on_progress=progress)
    out = Path(args.output) if args.output else default_report_path()
    save_report(doc, out)
    print(render_report(doc))
    print(f"\nreport written to {out}")

    if args.baseline:
        baseline = load_report(Path(args.baseline))
        comparison = compare_reports(doc, baseline,
                                     default_tolerance=args.tolerance,
                                     normalize=not args.no_normalize)
        print()
        print(format_comparison(comparison))
        if not comparison.ok(require_all=args.require_all):
            print("\nPERF GATE: FAIL", file=sys.stderr)
            return 1
        print("\nPERF GATE: ok")
    return 0


def _print_schedule(outcome) -> None:
    """Render a counterexample schedule step by step."""
    for point in outcome.points:
        kind, tid = point.choice
        label = point.labels.get(tid, "?")
        mark = "kill" if kind == "kill" else "run "
        print(f"  step {point.step:>3}: {mark} task {tid} @ {label}")


def cmd_check(args) -> int:
    """Model-check the lockless reserve/commit protocol."""
    from repro.check import (
        CheckConfig,
        MUTANTS,
        explore_exhaustive,
        explore_random,
        load_script,
        save_script,
    )
    from repro.check.harness import ConfigError, ReplayDivergence
    from repro.check.script import ScheduleScript
    from repro.check.shm import SHM_MUTANTS

    if args.list_mutants:
        for name, spec in sorted(MUTANTS.items()):
            print(f"{name:<22} {spec.summary}")
            print(f"{'':<22} expected: {', '.join(spec.expected)}")
        for name, spec in sorted(SHM_MUTANTS.items()):
            print(f"{name:<22} {spec.summary} [shm seam]")
            print(f"{'':<22} expected: {', '.join(spec.expected)}")
        return 0

    if args.replay:
        script = load_script(args.replay)
        cfg = script.config
        print(f"replaying {args.replay}: {len(script.choices)} choices, "
              f"mutant={cfg.mutant or 'none'}")
        try:
            outcome = script.replay()
        except ReplayDivergence as exc:
            print(f"REPLAY DIVERGED: {exc}", file=sys.stderr)
            return 2
        if outcome.violation is not None:
            v = outcome.violation
            print(f"reproduced: {v.invariant}")
            print(f"  {v.detail}")
            _print_schedule(outcome)
            return 1
        if script.violation is not None:
            print("REPLAY DIVERGED: the script records violation "
                  f"{script.violation.get('invariant')!r} but the replay "
                  "ran clean (code under test changed?)", file=sys.stderr)
            return 2
        print("replay completed: no violation")
        return 0

    # Resolve the configuration: explicit flags beat the mutant's
    # recommended settings, which beat the built-in defaults.
    spec = None
    if args.mutant is not None:
        spec = MUTANTS.get(args.mutant) or SHM_MUTANTS.get(args.mutant)
        if spec is None:
            known = sorted(MUTANTS) + sorted(SHM_MUTANTS)
            print(f"unknown mutant {args.mutant!r}; known: "
                  f"{', '.join(known)}", file=sys.stderr)
            return 2
    defaults = {
        "writers": 2, "events": 2, "data_words": 1, "buffer_words": 8,
        "num_buffers": 8, "kills": 0, "reader": False, "reader_steps": 3,
        "preemption_bound": 2,
        "shm": False, "shm_cpus": 1, "collector_steps": 0,
    }
    if spec is not None:
        defaults.update(spec.config)

    def pick(name):
        value = getattr(args, name)
        return defaults[name] if value is None else value

    preemption_bound = pick("preemption_bound")
    cfg = CheckConfig(
        writers=pick("writers"),
        events=pick("events"),
        data_words=pick("data_words"),
        buffer_words=pick("buffer_words"),
        num_buffers=pick("num_buffers"),
        kills=pick("kills"),
        reader=bool(pick("reader")),
        reader_steps=pick("reader_steps"),
        mutant=args.mutant,
        shm=bool(pick("shm")),
        shm_cpus=pick("shm_cpus"),
        collector_steps=pick("collector_steps"),
    )
    try:
        cfg.validate()
    except ConfigError as exc:
        print(f"bad configuration: {exc}", file=sys.stderr)
        return 2

    shm_note = (f" shm=True shm-cpus={cfg.shm_cpus} "
                f"collector-steps={cfg.collector_steps}" if cfg.shm else "")
    print(f"mode={args.mode} writers={cfg.writers} events={cfg.events} "
          f"data-words={cfg.data_words} buffer-words={cfg.buffer_words} "
          f"num-buffers={cfg.num_buffers} kills={cfg.kills} "
          f"reader={cfg.reader} mutant={cfg.mutant or 'none'}{shm_note}")
    if args.mode == "exhaustive":
        print(f"preemption bound {preemption_bound}"
              + (f", max {args.max_schedules} schedules"
                 if args.max_schedules else ""))
        result = explore_exhaustive(
            cfg, preemption_bound=preemption_bound,
            max_schedules=args.max_schedules,
        )
    else:
        print(f"{args.schedules} randomized schedules, seed {args.seed}, "
              f"depth {args.depth}")
        result = explore_random(
            cfg, schedules=args.schedules, seed=args.seed, depth=args.depth,
        )

    print(f"schedules explored: {result.schedules}   "
          f"steps: {result.steps}")
    if result.passed:
        if result.truncated:
            print(f"stopped at --max-schedules={args.max_schedules} "
                  "without a violation (NOT a proof)")
        elif args.mode == "exhaustive":
            print(f"all interleavings pass "
                  f"(preemption bound {preemption_bound})")
        else:
            print("no violation found")
        return 0

    v = result.violation
    print(f"\nVIOLATION: {v.invariant}")
    print(f"  {v.detail}")
    if result.mode == "random" and result.iteration is not None:
        print(f"  found at seed {result.seed} iteration {result.iteration}")
    mini = result.counterexample
    print(f"minimized counterexample: {mini.steps} steps, "
          f"{mini.preemptions} preemption(s), {mini.kills} kill(s) "
          f"(first found at {result.original.steps} steps)")
    _print_schedule(mini)
    if args.save:
        note = (f"found by repro-trace check --mode {args.mode}; "
                f"mutant={cfg.mutant or 'none'}")
        save_script(ScheduleScript.from_outcome(mini, note=note), args.save)
        print(f"counterexample written to {args.save}")
        print(f"replay with: repro-trace check --replay {args.save}")
    return 1


def cmd_shm_demo(args) -> int:
    """Run the real cross-process scenario end to end."""
    from repro.shm import run_shm_workload
    from repro.shm.procs import expected_payloads

    result = run_shm_workload(
        args.output,
        writers=args.writers,
        events=args.events,
        data_words=args.data_words,
        buffer_words=args.buffer_words,
        num_buffers=args.num_buffers,
        start_method=args.start_method,
        concurrent_collector=not args.post_drain,
    )
    stats = result.collector
    print(f"{result.writers} writer processes x {result.events_per_writer} "
          f"events ({result.start_method} start method, "
          f"{'concurrent' if result.concurrent_collector else 'post-quiesce'}"
          f" collector) in {result.elapsed_s:.3f}s")
    print(f"collector: {stats.get('frames', 0)} frames "
          f"({stats.get('partial_frames', 0)} partial), "
          f"{stats.get('dropped', 0)} dropped, "
          f"{stats.get('polls', 0)} polls, "
          f"{stats.get('unstable_copies', 0)} unstable copies")
    print(f"trace written to {result.trace_path}")

    dropped = int(stats.get("dropped", 0))
    trace = _decode(load_records(args.output), workers=1)
    anomalies = [a for a in trace.anomalies if a.kind != "missing-anchor"]
    got = {w: 0 for w in range(args.writers)}
    for cpu in range(args.writers):
        for ev in trace.events(cpu):
            if ev.major == 1 and 1 <= ev.minor <= args.writers:  # Major.TEST
                got[ev.minor - 1] += 1
    total = sum(got.values())
    print(f"decoded {total}/{result.events_total} TEST events, "
          f"{len(anomalies)} anomalies")
    if anomalies:
        a = anomalies[0]
        print(f"FAIL: anomaly {a.kind} in cpu {a.cpu} seq {a.seq}: "
              f"{a.detail}", file=sys.stderr)
        return 1
    if dropped == 0 and total != result.events_total:
        issued = expected_payloads(args.writers, args.events,
                                   args.data_words)
        missing = {w: args.events - got[w] for w in got if
                   got[w] != len(issued[w])}
        print(f"FAIL: no drops reported but events missing: {missing}",
              file=sys.stderr)
        return 1
    if dropped:
        print(f"note: ring lapped the collector {dropped} time(s); "
              f"enlarge --num-buffers for a complete trace")
    return 0


def cmd_export_ltt(args) -> int:
    from repro.ltt.export import export_ltt

    trace = _load_trace(args.trace, workers=args.workers, strict=args.strict,
                        use_mmap=args.mmap)
    with open(args.output, "wb") as fh:
        written = export_ltt(trace, cpu=args.cpu, fh=fh)
    print(f"{written} events exported to {args.output} (cpu {args.cpu})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-trace",
        description="K42-style trace analysis (see module docstring)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    def add(name, fn, columnar=False, **kw):
        sp = sub.add_parser(name, **kw)
        sp.set_defaults(fn=fn)
        sp.add_argument(
            "--workers", type=int, default=1, metavar="N",
            help="decode on N worker processes (0 = one per CPU core); "
                 "output is identical to sequential decode",
        )
        sp.add_argument(
            "--strict", action="store_true",
            help="stop at the first damage (garbled event, bad frame) "
                 "instead of resynchronizing past it",
        )
        sp.add_argument(
            "--mmap", action=argparse.BooleanOptionalAction, default=True,
            help="read the trace via mmap page-cache views (zero-copy; "
                 "default); --no-mmap forces buffered reads — output is "
                 "identical",
        )
        if columnar:
            sp.add_argument(
                "--columnar", action=argparse.BooleanOptionalAction,
                default=True,
                help="analyze via structure-of-arrays event batches "
                     "(default); --no-columnar forces the scalar "
                     "per-event path — output is identical",
            )
            sp.add_argument(
                "--store", action="store_true",
                help="treat TRACE as a packed store directory "
                     "(see repro-trace pack); store directories are "
                     "also auto-detected",
            )
        return sp

    sp = add("info", cmd_info, columnar=True, help="trace file summary")
    sp.add_argument("trace")

    sp = add("verify", cmd_verify, help="check trace integrity (§3.1)")
    sp.add_argument("trace")

    sp = add("list", cmd_list, columnar=True,
             help="event listing (Figure 5)")
    sp.add_argument("trace")
    sp.add_argument("--name", action="append")
    sp.add_argument("--cpu", type=int)
    sp.add_argument("--start", type=float)
    sp.add_argument("--end", type=float)
    sp.add_argument("--limit", type=int)
    sp.add_argument("--control", action="store_true",
                    help="include infrastructure events")

    sp = add("kmon", cmd_kmon, columnar=True,
             help="timeline view (Figure 4)")
    sp.add_argument("trace")
    sp.add_argument("--width", type=int, default=96)
    sp.add_argument("--mark", action="append")
    sp.add_argument("--zoom", type=float, nargs=2,
                    metavar=("START_S", "END_S"))
    sp.add_argument("--svg")
    sp.add_argument("--interactive", action="store_true",
                    help="command-driven session (zoom/mark/click/...)")
    sp.add_argument("--symbols")

    sp = add("locks", cmd_locks, columnar=True,
             help="lock contention (Figure 7)")
    sp.add_argument("trace")
    sp.add_argument("--symbols")
    sp.add_argument("--sort", default="time",
                    choices=["time", "count", "spin", "max"])
    sp.add_argument("--top", type=int, default=10)

    sp = add("profile", cmd_profile, columnar=True,
             help="PC-sample histogram (Figure 6)")
    sp.add_argument("trace")
    sp.add_argument("--symbols")
    sp.add_argument("--pid", type=int)
    sp.add_argument("--top", type=int, default=20)

    sp = add("breakdown", cmd_breakdown, columnar=True,
             help="per-process syscall/IPC breakdown (Figure 8)")
    sp.add_argument("trace")
    sp.add_argument("--symbols")
    sp.add_argument("--pid", type=int)

    sp = add("histogram", cmd_histogram,
             help="event-frequency table (§4.2 path statistics)")
    sp.add_argument("trace")
    sp.add_argument("--top", type=int, default=30)

    sp = add("memprofile", cmd_memprofile,
             help="memory hot-spot report from hw counters (§2)")
    sp.add_argument("trace")
    sp.add_argument("--symbols")
    sp.add_argument("--top", type=int, default=8)

    sp = add("holds", cmd_holds,
             help="lock hold-time analysis with preemption explanation (§2)")
    sp.add_argument("trace")
    sp.add_argument("--symbols")
    sp.add_argument("--top", type=int, default=10)

    sp = add("sched", cmd_sched, columnar=True,
             help="scheduler stats + CPU time by process (§4.5)")
    sp.add_argument("trace")
    sp.add_argument("--symbols")
    sp.add_argument("--top", type=int, default=10)

    sp = add("pack", cmd_pack,
             help="pack a trace into a compressed columnar store")
    sp.add_argument("trace")
    sp.add_argument("output", help="store directory to create")
    sp.add_argument("--shard-events", type=int,
                    default=DEFAULT_SHARD_EVENTS, metavar="N",
                    help="target events per shard; shards are cut only "
                         "at buffer boundaries (default %(default)s)")
    sp.add_argument("--no-compress", action="store_true",
                    help="write uncompressed npz shards")
    sp.add_argument("--force", action="store_true",
                    help="overwrite an existing store directory")

    sp = sub.add_parser(
        "query",
        help="query a packed store with predicate pushdown")
    sp.set_defaults(fn=cmd_query)
    sp.add_argument("store", help="store directory (from repro-trace pack)")
    sp.add_argument("--workers", type=int, default=1, metavar="N",
                    help="read + decompress shards on N worker "
                         "processes (0 = one per CPU core); results "
                         "are identical")
    sp.add_argument("--cpu", type=int, action="append",
                    help="restrict to CPU N (repeatable)")
    sp.add_argument("--node", type=int, action="append",
                    help="fleet store: restrict to node N (repeatable); "
                         "other nodes' shards are pruned unopened")
    sp.add_argument("--major", type=int, action="append",
                    help="restrict to major ID (repeatable)")
    sp.add_argument("--minor", type=int, action="append",
                    help="restrict to minor ID (repeatable)")
    sp.add_argument("--name", action="append",
                    help="restrict to event name (repeatable)")
    sp.add_argument("--pid", type=int,
                    help="restrict to events executed in pid context")
    sp.add_argument("--start", type=float, metavar="S",
                    help="window start in seconds")
    sp.add_argument("--end", type=float, metavar="S",
                    help="window end in seconds")
    sp.add_argument("--min-data", type=int, default=0, metavar="N",
                    help="require at least N payload words")
    sp.add_argument("--timed-only", action="store_true",
                    help="only events carrying a timestamp")
    sp.add_argument("--control", action="store_true",
                    help="include infrastructure events")
    sp.add_argument("--limit", type=int,
                    help="print at most N events/rows")
    sp.add_argument("--project", metavar="COLS",
                    help="comma-separated columns to emit as TSV "
                         f"(from: {', '.join(PROJECTABLE)}, dataK)")
    sp.add_argument("--aggregate",
                    choices=("name", "major", "minor", "cpu", "pid"),
                    help="count events grouped by a column instead of "
                         "listing them")
    sp.add_argument("--top", type=int, default=30,
                    help="rows shown with --aggregate (default 30)")

    sp = sub.add_parser(
        "merge",
        help="merge N per-node traces into one clock-aligned fleet "
             "view (each a .k42 file, a store directory, or shm:NAME)")
    sp.set_defaults(fn=cmd_merge)
    sp.add_argument("traces", nargs="+",
                    help="per-node traces; a .anchors.json sidecar "
                         "supplies node id + clock anchors, otherwise "
                         "the path's position is its node id with the "
                         "identity clock")
    sp.add_argument("-o", "--output", metavar="DIR",
                    help="also pack the unified view into a store "
                         "directory (queryable with query --node)")
    sp.add_argument("--shard-events", type=int,
                    default=DEFAULT_SHARD_EVENTS, metavar="N",
                    help="target events per shard in the packed store "
                         "(default %(default)s)")
    sp.add_argument("--no-compress", action="store_true",
                    help="write uncompressed npz shards")
    sp.add_argument("--force", action="store_true",
                    help="overwrite an existing store directory")
    sp.add_argument("--tool", choices=("kmon", "locks", "profile", "sched"),
                    help="render this tool's per-node + fleet-rollup "
                         "report instead of the merge summary")
    sp.add_argument("--symbols")
    sp.add_argument("--sort", default="time",
                    choices=["time", "count", "spin", "max"],
                    help="locks: sort column")
    sp.add_argument("--pid", type=int, help="profile: restrict to a pid")
    sp.add_argument("--top", type=int, default=None,
                    help="table rows (default: the tool's own default)")
    sp.add_argument("--width", type=int, default=96, help="kmon: columns")
    sp.add_argument("--strict", action="store_true",
                    help="stop at the first damage instead of "
                         "resynchronizing past it")

    sp = sub.add_parser(
        "fleet-run",
        help="launch K node workloads (pluggable backend), then merge "
             "their per-node traces into one fleet view")
    sp.set_defaults(fn=cmd_fleet_run)
    sp.add_argument("-o", "--out-dir", required=True, dest="out_dir",
                    help="directory for per-node traces + anchor "
                         "sidecars")
    sp.add_argument("--nodes", type=int, default=2, metavar="K",
                    help="node count (default 2)")
    sp.add_argument("--backend", default="local",
                    choices=("local", "docker", "mpi"),
                    help="launch substrate; docker/mpi are declared "
                         "slots, only local is implemented")
    sp.add_argument("--start-method", choices=("fork", "spawn"),
                    default=None, dest="start_method",
                    help="local backend: multiprocessing start method "
                         "(default: platform default)")
    sp.add_argument("--seed", type=int, default=2003,
                    help="master seed; per-node workload seeds and "
                         "clock offsets/rates derive from it")
    sp.add_argument("--ncpus", type=int, default=2,
                    help="simulated CPUs per node (default 2)")
    sp.add_argument("--workers-per-cpu", type=int, default=2,
                    dest="workers_per_cpu",
                    help="workload threads per CPU (default 2)")
    sp.add_argument("--iterations", type=int, default=30,
                    help="workload iterations per thread (default 30)")
    sp.add_argument("--tool", choices=("kmon", "locks", "profile", "sched"),
                    help="also render this tool over the merged view")
    sp.add_argument("--symbols")
    sp.add_argument("--sort", default="time",
                    choices=["time", "count", "spin", "max"],
                    help="locks: sort column")
    sp.add_argument("--pid", type=int, help="profile: restrict to a pid")
    sp.add_argument("--top", type=int, default=None,
                    help="table rows (default: the tool's own default)")
    sp.add_argument("--width", type=int, default=96, help="kmon: columns")

    sp = sub.add_parser(
        "follow",
        help="follow a growing trace live (file tail, shm region, or "
             "paced replay) and render a tool over a bounded window")
    sp.set_defaults(fn=cmd_follow)
    sp.add_argument("trace", nargs="?",
                    help="trace file to tail (omit with --shm)")
    sp.add_argument("--shm", metavar="NAME",
                    help="follow a live shared-memory region instead of "
                         "a file (attach by segment name)")
    sp.add_argument("--tool", choices=("kmon", "locks", "profile", "sched"),
                    default="kmon",
                    help="which analysis to render over the live window")
    sp.add_argument("--replay", metavar="SPEED",
                    help="treat the (complete) trace as a live source "
                         "replayed at SPEED: instant, realtime, or Nx")
    sp.add_argument("--window-events", type=int, default=None, metavar="N",
                    dest="window_events",
                    help="flight-recorder bound: keep roughly the most "
                         "recent N events (default: unbounded)")
    sp.add_argument("--poll-interval", type=float, default=0.05,
                    dest="poll_interval", metavar="S",
                    help="seconds between polls when no data is arriving")
    sp.add_argument("--idle-timeout", type=float, default=1.0,
                    dest="idle_timeout", metavar="S",
                    help="stop after S seconds with no new data "
                         "(file following has no done marker)")
    sp.add_argument("--max-polls", type=int, default=None,
                    dest="max_polls", metavar="N",
                    help="hard cap on polls (mostly for tests)")
    sp.add_argument("--lag", type=int, default=1,
                    help="shm: completed buffers held back from live "
                         "polls (collector lag)")
    sp.add_argument("--refresh", action="store_true",
                    help="print a snapshot to stderr after every poll "
                         "that brought data")
    sp.add_argument("--symbols")
    sp.add_argument("--sort", default="time",
                    choices=["time", "count", "spin", "max"],
                    help="locks: sort column")
    sp.add_argument("--pid", type=int, help="profile: restrict to a pid")
    sp.add_argument("--top", type=int, default=None,
                    help="table rows (default: the tool's own default)")
    sp.add_argument("--width", type=int, default=96, help="kmon: columns")
    sp.add_argument("--strict", action="store_true",
                    help="stop at the first damage instead of "
                         "resynchronizing past it")

    sp = add("compare", cmd_compare,
             help="diff two traces of the same workload (the §4 tuning loop)")
    sp.add_argument("before")
    sp.add_argument("after")
    sp.add_argument("--symbols")
    sp.add_argument("--top", type=int, default=5)

    sp = add("iostats", cmd_iostats,
             help="I/O latency/volume/interrupt analysis (§2)")
    sp.add_argument("trace")
    sp.add_argument("--top", type=int, default=8)

    sp = add("crashdump", cmd_crashdump,
             help="recover the flight recorder from a memory image (§4.2)")
    sp.add_argument("dump")
    sp.add_argument("--last", type=int, default=20)

    sp = add("doctor", cmd_doctor,
             help="damage report: file issues, anomalies, salvage")
    sp.add_argument("trace")

    sp = add("inject", cmd_inject,
             help="deterministically corrupt a trace (fault injection)")
    sp.add_argument("input")
    sp.add_argument("output")
    from repro.core.faults import ALL_KINDS

    sp.add_argument("--kind", required=True, choices=ALL_KINDS,
                    help="which fault from the matrix to inject")
    sp.add_argument("--seed", type=int, default=0,
                    help="RNG seed; same seed = same damage")

    sp = sub.add_parser(
        "bench",
        help="run the unified benchmark harness (repro.perf)")
    sp.set_defaults(fn=cmd_bench)
    sp.add_argument("--quick", action="store_true",
                    help="fast tier: quick-marked benchmarks, fewer "
                         "repeats, downscaled workloads")
    sp.add_argument("--filter", metavar="PAT",
                    help="only benchmarks whose name contains PAT "
                         "(or matches it as a glob)")
    sp.add_argument("--baseline", metavar="PATH",
                    help="compare against this BENCH_*.json and exit "
                         "non-zero on regression")
    sp.add_argument("--output", metavar="PATH",
                    help="where to write the consolidated report "
                         "(default: ./BENCH_<timestamp>.json)")
    sp.add_argument("--dir", default="benchmarks", metavar="DIR",
                    help="benchmark directory to discover bench_*.py in "
                         "(default: ./benchmarks)")
    sp.add_argument("--tolerance", type=float, default=0.25,
                    help="default regression band for --baseline "
                         "(fraction of baseline median; default 0.25)")
    sp.add_argument("--no-normalize", action="store_true",
                    help="skip machine-speed normalization in --baseline "
                         "comparison")
    sp.add_argument("--require-all", action="store_true",
                    help="fail the gate when a baseline benchmark is "
                         "missing from this run")
    sp.add_argument("--list", action="store_true",
                    help="list the selected benchmarks and exit")

    sp = add("export-ltt", cmd_export_ltt,
             help="convert to the LTT-style format (§5)")
    sp.add_argument("trace")
    sp.add_argument("--cpu", type=int, default=0)
    sp.add_argument("-o", "--output", required=True)

    sp = sub.add_parser(
        "check",
        help="model-check the lockless reserve/commit protocol "
             "(schedule exploration)")
    sp.set_defaults(fn=cmd_check)
    # Geometry/config flags default to None so the CLI can tell an
    # explicit value from "use the mutant's recommended config".
    sp.add_argument("--writers", type=int, default=None, metavar="N",
                    help="concurrent writer tasks (default 2)")
    sp.add_argument("--events", type=int, default=None, metavar="N",
                    help="events each writer logs (default 2)")
    sp.add_argument("--data-words", type=int, default=None, metavar="N",
                    dest="data_words",
                    help="payload words per event (default 1)")
    sp.add_argument("--buffer-words", type=int, default=None, metavar="N",
                    dest="buffer_words",
                    help="words per trace buffer (default 8)")
    sp.add_argument("--num-buffers", type=int, default=None, metavar="N",
                    dest="num_buffers",
                    help="buffers in the ring (default 8; runs must be "
                         "wrap-free)")
    sp.add_argument("--kills", type=int, default=None, metavar="N",
                    help="writer kills the scheduler may inject "
                         "(default 0)")
    sp.add_argument("--reader", action="store_const", const=True,
                    default=None,
                    help="run a concurrent reader task that checks "
                         "committed-covered buffers mid-run")
    sp.add_argument("--reader-steps", type=int, default=None, metavar="N",
                    dest="reader_steps",
                    help="observations the reader takes (default 3)")
    sp.add_argument("--mode", choices=("exhaustive", "random"),
                    default="exhaustive",
                    help="bounded exhaustive DFS, or randomized "
                         "PCT-style priority schedules")
    sp.add_argument("--preemption-bound", type=int, default=None,
                    metavar="N", dest="preemption_bound",
                    help="max preemptions per schedule in exhaustive "
                         "mode (default 2)")
    sp.add_argument("--schedules", type=int, default=500, metavar="N",
                    help="iterations in random mode (default 500)")
    sp.add_argument("--seed", type=int, default=0,
                    help="base seed for random mode; failures report "
                         "seed + iteration for exact re-runs")
    sp.add_argument("--depth", type=int, default=3,
                    help="PCT priority-change points per random "
                         "schedule (default 3)")
    sp.add_argument("--max-schedules", type=int, default=None, metavar="N",
                    dest="max_schedules",
                    help="stop exhaustive search after N schedules "
                         "(reported as truncated, not as a proof)")
    sp.add_argument("--shm", action="store_const", const=True,
                    default=None,
                    help="check across the shared-memory seam: writers "
                         "become independent attaches of one real shm "
                         "segment and a collector's drained output is "
                         "what the final invariants judge")
    sp.add_argument("--shm-cpus", type=int, default=None, metavar="N",
                    dest="shm_cpus",
                    help="per-CPU rings in the shm segment; writer w "
                         "binds CPU w %% N (default 1)")
    sp.add_argument("--collector-steps", type=int, default=None,
                    metavar="N", dest="collector_steps",
                    help="mid-schedule collector polls, each a "
                         "scheduling point (default 0; shm mode only)")
    sp.add_argument("--mutant", default=None, metavar="NAME",
                    help="check a deliberately broken logger or shm "
                         "attach/drain path instead (see --list-mutants); "
                         "its recommended config fills in unspecified "
                         "flags")
    sp.add_argument("--list-mutants", action="store_true",
                    dest="list_mutants",
                    help="list known mutants and exit")
    sp.add_argument("--save", metavar="PATH",
                    help="write the minimized counterexample as a "
                         "replayable JSON schedule script")
    sp.add_argument("--replay", metavar="PATH",
                    help="replay a saved schedule script and report "
                         "whether it still violates")

    sp = sub.add_parser(
        "shm-demo",
        help="run the real cross-process scenario: N writer processes "
             "log into one shared-memory segment while a collector "
             "process drains it to a trace file")
    sp.set_defaults(fn=cmd_shm_demo)
    sp.add_argument("-o", "--output", required=True,
                    help="trace file the collector writes")
    sp.add_argument("--writers", type=int, default=2, metavar="N",
                    help="writer processes, one CPU each (default 2)")
    sp.add_argument("--events", type=int, default=2000, metavar="N",
                    help="events each writer logs (default 2000)")
    sp.add_argument("--data-words", type=int, default=2, metavar="N",
                    dest="data_words",
                    help="payload words per event (default 2)")
    sp.add_argument("--buffer-words", type=int, default=256, metavar="N",
                    dest="buffer_words",
                    help="words per trace buffer (default 256)")
    sp.add_argument("--num-buffers", type=int, default=8, metavar="N",
                    dest="num_buffers",
                    help="buffers per CPU ring (default 8)")
    sp.add_argument("--start-method", choices=("fork", "spawn"),
                    default=None, dest="start_method",
                    help="multiprocessing start method (default: "
                         "platform default)")
    sp.add_argument("--post-drain", action="store_true", dest="post_drain",
                    help="start the collector only after writers "
                         "quiesce instead of racing them")

    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
