"""Atomic-primitive substrate.

The paper's lockless logging algorithm (Figure 2) is built on a hardware
compare-and-store instruction (``stwcx.`` on PowerPC).  CPython exposes no
such primitive, so this package provides two stand-ins:

* :class:`~repro.atomic.primitives.AtomicWord` /
  :class:`~repro.atomic.primitives.AtomicArray` — thread-safe emulated
  hardware atomics.  Each individual operation (load, store,
  compare-and-store, fetch-and-add) is made atomic with a micro-lock that
  is *internal to the primitive*, exactly as a hardware instruction is
  atomic internally.  No lock is ever held across the reserve/log/commit
  sequence, which is what "lockless" means in the paper.

* :class:`~repro.atomic.simatomic.SimAtomicWord` — a deterministic variant
  for the discrete-event simulator and for property tests, with an
  injectable interference hook so tests can force CAS failures at exact
  points in the retry loop.

* :class:`~repro.atomic.stepped.SteppedAtomicWord` /
  :class:`~repro.atomic.stepped.SteppedAtomicArray` — step-instrumented
  variants for the schedule-exploring model checker (:mod:`repro.check`):
  every operation is a scheduling point at which a controlled scheduler
  may switch simulated CPUs.
"""

from repro.atomic.primitives import AtomicArray, AtomicWord
from repro.atomic.simatomic import InterferenceHook, SimAtomicWord
from repro.atomic.stepped import SteppedAtomicArray, SteppedAtomicWord

__all__ = [
    "AtomicWord",
    "AtomicArray",
    "SimAtomicWord",
    "InterferenceHook",
    "SteppedAtomicWord",
    "SteppedAtomicArray",
]
