"""Deterministic atomic word for simulation and race-injection tests.

The discrete-event simulator serializes all operations, so a plain word
would do — but property tests want to *force* the interesting schedules:
a CAS that fails because a competitor slipped in between the load of
``oldIndex`` and the compare-and-store.  ``SimAtomicWord`` accepts an
interference hook that runs just before each compare-and-store and may
mutate the word, making every branch of the Figure 2 retry loop
reachable deterministically.
"""

from __future__ import annotations

from typing import Callable, Optional

_WORD_MASK = (1 << 64) - 1

#: Called as hook(word, expected, new) immediately before the CAS compare.
#: May call word.store(...) to simulate a competing writer.
InterferenceHook = Callable[["SimAtomicWord", int, int], None]


class SimAtomicWord:
    """Single-threaded atomic word with injectable CAS interference."""

    __slots__ = ("_value", "_hook", "_in_hook", "cas_attempts", "cas_failures")

    def __init__(self, initial: int = 0, hook: Optional[InterferenceHook] = None) -> None:
        self._value = initial & _WORD_MASK
        self._hook = hook
        self._in_hook = False
        self.cas_attempts = 0
        self.cas_failures = 0

    def set_hook(self, hook: Optional[InterferenceHook]) -> None:
        self._hook = hook

    def load(self) -> int:
        return self._value

    def store(self, value: int) -> None:
        self._value = value & _WORD_MASK

    def compare_and_store(self, expected: int, new: int) -> bool:
        self.cas_attempts += 1
        if self._hook is not None and not self._in_hook:
            # Reentrancy guard (a hook may CAS internally) that still
            # lets hooks disarm or replace themselves via set_hook.
            self._in_hook = True
            try:
                self._hook(self, expected & _WORD_MASK, new & _WORD_MASK)
            finally:
                self._in_hook = False
        if self._value != (expected & _WORD_MASK):
            self.cas_failures += 1
            return False
        self._value = new & _WORD_MASK
        return True

    def fetch_and_add(self, delta: int) -> int:
        old = self._value
        self._value = (old + delta) & _WORD_MASK
        return old

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimAtomicWord({self._value:#x})"
