"""Emulated hardware atomic words.

Semantics follow the 64-bit unsigned machine word: all values are reduced
modulo 2**64, and ``fetch_and_add`` wraps silently the way hardware does.
"""

from __future__ import annotations

import threading

_WORD_MASK = (1 << 64) - 1


class AtomicWord:
    """A single 64-bit word with atomic operations.

    The internal lock emulates the atomicity guarantee of a hardware
    instruction; callers never see or hold it.  This is the documented
    substitution for PowerPC ``lwarx``/``stwcx.`` (see DESIGN.md §2).
    """

    __slots__ = ("_value", "_lock")

    def __init__(self, initial: int = 0) -> None:
        self._value = initial & _WORD_MASK
        self._lock = threading.Lock()

    def load(self) -> int:
        """Atomically read the current value."""
        with self._lock:
            return self._value

    def store(self, value: int) -> None:
        """Atomically overwrite the current value."""
        with self._lock:
            self._value = value & _WORD_MASK

    def compare_and_store(self, expected: int, new: int) -> bool:
        """Atomically set the word to ``new`` iff it still equals ``expected``.

        Returns True when the store happened (the caller "won"), False when
        another writer got there first — the return value the Figure 2
        pseudo-code branches on.
        """
        expected &= _WORD_MASK
        new &= _WORD_MASK
        with self._lock:
            if self._value != expected:
                return False
            self._value = new
            return True

    def fetch_and_add(self, delta: int) -> int:
        """Atomically add ``delta``; return the *previous* value."""
        with self._lock:
            old = self._value
            self._value = (old + delta) & _WORD_MASK
            return old

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"AtomicWord({self.load():#x})"


class AtomicArray:
    """A fixed-size array of 64-bit words with per-element atomic ops.

    Used for the per-buffer committed-word counts (``traceCommit`` keeps
    one counter per buffer).  Locks are striped so that counters for
    different buffers do not contend with each other.
    """

    __slots__ = ("_values", "_locks", "_nstripes")

    def __init__(self, length: int, initial: int = 0, nstripes: int = 16) -> None:
        if length < 0:
            raise ValueError("length must be non-negative")
        self._values = [initial & _WORD_MASK] * length
        self._nstripes = max(1, min(nstripes, max(length, 1)))
        self._locks = [threading.Lock() for _ in range(self._nstripes)]

    def __len__(self) -> int:
        return len(self._values)

    def _lock_for(self, index: int) -> threading.Lock:
        return self._locks[index % self._nstripes]

    def load(self, index: int) -> int:
        with self._lock_for(index):
            return self._values[index]

    def store(self, index: int, value: int) -> None:
        with self._lock_for(index):
            self._values[index] = value & _WORD_MASK

    def compare_and_store(self, index: int, expected: int, new: int) -> bool:
        expected &= _WORD_MASK
        new &= _WORD_MASK
        with self._lock_for(index):
            if self._values[index] != expected:
                return False
            self._values[index] = new
            return True

    def fetch_and_add(self, index: int, delta: int) -> int:
        with self._lock_for(index):
            old = self._values[index]
            self._values[index] = (old + delta) & _WORD_MASK
            return old

    def snapshot(self) -> list[int]:
        """Non-atomic (per-element atomic) copy of all values."""
        return [self.load(i) for i in range(len(self._values))]
