"""Step-instrumented atomic primitives for schedule exploration.

The model checker (:mod:`repro.check`) runs the real lockless logger
under a controlled scheduler that decides, at every shared-memory
operation, which simulated CPU runs next.  These primitives make each
operation such a *scheduling point*: immediately before the effect of a
``load``/``store``/``compare_and_store``/``fetch_and_add`` takes place,
the word calls a yield function, giving the scheduler the chance to run
a competitor first — exactly the interleavings a preemptible machine
can produce around a ``lwarx``/``stwcx.`` pair.

An optional observer is called *after* each operation with the operation
name and its outcome; the checker uses it to track reservations and
commits without touching the logger.  ``peek``/``peek_all`` read the
value without a scheduling point, for invariant checks run from the
scheduler itself (a checker observing memory is not a protocol
participant).

Only one task runs at a time under the checker's scheduler, so these
classes need no internal locking; they must not be shared between truly
concurrent threads.
"""

from __future__ import annotations

from typing import Callable, Optional

_WORD_MASK = (1 << 64) - 1

#: Called before an operation's effect: ``yield_fn(label)``.
YieldFn = Callable[[str], None]
#: Called after an operation: ``observer(name, op, args_tuple, result)``.
Observer = Callable[[str, str, tuple, object], None]


class SteppedAtomicWord:
    """A 64-bit word whose every operation is an explicit scheduling point."""

    def __init__(
        self,
        initial: int = 0,
        yield_fn: Optional[YieldFn] = None,
        observer: Optional[Observer] = None,
        name: str = "word",
    ) -> None:
        self._value = initial & _WORD_MASK
        self.yield_fn = yield_fn
        self.observer = observer
        self.name = name

    # -- checker-side access (no scheduling point) ---------------------
    def peek(self) -> int:
        """Read the value without yielding (checker/invariant use only)."""
        return self._value

    # -- protocol-side operations (each one a scheduling point) --------
    def load(self) -> int:
        if self.yield_fn is not None:
            self.yield_fn(f"{self.name}.load")
        value = self._value
        if self.observer is not None:
            self.observer(self.name, "load", (), value)
        return value

    def store(self, value: int) -> None:
        if self.yield_fn is not None:
            self.yield_fn(f"{self.name}.store")
        old = self._value
        self._value = value & _WORD_MASK
        if self.observer is not None:
            self.observer(self.name, "store", (old, self._value), None)

    def compare_and_store(self, expected: int, new: int) -> bool:
        if self.yield_fn is not None:
            self.yield_fn(f"{self.name}.cas")
        expected &= _WORD_MASK
        new &= _WORD_MASK
        ok = self._value == expected
        if ok:
            self._value = new
        if self.observer is not None:
            self.observer(self.name, "cas", (expected, new), ok)
        return ok

    def fetch_and_add(self, delta: int) -> int:
        if self.yield_fn is not None:
            self.yield_fn(f"{self.name}.faa")
        old = self._value
        self._value = (old + delta) & _WORD_MASK
        if self.observer is not None:
            self.observer(self.name, "faa", (old, self._value), old)
        return old

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SteppedAtomicWord({self.name}={self._value:#x})"


class SteppedAtomicArray:
    """Per-element stepped atomic words (the committed-count seam)."""

    def __init__(
        self,
        length: int,
        initial: int = 0,
        yield_fn: Optional[YieldFn] = None,
        observer: Optional[Observer] = None,
        name: str = "array",
    ) -> None:
        if length < 0:
            raise ValueError("length must be non-negative")
        self._values = [initial & _WORD_MASK] * length
        self.yield_fn = yield_fn
        self.observer = observer
        self.name = name

    def __len__(self) -> int:
        return len(self._values)

    def peek(self, index: int) -> int:
        """Read one element without yielding (checker/invariant use only)."""
        return self._values[index]

    def peek_all(self) -> list:
        return list(self._values)

    def load(self, index: int) -> int:
        if self.yield_fn is not None:
            self.yield_fn(f"{self.name}[{index}].load")
        value = self._values[index]
        if self.observer is not None:
            self.observer(f"{self.name}[{index}]", "load", (index,), value)
        return value

    def store(self, index: int, value: int) -> None:
        if self.yield_fn is not None:
            self.yield_fn(f"{self.name}[{index}].store")
        old = self._values[index]
        self._values[index] = value & _WORD_MASK
        if self.observer is not None:
            self.observer(f"{self.name}[{index}]", "store",
                          (index, old, self._values[index]), None)

    def compare_and_store(self, index: int, expected: int, new: int) -> bool:
        if self.yield_fn is not None:
            self.yield_fn(f"{self.name}[{index}].cas")
        expected &= _WORD_MASK
        new &= _WORD_MASK
        ok = self._values[index] == expected
        if ok:
            self._values[index] = new
        if self.observer is not None:
            self.observer(f"{self.name}[{index}]", "cas",
                          (index, expected, new), ok)
        return ok

    def fetch_and_add(self, index: int, delta: int) -> int:
        if self.yield_fn is not None:
            self.yield_fn(f"{self.name}[{index}].faa")
        old = self._values[index]
        self._values[index] = (old + delta) & _WORD_MASK
        if self.observer is not None:
            self.observer(f"{self.name}[{index}]", "faa",
                          (index, old, self._values[index]), old)
        return old

    def snapshot(self) -> list:
        """Element-wise copy (mirrors :meth:`AtomicArray.snapshot`)."""
        return [self.load(i) for i in range(len(self._values))]
