"""Pluggable fleet launchers: run K node workloads, get K traces.

Modeled on the SHARP launcher pattern (ROADMAP item 3): one
``launch()`` entry point behind a backend ABC, with a local-subprocess
backend implemented now and docker/mpi slots declared so they can be
filled without touching callers.  Each launched node runs the standard
deterministic contention workload (:func:`repro.workloads.run_contention`)
but logs timestamps through a :class:`NodeLocalClock` — its own skewed
offset/rate view of true time, the fleet analogue of a drifting tsc —
then writes its ``.k42`` trace plus the ``.anchors.json`` sidecar that
:func:`repro.fleet.merge.merge_paths` aligns with.

The worker entry point (:func:`node_main`) is module-level and takes
only picklable arguments, so both ``fork`` and ``spawn`` start methods
work — the same discipline as :mod:`repro.shm.procs`.
"""

from __future__ import annotations

import multiprocessing
import os
import random
from abc import ABC, abstractmethod
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.core.timestamps import ClockSource
from repro.core.writer import save_records
from repro.fleet.align import NodeAnchors
from repro.fleet.merge import (
    ANCHORS_SUFFIX,
    FleetView,
    merge_paths,
    write_anchor_sidecar,
)


class NodeLocalClock:
    """A node's cheap local timebase, skewed against true time.

    Reads ``int(offset + rate * (start_base + inner.now(cpu)))`` — one
    offset/rate pair for the whole node (per-*node* anchors are the
    tentpole's model; per-CPU drift within a node is §4.1's separate,
    already-modeled problem).  ``start_base`` staggers nodes on the
    shared true axis so their workloads don't all begin at t=0.
    """

    def __init__(self, inner: ClockSource, offset: int, rate: float,
                 start_base: int = 0) -> None:
        if rate <= 0:
            raise ValueError("node clock rates must be positive")
        self._inner = inner
        self.offset = int(offset)
        self.rate = float(rate)
        self.start_base = int(start_base)
        self.cost_cycles = inner.cost_cycles

    def base_now(self, cpu: int = 0) -> int:
        """True (fleet) time as the workload harness knows it."""
        return self.start_base + self._inner.now(cpu)

    def now(self, cpu: int = 0) -> int:
        return int(self.offset + self.rate * self.base_now(cpu))


@dataclass(frozen=True)
class NodeSpec:
    """Everything one node run needs — picklable for spawn."""

    node: int
    seed: int
    clock_offset: int
    clock_rate: float
    start_base: int
    ncpus: int = 2
    workers_per_cpu: int = 2
    iterations: int = 30
    buffer_words: int = 4096
    num_buffers: int = 16


@dataclass
class NodeRunResult:
    """Where one node's artifacts landed."""

    node: int
    trace_path: str
    anchors_path: str


def node_paths(out_dir: str, node: int) -> Dict[str, str]:
    trace_path = os.path.join(out_dir, f"node-{node:04d}.k42")
    return {"trace": trace_path, "anchors": trace_path + ANCHORS_SUFFIX}


def node_main(spec_doc: Dict[str, Any], trace_path: str) -> None:
    """Run one node's workload; write its trace + anchor sidecar.

    Module-level and dict-argumented so every multiprocessing start
    method can ship it.  The anchor pairs bracket the workload: the
    wall values are the true simulator times of start and end (what a
    ``gettimeofday`` against the fleet's synchronized clock would have
    returned), the local values are the node clock's readings at those
    instants.
    """
    from repro.workloads import run_contention

    spec = NodeSpec(**spec_doc)
    holder: Dict[str, NodeLocalClock] = {}

    def wrap(inner: ClockSource) -> ClockSource:
        clock = NodeLocalClock(inner, spec.clock_offset, spec.clock_rate,
                               spec.start_base)
        holder["clock"] = clock
        return clock

    kernel, facility, _result = run_contention(
        ncpus=spec.ncpus,
        workers_per_cpu=spec.workers_per_cpu,
        iterations=spec.iterations,
        seed=spec.seed,
        buffer_words=spec.buffer_words,
        num_buffers=spec.num_buffers,
        clock_transform=wrap,
    )
    clock = holder["clock"]
    # flush(), not snapshot(): the run has quiesced, and a
    # flight-recorder snapshot of a ring that never wrapped would also
    # emit the untouched all-zero buffers as phantom garbled regions.
    save_records(trace_path, facility.flush(),
                 buffer_words=spec.buffer_words)
    wall_start = spec.start_base
    # Pad the end anchor past the last event far enough that the local
    # reading strictly increases even for rates < 1.
    wall_end = clock.base_now() + int(2.0 / spec.clock_rate) + 1
    anchors = NodeAnchors(
        local_start=int(spec.clock_offset
                        + spec.clock_rate * wall_start),
        wall_start=wall_start,
        local_end=int(spec.clock_offset + spec.clock_rate * wall_end),
        wall_end=wall_end,
    )
    write_anchor_sidecar(trace_path, spec.node, anchors,
                         meta={"seed": spec.seed,
                               "clock_rate": spec.clock_rate})


class LaunchBackend(ABC):
    """One ``launch()`` behind which execution substrates plug in."""

    name = "abstract"

    @abstractmethod
    def launch(self, specs: Sequence[NodeSpec],
               out_dir: str) -> List[NodeRunResult]:
        """Run every node spec; return where the artifacts landed."""


class LocalProcessBackend(LaunchBackend):
    """Nodes as local OS subprocesses (fork or spawn)."""

    name = "local"

    def __init__(self, start_method: Optional[str] = None,
                 timeout_s: float = 300.0) -> None:
        self.start_method = start_method
        self.timeout_s = timeout_s

    def launch(self, specs: Sequence[NodeSpec],
               out_dir: str) -> List[NodeRunResult]:
        os.makedirs(out_dir, exist_ok=True)
        ctx = multiprocessing.get_context(self.start_method)
        procs = []
        results: List[NodeRunResult] = []
        try:
            for spec in specs:
                paths = node_paths(out_dir, spec.node)
                p = ctx.Process(
                    target=node_main,
                    args=(asdict(spec), paths["trace"]),
                    name=f"fleet-node-{spec.node}",
                )
                p.start()
                procs.append((spec, p, paths))
            for spec, p, paths in procs:
                p.join(self.timeout_s)
                if p.is_alive():
                    raise RuntimeError(
                        f"node {spec.node} exceeded {self.timeout_s}s")
                if p.exitcode != 0:
                    raise RuntimeError(
                        f"node {spec.node} exited with {p.exitcode}")
                results.append(NodeRunResult(
                    node=spec.node,
                    trace_path=paths["trace"],
                    anchors_path=paths["anchors"],
                ))
        finally:
            for _spec, p, _paths in procs:
                if p.is_alive():
                    p.terminate()
                    p.join(5)
        return results


class DockerBackend(LaunchBackend):
    """Slot: one container per node (not implemented yet)."""

    name = "docker"

    def __init__(self, image: str = "repro-trace:latest") -> None:
        self.image = image

    def launch(self, specs: Sequence[NodeSpec],
               out_dir: str) -> List[NodeRunResult]:
        raise NotImplementedError(
            "docker backend is a declared slot; use --backend local")


class MpiBackend(LaunchBackend):
    """Slot: one rank per node over MPI (not implemented yet)."""

    name = "mpi"

    def launch(self, specs: Sequence[NodeSpec],
               out_dir: str) -> List[NodeRunResult]:
        raise NotImplementedError(
            "mpi backend is a declared slot; use --backend local")


BACKENDS: Dict[str, type] = {
    LocalProcessBackend.name: LocalProcessBackend,
    DockerBackend.name: DockerBackend,
    MpiBackend.name: MpiBackend,
}


def get_backend(name: str, **kwargs: Any) -> LaunchBackend:
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; backends are {sorted(BACKENDS)}"
        ) from None
    return cls(**kwargs)


@dataclass
class FleetRunResult:
    """A launched-and-merged fleet run."""

    view: FleetView
    node_results: List[NodeRunResult]
    out_dir: str


def make_specs(
    nodes: int,
    seed: int = 2003,
    ncpus: int = 2,
    workers_per_cpu: int = 2,
    iterations: int = 30,
    buffer_words: int = 4096,
    num_buffers: int = 16,
    stagger: int = 50_000,
) -> List[NodeSpec]:
    """Deterministic per-node specs: distinct seeds, offsets, rates.

    Clock parameters draw from ``random.Random(seed)`` — offsets up to
    ~1e12 ticks and rates within ±3%, the crystal-oscillator ballpark
    §4.1 describes — so a fleet run is reproducible from one seed.
    """
    if nodes < 1:
        raise ValueError("need at least one node")
    rng = random.Random(seed)
    specs = []
    for n in range(nodes):
        specs.append(NodeSpec(
            node=n,
            seed=seed + 1000 * (n + 1),
            clock_offset=rng.randrange(1_000_000, 1_000_000_000_000),
            clock_rate=rng.uniform(0.97, 1.03),
            start_base=n * stagger,
            ncpus=ncpus,
            workers_per_cpu=workers_per_cpu,
            iterations=iterations,
            buffer_words=buffer_words,
            num_buffers=num_buffers,
        ))
    return specs


def fleet_run(
    out_dir: str,
    nodes: int = 2,
    backend: str = "local",
    start_method: Optional[str] = None,
    seed: int = 2003,
    ncpus: int = 2,
    workers_per_cpu: int = 2,
    iterations: int = 30,
    buffer_words: int = 4096,
    num_buffers: int = 16,
) -> FleetRunResult:
    """Launch K node workloads end to end and merge their traces."""
    specs = make_specs(nodes, seed=seed, ncpus=ncpus,
                       workers_per_cpu=workers_per_cpu,
                       iterations=iterations, buffer_words=buffer_words,
                       num_buffers=num_buffers)
    if backend == "local":
        be: LaunchBackend = LocalProcessBackend(start_method=start_method)
    else:
        be = get_backend(backend)
    results = be.launch(specs, out_dir)
    view = merge_paths([r.trace_path for r in results])
    return FleetRunResult(view=view, node_results=results, out_dir=out_dir)
