"""Cross-node clock alignment: §4.1's LTT technique, per node.

"x86 architectures do not provide such a clock" — and neither does a
fleet: every machine's cheap monotonic counter has its own offset and
frequency error relative to every other's.  :mod:`repro.ltt.tscsync`
models the single-machine cure (per-CPU tsc interpolated between two
wall-clock anchors); this module is the same linear interpolation with
the stream key generalized from *cpu* to *node*.

Each node samples its local clock against the shared wall clock twice —
once before its workload, once after — producing a
:class:`NodeAnchors` pair.  :class:`FleetAligner` turns the pairs into
per-node affine maps ``local -> wall`` and re-bases whole event-time
columns vectorized.  The residual cross-node disagreement after
re-basing is *bounded*, not just hoped-for: see
:meth:`FleetAligner.skew_bound` for the derivation the property suite
asserts against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence, Tuple, Union

import numpy as np

#: Above this magnitude int->float64 conversion rounds, so the
#: vectorized re-basing could diverge from the exact scalar map; such
#: columns fall back to the scalar path (same guard as the store's
#: time filter).
_EXACT_FLOAT_BOUND = 1 << 53


@dataclass(frozen=True)
class NodeAnchors:
    """The two ``(local_ts, wall)`` pairs taken for one node.

    The per-node twin of :class:`repro.ltt.tscsync.TscAnchors` — and
    validated the same way on *both* spans: a zero/negative local span
    has no slope, and a zero/negative wall span would silently collapse
    or reverse time.
    """

    local_start: int
    wall_start: int
    local_end: int
    wall_end: int

    def __post_init__(self) -> None:
        if self.local_end <= self.local_start:
            raise ValueError("end anchor must come after start anchor")
        if self.wall_end <= self.wall_start:
            raise ValueError("wall anchors must span a positive interval")

    @property
    def rate(self) -> float:
        """Wall units per local tick."""
        return ((self.wall_end - self.wall_start)
                / (self.local_end - self.local_start))

    def to_json(self) -> Dict[str, int]:
        return {
            "local_start": self.local_start,
            "wall_start": self.wall_start,
            "local_end": self.local_end,
            "wall_end": self.wall_end,
        }

    @classmethod
    def from_json(cls, doc: Mapping[str, Any]) -> "NodeAnchors":
        return cls(
            local_start=int(doc["local_start"]),
            wall_start=int(doc["wall_start"]),
            local_end=int(doc["local_end"]),
            wall_end=int(doc["wall_end"]),
        )


class FleetAligner:
    """Linear per-node maps from local timestamps to the fleet clock.

    A node without anchors gets the identity map — its timestamps are
    taken to already be on the fleet axis (the single-node degenerate
    case, and the honest default for traces that carry no sidecar).
    """

    def __init__(self, anchors: Dict[int, NodeAnchors]) -> None:
        if not anchors:
            raise ValueError("need anchors for at least one node")
        self.anchors: Dict[int, NodeAnchors] = dict(anchors)
        self._maps: Dict[int, Tuple[int, int, float]] = {}
        for node, a in anchors.items():
            self._maps[node] = (a.local_start, a.wall_start, a.rate)

    @classmethod
    def identity(cls, nodes: Sequence[int]) -> "FleetAligner":
        """Aligner mapping every node's local time to itself."""
        if not nodes:
            raise ValueError("need at least one node")
        out = cls.__new__(cls)
        out.anchors = {}
        out._maps = {int(n): (0, 0, 1.0) for n in nodes}
        return out

    @classmethod
    def for_nodes(
        cls,
        nodes: Sequence[int],
        anchors: Mapping[int, NodeAnchors],
    ) -> "FleetAligner":
        """Anchored maps where sampled, identity for the rest."""
        out = cls.identity(nodes)
        for node, a in anchors.items():
            if node not in out._maps:
                raise ValueError(f"anchors for unknown node {node}")
            out.anchors[node] = a
            out._maps[node] = (a.local_start, a.wall_start, a.rate)
        return out

    @property
    def nodes(self) -> List[int]:
        return sorted(self._maps)

    def rate(self, node: int) -> float:
        return self._maps[node][2]

    def to_fleet(self, node: int, local: int) -> int:
        """Map one local reading onto the fleet clock (exact scalar)."""
        local0, wall0, rate = self._maps[node]
        if rate == 1.0:
            # Exact integer path: identity maps (and perfectly-paced
            # clocks) must not round-trip through float64.
            return wall0 + (local - local0)
        return wall0 + round((local - local0) * rate)

    def rebase(
        self,
        node: int,
        time: np.ndarray,
        timed: np.ndarray,
    ) -> np.ndarray:
        """Re-base a whole ``time`` column onto the fleet clock.

        Only rows with a reconstructed timestamp (``timed``) are
        mapped; untimed rows keep their 0 placeholder, preserving the
        ``time == 0 where not timed`` batch invariant.  The vectorized
        float64 path is bit-identical to the scalar :meth:`to_fleet`
        while magnitudes stay below 2**53 (conversion is exact, and
        ``np.rint`` rounds half-to-even like Python's ``round``);
        larger or object-dtype columns take the exact scalar loop.
        """
        local0, wall0, rate = self._maps[node]
        if rate == 1.0 and local0 == wall0:
            return time
        n = len(time)
        if time.dtype != object:
            rel = time.astype(np.int64) - np.int64(local0)
            lim = int(np.abs(rel).max(initial=0))
            est = abs(wall0) + lim * max(rate, 1.0) + 1
            if lim < _EXACT_FLOAT_BOUND and est < float(1 << 62):
                mapped = (np.rint(rel.astype(np.float64) * rate)
                          .astype(np.int64) + np.int64(wall0))
                return np.where(timed, mapped, time)
        tl = time.tolist()
        fl = timed.tolist()
        vals = [self.to_fleet(node, t) if f else t
                for t, f in zip(tl, fl)]
        try:
            return np.array(vals, dtype=np.int64)
        except OverflowError:
            return np.array(vals, dtype=object)

    def skew_bound(
        self,
        jitter: Union[int, Mapping[int, int]] = 0,
    ) -> int:
        """Worst-case cross-node disagreement after re-basing, in fleet
        units, for events inside the anchor wall span.

        Model: node ``n``'s integer clock reads ``floor(a_n + b_n * t)
        + e`` at true time ``t``, with ``|e| <= jitter_n``, and its
        anchors are two such readings.  Writing ``E = jitter_n + 1``
        (jitter plus integer truncation) and ``r = rate(n)``, the
        recovered wall time of an event at ``t`` within the anchor span
        deviates from ``t`` by at most

        * ``2 * E * r`` from the rate error the anchor-reading errors
          induce (``|b*r - 1| <= 2E / local_span`` exactly, times
          ``|t - wall_start| <= wall_span = r * local_span``),
        * ``2 * E * r`` from the event's own reading error relative to
          the start anchor's, and
        * ``0.5`` from the final round —

        so ``dev_n = 4 * (jitter_n + 1) * rate_n + 0.5``, and the
        pairwise skew between any two nodes is at most the sum of the
        two largest per-node deviations.  The property suite generates
        clocks matching exactly this model and asserts measured skew
        never exceeds this bound.  Identity-mapped nodes (no anchors)
        contribute zero deviation: their times are passed through
        unchanged.
        """
        devs: List[float] = []
        for node, (_l0, _w0, rate) in self._maps.items():
            if node not in self.anchors:
                devs.append(0.0)
                continue
            j = (jitter.get(node, 0) if isinstance(jitter, Mapping)
                 else int(jitter))
            devs.append(4.0 * (j + 1) * rate + 0.5)
        if len(devs) < 2:
            return 0
        devs.sort()
        return int(math.ceil(devs[-1] + devs[-2]))

    def to_json(self) -> Dict[str, Any]:
        """Anchor table for manifests/sidecars (identity nodes omitted)."""
        return {str(n): a.to_json() for n, a in sorted(self.anchors.items())}


def measured_fleet_skew(
    aligner: FleetAligner,
    readings: Mapping[int, Sequence[int]],
) -> int:
    """Worst observed cross-node disagreement, measured.

    ``readings[node][i]`` is node ``node``'s local clock read at the
    *same true instant* as every other node's reading ``i`` — the fleet
    generalization of :func:`repro.ltt.tscsync.max_pairwise_skew`,
    which walks a :class:`~repro.core.timestamps.DriftingTscClock` the
    same way per CPU.  Returns 0 for fewer than two nodes (a stream
    cannot disagree with itself).
    """
    nodes = sorted(readings)
    if len(nodes) < 2:
        return 0
    counts = {len(readings[n]) for n in nodes}
    if len(counts) != 1:
        raise ValueError("readings must be index-aligned across nodes")
    worst = 0
    for i in range(counts.pop()):
        recovered = [aligner.to_fleet(n, readings[n][i]) for n in nodes]
        worst = max(worst, max(recovered) - min(recovered))
    return worst
