"""Fleet-scale trace aggregation: N nodes, one clock-aligned view.

The paper targets one multiprocessor; a production fleet is many.  Each
node logs events on its own cheap local timebase — exactly the §4.1
x86-tsc situation, one level up: what drifting per-CPU counters are to
one machine, drifting per-node clocks are to a cluster.  So the same
LTT cure applies, generalized from CPUs to nodes: every node carries
two ``(local_ts, wall)`` anchor pairs, a per-node linear map re-bases
its events onto the common fleet clock, and the re-based per-node
traces merge into one unified columnar view whose
:class:`~repro.core.columnar.EventBatch` carries a ``node`` column.

Pieces:

* :mod:`repro.fleet.align` — :class:`NodeAnchors` /
  :class:`FleetAligner`, the per-node generalization of
  :mod:`repro.ltt.tscsync`, with a provable residual-skew bound.
* :mod:`repro.fleet.merge` — ingest per-node traces (``.k42`` files,
  store directories, drained shm regions), build a :class:`FleetView`
  (per-node originals + unified merged batch), pack it into a
  node-aware store.
* :mod:`repro.fleet.launch` — pluggable launcher backends (local
  subprocesses now; docker/mpi slots) that run K node workloads end to
  end and produce the per-node traces plus anchor sidecars.
"""

from repro.fleet.align import (
    FleetAligner,
    NodeAnchors,
    measured_fleet_skew,
)
from repro.fleet.merge import (
    ANCHORS_SUFFIX,
    FleetView,
    NodeSource,
    ingest_path,
    merge_paths,
    merge_traces,
    pack_fleet_view,
    read_anchor_sidecar,
    write_anchor_sidecar,
)
from repro.fleet.launch import (
    BACKENDS,
    FleetRunResult,
    LaunchBackend,
    LocalProcessBackend,
    NodeLocalClock,
    NodeRunResult,
    NodeSpec,
    fleet_run,
    get_backend,
)

__all__ = [
    "NodeAnchors",
    "FleetAligner",
    "measured_fleet_skew",
    "ANCHORS_SUFFIX",
    "NodeSource",
    "FleetView",
    "merge_traces",
    "merge_paths",
    "ingest_path",
    "pack_fleet_view",
    "read_anchor_sidecar",
    "write_anchor_sidecar",
    "NodeSpec",
    "NodeRunResult",
    "NodeLocalClock",
    "LaunchBackend",
    "LocalProcessBackend",
    "BACKENDS",
    "get_backend",
    "FleetRunResult",
    "fleet_run",
]
