"""Merging N per-node traces into one clock-aligned columnar view.

A :class:`FleetView` holds two things per node: the node's *original*
decoded trace — untouched, on its own local timebase, so any tool run
against it is bit-identical to analyzing that node's trace alone — and
the :class:`~repro.fleet.align.FleetAligner` that re-bases those local
timestamps onto the common fleet clock.  The unified :meth:`batch
<FleetView.batch>` concatenates the re-based per-node streams (in node
order) and sorts them with the node-aware total order ``(time | -1,
node, cpu, seq, offset)``, so the merged view is **bit-identical
regardless of the order the node traces were ingested** — the property
the fuzz suite asserts.

Ingest accepts the three per-node trace shapes the repo produces:
plain ``.k42`` files, packed store directories, and live shared-memory
regions (``shm:NAME``, drained through the PR 6 collector).  A merged
view packs into an ordinary store via :func:`pack_fleet_view`; the
shards then carry the ``node`` column and per-shard node statistics,
so ``repro-trace query --node`` prunes whole nodes without opening
their shards.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.columnar import (
    AnomalyColumns,
    ColumnarTrace,
    ColumnarTraceReader,
    EventBatch,
)
from repro.core.registry import EventRegistry, default_registry
from repro.core.writer import load_records
from repro.fleet.align import FleetAligner, NodeAnchors
from repro.store.format import (
    MANIFEST_NAME,
    STORE_FORMAT,
    STORE_VERSION,
    save_shard,
    shard_filename,
    write_manifest,
)
from repro.store.stats import ShardStats
from repro.store.writer import DEFAULT_SHARD_EVENTS, PackResult, _shard_cuts

#: Sidecar naming convention: ``trace.k42`` + this suffix carries the
#: node id and anchor pairs the launcher sampled for that trace.
ANCHORS_SUFFIX = ".anchors.json"

#: Ingest scheme prefix for live shared-memory regions.
_SHM_SCHEME = "shm:"


@dataclass
class NodeSource:
    """One node's trace plus its (optional) clock anchors."""

    node: int
    trace: ColumnarTrace
    anchors: Optional[NodeAnchors] = None


class FleetView:
    """N per-node traces unified onto one fleet clock.

    ``node_trace`` returns the originals (local timebase) — per-node
    tool output over a merged view is therefore *identical* to running
    the tool on that node's trace alone.  ``batch`` is the unified
    re-based view; ``rollup_trace`` re-keys every (node, cpu) stream to
    a distinct global lane so existing per-cpu tools aggregate the
    whole fleet unchanged.
    """

    def __init__(
        self,
        traces: Dict[int, ColumnarTrace],
        aligner: FleetAligner,
        registry: Optional[EventRegistry] = None,
    ) -> None:
        if not traces:
            raise ValueError("a fleet view needs at least one node")
        missing = sorted(set(traces) - set(aligner.nodes))
        if missing:
            raise ValueError(f"aligner has no map for nodes {missing}")
        self._traces = dict(traces)
        self.aligner = aligner
        self.registry = (registry if registry is not None
                         else next((t.registry for t in traces.values()
                                    if t.registry is not None), None))
        self._aligned: Dict[int, Dict[int, EventBatch]] = {}
        self._merged: Optional[EventBatch] = None
        self._rollup: Optional[ColumnarTrace] = None

    # -- shape ----------------------------------------------------------
    @property
    def nodes(self) -> List[int]:
        return sorted(self._traces)

    def __len__(self) -> int:
        return sum(len(t.batch()) for t in self._traces.values())

    def node_trace(self, node: int) -> ColumnarTrace:
        """The node's original trace, on its own local timebase."""
        return self._traces[node]

    # -- aligned views ---------------------------------------------------
    def aligned_cpu_batch(self, node: int, cpu: int) -> EventBatch:
        """One (node, cpu) stream in decode order, re-based and tagged."""
        per_node = self._aligned.setdefault(node, {})
        if cpu not in per_node:
            b = self._traces[node].cpu_batch(cpu)
            per_node[cpu] = _with_columns(
                b,
                time=self.aligner.rebase(node, b.time, b.timed),
                node=np.full(len(b), int(node), dtype=np.int64),
            )
        return per_node[cpu]

    def batch(self) -> EventBatch:
        """The unified fleet view, in the node-aware total order.

        Built from nodes in sorted-id order, so the result — including
        the underlying word-pool layout — does not depend on ingest
        order.
        """
        if self._merged is None:
            parts = [self.aligned_cpu_batch(node, cpu)
                     for node in self.nodes
                     for cpu in self._traces[node].cpus]
            cat = (EventBatch.concat(parts) if parts
                   else EventBatch.empty(self.registry))
            if cat.node is None:
                # Single empty node: still a fleet batch.
                cat = cat.with_node(self.nodes[0]) if len(cat) == 0 \
                    else cat
            self._merged = cat.select(cat.order_by_time())
        return self._merged

    # -- rollup ---------------------------------------------------------
    def lane_stride(self) -> int:
        """Lanes per node in the rollup: 1 + the fleet's largest cpu id."""
        top = -1
        for t in self._traces.values():
            if t.cpus:
                top = max(top, max(t.cpus))
        return top + 1 if top >= 0 else 1

    def lane_of(self, node: int, cpu: int) -> int:
        return int(node) * self.lane_stride() + int(cpu)

    def lane_legend(self) -> List[Tuple[int, int, int]]:
        """``(lane, node, cpu)`` rows, lane-ordered."""
        return [(self.lane_of(node, cpu), node, cpu)
                for node in self.nodes
                for cpu in self._traces[node].cpus]

    def rollup_trace(self) -> ColumnarTrace:
        """The whole fleet as one trace, one lane per (node, cpu).

        Existing per-cpu tools (kmon timelines, schedstats) run on it
        unchanged; :meth:`lane_legend` decodes the lane ids back to
        (node, cpu).  Anomaly rows are re-keyed the same way.
        """
        if self._rollup is None:
            batches: Dict[int, EventBatch] = {}
            an = AnomalyColumns()
            for node in self.nodes:
                trace = self._traces[node]
                for cpu in trace.cpus:
                    lane = self.lane_of(node, cpu)
                    b = self.aligned_cpu_batch(node, cpu)
                    batches[lane] = _with_columns(
                        b, cpu=np.full(len(b), lane, dtype=np.int64))
                cols = trace.anomaly_columns
                for c, s, o, k, d in zip(cols.cpu, cols.seq, cols.offset,
                                         cols.kind, cols.detail):
                    an.append(self.lane_of(node, c), s, o, k, d)
            self._rollup = ColumnarTrace(batches, an, self.registry)
        return self._rollup

    # -- reporting -------------------------------------------------------
    def skew_bound(self, jitter: int = 0) -> int:
        return self.aligner.skew_bound(jitter)

    def summary(self) -> Dict[str, Any]:
        """Per-node and fleet-level counts for CLI/manifest reporting."""
        per_node = {}
        for node in self.nodes:
            t = self._traces[node]
            per_node[str(node)] = {
                "events": len(t.batch()),
                "cpus": t.cpus,
                "anomalies": len(t.anomaly_columns),
                "aligned": node in self.aligner.anchors,
            }
        return {
            "nodes": self.nodes,
            "events": len(self),
            "skew_bound": self.skew_bound(),
            "per_node": per_node,
        }


def fleet_sections(
    view: FleetView,
    node_render: Callable[[ColumnarTrace], str],
    rollup_render: Optional[Callable[[], str]] = None,
) -> str:
    """The uniform fleet report shape the four ported tools share.

    A header with the fleet counts and skew bound, then one section per
    node rendered from the node's *original* trace (so each section is
    byte-identical to running the tool on that node's trace alone),
    then the tool's fleet-rollup section.
    """
    s = view.summary()
    lines = [
        f"fleet: {len(s['nodes'])} nodes, {s['events']} events, "
        f"residual skew bound <= {s['skew_bound']} cycles",
    ]
    for node in view.nodes:
        info = s["per_node"][str(node)]
        basis = "anchored" if info["aligned"] else "identity"
        cpus = ",".join(str(c) for c in info["cpus"])
        lines.append("")
        lines.append(f"=== node {node}: {info['events']} events, "
                     f"cpus [{cpus}], {basis} clock ===")
        lines.append(node_render(view.node_trace(node)))
    if rollup_render is not None:
        lines.append("")
        lines.append("=== fleet rollup ===")
        lines.append(rollup_render())
    return "\n".join(lines)


def lane_legend_line(view: FleetView) -> str:
    """One-line decode of rollup lane ids back to (node, cpu)."""
    return "lanes: " + ", ".join(
        f"{lane}=node{node}/cpu{cpu}"
        for lane, node, cpu in view.lane_legend())


def _with_columns(b: EventBatch, **cols: np.ndarray) -> EventBatch:
    """A shallow copy of ``b`` with the given columns replaced."""
    kw: Dict[str, Any] = dict(
        words=b.words, base=b.base, cpu=b.cpu, seq=b.seq, offset=b.offset,
        ts32=b.ts32, major=b.major, minor=b.minor, length=b.length,
        dlen=b.dlen, time=b.time, timed=b.timed, registry=b.registry,
        spec_cache=b._spec_cache, node=b.node,
    )
    kw.update(cols)
    return EventBatch(**kw)


# -- merging --------------------------------------------------------------

def merge_traces(
    sources: Sequence[NodeSource],
    registry: Optional[EventRegistry] = None,
) -> FleetView:
    """Build a :class:`FleetView` from per-node sources, any order.

    Sources without anchors get the identity map (their times are
    already fleet time); duplicate node ids are an error, not a silent
    last-wins.
    """
    if not sources:
        raise ValueError("nothing to merge")
    traces: Dict[int, ColumnarTrace] = {}
    anchors: Dict[int, NodeAnchors] = {}
    for src in sources:
        if src.node in traces:
            raise ValueError(f"duplicate node id {src.node}")
        traces[src.node] = src.trace
        if src.anchors is not None:
            anchors[src.node] = src.anchors
    aligner = FleetAligner.for_nodes(sorted(traces), anchors)
    return FleetView(traces, aligner, registry=registry)


def ingest_path(
    path: str,
    registry: Optional[EventRegistry] = None,
    strict: bool = False,
) -> ColumnarTrace:
    """Decode one node's trace from any supported source shape.

    ``shm:NAME`` drains a live shared-memory region through the PR 6
    collector; a directory is opened as a packed store; anything else
    is a ``.k42`` trace file.
    """
    reg = registry if registry is not None else default_registry()
    if path.startswith(_SHM_SCHEME):
        from repro.shm import ShmCollector, ShmTraceRegion

        region = ShmTraceRegion.attach(path[len(_SHM_SCHEME):])
        try:
            records = ShmCollector(region).finalize()
        finally:
            region.close()
        return ColumnarTraceReader(registry=reg,
                                   strict=strict).decode_records(records)
    from repro.store import TraceStore, is_store

    if is_store(path):
        return TraceStore(path, registry=reg).trace()
    records = load_records(path, strict=strict)
    return ColumnarTraceReader(registry=reg,
                               strict=strict).decode_records(records)


def write_anchor_sidecar(path: str, node: int, anchors: NodeAnchors,
                         meta: Optional[Dict[str, Any]] = None) -> str:
    """Write ``path``'s anchor sidecar; returns the sidecar path."""
    side = path + ANCHORS_SUFFIX
    doc: Dict[str, Any] = {"node": int(node)}
    doc.update(anchors.to_json())
    if meta:
        doc["meta"] = meta
    with open(side, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return side


def read_anchor_sidecar(
    path: str,
) -> Optional[Tuple[int, NodeAnchors]]:
    """The ``(node, anchors)`` of ``path``'s sidecar, or None."""
    side = path + ANCHORS_SUFFIX
    if not os.path.exists(side):
        return None
    with open(side, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    return int(doc["node"]), NodeAnchors.from_json(doc)


def merge_paths(
    paths: Sequence[str],
    registry: Optional[EventRegistry] = None,
    strict: bool = False,
) -> FleetView:
    """Ingest per-node trace paths and merge them.

    Node ids and anchors come from each path's ``.anchors.json``
    sidecar when present; a sidecar-less path is assigned its position
    in ``paths`` as node id and the identity alignment.
    """
    sources: List[NodeSource] = []
    for i, path in enumerate(paths):
        trace = ingest_path(path, registry=registry, strict=strict)
        side = (read_anchor_sidecar(path)
                if not path.startswith(_SHM_SCHEME) else None)
        if side is not None:
            node, anchors = side
            sources.append(NodeSource(node=node, trace=trace,
                                      anchors=anchors))
        else:
            sources.append(NodeSource(node=i, trace=trace))
    return merge_traces(sources, registry=registry)


# -- packing --------------------------------------------------------------

def pack_fleet_view(
    view: FleetView,
    out_dir: str,
    shard_events: int = DEFAULT_SHARD_EVENTS,
    compress: bool = True,
    source: Optional[Dict[str, Any]] = None,
    force: bool = False,
) -> PackResult:
    """Pack the unified (re-based) fleet view as a store directory.

    Same layout as :func:`repro.store.writer.pack_trace` — npz shards
    cut at buffer boundaries, manifest with per-shard statistics — but
    shards walk nodes in id order, every shard carries the ``node``
    column and its node statistic, and the manifest declares the node
    universe plus the alignment metadata (anchors, skew bound, each
    node's cpu set).  Times in the store are fleet time.
    """
    from repro.tools.context import ColumnarContext

    if shard_events < 1:
        raise ValueError("shard_events must be >= 1")
    if os.path.exists(out_dir):
        stale = [f for f in os.listdir(out_dir)
                 if f == MANIFEST_NAME
                 or (f.startswith("shard-") and f.endswith(".npz"))]
        if stale and not force:
            raise FileExistsError(
                f"{out_dir} already holds a store; pass force=True "
                f"(--force) to overwrite")
        for f in stale:
            os.unlink(os.path.join(out_dir, f))
    else:
        os.makedirs(out_dir)

    shard_docs: List[Dict[str, Any]] = []
    an_cpu: List[int] = []
    an_seq: List[int] = []
    an_off: List[int] = []
    an_kind: List[str] = []
    an_detail: List[str] = []
    an_node: List[int] = []
    bytes_written = 0
    total = 0
    index = 0
    cpus_by_node: Dict[str, List[int]] = {}
    for node in view.nodes:
        trace = view.node_trace(node)
        cpus = trace.cpus
        cpus_by_node[str(node)] = cpus
        parts = [view.aligned_cpu_batch(node, c) for c in cpus]
        full = EventBatch.concat(parts) if parts else EventBatch.empty()
        ctx = ColumnarContext(full)
        row0 = 0
        for cpu, b in zip(cpus, parts):
            n = len(b)
            pid = ctx.pid[row0:row0 + n]
            known = ctx.known[row0:row0 + n]
            row0 += n
            if n == 0:
                continue
            cuts = _shard_cuts(b.seq, shard_events)
            for lo, hi in zip(cuts[:-1], cuts[1:]):
                rows = np.arange(lo, hi, dtype=np.int64)
                sub = b.select(rows)
                arrays = sub.to_arrays()
                arrays["pid"] = pid[lo:hi]
                arrays["pid_known"] = known[lo:hi]
                fname = shard_filename(index)
                fpath = os.path.join(out_dir, fname)
                save_shard(fpath, arrays, compress=compress)
                bytes_written += os.path.getsize(fpath)
                stats = ShardStats.compute(sub, pid[lo:hi], known[lo:hi])
                doc = stats.to_json()
                doc["file"] = fname
                if "time_big" in arrays:
                    doc["time_big"] = True
                shard_docs.append(doc)
                total += len(sub)
                index += 1
        cols = trace.anomaly_columns
        an_cpu.extend(cols.cpu)
        an_seq.extend(cols.seq)
        an_off.extend(cols.offset)
        an_kind.extend(cols.kind)
        an_detail.extend(cols.detail)
        an_node.extend([node] * len(cols))

    all_cpus = sorted({c for cs in cpus_by_node.values() for c in cs})
    manifest: Dict[str, Any] = {
        "format": STORE_FORMAT,
        "version": STORE_VERSION,
        "compression": "zlib" if compress else "none",
        "cpus": all_cpus,
        "events": total,
        "source": source or {},
        "shards": shard_docs,
        "anomalies": {
            "cpu": an_cpu,
            "seq": an_seq,
            "offset": an_off,
            "kind": an_kind,
            "detail": an_detail,
            # Extra fleet column; readers of the 5 standard columns
            # ignore it.
            "node": an_node,
        },
        "nodes": view.nodes,
        "fleet": {
            "skew_bound": view.skew_bound(),
            "anchors": view.aligner.to_json(),
            "cpus_by_node": cpus_by_node,
        },
    }
    write_manifest(out_dir, manifest)
    bytes_written += os.path.getsize(os.path.join(out_dir, MANIFEST_NAME))
    return PackResult(path=out_dir, shards=index, events=total,
                      cpus=all_cpus, bytes_written=bytes_written,
                      anomalies=len(an_kind))
