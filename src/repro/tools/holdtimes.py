"""Lock hold-time analysis — the §2 unified-facility anecdote, as a tool.

"In a particular performance debugging session, we were observing long
lock hold times from our lock contention analysis ... Because we had
integrated scheduling events (in some systems these would be different
mechanisms), we were able to see that there were context switches
between the lock acquire and release events allowing us to understand
what was actually occurring to cause the unexpected long hold times."

Given a trace with lock events on all paths
(``KernelConfig.trace_all_lock_events=True`` — the detail level one
enables while chasing such a problem), this tool pairs each acquisition
with its release, measures the hold, and — the anecdote's punch line —
checks the *scheduling events in the same stream* to see whether the
holder was context-switched out mid-hold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.majors import LockMinor, Major, ProcMinor
from repro.core.stream import Trace
from repro.tools.context import ContextTracker

CYCLES_PER_US = 1_000


@dataclass
class HoldRecord:
    """One acquire→release interval of one lock."""

    lock_id: int
    holder: int               # thread address
    holder_pid: Optional[int]
    start: int
    end: int
    #: times the holder was switched out while holding the lock
    preemptions: int = 0

    @property
    def duration(self) -> int:
        return self.end - self.start

    @property
    def preempted(self) -> bool:
        return self.preemptions > 0


@dataclass
class HoldReport:
    holds: List[HoldRecord] = field(default_factory=list)
    #: acquisitions with no matching release by trace end
    unreleased: int = 0

    def longest(self, n: int = 10) -> List[HoldRecord]:
        return sorted(self.holds, key=lambda h: -h.duration)[:n]

    def per_lock(self) -> Dict[int, Tuple[int, int, int, int]]:
        """lock -> (count, total, max, preempted-hold count)."""
        out: Dict[int, Tuple[int, int, int, int]] = {}
        for h in self.holds:
            count, total, mx, pre = out.get(h.lock_id, (0, 0, 0, 0))
            out[h.lock_id] = (
                count + 1, total + h.duration, max(mx, h.duration),
                pre + (1 if h.preempted else 0),
            )
        return out


def hold_times(trace: Trace) -> HoldReport:
    """Pair lock acquisitions with releases; annotate with preemption.

    Acquisition events are ``ACQUIRE`` (uncontended) and ``CONTEND_END``
    (after contention); each pairs with the next ``RELEASE`` of the same
    lock.  The holder is the thread in context at acquisition; the
    preemption check scans the holder's CPU stream for context switches
    *away from* the holder inside the hold window.
    """
    ctx = ContextTracker(trace)
    report = HoldReport()
    open_holds: Dict[int, HoldRecord] = {}  # lock_id -> in-progress hold

    # Collect context-switch-out times per thread for the window scan.
    switched_out: Dict[int, List[int]] = {}
    for events in trace.events_by_cpu.values():
        for e in events:
            if (e.major == Major.PROC and e.minor == ProcMinor.CONTEXT_SWITCH
                    and len(e.data) >= 2 and e.time is not None):
                switched_out.setdefault(e.data[0], []).append(e.time)
    for times in switched_out.values():
        times.sort()

    for e in trace.all_events():
        if e.major != Major.LOCK or not e.data or e.time is None:
            continue
        lock_id = e.data[0]
        if e.minor in (LockMinor.ACQUIRE, LockMinor.CONTEND_END):
            open_holds[lock_id] = HoldRecord(
                lock_id=lock_id,
                holder=ctx.thread_of(e),
                holder_pid=ctx.pid_of(e),
                start=e.time,
                end=e.time,
            )
        elif e.minor == LockMinor.RELEASE:
            hold = open_holds.pop(lock_id, None)
            if hold is None:
                continue
            hold.end = e.time
            outs = switched_out.get(hold.holder, ())
            # Context switches away from the holder inside the window —
            # the §2 "what actually occurred" signal.
            import bisect

            lo = bisect.bisect_left(outs, hold.start)
            hi = bisect.bisect_right(outs, hold.end)
            hold.preemptions = hi - lo
            report.holds.append(hold)
    report.unreleased = len(open_holds)
    return report


def format_hold_report(
    report: HoldReport,
    lock_names: Optional[Dict[int, str]] = None,
    top: int = 10,
) -> str:
    """The longest holds, each annotated with its explanation."""
    lines = [
        f"{len(report.holds)} lock holds analyzed "
        f"({report.unreleased} unreleased at trace end)",
        f"{'hold (us)':>10} {'lock':<26} {'pid':>5}  explanation",
    ]
    for h in report.longest(top):
        name = (lock_names or {}).get(h.lock_id, f"{h.lock_id:#x}")
        pid = h.holder_pid if h.holder_pid is not None else "?"
        if h.preempted:
            why = (f"holder context-switched out {h.preemptions}x "
                   "mid-hold (§2's long-hold-time cause)")
        else:
            why = "ran uninterrupted"
        lines.append(
            f"{h.duration / CYCLES_PER_US:>10.2f} {name:<26} {pid:>5}  {why}"
        )
    return "\n".join(lines)
