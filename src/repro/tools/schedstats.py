"""Scheduler statistics from the trace (§4.5's time-by-process view).

Statistical PC sampling answers "which *functions* are hot"; this tool
answers "where did the *CPU time* go" by replaying the scheduling events:
per-process run time (the elapsed-time breakdown the paper used to chase
its uniprocessor fork regression), per-CPU utilization, context-switch
and migration rates, and timer-preemption counts — all derived from the
same unified stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.columnar import ColumnarTrace, as_batch
from repro.core.majors import ExcMinor, Major, ProcMinor
from repro.core.stream import Trace
from repro.store.query import Predicate, select

CYCLES_PER_US = 1_000


@dataclass
class CpuSched:
    cpu: int
    busy_cycles: int = 0
    context_switches: int = 0
    timer_interrupts: int = 0
    migrations_in: int = 0


@dataclass
class SchedReport:
    span_cycles: int = 0
    per_cpu: Dict[int, CpuSched] = field(default_factory=dict)
    #: pid -> cycles actually on a CPU
    process_time: Dict[int, int] = field(default_factory=dict)
    #: thread addr -> pid (from thread-create events)
    thread_pid: Dict[int, int] = field(default_factory=dict)

    def utilization(self, cpu: int) -> float:
        if self.span_cycles == 0:
            return 0.0
        return self.per_cpu[cpu].busy_cycles / self.span_cycles

    def busiest_processes(self, n: int = 10) -> List[Tuple[int, int]]:
        return sorted(self.process_time.items(),
                      key=lambda kv: -kv[1])[:n]


def sched_statistics(trace: Trace, columnar: bool = True) -> SchedReport:
    """Replay scheduling events into the report.

    The columnar path (default) counts switches/interrupts/migrations
    with boolean masks per CPU and replays only the busy-interval
    boundary events; the report is identical to the scalar walk.
    """
    if columnar:
        return _sched_statistics_columnar(trace)
    report = SchedReport()
    t_min: Optional[int] = None
    t_max: Optional[int] = None

    for events in trace.events_by_cpu.values():
        for e in events:
            if (e.major == Major.PROC
                    and e.minor == ProcMinor.THREAD_CREATE
                    and len(e.data) >= 2):
                report.thread_pid[e.data[0]] = e.data[1]

    for cpu, events in trace.events_by_cpu.items():
        stats = report.per_cpu.setdefault(cpu, CpuSched(cpu))
        running: Optional[int] = None   # thread addr
        busy_from: Optional[int] = None
        for e in events:
            if e.time is None:
                continue
            t_min = e.time if t_min is None else min(t_min, e.time)
            t_max = e.time if t_max is None else max(t_max, e.time)
            if e.major == Major.PROC:
                if e.minor == ProcMinor.CONTEXT_SWITCH and len(e.data) >= 2:
                    stats.context_switches += 1
                    if running is not None and busy_from is not None:
                        self_time = e.time - busy_from
                        pid = report.thread_pid.get(running)
                        if pid is not None:
                            report.process_time[pid] = (
                                report.process_time.get(pid, 0) + self_time
                            )
                        stats.busy_cycles += self_time
                    running = e.data[1]
                    busy_from = e.time
                elif e.minor == ProcMinor.IDLE_START:
                    if running is not None and busy_from is not None:
                        self_time = e.time - busy_from
                        pid = report.thread_pid.get(running)
                        if pid is not None:
                            report.process_time[pid] = (
                                report.process_time.get(pid, 0) + self_time
                            )
                        stats.busy_cycles += self_time
                    running = None
                    busy_from = None
                elif e.minor == ProcMinor.MIGRATE:
                    stats.migrations_in += 1
            elif e.major == Major.EXC \
                    and e.minor == ExcMinor.TIMER_INTERRUPT:
                stats.timer_interrupts += 1
        # Close the final interval at the CPU's last event.
        if running is not None and busy_from is not None and events:
            last = events[-1].time
            if last is not None and last > busy_from:
                pid = report.thread_pid.get(running)
                if pid is not None:
                    report.process_time[pid] = (
                        report.process_time.get(pid, 0) + (last - busy_from)
                    )
                stats.busy_cycles += last - busy_from
    report.span_cycles = (t_max - t_min) if t_min is not None else 0
    return report


def _trace_cpus(trace) -> List[int]:
    """The CPU universe of any trace form (including event-less CPUs)."""
    if isinstance(trace, ColumnarTrace):
        return trace.cpus
    ebc = getattr(trace, "events_by_cpu", None)
    if ebc is not None:
        return list(ebc)
    return np.unique(as_batch(trace).cpu).tolist()


def _sched_statistics_columnar(trace: Trace) -> SchedReport:
    b = as_batch(trace)
    report = SchedReport()
    for cpu in _trace_cpus(trace):
        report.per_cpu.setdefault(cpu, CpuSched(cpu))
    n = len(b)
    if n == 0:
        return report

    order = b.order_by_stream()

    # thread -> pid mapping, last write wins in stream order.
    tc = select(b, Predicate(majors=(int(Major.PROC),),
                             minors=(int(ProcMinor.THREAD_CREATE),),
                             min_data=2))
    tc_idx = order[tc[order]]
    if len(tc_idx):
        for t, p in zip(b.data_column(0, tc_idx).tolist(),
                        b.data_column(1, tc_idx).tolist()):
            report.thread_pid[t] = p

    timed = b.timed
    # Global trace span over timestamped events.
    t_idx = np.flatnonzero(timed)
    if len(t_idx):
        tvals = b.time[t_idx]
        if tvals.dtype == object:
            tl = tvals.tolist()
            t_min, t_max = min(tl), max(tl)
        else:
            t_min, t_max = int(tvals.min()), int(tvals.max())
        report.span_cycles = t_max - t_min

    sw = select(b, Predicate(majors=(int(Major.PROC),),
                             minors=(int(ProcMinor.CONTEXT_SWITCH),),
                             min_data=2, timed_only=True))
    idle = select(b, Predicate(majors=(int(Major.PROC),),
                               minors=(int(ProcMinor.IDLE_START),),
                               timed_only=True))
    migrate = select(b, Predicate(majors=(int(Major.PROC),),
                                  minors=(int(ProcMinor.MIGRATE),),
                                  timed_only=True))
    timer = select(b, Predicate(majors=(int(Major.EXC),),
                                minors=(int(ExcMinor.TIMER_INTERRUPT),),
                                timed_only=True))

    cpu_sorted = b.cpu[order]
    bounds = np.flatnonzero(
        np.concatenate(([True], cpu_sorted[1:] != cpu_sorted[:-1]))
    ).tolist() + [n]
    for s, e_ in zip(bounds[:-1], bounds[1:]):
        seg = order[s:e_]                    # this CPU, decode order
        cpu = int(cpu_sorted[s])
        stats = report.per_cpu.setdefault(cpu, CpuSched(cpu))
        stats.context_switches += int(sw[seg].sum())
        stats.migrations_in += int(migrate[seg].sum())
        stats.timer_interrupts += int(timer[seg].sum())

        # Busy-interval replay over switch/idle boundaries only.
        bnd = seg[sw[seg] | idle[seg]]
        if len(bnd) == 0:
            continue
        is_sw = sw[bnd].tolist()
        bt = b.time[bnd].tolist()
        thr = b.data_column(1, bnd).tolist()  # valid only at switches
        running: Optional[int] = None
        busy_from: Optional[int] = None
        for i in range(len(bnd)):
            t = bt[i]
            if running is not None and busy_from is not None:
                self_time = t - busy_from
                pid = report.thread_pid.get(running)
                if pid is not None:
                    report.process_time[pid] = (
                        report.process_time.get(pid, 0) + self_time
                    )
                stats.busy_cycles += self_time
            if is_sw[i]:
                running = thr[i]
                busy_from = t
            else:
                running = None
                busy_from = None
        # Close the final interval at the CPU's last event.
        if running is not None and busy_from is not None:
            last_i = seg[-1]
            if b.timed[last_i]:
                last = int(b.time[last_i])
                if last > busy_from:
                    pid = report.thread_pid.get(running)
                    if pid is not None:
                        report.process_time[pid] = (
                            report.process_time.get(pid, 0)
                            + (last - busy_from)
                        )
                    stats.busy_cycles += last - busy_from
    return report


def format_sched_report(
    report: SchedReport,
    process_names: Optional[Dict[int, str]] = None,
    top: int = 10,
) -> str:
    """Render per-CPU rates and the CPU-time-by-process table."""
    lines = [
        f"scheduling over {report.span_cycles / CYCLES_PER_US:,.0f} us",
        f"{'cpu':>4} {'util':>7} {'ctxsw':>7} {'timer irq':>10} "
        f"{'migrations':>11}",
    ]
    for cpu in sorted(report.per_cpu):
        s = report.per_cpu[cpu]
        lines.append(
            f"{cpu:>4} {report.utilization(cpu) * 100:>6.1f}% "
            f"{s.context_switches:>7} {s.timer_interrupts:>10} "
            f"{s.migrations_in:>11}"
        )
    lines.append("CPU time by process:")
    for pid, cycles in report.busiest_processes(top):
        name = (process_names or {}).get(pid, "")
        lines.append(
            f"  pid {pid:>4} {name:<16} {cycles / CYCLES_PER_US:>12,.0f} us"
        )
    return "\n".join(lines)


def live_render(
    trace,
    process_names: Optional[Dict[int, str]] = None,
    top: int = 10,
) -> str:
    """Render the scheduler report for a live window.

    Byte-identical to the post-mortem ``sched`` output for the same
    events; a window with no scheduling events yet renders zero rates
    over a zero span.
    """
    return format_sched_report(sched_statistics(trace, columnar=True),
                               process_names, top=top)


def fleet_render(
    view,
    process_names: Optional[Dict[int, str]] = None,
    top: int = 10,
) -> str:
    """Scheduler reports for a merged fleet view.

    Per-node sections are identical to analyzing each node alone.  The
    rollup runs the same replay over the fleet lanes — each (node, cpu)
    pair keeps its own lane, so busy-interval replay never mixes
    streams — and prefixes the lane legend so lane numbers map back to
    nodes.
    """
    from repro.fleet.merge import fleet_sections, lane_legend_line

    def rollup() -> str:
        return (lane_legend_line(view) + "\n"
                + format_sched_report(
                    sched_statistics(view.rollup_trace(), columnar=True),
                    process_names, top=top))

    return fleet_sections(
        view,
        lambda t: live_render(t, process_names, top=top),
        rollup)
