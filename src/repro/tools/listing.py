"""Textual event listing — the Figure 5 tool.

Takes a decoded trace and produces lines of the form::

    21.4747350 TRC_USER_RUN_UL_LOADER  process 6 created new process with id 7 name /shellServe

Column one is seconds (cycles at 1 GHz), column two the ``__TR`` event
name, column three the self-describing rendering (§4.4) — no tool-side
knowledge of any specific event is required.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.core.columnar import as_batch
from repro.core.stream import Trace, TraceEvent
from repro.store.query import CYCLES_PER_SECOND, Predicate, select

__all__ = ["CYCLES_PER_SECOND", "event_listing", "format_event",
           "format_listing", "main"]


def event_listing(
    trace: Trace,
    start: Optional[float] = None,
    end: Optional[float] = None,
    cpu: Optional[int] = None,
    names: Optional[Iterable[str]] = None,
    include_control: bool = False,
    limit: Optional[int] = None,
    columnar: bool = True,
) -> List[TraceEvent]:
    """Select events for listing, by time window / cpu / event names.

    The columnar path (default) evaluates every criterion as a boolean
    mask over the merged event columns and materializes only the
    selected rows; selection is identical to the scalar walk.
    """
    if columnar:
        return _event_listing_columnar(trace, start, end, cpu, names,
                                       include_control, limit)
    wanted = set(names) if names is not None else None
    out: List[TraceEvent] = []
    for e in trace.all_events():
        if not include_control and e.is_control:
            continue
        if cpu is not None and e.cpu != cpu:
            continue
        t = (e.time or 0) / CYCLES_PER_SECOND
        if start is not None and t < start:
            continue
        if end is not None and t > end:
            continue
        if wanted is not None and e.name not in wanted:
            continue
        out.append(e)
        if limit is not None and len(out) >= limit:
            break
    return out


def _event_listing_columnar(
    trace: Trace,
    start: Optional[float],
    end: Optional[float],
    cpu: Optional[int],
    names: Optional[Iterable[str]],
    include_control: bool,
    limit: Optional[int],
) -> List[TraceEvent]:
    b = as_batch(trace)
    pred = Predicate(
        cpus=(int(cpu),) if cpu is not None else None,
        names=tuple(names) if names is not None else None,
        start_s=start,
        end_s=end,
        include_control=include_control,
    )
    sel = np.flatnonzero(select(b, pred))
    if limit is not None:
        sel = sel[:limit]
    return b.events(sel)


def format_event(event: TraceEvent, name_width: int = 28) -> str:
    t = (event.time or 0) / CYCLES_PER_SECOND
    return f"{t:12.7f} {event.name:<{name_width}} {event.render()}"


def format_listing(
    trace: Trace,
    name_width: int = 28,
    **selection,
) -> str:
    """The full Figure 5-style listing as one string."""
    events = event_listing(trace, **selection)
    return "\n".join(format_event(e, name_width) for e in events)


def main(argv: Optional[List[str]] = None) -> int:
    """Run the listing tool standalone: ``python -m repro.tools.listing``.

    Delegates to the ``list`` subcommand of :mod:`repro.cli`, so all its
    options — including ``--workers N`` parallel decoding — apply.
    """
    import sys

    from repro.cli import main as cli_main

    return cli_main(["list", *(argv if argv is not None else sys.argv[1:])])


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
