"""kmon — the graphical trace visualizer (Figure 4), rendered offline.

"The timeline in the top middle provides a bird's eye view of the events
occurring in the system ... The user can zoom in or out ... specific
events to be marked and counted ... when the mouse is clicked in the
timeline area, [it] will produce a listing of every event that occurred
around the time period the mouse was clicked in."

This implementation renders to text (per-CPU lanes of busy/idle derived
from the scheduler's idle events, an event-density band, and markers for
selected event names) and to standalone SVG.  ``zoom`` narrows the
window; ``events_near`` is the mouse-click listing, delegating to the
Figure 5 tool.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.columnar import EventBatch, as_batch
from repro.core.majors import Major, ProcMinor
from repro.core.stream import Trace, TraceEvent
from repro.store.query import Predicate, select
from repro.tools.listing import CYCLES_PER_SECOND, event_listing, format_event

_DENSITY = " .:-=+*#%@"


@dataclass
class _Lane:
    cpu: int
    busy: List[Tuple[int, int]]  # busy intervals in cycles
    event_times: List[int]


class Timeline:
    """The Figure 4 timeline over a decoded trace.

    ``columnar`` (the default) derives lanes, intervals, and marker
    counts from the trace's event columns with mask selection; the
    rendered output is identical to the scalar event walk.
    """

    def __init__(self, trace: Trace,
                 window: Optional[Tuple[int, int]] = None,
                 columnar: bool = True) -> None:
        self.trace = trace
        self.columnar = columnar
        self.marks: List[str] = []
        self.process_pids: List[int] = []
        self.process_names: Dict[int, str] = {}
        self._lanes: List[_Lane] = []
        if columnar:
            self._init_columnar()
        else:
            all_times: List[int] = []
            for cpu in sorted(trace.events_by_cpu):
                events = [e for e in trace.events(cpu) if e.time is not None]
                times = [e.time for e in events]
                all_times.extend(times)
                self._lanes.append(
                    _Lane(cpu, self._busy_intervals(events), times)
                )
            if not all_times:
                raise ValueError("trace has no timestamped events")
            self.t0, self.t1 = min(all_times), max(all_times)
            self._pid_intervals = self._per_process_intervals(trace)
        if window is not None:
            self.t0, self.t1 = window
        if self.t1 <= self.t0:
            self.t1 = self.t0 + 1

    # ------------------------------------------------------------------
    def _init_columnar(self) -> None:
        """Build lanes and process intervals from event columns."""
        b = as_batch(self.trace)
        order = b.order_by_stream()
        n = len(order)
        timed = b.timed
        if not bool(timed.any()):
            raise ValueError("trace has no timestamped events")
        t_all = b.time[timed]
        if t_all.dtype == object:
            tl = t_all.tolist()
            self.t0, self.t1 = min(tl), max(tl)
        else:
            self.t0, self.t1 = int(t_all.min()), int(t_all.max())

        idle_end = select(b, Predicate(majors=(int(Major.PROC),),
                                       minors=(int(ProcMinor.IDLE_END),),
                                       timed_only=True))
        idle_start = select(b, Predicate(majors=(int(Major.PROC),),
                                         minors=(int(ProcMinor.IDLE_START),),
                                         timed_only=True))
        sw = select(b, Predicate(majors=(int(Major.PROC),),
                                 minors=(int(ProcMinor.CONTEXT_SWITCH),),
                                 min_data=2, timed_only=True))

        # thread -> pid mapping, stream order, last write wins.
        thread_pid: Dict[int, int] = {}
        tc = select(b, Predicate(majors=(int(Major.PROC),),
                                 minors=(int(ProcMinor.THREAD_CREATE),),
                                 min_data=2))
        tc_idx = order[tc[order]]
        if len(tc_idx):
            for t, p in zip(b.data_column(0, tc_idx).tolist(),
                            b.data_column(1, tc_idx).tolist()):
                thread_pid[t] = p

        intervals: Dict[int, List[Tuple[int, int]]] = {}
        cpu_sorted = b.cpu[order]
        bounds = np.flatnonzero(
            np.concatenate(([True], cpu_sorted[1:] != cpu_sorted[:-1]))
        ).tolist() + [n]
        seg_by_cpu = {
            int(cpu_sorted[s]): order[s:e_]         # decode order per CPU
            for s, e_ in zip(bounds[:-1], bounds[1:])
        }
        # Event-less CPUs still get an (empty) lane, like the scalar path.
        from repro.tools.schedstats import _trace_cpus

        universe = sorted(set(_trace_cpus(self.trace)) | set(seg_by_cpu))
        empty = np.zeros(0, dtype=np.int64)
        for cpu in universe:
            seg = seg_by_cpu.get(cpu, empty)
            tseg = seg[timed[seg]]
            times = b.time[tseg].tolist()
            self._lanes.append(
                _Lane(cpu, self._busy_intervals_columnar(b, tseg, times,
                                                         idle_start,
                                                         idle_end),
                      times)
            )
            # Per-process run intervals from context switches.
            sw_seg = seg[sw[seg]]
            st = b.time[sw_seg].tolist()
            thr = b.data_column(1, sw_seg).tolist()
            current_pid: Optional[int] = None
            since: Optional[int] = None
            for i in range(len(sw_seg)):
                if current_pid is not None and since is not None:
                    intervals.setdefault(current_pid, []).append(
                        (since, st[i])
                    )
                current_pid = thread_pid.get(thr[i])
                since = st[i]
            if current_pid is not None and since is not None and len(seg):
                last_i = seg[-1]
                if b.timed[last_i]:
                    last = int(b.time[last_i])
                    if last > since:
                        intervals.setdefault(current_pid, []).append(
                            (since, last)
                        )
        self._pid_intervals = intervals

    @staticmethod
    def _busy_intervals_columnar(
        b: EventBatch,
        tseg: np.ndarray,
        times: List[int],
        idle_start: np.ndarray,
        idle_end: np.ndarray,
    ) -> List[Tuple[int, int]]:
        """Columnar :meth:`_busy_intervals`: replay only idle boundaries."""
        intervals: List[Tuple[int, int]] = []
        if len(tseg) == 0:
            return intervals
        ie = idle_end[tseg]
        is_ = idle_start[tseg]
        bnd = np.flatnonzero(ie | is_)
        busy_from: Optional[int] = None
        saw_idle_event = len(bnd) > 0
        ends = ie[bnd].tolist()
        for j, k in enumerate(bnd.tolist()):
            if ends[j]:
                if busy_from is None:
                    busy_from = times[k]
            else:
                if busy_from is not None:
                    intervals.append((busy_from, times[k]))
                    busy_from = None
        if busy_from is not None:
            intervals.append((busy_from, times[-1]))
        if not saw_idle_event:
            intervals.append((times[0], times[-1]))
        return intervals

    @staticmethod
    def _per_process_intervals(trace: Trace) -> Dict[int, List[Tuple[int, int]]]:
        """Per-process run intervals, replayed from context switches."""
        thread_pid: Dict[int, int] = {}
        for events in trace.events_by_cpu.values():
            for e in events:
                if (e.major == Major.PROC
                        and e.minor == ProcMinor.THREAD_CREATE
                        and len(e.data) >= 2):
                    thread_pid[e.data[0]] = e.data[1]
        intervals: Dict[int, List[Tuple[int, int]]] = {}
        for cpu, events in trace.events_by_cpu.items():
            current_pid: Optional[int] = None
            since: Optional[int] = None
            for e in events:
                if (e.major != Major.PROC
                        or e.minor != ProcMinor.CONTEXT_SWITCH
                        or len(e.data) < 2 or e.time is None):
                    continue
                if current_pid is not None and since is not None:
                    intervals.setdefault(current_pid, []).append(
                        (since, e.time)
                    )
                current_pid = thread_pid.get(e.data[1])
                since = e.time
            if current_pid is not None and since is not None and events:
                last = events[-1].time
                if last is not None and last > since:
                    intervals.setdefault(current_pid, []).append(
                        (since, last)
                    )
        return intervals

    # ------------------------------------------------------------------
    @staticmethod
    def _busy_intervals(events: Sequence[TraceEvent]) -> List[Tuple[int, int]]:
        """Reconstruct busy periods from IDLE_START/IDLE_END events.

        A CPU starts idle; the first IDLE_END begins its first busy
        interval.  A CPU with activity but no idle events is busy from
        its first to its last event.
        """
        intervals: List[Tuple[int, int]] = []
        busy_from: Optional[int] = None
        saw_idle_event = False
        for e in events:
            if e.major != Major.PROC:
                continue
            if e.minor == ProcMinor.IDLE_END:
                saw_idle_event = True
                if busy_from is None:
                    busy_from = e.time
            elif e.minor == ProcMinor.IDLE_START:
                saw_idle_event = True
                if busy_from is not None:
                    intervals.append((busy_from, e.time))
                    busy_from = None
        if busy_from is not None and events:
            intervals.append((busy_from, events[-1].time))
        if not saw_idle_event and events:
            intervals.append((events[0].time, events[-1].time))
        return intervals

    # ------------------------------------------------------------------
    # Interaction
    # ------------------------------------------------------------------
    def zoom(self, start_seconds: float, end_seconds: float) -> "Timeline":
        """A new Timeline restricted to [start, end] (in seconds)."""
        if end_seconds <= start_seconds:
            raise ValueError("zoom window must have positive width")
        tl = Timeline(
            self.trace,
            window=(
                int(start_seconds * CYCLES_PER_SECOND),
                int(end_seconds * CYCLES_PER_SECOND),
            ),
            columnar=self.columnar,
        )
        tl.marks = list(self.marks)
        tl.process_pids = list(self.process_pids)
        tl.process_names = dict(self.process_names)
        return tl

    def mark(self, *event_names: str) -> "Timeline":
        """Select events to display and count (Figure 4's marked events)."""
        self.marks.extend(event_names)
        return self

    def show_processes(self, *pids: int,
                       names: Optional[Dict[int, str]] = None) -> "Timeline":
        """Add per-process activity lanes (Figure 4's process rows).

        With no pids given, the busiest processes (by run time inside
        the window) are selected automatically.
        """
        if names:
            self.process_names.update(names)
        if pids:
            self.process_pids.extend(pids)
            return self
        busy = []
        for pid, ivals in self._pid_intervals.items():
            run = sum(
                min(e, self.t1) - max(b, self.t0)
                for b, e in ivals if b < self.t1 and e > self.t0
            )
            if run > 0:
                busy.append((run, pid))
        busy.sort(reverse=True)
        self.process_pids.extend(pid for _, pid in busy[:6])
        return self

    def marked_counts(self) -> Dict[str, int]:
        counts = {name: 0 for name in self.marks}
        if self.columnar:
            for name in counts:
                counts[name] = sum(
                    1 for t in self._marker_times(name)
                    if self.t0 <= t <= self.t1
                )
            return counts
        for e in self.trace.all_events():
            if e.name in counts and e.time is not None \
                    and self.t0 <= e.time <= self.t1:
                counts[e.name] += 1
        return counts

    def _marker_times(self, name: str) -> List[int]:
        """All timestamps of events named ``name``, ascending."""
        if self.columnar:
            b = as_batch(self.trace)
            sel = b.mask_names([name]) & b.timed
            return sorted(b.time[sel].tolist())
        return sorted(
            e.time for e in self.trace.all_events()
            if e.name == name and e.time is not None
        )

    def events_near(self, at_seconds: float, window_seconds: float = 1e-4,
                    limit: int = 30) -> List[TraceEvent]:
        """The mouse-click listing: every event around a time point."""
        return event_listing(
            self.trace,
            start=at_seconds - window_seconds,
            end=at_seconds + window_seconds,
            limit=limit,
            columnar=self.columnar,
        )

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def _columns(self, width: int) -> List[Tuple[int, int]]:
        span = self.t1 - self.t0
        edges = [self.t0 + span * i // width for i in range(width + 1)]
        return list(zip(edges[:-1], edges[1:]))

    def render(self, width: int = 96) -> str:
        """Bird's-eye text view: density band + one lane per CPU."""
        cols = self._columns(width)
        lines: List[str] = []
        header = (
            f"kmon timeline  {self.t0 / CYCLES_PER_SECOND:.6f}s .. "
            f"{self.t1 / CYCLES_PER_SECOND:.6f}s "
            f"({(self.t1 - self.t0) / CYCLES_PER_SECOND * 1e3:.3f} ms)"
        )
        lines.append(header)

        # Event-density band over all CPUs.
        merged = sorted(
            t for lane in self._lanes for t in lane.event_times
        )
        dens = []
        peak = 1
        counts = []
        for lo, hi in cols:
            n = bisect_right(merged, hi) - bisect_left(merged, lo)
            counts.append(n)
            peak = max(peak, n)
        for n in counts:
            dens.append(_DENSITY[min(len(_DENSITY) - 1, n * (len(_DENSITY) - 1) // peak)])
        lines.append("events " + "".join(dens))

        # Per-CPU busy/idle lanes ('#' busy, '.' idle).
        for lane in self._lanes:
            row = []
            for lo, hi in cols:
                busy = any(b < hi and e > lo for b, e in lane.busy)
                row.append("#" if busy else ".")
            lines.append(f"cpu{lane.cpu:<3} " + "".join(row))

        # Per-process activity lanes ('=' running somewhere).
        for pid in self.process_pids:
            ivals = self._pid_intervals.get(pid, [])
            row = []
            for lo, hi in cols:
                running = any(b < hi and e > lo for b, e in ivals)
                row.append("=" if running else " ")
            label = self.process_names.get(pid, f"pid{pid}")
            lines.append(f"{label[:6]:<6} " + "".join(row))

        # Marker rows for each marked event name.
        for name in self.marks:
            times = self._marker_times(name)
            row = []
            for lo, hi in cols:
                n = bisect_right(times, hi) - bisect_left(times, lo)
                row.append("|" if n else " ")
            lines.append(f"{name[:18]:<18} " + "".join(row[: width - 11]))
        if self.marks:
            for name, count in self.marked_counts().items():
                lines.append(f"  marked {name}: {count} occurrences")
        return "\n".join(lines)

    def render_svg(self, width: int = 900, lane_height: int = 22) -> str:
        """Standalone SVG: busy intervals as bars, marks as ticks."""
        pad = 60
        span = self.t1 - self.t0
        n_rows = len(self._lanes) + len(self.marks) + len(self.process_pids)
        height = pad + n_rows * lane_height + 20

        def x(t: int) -> float:
            return pad + (t - self.t0) / span * (width - pad - 10)

        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
            f'height="{height}" font-family="monospace" font-size="11">',
            f'<text x="8" y="16">kmon {self.t0 / CYCLES_PER_SECOND:.6f}s .. '
            f'{self.t1 / CYCLES_PER_SECOND:.6f}s</text>',
        ]
        y = 30
        for lane in self._lanes:
            parts.append(f'<text x="8" y="{y + lane_height - 8}">cpu{lane.cpu}</text>')
            parts.append(
                f'<rect x="{pad}" y="{y}" width="{width - pad - 10}" '
                f'height="{lane_height - 6}" fill="#eee"/>'
            )
            for b, e in lane.busy:
                b2, e2 = max(b, self.t0), min(e, self.t1)
                if e2 <= b2:
                    continue
                parts.append(
                    f'<rect x="{x(b2):.1f}" y="{y}" '
                    f'width="{max(0.5, x(e2) - x(b2)):.1f}" '
                    f'height="{lane_height - 6}" fill="#4a78c8"/>'
                )
            y += lane_height
        for pid in self.process_pids:
            label = self.process_names.get(pid, f"pid{pid}")[:12]
            parts.append(
                f'<text x="8" y="{y + lane_height - 8}">{label}</text>'
            )
            for b, e in self._pid_intervals.get(pid, ()):
                b2, e2 = max(b, self.t0), min(e, self.t1)
                if e2 <= b2:
                    continue
                parts.append(
                    f'<rect x="{x(b2):.1f}" y="{y}" '
                    f'width="{max(0.5, x(e2) - x(b2)):.1f}" '
                    f'height="{lane_height - 6}" fill="#58a55c"/>'
                )
            y += lane_height
        for name in self.marks:
            parts.append(f'<text x="8" y="{y + lane_height - 8}">{name[:16]}</text>')
            for t in self._marker_times(name):
                if self.t0 <= t <= self.t1:
                    parts.append(
                        f'<line x1="{x(t):.1f}" y1="{y}" '
                        f'x2="{x(t):.1f}" y2="{y + lane_height - 6}" '
                        f'stroke="#c0392b" stroke-width="1.5"/>'
                    )
            y += lane_height
        parts.append("</svg>")
        return "\n".join(parts)

    def click_listing(self, at_seconds: float, window_seconds: float = 1e-4) -> str:
        """Figure 5-style text for a click at ``at_seconds``."""
        events = self.events_near(at_seconds, window_seconds)
        return "\n".join(format_event(e) for e in events)


def live_render(trace, width: int = 96) -> str:
    """Render the timeline for a live window.

    Identical to the post-mortem ``kmon`` rendering, except that an
    empty window — no timestamped events have arrived yet — renders a
    placeholder instead of raising, since for a live monitor that is a
    normal transient state, not an error.
    """
    try:
        tl = Timeline(trace, columnar=True)
    except ValueError:
        return "kmon: no timestamped events in the window yet"
    return tl.render(width=width)


def fleet_render(view, width: int = 96) -> str:
    """Timelines for a merged fleet view: per node, then fleet-wide.

    The per-node sections render each node's original trace (identical
    to running kmon on that node alone); the rollup timeline gives
    every (node, cpu) stream its own lane on the common fleet clock,
    with a legend decoding the lane ids.
    """
    from repro.fleet.merge import fleet_sections, lane_legend_line

    def rollup() -> str:
        return (lane_legend_line(view) + "\n"
                + live_render(view.rollup_trace(), width=width))

    return fleet_sections(view, lambda t: live_render(t, width=width),
                          rollup)


def main(argv=None) -> int:
    """Run kmon standalone: ``python -m repro.tools.kmon trace.k42``.

    Delegates to the ``kmon`` subcommand of :mod:`repro.cli`, so all its
    options — including ``--workers N`` parallel decoding — apply.
    """
    import sys

    from repro.cli import main as cli_main

    return cli_main(["kmon", *(argv if argv is not None else sys.argv[1:])])


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
