"""Comparing two traces — the §4 tuning loop, formalized.

"We went through a series of iterations where we used the lock analysis
tool to determine the most contended lock in the system, fixed it, and
then ran the tool again."  Each iteration ends with a human eyeballing
two reports.  This tool does the eyeballing: given a *before* and an
*after* trace, it diffs lock contention, the PC profile, event
frequencies, and gross timing, and reports what the "fix" actually
changed — including regressions (a fix that moves contention elsewhere
shows up immediately).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.stream import Trace
from repro.tools.lockstats import lock_statistics
from repro.tools.pathstats import event_histogram
from repro.tools.pcprofile import pc_profile

CYCLES_PER_US = 1_000


@dataclass
class LockDelta:
    lock_id: int
    before_wait: int
    after_wait: int
    before_count: int
    after_count: int

    @property
    def wait_change(self) -> int:
        return self.after_wait - self.before_wait

    @property
    def improved(self) -> bool:
        return self.after_wait < self.before_wait


@dataclass
class TraceComparison:
    span_before: int
    span_after: int
    lock_deltas: List[LockDelta] = field(default_factory=list)
    #: function -> (samples before, samples after)
    profile_deltas: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: event name -> (count before, count after)
    event_deltas: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        return self.span_before / self.span_after if self.span_after else 0.0

    @property
    def total_wait_before(self) -> int:
        return sum(d.before_wait for d in self.lock_deltas)

    @property
    def total_wait_after(self) -> int:
        return sum(d.after_wait for d in self.lock_deltas)

    def regressions(self) -> List[LockDelta]:
        """Locks whose contention grew — where the problem moved to."""
        return sorted(
            (d for d in self.lock_deltas if d.wait_change > 0),
            key=lambda d: -d.wait_change,
        )

    def improvements(self) -> List[LockDelta]:
        return sorted(
            (d for d in self.lock_deltas if d.wait_change < 0),
            key=lambda d: d.wait_change,
        )


def _span(trace: Trace) -> int:
    times = [e.time for e in trace.all_events() if e.time is not None]
    return (max(times) - min(times)) if times else 0


def compare_traces(
    before: Trace,
    after: Trace,
    pc_names: Optional[Dict[int, str]] = None,
) -> TraceComparison:
    """Diff two traces of the same workload."""
    comparison = TraceComparison(
        span_before=_span(before), span_after=_span(after)
    )

    # Lock contention, aggregated per lock across chains/pids.
    def per_lock(trace: Trace) -> Dict[int, Tuple[int, int]]:
        acc: Dict[int, Tuple[int, int]] = {}
        for s in lock_statistics(trace, group_by_pid=False):
            wait, count = acc.get(s.lock_id, (0, 0))
            acc[s.lock_id] = (wait + s.total_wait_cycles, count + s.count)
        return acc

    locks_b = per_lock(before)
    locks_a = per_lock(after)
    for lock_id in sorted(set(locks_b) | set(locks_a)):
        bw, bc = locks_b.get(lock_id, (0, 0))
        aw, ac = locks_a.get(lock_id, (0, 0))
        comparison.lock_deltas.append(
            LockDelta(lock_id, bw, aw, bc, ac)
        )

    prof_b = dict((n, c) for c, n in pc_profile(before, pc_names))
    prof_a = dict((n, c) for c, n in pc_profile(after, pc_names))
    for name in sorted(set(prof_b) | set(prof_a)):
        comparison.profile_deltas[name] = (
            prof_b.get(name, 0), prof_a.get(name, 0)
        )

    hist_b = dict((n, c) for c, n in event_histogram(before))
    hist_a = dict((n, c) for c, n in event_histogram(after))
    for name in sorted(set(hist_b) | set(hist_a)):
        comparison.event_deltas[name] = (
            hist_b.get(name, 0), hist_a.get(name, 0)
        )
    return comparison


def format_comparison(
    comparison: TraceComparison,
    lock_names: Optional[Dict[int, str]] = None,
    top: int = 5,
) -> str:
    """Render the before/after report."""
    c = comparison
    lines = [
        f"elapsed: {c.span_before / CYCLES_PER_US:,.0f} us -> "
        f"{c.span_after / CYCLES_PER_US:,.0f} us "
        f"({c.speedup:.2f}x)",
        f"total lock wait: {c.total_wait_before / CYCLES_PER_US:,.0f} us -> "
        f"{c.total_wait_after / CYCLES_PER_US:,.0f} us",
    ]

    def lock_name(lock_id: int) -> str:
        return (lock_names or {}).get(lock_id, f"{lock_id:#x}")

    improvements = c.improvements()[:top]
    if improvements:
        lines.append("improved locks:")
        for d in improvements:
            lines.append(
                f"  {lock_name(d.lock_id):<28} wait "
                f"{d.before_wait / CYCLES_PER_US:,.0f} -> "
                f"{d.after_wait / CYCLES_PER_US:,.0f} us "
                f"(count {d.before_count} -> {d.after_count})"
            )
    regressions = c.regressions()[:top]
    if regressions:
        lines.append("regressed locks (where the problem moved):")
        for d in regressions:
            lines.append(
                f"  {lock_name(d.lock_id):<28} wait "
                f"{d.before_wait / CYCLES_PER_US:,.0f} -> "
                f"{d.after_wait / CYCLES_PER_US:,.0f} us "
                f"(count {d.before_count} -> {d.after_count})"
            )
    moved = sorted(
        c.profile_deltas.items(), key=lambda kv: kv[1][0] - kv[1][1],
        reverse=True,
    )
    shrunk = [(n, b, a) for n, (b, a) in moved if b > a][:top]
    if shrunk:
        lines.append("functions with fewer samples after:")
        for n, b, a in shrunk:
            lines.append(f"  {n:<40} {b} -> {a}")
    return "\n".join(lines)
