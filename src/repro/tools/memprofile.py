"""Memory-behaviour analysis from sampled hardware counters (§2).

The paper's point about counter/tracing integration: because counter
samples are ordinary trace events, they can be "sampled and understood
at various stages throughout the programs or operating systems
execution" — attributed to processes via the scheduling events in the
same stream, and laid against time to find hot phases.

This tool does exactly that: it reads ``TRC_HWPERF_SAMPLE`` events,
attributes each period's miss delta to the process running on that CPU
at sample time, and reports per-process totals, rates, and a bucketed
time series (the memory hot-spot view).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.majors import HwPerfMinor, Major
from repro.core.stream import Trace
from repro.ksim.hwcounters import HwCounter
from repro.tools.context import ContextTracker

CYCLES_PER_US = 1_000


@dataclass
class ProcessMemoryStats:
    pid: int
    name: str = ""
    l2_misses: int = 0
    tlb_misses: int = 0
    samples: int = 0

    def mpk(self, total_cycles: int) -> float:
        """Misses per kilocycle of the whole run (hotness measure)."""
        return self.l2_misses / max(1, total_cycles) * 1_000


@dataclass
class MemoryReport:
    per_process: Dict[int, ProcessMemoryStats] = field(default_factory=dict)
    #: (bucket start cycle, {pid: l2 misses in bucket})
    timeline: List[Tuple[int, Dict[int, int]]] = field(default_factory=list)
    total_l2: int = 0
    total_tlb: int = 0
    span_cycles: int = 0

    def hottest(self, n: int = 5) -> List[ProcessMemoryStats]:
        return sorted(self.per_process.values(),
                      key=lambda s: -s.l2_misses)[:n]


def memory_profile(
    trace: Trace,
    process_names: Optional[Dict[int, str]] = None,
    buckets: int = 20,
) -> MemoryReport:
    """Build the per-process / per-phase memory report from the trace."""
    ctx = ContextTracker(trace)
    report = MemoryReport()
    samples: List[Tuple[int, Optional[int], int, int]] = []  # (t, pid, ctr, d)
    t_min = t_max = None
    for e in trace.all_events():
        if e.major != Major.HWPERF or e.minor != HwPerfMinor.COUNTER_SAMPLE:
            continue
        if len(e.data) < 2 or e.time is None:
            continue
        counter, delta = e.data[0], e.data[1]
        pid = ctx.pid_of(e)
        samples.append((e.time, pid, counter, delta))
        t_min = e.time if t_min is None else min(t_min, e.time)
        t_max = e.time if t_max is None else max(t_max, e.time)
    if not samples:
        return report
    report.span_cycles = (t_max - t_min) or 1
    bucket_w = max(1, report.span_cycles // buckets)
    bucket_map: Dict[int, Dict[int, int]] = defaultdict(lambda: defaultdict(int))
    for t, pid, counter, delta in samples:
        if pid is None:
            pid = -1
        stats = report.per_process.get(pid)
        if stats is None:
            stats = ProcessMemoryStats(
                pid, (process_names or {}).get(pid, ""))
            report.per_process[pid] = stats
        stats.samples += 1
        if counter == HwCounter.L2_MISSES:
            stats.l2_misses += delta
            report.total_l2 += delta
            bucket = min(buckets - 1, (t - t_min) // bucket_w)
            bucket_map[bucket][pid] += delta
        elif counter == HwCounter.TLB_MISSES:
            stats.tlb_misses += delta
            report.total_tlb += delta
    for b in sorted(bucket_map):
        report.timeline.append((t_min + b * bucket_w, dict(bucket_map[b])))
    return report


def format_memory_report(report: MemoryReport, top: int = 8) -> str:
    """Render the memory hot-spot table plus a miss-density strip."""
    lines = [
        f"memory behaviour over {report.span_cycles / CYCLES_PER_US:,.0f} us: "
        f"{report.total_l2:,} L2 misses, {report.total_tlb:,} TLB misses",
        f"{'pid':>5} {'process':<16} {'L2 misses':>12} {'TLB misses':>12} "
        f"{'share':>7}",
    ]
    for s in report.hottest(top):
        share = 100.0 * s.l2_misses / max(1, report.total_l2)
        lines.append(
            f"{s.pid:>5} {s.name:<16} {s.l2_misses:>12,} "
            f"{s.tlb_misses:>12,} {share:>6.1f}%"
        )
    if report.timeline:
        peak = max(sum(b.values()) for _, b in report.timeline) or 1
        strip = "".join(
            " .:-=+*#%@"[min(9, sum(b.values()) * 9 // peak)]
            for _, b in report.timeline
        )
        lines.append(f"miss density over time: [{strip}]")
    return "\n".join(lines)
