"""Lock-contention analysis — the Figure 7 tool (§4.6).

Reconstructs, purely from trace events, the table that "played a crucial
role in helping us detect when a particular lock is generating
contention": per contended lock instance, the total wait time, the
contention count, the spin count, the maximum wait, the PID, and the
call chain that led to the acquisition.

Pairing: ``CONTEND_START``/``CONTEND_END`` are matched FIFO per lock —
the kernel's FairBLock grants in FIFO order, so the *n*-th start pairs
with the *n*-th end.  PIDs come from the scheduling events via
:class:`~repro.tools.context.ContextTracker` (the unified-facility
advantage of §2).
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.columnar import as_batch
from repro.core.majors import LockMinor, Major
from repro.core.stream import Trace
from repro.store.query import CYCLES_PER_SECOND, Predicate, select
from repro.tools.context import ColumnarContext, ContextTracker


@dataclass
class LockStats:
    """Aggregated contention data for one (lock, call chain, pid) group."""

    lock_id: int
    chain_id: int
    pid: Optional[int]
    total_wait_cycles: int = 0
    count: int = 0
    spins: int = 0
    max_wait_cycles: int = 0
    unmatched_starts: int = 0
    #: individual wait times, kept when collect_waits=True
    waits: list = field(default_factory=list)

    @property
    def total_wait_seconds(self) -> float:
        return self.total_wait_cycles / CYCLES_PER_SECOND

    @property
    def max_wait_seconds(self) -> float:
        return self.max_wait_cycles / CYCLES_PER_SECOND

    @property
    def mean_wait_cycles(self) -> float:
        return self.total_wait_cycles / self.count if self.count else 0.0

    def percentile_cycles(self, q: float) -> float:
        """Wait-time percentile (requires collect_waits=True).

        Contended waits are usually bimodal — short spin-grants vs
        block-and-wake — so the median/p99 spread matters when deciding
        whether to raise the spin threshold or restructure the lock.
        """
        if not self.waits:
            raise ValueError("waits were not collected; pass collect_waits=True")
        import numpy as np

        return float(np.percentile(self.waits, q))


SORT_KEYS = {
    "time": lambda s: s.total_wait_cycles,
    "count": lambda s: s.count,
    "spin": lambda s: s.spins,
    "max": lambda s: s.max_wait_cycles,
}


def lock_statistics(
    trace: Trace,
    sort_by: str = "time",
    group_by_pid: bool = True,
    collect_waits: bool = False,
    columnar: bool = True,
) -> List[LockStats]:
    """Aggregate contention events into the Figure 7 table rows.

    ``sort_by`` is any of 'time', 'count', 'spin', 'max' — "the tool
    will sort on any of these columns".

    The FIFO pairing is inherently sequential, but the columnar path
    (default) mask-selects the contention events and their pids out of
    the event columns first, so the Python loop runs only over actual
    CONTEND rows instead of the whole trace.  Output is identical.
    """
    if sort_by not in SORT_KEYS:
        raise ValueError(f"sort_by must be one of {sorted(SORT_KEYS)}")
    if columnar:
        return _lock_statistics_columnar(trace, sort_by, group_by_pid,
                                         collect_waits)
    ctx = ContextTracker(trace)
    # FIFO pending starts per lock: (start_event, chain_id, pid)
    pending: Dict[int, deque] = defaultdict(deque)
    groups: Dict[Tuple[int, int, Optional[int]], LockStats] = {}

    def group(lock_id: int, chain_id: int, pid: Optional[int]) -> LockStats:
        key = (lock_id, chain_id, pid if group_by_pid else None)
        st = groups.get(key)
        if st is None:
            st = LockStats(lock_id, chain_id, key[2])
            groups[key] = st
        return st

    for e in trace.all_events():
        if e.major != Major.LOCK:
            continue
        if e.minor == LockMinor.CONTEND_START and len(e.data) >= 2:
            lock_id, chain_id = e.data[0], e.data[1]
            pending[lock_id].append((e, chain_id, ctx.pid_of(e)))
        elif e.minor == LockMinor.CONTEND_END and len(e.data) >= 2:
            lock_id, spins = e.data[0], e.data[1]
            if pending[lock_id]:
                start, chain_id, pid = pending[lock_id].popleft()
                wait = max(0, (e.time or 0) - (start.time or 0))
                st = group(lock_id, chain_id, pid)
                st.count += 1
                st.spins += spins
                st.total_wait_cycles += wait
                st.max_wait_cycles = max(st.max_wait_cycles, wait)
                if collect_waits:
                    st.waits.append(wait)

    # Starts never matched (still waiting at trace end — deadlock food).
    for lock_id, dq in pending.items():
        for start, chain_id, pid in dq:
            st = group(lock_id, chain_id, pid)
            st.unmatched_starts += 1

    return sorted(groups.values(), key=SORT_KEYS[sort_by], reverse=True)


def _lock_statistics_columnar(
    trace: Trace,
    sort_by: str,
    group_by_pid: bool,
    collect_waits: bool,
) -> List[LockStats]:
    b = as_batch(trace)
    ctx = ColumnarContext(b)
    start_minor = int(LockMinor.CONTEND_START)
    end_minor = int(LockMinor.CONTEND_END)
    sel = np.flatnonzero(select(b, Predicate(
        majors=(int(Major.LOCK),), minors=(start_minor, end_minor),
        min_data=2)))

    minors = b.minor[sel].tolist()
    d0 = b.data_column(0, sel).tolist()
    d1 = b.data_column(1, sel).tolist()
    tv = [t if f else 0
          for t, f in zip(b.time[sel].tolist(), b.timed[sel].tolist())]
    pid_k = ctx.known[sel].tolist()
    pid_v = ctx.pid[sel].tolist()

    # FIFO pending starts per lock: (start_time, chain_id, pid)
    pending: Dict[int, deque] = defaultdict(deque)
    groups: Dict[Tuple[int, int, Optional[int]], LockStats] = {}

    def group(lock_id: int, chain_id: int, pid: Optional[int]) -> LockStats:
        key = (lock_id, chain_id, pid if group_by_pid else None)
        st = groups.get(key)
        if st is None:
            st = LockStats(lock_id, chain_id, key[2])
            groups[key] = st
        return st

    for i in range(len(sel)):
        lock_id = d0[i]
        if minors[i] == start_minor:
            pending[lock_id].append(
                (tv[i], d1[i], pid_v[i] if pid_k[i] else None))
        else:
            if pending[lock_id]:
                t0, chain_id, pid = pending[lock_id].popleft()
                wait = max(0, tv[i] - t0)
                st = group(lock_id, chain_id, pid)
                st.count += 1
                st.spins += d1[i]
                st.total_wait_cycles += wait
                st.max_wait_cycles = max(st.max_wait_cycles, wait)
                if collect_waits:
                    st.waits.append(wait)

    for lock_id, dq in pending.items():
        for _t0, chain_id, pid in dq:
            st = group(lock_id, chain_id, pid)
            st.unmatched_starts += 1

    return sorted(groups.values(), key=SORT_KEYS[sort_by], reverse=True)


def format_lockstats(
    stats: List[LockStats],
    lock_names: Optional[Dict[int, str]] = None,
    chains: Optional[Dict[int, Tuple[str, ...]]] = None,
    top: int = 10,
    sort_label: str = "time",
) -> str:
    """Render the Figure 7 layout."""
    lines = [
        f"top {top} contended locks by {sort_label} - "
        "for full list see traceLockStatsTime",
        f"{'time':>12} {'count':>7} {'spin':>11} {'max time':>12}  pid",
        "call chain",
        "",
    ]
    for st in stats[:top]:
        pid = f"{st.pid:#x}" if st.pid is not None else "?"
        lines.append(
            f"{st.total_wait_seconds:12.9f} {st.count:>7} {st.spins:>11} "
            f"{st.max_wait_seconds:12.9f}  {pid}"
        )
        name = (lock_names or {}).get(st.lock_id)
        if name:
            lines.append(f"  lock: {name}")
        for frame in (chains or {}).get(st.chain_id, ()):
            lines.append(f"{frame}")
        lines.append("")
    return "\n".join(lines)


def live_render(
    trace,
    lock_names: Optional[Dict[int, str]] = None,
    chains: Optional[Dict[int, Tuple[str, ...]]] = None,
    sort_by: str = "time",
    top: int = 10,
) -> str:
    """Render the Figure 7 table for a live window.

    Byte-identical to the post-mortem ``locks`` output for the same
    events — a window with no contention events yet simply renders an
    empty table.
    """
    stats = lock_statistics(trace, sort_by=sort_by, columnar=True)
    return format_lockstats(stats, lock_names, chains,
                            top=top, sort_label=sort_by)


def fleet_render(
    view,
    lock_names: Optional[Dict[int, str]] = None,
    chains: Optional[Dict[int, Tuple[str, ...]]] = None,
    sort_by: str = "time",
    top: int = 10,
) -> str:
    """Figure 7 tables for a merged fleet view.

    Per-node sections are identical to analyzing each node alone.  The
    rollup ranks (node, lock) groups fleet-wide *without* merging lock
    ids across nodes — lock id 3 on node 0 and lock id 3 on node 1 are
    different locks, so cross-node FIFO pairing would be wrong; rows
    keep their node id instead.
    """
    from repro.fleet.merge import fleet_sections

    def rollup() -> str:
        rows = []
        for node in view.nodes:
            stats = lock_statistics(view.node_trace(node),
                                    sort_by=sort_by, columnar=True)
            rows.extend((node, st) for st in stats)
        rows.sort(key=lambda p: SORT_KEYS[sort_by](p[1]), reverse=True)
        lines = [
            f"top {top} contended locks fleet-wide by {sort_by} "
            "(per-node lock namespaces)",
            f"{'node':>4} {'time':>12} {'count':>7} {'spin':>11} "
            f"{'max time':>12}  pid",
        ]
        for node, st in rows[:top]:
            pid = f"{st.pid:#x}" if st.pid is not None else "?"
            lines.append(
                f"{node:>4} {st.total_wait_seconds:12.9f} {st.count:>7} "
                f"{st.spins:>11} {st.max_wait_seconds:12.9f}  {pid}")
            name = (lock_names or {}).get(st.lock_id)
            if name:
                lines.append(f"  lock: {name}")
        return "\n".join(lines)

    return fleet_sections(
        view,
        lambda t: live_render(t, lock_names, chains, sort_by, top=top),
        rollup)


def main(argv=None) -> int:
    """Run lock analysis standalone: ``python -m repro.tools.lockstats``.

    Delegates to the ``locks`` subcommand of :mod:`repro.cli`, so all its
    options — including ``--workers N`` parallel decoding — apply.
    """
    import sys

    from repro.cli import main as cli_main

    return cli_main(["locks", *(argv if argv is not None else sys.argv[1:])])


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
