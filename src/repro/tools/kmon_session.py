"""kmon's interactive mode, as a scriptable command session.

Figure 4's tool was driven with a mouse: zoom in and out, mark events,
click the timeline for a listing.  This is the same interaction model
over a command language, usable from a terminal
(``repro-trace kmon --interactive``), a script, or a test::

    zoom 0.001 0.002
    mark TRC_USER_RETURNED_MAIN
    lanes
    render 80
    click 0.0015
    svg out.svg

Each command returns text; ``help`` lists everything.  The session
keeps a zoom stack so ``out`` walks back like a browser.
"""

from __future__ import annotations

import shlex
from typing import Callable, Dict, List, Optional, TextIO

from repro.core.stream import Trace
from repro.tools.kmon import Timeline
from repro.tools.listing import CYCLES_PER_SECOND


class KmonSession:
    """Stateful command interpreter over one trace."""

    def __init__(self, trace: Trace,
                 process_names: Optional[Dict[int, str]] = None) -> None:
        self.trace = trace
        self.process_names = process_names or {}
        self.timeline = Timeline(trace)
        self._zoom_stack: List[Timeline] = []
        self.width = 96
        self._commands: Dict[str, Callable[..., str]] = {
            "help": self._cmd_help,
            "info": self._cmd_info,
            "render": self._cmd_render,
            "zoom": self._cmd_zoom,
            "out": self._cmd_out,
            "mark": self._cmd_mark,
            "lanes": self._cmd_lanes,
            "click": self._cmd_click,
            "counts": self._cmd_counts,
            "svg": self._cmd_svg,
        }

    # ------------------------------------------------------------------
    def execute(self, line: str) -> str:
        """Run one command line; returns its output (or an error line)."""
        parts = shlex.split(line.strip())
        if not parts:
            return ""
        name, *args = parts
        fn = self._commands.get(name)
        if fn is None:
            return f"unknown command {name!r}; try 'help'"
        try:
            return fn(*args)
        except (TypeError, ValueError) as exc:
            return f"error: {exc}"

    def run(self, in_fh: TextIO, out_fh: TextIO,
            prompt: str = "kmon> ") -> None:
        """A REPL over file handles (stdin/stdout in the CLI)."""
        out_fh.write("kmon interactive session — 'help' for commands, "
                     "'quit' to leave\n")
        for line in in_fh:
            line = line.strip()
            if line in ("quit", "exit", "q"):
                break
            out = self.execute(line)
            if out:
                out_fh.write(out + "\n")
            out_fh.write(prompt)
            out_fh.flush()

    # ------------------------------------------------------------------
    def _cmd_help(self) -> str:
        return "\n".join([
            "help                 this text",
            "info                 window and event counts",
            "render [width]       draw the timeline",
            "zoom <start> <end>   zoom to a window (seconds)",
            "out                  zoom back out one level",
            "mark <event-name>    mark + count an event type",
            "lanes [pid...]       add per-process lanes (busiest if none)",
            "click <t> [window]   list events around time t (seconds)",
            "counts               marked-event counts in this window",
            "svg <path>           write the current view as SVG",
        ])

    def _cmd_info(self) -> str:
        tl = self.timeline
        n = sum(1 for e in self.trace.all_events()
                if e.time is not None and tl.t0 <= e.time <= tl.t1)
        return (
            f"window {tl.t0 / CYCLES_PER_SECOND:.6f}s .. "
            f"{tl.t1 / CYCLES_PER_SECOND:.6f}s, {n} events, "
            f"{len(self._zoom_stack)} zoom levels deep"
        )

    def _cmd_render(self, width: str = "") -> str:
        if width:
            self.width = int(width)
        return self.timeline.render(width=self.width)

    def _cmd_zoom(self, start: str, end: str) -> str:
        zoomed = self.timeline.zoom(float(start), float(end))
        self._zoom_stack.append(self.timeline)
        self.timeline = zoomed
        return self._cmd_info()

    def _cmd_out(self) -> str:
        if not self._zoom_stack:
            return "already at the outermost view"
        self.timeline = self._zoom_stack.pop()
        return self._cmd_info()

    def _cmd_mark(self, *names: str) -> str:
        if not names:
            return "usage: mark <event-name> [...]"
        self.timeline.mark(*names)
        return self._cmd_counts()

    def _cmd_lanes(self, *pids: str) -> str:
        self.timeline.show_processes(
            *(int(p) for p in pids), names=self.process_names
        )
        shown = self.timeline.process_pids
        return f"process lanes: {shown}"

    def _cmd_click(self, at: str, window: str = "1e-4") -> str:
        text = self.timeline.click_listing(float(at), float(window))
        return text if text else "no events in that window"

    def _cmd_counts(self) -> str:
        counts = self.timeline.marked_counts()
        if not counts:
            return "nothing marked"
        return "\n".join(f"{name}: {count}" for name, count in counts.items())

    def _cmd_svg(self, path: str) -> str:
        with open(path, "w") as fh:
            fh.write(self.timeline.render_svg())
        return f"wrote {path}"
