"""Fine-grained system behaviour breakdown — the Figure 8 tool (§4.7).

"K42 tracing data is detailed and fine-grained enough to allow us to
attribute time accurately among processes, thread switches, IPC
activity, page-faults, and transitions to and from the Linux emulation
layer ... Within server processes and the kernel we identify how much
time is spent servicing IPC calls made by other applications, which is
then categorized by function."

Reconstruction is trace-only: syscall enter/exit events bracket each
call; PPC call/return pairs inside the bracket attribute IPC time; page
fault pairs attribute fault time; everything else inside the bracket is
the call's own computation.  Times print in microseconds like Figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.majors import ExcMinor, Major, SyscallMinor
from repro.core.stream import Trace
from repro.tools.context import ContextTracker

CYCLES_PER_US = 1_000  # 1 GHz reference machine


@dataclass
class SyscallRow:
    """One Figure 8 row: a syscall's aggregate behaviour in a process."""

    name: str
    total_cycles: int = 0
    calls: int = 0
    events: int = 0
    ipc_cycles: int = 0
    ipc_calls: int = 0
    fault_cycles: int = 0
    faults: int = 0

    @property
    def total_us(self) -> float:
        return self.total_cycles / CYCLES_PER_US

    @property
    def compute_us(self) -> float:
        """Time in the call minus attributed IPC and fault service."""
        return max(0, self.total_cycles - self.ipc_cycles - self.fault_cycles) / CYCLES_PER_US

    @property
    def ipc_us(self) -> float:
        return self.ipc_cycles / CYCLES_PER_US


@dataclass
class ProcessBreakdown:
    pid: int
    name: str = ""
    syscalls: Dict[str, SyscallRow] = field(default_factory=dict)
    total_events: int = 0
    total_syscall_cycles: int = 0
    total_ipc_cycles: int = 0
    total_ipc_calls: int = 0
    total_fault_cycles: int = 0
    total_faults: int = 0
    #: IPC service seen inside servers, per function: (calls, cycles)
    server_functions: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    @property
    def ex_process_us(self) -> float:
        """Time spent outside the process on its behalf (kernel+server)."""
        return (self.total_ipc_cycles + self.total_fault_cycles) / CYCLES_PER_US


def process_breakdown(
    trace: Trace,
    syscall_names: Optional[Dict[int, str]] = None,
    process_names: Optional[Dict[int, str]] = None,
    fs_function_names: Optional[Dict[int, str]] = None,
) -> Dict[int, ProcessBreakdown]:
    """Build per-process breakdowns from the unified trace."""
    ctx = ContextTracker(trace)
    out: Dict[int, ProcessBreakdown] = {}

    def bd(pid: int) -> ProcessBreakdown:
        b = out.get(pid)
        if b is None:
            b = ProcessBreakdown(pid, (process_names or {}).get(pid, ""))
            out[pid] = b
        return b

    # Per-pid open syscall: (name, enter_time, row-accumulators)
    open_call: Dict[int, Tuple[str, int, SyscallRow]] = {}
    # Per-pid open PPC: (comm_id, call_time)
    open_ppc: Dict[int, Tuple[int, int]] = {}
    # Per-thread open page fault: fault start time
    open_fault: Dict[int, int] = {}

    for e in trace.all_events():
        if e.is_control:
            continue
        pid = ctx.pid_of(e)
        if pid is not None:
            bd(pid).total_events += 1
            oc = open_call.get(pid)
            if oc is not None:
                oc[2].events += 1

        if e.major == Major.SYSCALL and len(e.data) >= 2:
            sc_pid, num = e.data[0], e.data[1]
            name = (syscall_names or {}).get(num, f"SC{num}")
            if e.minor == SyscallMinor.ENTER:
                b = bd(sc_pid)
                row = b.syscalls.get(name)
                if row is None:
                    row = SyscallRow(name)
                    b.syscalls[name] = row
                open_call[sc_pid] = (name, e.time or 0, row)
            elif e.minor == SyscallMinor.EXIT:
                oc = open_call.pop(sc_pid, None)
                if oc is not None:
                    name_, t0, row = oc
                    elapsed = e.data[2] if len(e.data) >= 3 else max(
                        0, (e.time or 0) - t0
                    )
                    row.total_cycles += elapsed
                    row.calls += 1
                    bd(sc_pid).total_syscall_cycles += elapsed

        elif e.major == Major.EXC and len(e.data) >= 1:
            if e.minor == ExcMinor.PPC_CALL and pid is not None:
                open_ppc[pid] = (e.data[0], e.time or 0)
            elif e.minor == ExcMinor.PPC_RETURN and pid is not None:
                op = open_ppc.pop(pid, None)
                if op is not None:
                    comm_id, t0 = op
                    cycles = max(0, (e.time or 0) - t0)
                    b = bd(pid)
                    b.total_ipc_cycles += cycles
                    b.total_ipc_calls += 1
                    oc = open_call.get(pid)
                    if oc is not None:
                        oc[2].ipc_cycles += cycles
                        oc[2].ipc_calls += 1
                    # Attribute the service to the server process too.
                    server_pid = comm_id >> 32
                    fn_id = comm_id & 0xFFFF_FFFF
                    fn = (fs_function_names or {}).get(fn_id, f"fn{fn_id}")
                    sb = bd(server_pid)
                    calls, cyc = sb.server_functions.get(fn, (0, 0))
                    sb.server_functions[fn] = (calls + 1, cyc + cycles)
            elif e.minor == ExcMinor.PGFLT and len(e.data) >= 2:
                open_fault[e.data[0]] = e.time or 0
            elif e.minor == ExcMinor.PGFLT_DONE and len(e.data) >= 2:
                t0 = open_fault.pop(e.data[0], None)
                if t0 is not None and pid is not None:
                    cycles = max(0, (e.time or 0) - t0)
                    b = bd(pid)
                    b.total_fault_cycles += cycles
                    b.total_faults += 1
                    oc = open_call.get(pid)
                    if oc is not None:
                        oc[2].fault_cycles += cycles
                        oc[2].faults += 1

    return out


def format_breakdown(breakdown: ProcessBreakdown, top: Optional[int] = None) -> str:
    """Render one process's Figure 8-style table (times in usecs)."""
    lines = [
        f"process {breakdown.pid} {breakdown.name}".rstrip(),
        f"{'':24} {'time':>12} {'calls':>7} {'events':>7}   "
        f"{'ipc time':>12} {'ipcs':>6}",
    ]
    rows = sorted(
        breakdown.syscalls.values(), key=lambda r: -r.total_cycles
    )
    for row in rows[:top]:
        lines.append(
            f"{row.name:<24} {row.compute_us:>12.2f} {row.calls:>7} "
            f"{row.events:>7}   {row.ipc_us:>12.2f} {row.ipc_calls:>6}"
        )
    lines.append(
        f"{'Ex-process':<24} {breakdown.ex_process_us:>12.2f} "
        f"{breakdown.total_ipc_calls + breakdown.total_faults:>7}"
    )
    if breakdown.server_functions:
        lines.append("thread entry points:")
        for fn, (calls, cycles) in sorted(
            breakdown.server_functions.items(), key=lambda kv: -kv[1][1]
        ):
            lines.append(
                f"  {fn:<22} {cycles / CYCLES_PER_US:>12.2f} {calls:>7}"
            )
    return "\n".join(lines)
