"""Fine-grained system behaviour breakdown — the Figure 8 tool (§4.7).

"K42 tracing data is detailed and fine-grained enough to allow us to
attribute time accurately among processes, thread switches, IPC
activity, page-faults, and transitions to and from the Linux emulation
layer ... Within server processes and the kernel we identify how much
time is spent servicing IPC calls made by other applications, which is
then categorized by function."

Reconstruction is trace-only: syscall enter/exit events bracket each
call; PPC call/return pairs inside the bracket attribute IPC time; page
fault pairs attribute fault time; everything else inside the bracket is
the call's own computation.  Times print in microseconds like Figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.columnar import as_batch
from repro.core.majors import ExcMinor, Major, SyscallMinor
from repro.core.stream import Trace
from repro.store.query import Predicate, select
from repro.tools.context import ColumnarContext, ContextTracker

CYCLES_PER_US = 1_000  # 1 GHz reference machine


@dataclass
class SyscallRow:
    """One Figure 8 row: a syscall's aggregate behaviour in a process."""

    name: str
    total_cycles: int = 0
    calls: int = 0
    events: int = 0
    ipc_cycles: int = 0
    ipc_calls: int = 0
    fault_cycles: int = 0
    faults: int = 0

    @property
    def total_us(self) -> float:
        return self.total_cycles / CYCLES_PER_US

    @property
    def compute_us(self) -> float:
        """Time in the call minus attributed IPC and fault service."""
        return max(0, self.total_cycles - self.ipc_cycles - self.fault_cycles) / CYCLES_PER_US

    @property
    def ipc_us(self) -> float:
        return self.ipc_cycles / CYCLES_PER_US


@dataclass
class ProcessBreakdown:
    pid: int
    name: str = ""
    syscalls: Dict[str, SyscallRow] = field(default_factory=dict)
    total_events: int = 0
    total_syscall_cycles: int = 0
    total_ipc_cycles: int = 0
    total_ipc_calls: int = 0
    total_fault_cycles: int = 0
    total_faults: int = 0
    #: IPC service seen inside servers, per function: (calls, cycles)
    server_functions: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    @property
    def ex_process_us(self) -> float:
        """Time spent outside the process on its behalf (kernel+server)."""
        return (self.total_ipc_cycles + self.total_fault_cycles) / CYCLES_PER_US


def process_breakdown(
    trace: Trace,
    syscall_names: Optional[Dict[int, str]] = None,
    process_names: Optional[Dict[int, str]] = None,
    fs_function_names: Optional[Dict[int, str]] = None,
    columnar: bool = True,
) -> Dict[int, ProcessBreakdown]:
    """Build per-process breakdowns from the unified trace.

    The columnar path (default) replays only the syscall/IPC/fault
    boundary events and computes the per-call event counts and
    per-process totals by binary search over position columns; results
    are identical to the scalar event walk.
    """
    if columnar:
        return _process_breakdown_columnar(
            trace, syscall_names, process_names, fs_function_names
        )
    ctx = ContextTracker(trace)
    out: Dict[int, ProcessBreakdown] = {}

    def bd(pid: int) -> ProcessBreakdown:
        b = out.get(pid)
        if b is None:
            b = ProcessBreakdown(pid, (process_names or {}).get(pid, ""))
            out[pid] = b
        return b

    # Per-pid open syscall: (name, enter_time, row-accumulators)
    open_call: Dict[int, Tuple[str, int, SyscallRow]] = {}
    # Per-pid open PPC: (comm_id, call_time)
    open_ppc: Dict[int, Tuple[int, int]] = {}
    # Per-thread open page fault: fault start time
    open_fault: Dict[int, int] = {}

    for e in trace.all_events():
        if e.is_control:
            continue
        pid = ctx.pid_of(e)
        if pid is not None:
            bd(pid).total_events += 1
            oc = open_call.get(pid)
            if oc is not None:
                oc[2].events += 1

        if e.major == Major.SYSCALL and len(e.data) >= 2:
            sc_pid, num = e.data[0], e.data[1]
            name = (syscall_names or {}).get(num, f"SC{num}")
            if e.minor == SyscallMinor.ENTER:
                b = bd(sc_pid)
                row = b.syscalls.get(name)
                if row is None:
                    row = SyscallRow(name)
                    b.syscalls[name] = row
                open_call[sc_pid] = (name, e.time or 0, row)
            elif e.minor == SyscallMinor.EXIT:
                oc = open_call.pop(sc_pid, None)
                if oc is not None:
                    name_, t0, row = oc
                    elapsed = e.data[2] if len(e.data) >= 3 else max(
                        0, (e.time or 0) - t0
                    )
                    row.total_cycles += elapsed
                    row.calls += 1
                    bd(sc_pid).total_syscall_cycles += elapsed

        elif e.major == Major.EXC and len(e.data) >= 1:
            if e.minor == ExcMinor.PPC_CALL and pid is not None:
                open_ppc[pid] = (e.data[0], e.time or 0)
            elif e.minor == ExcMinor.PPC_RETURN and pid is not None:
                op = open_ppc.pop(pid, None)
                if op is not None:
                    comm_id, t0 = op
                    cycles = max(0, (e.time or 0) - t0)
                    b = bd(pid)
                    b.total_ipc_cycles += cycles
                    b.total_ipc_calls += 1
                    oc = open_call.get(pid)
                    if oc is not None:
                        oc[2].ipc_cycles += cycles
                        oc[2].ipc_calls += 1
                    # Attribute the service to the server process too.
                    server_pid = comm_id >> 32
                    fn_id = comm_id & 0xFFFF_FFFF
                    fn = (fs_function_names or {}).get(fn_id, f"fn{fn_id}")
                    sb = bd(server_pid)
                    calls, cyc = sb.server_functions.get(fn, (0, 0))
                    sb.server_functions[fn] = (calls + 1, cyc + cycles)
            elif e.minor == ExcMinor.PGFLT and len(e.data) >= 2:
                open_fault[e.data[0]] = e.time or 0
            elif e.minor == ExcMinor.PGFLT_DONE and len(e.data) >= 2:
                t0 = open_fault.pop(e.data[0], None)
                if t0 is not None and pid is not None:
                    cycles = max(0, (e.time or 0) - t0)
                    b = bd(pid)
                    b.total_fault_cycles += cycles
                    b.total_faults += 1
                    oc = open_call.get(pid)
                    if oc is not None:
                        oc[2].fault_cycles += cycles
                        oc[2].faults += 1

    return out


def _process_breakdown_columnar(
    trace: Trace,
    syscall_names: Optional[Dict[int, str]],
    process_names: Optional[Dict[int, str]],
    fs_function_names: Optional[Dict[int, str]],
) -> Dict[int, ProcessBreakdown]:
    b = as_batch(trace)
    ctx = ColumnarContext(b)
    out: Dict[int, ProcessBreakdown] = {}

    def bd(pid: int) -> ProcessBreakdown:
        r = out.get(pid)
        if r is None:
            r = ProcessBreakdown(pid, (process_names or {}).get(pid, ""))
            out[pid] = r
        return r

    # Countable rows: the scalar walk's "generic step" applies to every
    # non-control event whose executing pid is known.
    countable = ~b.control_mask() & ctx.known
    g_idx = np.flatnonzero(countable)
    g_pid = ctx.pid[g_idx]

    # The state machine only ever reacts to these boundary events.
    sm = select(b, Predicate(
        majors=(int(Major.SYSCALL),),
        minors=(int(SyscallMinor.ENTER), int(SyscallMinor.EXIT)),
        min_data=2))
    sm |= select(b, Predicate(
        majors=(int(Major.EXC),),
        minors=(int(ExcMinor.PPC_CALL), int(ExcMinor.PPC_RETURN),
                int(ExcMinor.PGFLT), int(ExcMinor.PGFLT_DONE)),
        min_data=1))
    sel = np.flatnonzero(sm)
    majors = b.major[sel].tolist()
    minors = b.minor[sel].tolist()
    dlens = b.dlen[sel].tolist()
    d0 = b.data_column(0, sel).tolist()
    d1 = b.data_column(1, sel).tolist()
    d2 = b.data_column(2, sel).tolist()      # valid only where dlen >= 3
    tv = [t if f else 0
          for t, f in zip(b.time[sel].tolist(), b.timed[sel].tolist())]
    pid_k = ctx.known[sel].tolist()
    pid_v = ctx.pid[sel].tolist()
    pos = sel.tolist()

    syscall_major = int(Major.SYSCALL)
    enter_minor = int(SyscallMinor.ENTER)
    exit_minor = int(SyscallMinor.EXIT)
    ppc_call = int(ExcMinor.PPC_CALL)
    ppc_return = int(ExcMinor.PPC_RETURN)
    pgflt = int(ExcMinor.PGFLT)
    pgflt_done = int(ExcMinor.PGFLT_DONE)

    # Per-pid open syscall: (enter_position, enter_time, row)
    open_call: Dict[int, Tuple[int, int, SyscallRow]] = {}
    open_ppc: Dict[int, Tuple[int, int]] = {}
    open_fault: Dict[int, int] = {}
    #: closed (and trace-end) call windows: (pid, open_pos, close_pos, row);
    #: the window covers merged positions (open_pos, close_pos].
    windows: List[Tuple[int, int, int, SyscallRow]] = []
    end_pos = len(b)  # exclusive upper bound, > any real position

    for i in range(len(sel)):
        pid = pid_v[i] if pid_k[i] else None
        if majors[i] == syscall_major:
            sc_pid, num = d0[i], d1[i]
            name = (syscall_names or {}).get(num, f"SC{num}")
            if minors[i] == enter_minor:
                r = bd(sc_pid)
                row = r.syscalls.get(name)
                if row is None:
                    row = SyscallRow(name)
                    r.syscalls[name] = row
                prev = open_call.get(sc_pid)
                if prev is not None:
                    # The replacing ENTER itself still counts toward the
                    # replaced call (generic step precedes replacement).
                    windows.append((sc_pid, prev[0], pos[i], prev[2]))
                open_call[sc_pid] = (pos[i], tv[i], row)
            else:
                oc = open_call.pop(sc_pid, None)
                if oc is not None:
                    open_pos, t0, row = oc
                    elapsed = d2[i] if dlens[i] >= 3 else max(0, tv[i] - t0)
                    row.total_cycles += elapsed
                    row.calls += 1
                    bd(sc_pid).total_syscall_cycles += elapsed
                    windows.append((sc_pid, open_pos, pos[i], row))
        else:
            if minors[i] == ppc_call:
                if pid is not None:
                    open_ppc[pid] = (d0[i], tv[i])
            elif minors[i] == ppc_return:
                if pid is not None:
                    op = open_ppc.pop(pid, None)
                    if op is not None:
                        comm_id, t0 = op
                        cycles = max(0, tv[i] - t0)
                        r = bd(pid)
                        r.total_ipc_cycles += cycles
                        r.total_ipc_calls += 1
                        oc = open_call.get(pid)
                        if oc is not None:
                            oc[2].ipc_cycles += cycles
                            oc[2].ipc_calls += 1
                        server_pid = comm_id >> 32
                        fn_id = comm_id & 0xFFFF_FFFF
                        fn = (fs_function_names or {}).get(fn_id, f"fn{fn_id}")
                        sb = bd(server_pid)
                        calls, cyc = sb.server_functions.get(fn, (0, 0))
                        sb.server_functions[fn] = (calls + 1, cyc + cycles)
            elif minors[i] == pgflt:
                if dlens[i] >= 2:
                    open_fault[d0[i]] = tv[i]
            elif minors[i] == pgflt_done:
                if dlens[i] >= 2:
                    t0 = open_fault.pop(d0[i], None)
                    if t0 is not None and pid is not None:
                        cycles = max(0, tv[i] - t0)
                        r = bd(pid)
                        r.total_fault_cycles += cycles
                        r.total_faults += 1
                        oc = open_call.get(pid)
                        if oc is not None:
                            oc[2].fault_cycles += cycles
                            oc[2].faults += 1

    # Calls still open at trace end count every later event of their pid.
    for sc_pid, (open_pos, _t0, row) in open_call.items():
        windows.append((sc_pid, open_pos, end_pos, row))

    # Per-process totals and per-call event counts, by binary search
    # over each pid's countable-position column.
    if len(g_idx):
        order = np.argsort(g_pid, kind="stable")
        gp_sorted = g_pid[order]
        gi_sorted = g_idx[order]
        uniq, starts, counts = np.unique(gp_sorted, return_index=True,
                                         return_counts=True)
        pos_by_pid: Dict[int, np.ndarray] = {}
        for p, s, c in zip(uniq.tolist(), starts.tolist(), counts.tolist()):
            pos_by_pid[p] = gi_sorted[s : s + c]
            bd(p).total_events = c
        for sc_pid, open_pos, close_pos, row in windows:
            ppos = pos_by_pid.get(sc_pid)
            if ppos is None:
                continue
            # Window (open_pos, close_pos]: the opening ENTER is excluded,
            # the closing event included — the scalar generic step runs
            # before the handler replaces/pops the open call.
            lo = int(np.searchsorted(ppos, open_pos, side="right"))
            hi = int(np.searchsorted(ppos, close_pos, side="right"))
            row.events += hi - lo

    return out


def format_breakdown(breakdown: ProcessBreakdown, top: Optional[int] = None) -> str:
    """Render one process's Figure 8-style table (times in usecs)."""
    lines = [
        f"process {breakdown.pid} {breakdown.name}".rstrip(),
        f"{'':24} {'time':>12} {'calls':>7} {'events':>7}   "
        f"{'ipc time':>12} {'ipcs':>6}",
    ]
    rows = sorted(
        breakdown.syscalls.values(), key=lambda r: -r.total_cycles
    )
    for row in rows[:top]:
        lines.append(
            f"{row.name:<24} {row.compute_us:>12.2f} {row.calls:>7} "
            f"{row.events:>7}   {row.ipc_us:>12.2f} {row.ipc_calls:>6}"
        )
    lines.append(
        f"{'Ex-process':<24} {breakdown.ex_process_us:>12.2f} "
        f"{breakdown.total_ipc_calls + breakdown.total_faults:>7}"
    )
    if breakdown.server_functions:
        lines.append("thread entry points:")
        for fn, (calls, cycles) in sorted(
            breakdown.server_functions.items(), key=lambda kv: -kv[1][1]
        ):
            lines.append(
                f"  {fn:<22} {cycles / CYCLES_PER_US:>12.2f} {calls:>7}"
            )
    return "\n".join(lines)
