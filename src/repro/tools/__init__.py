"""Post-processing tools over the unified trace (§4).

Each tool consumes a decoded :class:`~repro.core.Trace` (and optionally
the simulator's :class:`~repro.ksim.SymbolTable`, this reproduction's
stand-in for debug symbols):

* :mod:`repro.tools.listing`   — textual event listing (Figure 5);
* :mod:`repro.tools.kmon`      — timeline visualizer (Figure 4), text + SVG;
* :mod:`repro.tools.pcprofile` — PC-sample histograms (Figure 6);
* :mod:`repro.tools.lockstats` — lock-contention analysis (Figure 7);
* :mod:`repro.tools.breakdown` — fine-grained time breakdown (Figure 8);
* :mod:`repro.tools.deadlock`  — lock-cycle detection (§4.2);
* :mod:`repro.tools.pathstats` — code-path frequency statistics (§4.2);
* :mod:`repro.tools.anomaly`   — garble/committed-count verification (§3.1).
"""

from repro.tools.anomaly import AnomalyReport, verify_trace
from repro.tools.breakdown import ProcessBreakdown, process_breakdown, format_breakdown
from repro.tools.compare import (
    TraceComparison,
    compare_traces,
    format_comparison,
)
from repro.tools.context import ContextTracker
from repro.tools.deadlock import DeadlockReport, find_deadlocks
from repro.tools.holdtimes import HoldReport, format_hold_report, hold_times
from repro.tools.iostats import IoReport, format_io_report, io_statistics
from repro.tools.kmon import Timeline
from repro.tools.listing import event_listing, format_listing
from repro.tools.lockstats import LockStats, format_lockstats, lock_statistics
from repro.tools.memprofile import (
    MemoryReport,
    format_memory_report,
    memory_profile,
)
from repro.tools.pathstats import event_histogram, path_frequencies
from repro.tools.pcprofile import format_profile, pc_profile
from repro.tools.schedstats import (
    SchedReport,
    format_sched_report,
    sched_statistics,
)

__all__ = [
    "AnomalyReport", "verify_trace",
    "ProcessBreakdown", "process_breakdown", "format_breakdown",
    "ContextTracker",
    "DeadlockReport", "find_deadlocks",
    "Timeline",
    "event_listing", "format_listing",
    "LockStats", "format_lockstats", "lock_statistics",
    "event_histogram", "path_frequencies",
    "format_profile", "pc_profile",
    "MemoryReport", "memory_profile", "format_memory_report",
    "HoldReport", "hold_times", "format_hold_report",
    "IoReport", "io_statistics", "format_io_report",
    "TraceComparison", "compare_traces", "format_comparison",
    "SchedReport", "sched_statistics", "format_sched_report",
]
