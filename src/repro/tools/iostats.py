"""I/O behaviour from the trace: latency, volume, interrupts (§2).

Pairs ``READ_START``/``READ_DONE`` and ``WRITE_START``/``WRITE_DONE``
events per (process, fd) to measure per-operation latency — including
the device queueing delay under load — and counts the completion
interrupts, all from the same unified stream.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.majors import ExcMinor, IOMinor, Major
from repro.core.stream import Trace

CYCLES_PER_US = 1_000


@dataclass
class IoOp:
    pid: int
    fd: int
    kind: str          # "read" | "write"
    nbytes: int
    start: int
    end: int

    @property
    def latency(self) -> int:
        return self.end - self.start


@dataclass
class IoReport:
    ops: List[IoOp] = field(default_factory=list)
    interrupts: Dict[int, int] = field(default_factory=dict)  # device -> n
    unmatched: int = 0

    def per_process(self) -> Dict[int, Tuple[int, int, float, int]]:
        """pid -> (ops, bytes, mean latency, max latency)."""
        acc: Dict[int, List[IoOp]] = defaultdict(list)
        for op in self.ops:
            acc[op.pid].append(op)
        out = {}
        for pid, ops in acc.items():
            lats = [o.latency for o in ops]
            out[pid] = (
                len(ops), sum(o.nbytes for o in ops),
                sum(lats) / len(lats), max(lats),
            )
        return out

    def slowest(self, n: int = 10) -> List[IoOp]:
        return sorted(self.ops, key=lambda o: -o.latency)[:n]


_START = {IOMinor.READ_START: "read", IOMinor.WRITE_START: "write"}
_DONE = {IOMinor.READ_DONE: "read", IOMinor.WRITE_DONE: "write"}


def io_statistics(trace: Trace) -> IoReport:
    """Pair I/O start/done events and count device interrupts."""
    report = IoReport()
    open_ops: Dict[Tuple[int, int, str], Tuple[int, int]] = {}
    for e in trace.all_events():
        if e.time is None:
            continue
        if e.major == Major.IO and len(e.data) >= 2:
            if e.minor in _START:
                kind = _START[e.minor]
                nbytes = e.data[2] if len(e.data) >= 3 else 0
                open_ops[(e.data[0], e.data[1], kind)] = (e.time, nbytes)
            elif e.minor in _DONE:
                kind = _DONE[e.minor]
                key = (e.data[0], e.data[1], kind)
                started = open_ops.pop(key, None)
                if started is None:
                    report.unmatched += 1
                    continue
                t0, nbytes = started
                report.ops.append(IoOp(
                    pid=e.data[0], fd=e.data[1], kind=kind,
                    nbytes=nbytes, start=t0, end=e.time,
                ))
        elif e.major == Major.EXC and e.minor == ExcMinor.IO_INTERRUPT \
                and e.data:
            dev = e.data[0]
            report.interrupts[dev] = report.interrupts.get(dev, 0) + 1
    report.unmatched += len(open_ops)
    return report


def format_io_report(report: IoReport, top: int = 8) -> str:
    """Render the per-process I/O table plus the slowest operations."""
    lines = [
        f"{len(report.ops)} I/O operations, "
        f"{sum(report.interrupts.values())} device interrupts, "
        f"{report.unmatched} unmatched",
        f"{'pid':>5} {'ops':>5} {'bytes':>10} {'mean us':>9} {'max us':>9}",
    ]
    for pid, (n, nbytes, mean, mx) in sorted(report.per_process().items()):
        lines.append(
            f"{pid:>5} {n:>5} {nbytes:>10,} {mean / CYCLES_PER_US:>9.1f} "
            f"{mx / CYCLES_PER_US:>9.1f}"
        )
    if report.ops:
        lines.append("slowest operations:")
        for op in report.slowest(top):
            lines.append(
                f"  pid {op.pid} {op.kind} fd{op.fd} {op.nbytes}B: "
                f"{op.latency / CYCLES_PER_US:.1f} us"
            )
    return "\n".join(lines)
