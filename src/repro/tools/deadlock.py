"""Deadlock detection from the trace — the §4.2 correctness-debugging use.

"A deadlock in the file system space was tracked down with the tracing
facility ... a trace file was produced and post-processed to detect
where the cycle had occurred."

Reconstruction: replay lock events to know, at end of trace, which
thread owns each lock (``ACQUIRE``/``CONTEND_END`` vs ``RELEASE``) and
which thread is still waiting on which lock (a ``CONTEND_START`` with no
matching ``CONTEND_END``).  Edges *waiter-thread → owner-thread* form the
wait-for graph; a cycle is a deadlock (networkx finds them).

Requires lock tracing on the uncontended paths too
(``KernelConfig.trace_all_lock_events=True``) so ownership of
never-contended locks is visible — the kind of extra detail one enables
while correctness debugging.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import networkx as nx

from repro.core.majors import LockMinor, Major
from repro.core.stream import Trace
from repro.tools.context import ContextTracker


@dataclass
class DeadlockReport:
    """The wait-for cycles found, with human-readable paths."""

    cycles: List[List[int]] = field(default_factory=list)  # thread addrs
    #: thread addr -> lock id it is waiting for
    waiting_on: Dict[int, int] = field(default_factory=dict)
    #: lock id -> owning thread addr at end of trace
    owners: Dict[int, int] = field(default_factory=dict)

    @property
    def deadlocked(self) -> bool:
        return bool(self.cycles)

    def describe(
        self,
        lock_names: Optional[Dict[int, str]] = None,
        thread_pids: Optional[Dict[int, int]] = None,
    ) -> str:
        if not self.cycles:
            return "no deadlock detected"
        lines = [f"{len(self.cycles)} deadlock cycle(s) detected"]
        for i, cycle in enumerate(self.cycles):
            parts = []
            for thread in cycle:
                lock = self.waiting_on.get(thread)
                lname = (lock_names or {}).get(lock, f"{lock:#x}" if lock else "?")
                pid = (thread_pids or {}).get(thread)
                who = f"thread {thread:#x}" + (f" (pid {pid})" if pid is not None else "")
                parts.append(f"{who} waits for {lname}")
            lines.append(f"  cycle {i}: " + " -> ".join(parts))
        return "\n".join(lines)


def find_deadlocks(trace: Trace) -> DeadlockReport:
    """Replay lock events and report wait-for cycles at trace end."""
    ctx = ContextTracker(trace)
    owners: Dict[int, int] = {}            # lock -> thread addr
    waiting: Dict[int, int] = {}           # thread addr -> lock
    pending: Dict[int, deque] = defaultdict(deque)  # lock -> waiter threads

    for e in trace.all_events():
        if e.major != Major.LOCK or not e.data:
            continue
        lock_id = e.data[0]
        thread = ctx.thread_of(e)
        if e.minor == LockMinor.ACQUIRE:
            owners[lock_id] = thread
        elif e.minor == LockMinor.CONTEND_START:
            waiting[thread] = lock_id
            pending[lock_id].append(thread)
        elif e.minor == LockMinor.CONTEND_END:
            # FIFO grant: the longest waiter becomes the owner.
            if pending[lock_id]:
                waiter = pending[lock_id].popleft()
                waiting.pop(waiter, None)
                owners[lock_id] = waiter
            else:
                owners[lock_id] = thread
        elif e.minor == LockMinor.RELEASE:
            owners.pop(lock_id, None)

    graph = nx.DiGraph()
    for waiter, lock_id in waiting.items():
        owner = owners.get(lock_id)
        if owner is not None and owner != waiter:
            graph.add_edge(waiter, owner)
    cycles = [list(c) for c in nx.simple_cycles(graph)]
    return DeadlockReport(cycles=cycles, waiting_on=dict(waiting),
                          owners=dict(owners))
