"""Reconstructing execution context from scheduling events.

The paper's §2 anecdote is the argument for a *unified* facility: because
scheduling events share the stream with lock events, the tools could see
context switches between a lock's acquire and release.  This module is
that capability: it replays each CPU's ``TRC_PROC_CTX_SWITCH`` events to
know which thread (and therefore process) any event belongs to — the
trace-only equivalent of "current" in the kernel.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.columnar import EventBatch
from repro.core.majors import Major, ProcMinor
from repro.core.stream import Trace, TraceEvent


class ContextTracker:
    """Maps every event to the thread/process executing when it was logged.

    Built once per trace; lookups are O(1) by event identity.
    """

    def __init__(self, trace: Trace) -> None:
        #: thread addr -> pid, from TRC_PROC_THR_CREATE events.
        self.thread_pid: Dict[int, int] = {}
        #: event id() -> (thread addr or 0, pid or None)
        self._ctx: Dict[int, Tuple[int, Optional[int]]] = {}

        # Pass 1: thread->process mapping (global, time-independent).
        for events in trace.events_by_cpu.values():
            for e in events:
                if e.major == Major.PROC and e.minor == ProcMinor.THREAD_CREATE:
                    if len(e.data) >= 2:
                        self.thread_pid[e.data[0]] = e.data[1]

        # Pass 2: per-CPU replay of context switches.
        for cpu, events in trace.events_by_cpu.items():
            current = 0
            for e in events:
                if e.major == Major.PROC and e.minor == ProcMinor.CONTEXT_SWITCH:
                    if len(e.data) >= 2:
                        current = e.data[1]
                self._ctx[id(e)] = (current, self.thread_pid.get(current))

    def thread_of(self, event: TraceEvent) -> int:
        """Thread address executing when ``event`` was logged (0 unknown)."""
        return self._ctx.get(id(event), (0, None))[0]

    def pid_of(self, event: TraceEvent) -> Optional[int]:
        """Process id executing when ``event`` was logged."""
        return self._ctx.get(id(event), (0, None))[1]


class ColumnarContext:
    """Column-aligned context for an :class:`EventBatch`.

    The columnar equivalent of :class:`ContextTracker`: instead of an
    identity-keyed lookup table, it computes three columns aligned with
    the batch's rows — ``thread`` (address, 0 unknown), ``pid``, and
    ``known`` (whether a pid mapping exists; where False the scalar
    tracker would have answered ``None``).

    The replay is vectorized: context-switch targets are scattered into
    a value column and forward-filled per CPU in stream (decode) order
    with ``np.maximum.accumulate`` over setter positions, reproducing
    the scalar per-CPU walk — including the rule that the switch event
    itself already belongs to the *new* thread.
    """

    def __init__(self, batch: EventBatch) -> None:
        n = len(batch)
        self.thread = np.zeros(n, dtype=np.uint64)
        self.pid = np.zeros(n, dtype=np.uint64)
        self.known = np.zeros(n, dtype=bool)
        #: thread addr -> pid, from TRC_PROC_THR_CREATE events.
        self.thread_pid: Dict[int, int] = {}
        if n == 0:
            return

        # Stream (decode) order: the order the scalar tracker replays.
        order = batch.order_by_stream()

        # Pass 1: thread->process mapping, last write wins in stream
        # order (same as the scalar per-CPU iteration).
        tc = batch.mask(major=int(Major.PROC),
                        minor=int(ProcMinor.THREAD_CREATE), min_data=2)
        tc_idx = order[tc[order]]
        if len(tc_idx):
            for t, p in zip(batch.data_column(0, tc_idx).tolist(),
                            batch.data_column(1, tc_idx).tolist()):
                self.thread_pid[t] = p

        # Pass 2: per-CPU forward fill of switch targets.
        sw_mask = batch.mask(major=int(Major.PROC),
                             minor=int(ProcMinor.CONTEXT_SWITCH), min_data=2)
        sw = sw_mask[order]
        vals = np.zeros(n, dtype=np.uint64)
        if sw.any():
            vals[sw] = batch.data_column(1, order[sw])
        cpu_sorted = batch.cpu[order]
        is_start = np.ones(n, dtype=bool)
        is_start[1:] = cpu_sorted[1:] != cpu_sorted[:-1]
        # A CPU's first event resets "current" to 0 unless it is itself
        # a switch; vals is already 0 at plain starts.
        setter = sw | is_start
        pos = np.arange(n, dtype=np.int64)
        last_set = np.maximum.accumulate(np.where(setter, pos, 0))
        current = vals[last_set]

        # Map threads to pids once per distinct thread, not per event.
        uniq, inv = np.unique(current, return_inverse=True)
        pid_u = np.zeros(len(uniq), dtype=np.uint64)
        known_u = np.zeros(len(uniq), dtype=bool)
        for i, t in enumerate(uniq.tolist()):
            p = self.thread_pid.get(t)
            if p is not None:
                pid_u[i] = p
                known_u[i] = True

        self.thread[order] = current
        self.pid[order] = pid_u[inv]
        self.known[order] = known_u[inv]

    def pid_list(self) -> List[Optional[int]]:
        """Per-row pids as Python values (``None`` where unknown)."""
        return [p if k else None
                for p, k in zip(self.pid.tolist(), self.known.tolist())]
