"""Reconstructing execution context from scheduling events.

The paper's §2 anecdote is the argument for a *unified* facility: because
scheduling events share the stream with lock events, the tools could see
context switches between a lock's acquire and release.  This module is
that capability: it replays each CPU's ``TRC_PROC_CTX_SWITCH`` events to
know which thread (and therefore process) any event belongs to — the
trace-only equivalent of "current" in the kernel.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.majors import Major, ProcMinor
from repro.core.stream import Trace, TraceEvent


class ContextTracker:
    """Maps every event to the thread/process executing when it was logged.

    Built once per trace; lookups are O(1) by event identity.
    """

    def __init__(self, trace: Trace) -> None:
        #: thread addr -> pid, from TRC_PROC_THR_CREATE events.
        self.thread_pid: Dict[int, int] = {}
        #: event id() -> (thread addr or 0, pid or None)
        self._ctx: Dict[int, Tuple[int, Optional[int]]] = {}

        # Pass 1: thread->process mapping (global, time-independent).
        for events in trace.events_by_cpu.values():
            for e in events:
                if e.major == Major.PROC and e.minor == ProcMinor.THREAD_CREATE:
                    if len(e.data) >= 2:
                        self.thread_pid[e.data[0]] = e.data[1]

        # Pass 2: per-CPU replay of context switches.
        for cpu, events in trace.events_by_cpu.items():
            current = 0
            for e in events:
                if e.major == Major.PROC and e.minor == ProcMinor.CONTEXT_SWITCH:
                    if len(e.data) >= 2:
                        current = e.data[1]
                self._ctx[id(e)] = (current, self.thread_pid.get(current))

    def thread_of(self, event: TraceEvent) -> int:
        """Thread address executing when ``event`` was logged (0 unknown)."""
        return self._ctx.get(id(event), (0, None))[0]

    def pid_of(self, event: TraceEvent) -> Optional[int]:
        """Process id executing when ``event`` was logged."""
        return self._ctx.get(id(event), (0, None))[1]
