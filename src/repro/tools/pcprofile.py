"""Statistical execution profiling — the Figure 6 tool (§4.5).

"An event that logs the program counter at random times is used to drive
statistical execution profiling.  Post-processing analysis maps the pc
values to C function names and provides a sorted histogram of the
routines that were statistically most active."

The simulator's :class:`~repro.ksim.SymbolTable` plays the role of the
symbol file ("mapped filename servers/baseServers/baseServers.dbg").
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.columnar import as_batch
from repro.core.majors import Major, PcSampleMinor
from repro.core.stream import Trace
from repro.store.query import Predicate, select


def pc_profile(
    trace: Trace,
    pc_names: Optional[Dict[int, str]] = None,
    pid: Optional[int] = None,
    columnar: bool = True,
) -> List[Tuple[int, str]]:
    """Sorted (count, function) histogram from PC-sample events.

    ``pid`` restricts to one process ("Breakdown of Time by Process");
    unknown pcs render as hex addresses, like an unsymbolized profile.
    ``columnar`` (the default) aggregates over event columns — one mask
    plus a unique-count over the pc column — instead of walking event
    objects; both paths produce identical histograms.
    """
    if columnar:
        return _pc_profile_columnar(trace, pc_names, pid)
    counts: Counter = Counter()
    for e in trace.all_events():
        if e.major != Major.PCSAMPLE or e.minor != PcSampleMinor.SAMPLE:
            continue
        if len(e.data) < 2:
            continue
        sample_pid, pc = e.data[0], e.data[1]
        if pid is not None and sample_pid != pid:
            continue
        name = (pc_names or {}).get(pc, f"{pc:#x}")
        counts[name] += 1
    return sorted(
        ((count, name) for name, count in counts.items()),
        key=lambda x: (-x[0], x[1]),
    )


def _pc_profile_columnar(
    trace: Trace,
    pc_names: Optional[Dict[int, str]],
    pid: Optional[int],
) -> List[Tuple[int, str]]:
    b = as_batch(trace)
    if pid is not None and pid < 0:
        return []  # data words are unsigned; no sample can match
    sel = np.flatnonzero(select(b, Predicate(
        majors=(int(Major.PCSAMPLE),), minors=(int(PcSampleMinor.SAMPLE),),
        min_data=2)))
    if len(sel) == 0:
        return []
    if pid is not None:
        # The paper's sample event carries the sampled pid as payload
        # word 0 — a *payload* filter, distinct from the predicate
        # layer's executing-context pid.
        sel = sel[b.data_column(0, sel) == np.uint64(pid)]
        if len(sel) == 0:
            return []
    pcs, pc_counts = np.unique(b.data_column(1, sel), return_counts=True)
    counts: Dict[str, int] = {}
    lookup = (pc_names or {}).get
    for pc, c in zip(pcs.tolist(), pc_counts.tolist()):
        name = lookup(pc, f"{pc:#x}")
        counts[name] = counts.get(name, 0) + c
    return sorted(
        ((count, name) for name, count in counts.items()),
        key=lambda x: (-x[0], x[1]),
    )


def profile_pids(trace: Trace, columnar: bool = True) -> List[int]:
    """The processes that have at least one PC sample."""
    if columnar:
        b = as_batch(trace)
        sel = np.flatnonzero(select(b, Predicate(
            majors=(int(Major.PCSAMPLE),), min_data=2)))
        return np.unique(b.data_column(0, sel)).tolist()
    pids = set()
    for e in trace.all_events():
        if e.major == Major.PCSAMPLE and len(e.data) >= 2:
            pids.add(e.data[0])
    return sorted(pids)


def format_profile(
    histogram: List[Tuple[int, str]],
    pid: Optional[int] = None,
    mapped_filename: str = "",
    top: Optional[int] = None,
) -> str:
    """Render the Figure 6 layout."""
    lines = []
    if pid is not None:
        header = f"histogram for pid {pid:#x}"
        if mapped_filename:
            header += f" mapped filename {mapped_filename}"
        lines.append(header)
    lines.append(f"{'count':>8} method")
    for count, name in histogram[:top]:
        lines.append(f"{count:>8} {name}")
    return "\n".join(lines)


def live_render(
    trace,
    pc_names: Optional[Dict[int, str]] = None,
    pid: Optional[int] = None,
    top: Optional[int] = 20,
) -> str:
    """Render the Figure 6 histogram for a live window.

    Byte-identical to the post-mortem ``profile`` output for the same
    events; a window with no PC samples yet renders an empty histogram.
    """
    hist = pc_profile(trace, pc_names, pid=pid, columnar=True)
    return format_profile(hist, pid=pid, top=top)


def fleet_render(
    trace_view,
    pc_names: Optional[Dict[int, str]] = None,
    pid: Optional[int] = None,
    top: Optional[int] = 20,
) -> str:
    """Figure 6 histograms for a merged fleet view.

    Per-node sections are identical to profiling each node alone; the
    rollup sums sample counts across the whole fleet (symbol names
    resolve through the shared ``pc_names`` map).
    """
    from repro.fleet.merge import fleet_sections

    def rollup() -> str:
        hist = pc_profile(trace_view.rollup_trace(), pc_names, pid=pid,
                          columnar=True)
        return format_profile(hist, pid=pid, top=top)

    return fleet_sections(
        trace_view,
        lambda t: live_render(t, pc_names, pid=pid, top=top),
        rollup)


def main(argv=None) -> int:
    """Run the profiler standalone: ``python -m repro.tools.pcprofile``.

    Delegates to the ``profile`` subcommand of :mod:`repro.cli`, so all
    its options — including ``--workers N`` parallel decoding — apply.
    """
    import sys

    from repro.cli import main as cli_main

    return cli_main(["profile", *(argv if argv is not None else sys.argv[1:])])


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
