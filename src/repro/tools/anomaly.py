"""Trace-integrity verification (§3.1's detection machinery, reported).

Aggregates the reader's anomaly records — garbled regions, per-buffer
committed-count mismatches, missing anchors — into a report suitable for
the write-out path's "report an anomaly if they do not match".
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.stream import Anomaly, Trace


@dataclass
class AnomalyReport:
    total_events: int
    anomalies: List[Anomaly] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.anomalies

    @property
    def by_kind(self) -> Dict[str, int]:
        return dict(Counter(a.kind for a in self.anomalies))

    @property
    def by_cpu(self) -> Dict[int, int]:
        return dict(Counter(a.cpu for a in self.anomalies))

    @property
    def salvaged_regions(self) -> int:
        """Garbled regions the reader resynchronized past (and thus
        salvaged the data after), rather than discarding the buffer."""
        return self.by_kind.get("recovered-region", 0)

    def describe(self) -> str:
        if self.ok:
            return f"trace clean: {self.total_events} events, no anomalies"
        lines = [
            f"trace has {len(self.anomalies)} anomalies over "
            f"{self.total_events} events:"
        ]
        for kind, count in sorted(self.by_kind.items()):
            lines.append(f"  {kind}: {count}")
        if self.salvaged_regions:
            lines.append(
                f"  ({self.salvaged_regions} damaged region(s) "
                f"resynchronized — the data after each was salvaged)"
            )
        for a in self.anomalies[:20]:
            lines.append(f"  cpu{a.cpu} buf{a.seq}+{a.offset}: {a.kind} ({a.detail})")
        if len(self.anomalies) > 20:
            lines.append(f"  ... and {len(self.anomalies) - 20} more")
        return "\n".join(lines)


def verify_trace(trace: Trace) -> AnomalyReport:
    """Summarize the integrity of a decoded trace."""
    return AnomalyReport(
        total_events=len(trace.all_events()),
        anomalies=list(trace.anomalies),
    )
