"""Code-path frequency statistics (§4.2).

"Other developers have used the tracing facility to obtain statistics
about the relative frequency of different paths taken through code" —
instead of one-off counters that get removed after the question is
answered, they logged cheap events and counted afterwards.  These
helpers are that counting step.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Optional, Tuple

from repro.core.stream import Trace


def event_histogram(
    trace: Trace, include_control: bool = False
) -> List[Tuple[int, str]]:
    """(count, event name) sorted by frequency — which paths run most."""
    counts: Counter = Counter()
    for e in trace.all_events():
        if e.is_control and not include_control:
            continue
        counts[e.name] += 1
    return sorted(((c, n) for n, c in counts.items()), key=lambda x: (-x[0], x[1]))


def path_frequencies(
    trace: Trace, cpu: Optional[int] = None
) -> List[Tuple[int, Tuple[str, str]]]:
    """(count, (event A, event B)) bigrams of consecutive events per CPU.

    Consecutive-event transitions approximate control-flow edges: a
    frequent ``PGFLT -> PGFLT_DONE`` edge is the fast path; a frequent
    ``PGFLT -> CTX_SWITCH`` edge is the blocking path.
    """
    counts: Counter = Counter()
    cpus = [cpu] if cpu is not None else sorted(trace.events_by_cpu)
    for c in cpus:
        prev = None
        for e in trace.events(c):
            if e.is_control:
                continue
            if prev is not None:
                counts[(prev.name, e.name)] += 1
            prev = e
    return sorted(((n, pair) for pair, n in counts.items()),
                  key=lambda x: (-x[0], x[1]))


def relative_frequency(
    trace: Trace, numerator: str, denominator: str
) -> Optional[float]:
    """Ratio of two event counts (the 'how often does path A happen vs
    path B' question), or None when the denominator never fired."""
    hist = dict((name, count) for count, name in event_histogram(trace))
    denom = hist.get(denominator, 0)
    if denom == 0:
        return None
    return hist.get(numerator, 0) / denom
