"""TSC interpolation for unsynchronized per-CPU clocks (§4.1).

"x86 architectures do not provide such a clock.  Instead, LTT logs the
cheaply available tsc with each event, and only at the beginning and end
is the more expensive get_timeOfDay call made allowing synchronization
between different processors' buffers through interpolation of the tsc
values between the get_timeOfDay values."

Each CPU's stream carries two anchor pairs (tsc, wall): one at trace
start, one at trace end.  A per-CPU linear map sends tsc readings onto
the shared wall-clock axis; after mapping, per-CPU streams merge into a
single time-ordered stream despite offset and frequency drift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.stream import Trace, TraceEvent
from repro.core.timestamps import DriftingTscClock


@dataclass(frozen=True)
class TscAnchors:
    """The two (tsc, wall) pairs taken for one CPU."""

    tsc_start: int
    wall_start: int
    tsc_end: int
    wall_end: int

    def __post_init__(self) -> None:
        if self.tsc_end <= self.tsc_start:
            raise ValueError("end anchor must come after start anchor")
        if self.wall_end <= self.wall_start:
            # A zero wall span would silently collapse the map to a
            # constant, and a negative one would reverse time — both
            # are anchor-taking bugs, so fail loudly like the tsc span.
            raise ValueError("wall anchors must span a positive interval")


class TscInterpolator:
    """Linear per-CPU map from tsc ticks to the shared wall clock."""

    def __init__(self, anchors: Dict[int, TscAnchors]) -> None:
        if not anchors:
            raise ValueError("need anchors for at least one CPU")
        self._maps: Dict[int, Tuple[int, int, float]] = {}
        for cpu, a in anchors.items():
            rate = (a.wall_end - a.wall_start) / (a.tsc_end - a.tsc_start)
            self._maps[cpu] = (a.tsc_start, a.wall_start, rate)

    def to_wall(self, cpu: int, tsc: int) -> int:
        tsc0, wall0, rate = self._maps[cpu]
        return wall0 + round((tsc - tsc0) * rate)

    @property
    def cpus(self) -> List[int]:
        return sorted(self._maps)


def take_anchors(
    clock: DriftingTscClock,
    base_start: int,
    base_end: int,
) -> Dict[int, TscAnchors]:
    """Sample anchor pairs for every CPU of a drifting clock.

    ``base_start``/``base_end`` are the two true times at which the
    expensive synchronized clock was read (the two ``gettimeofday``
    calls of a live system).  Each CPU's tsc is evaluated at those
    instants to form its anchor pair.
    """
    out: Dict[int, TscAnchors] = {}
    for cpu in range(clock.ncpus):
        out[cpu] = TscAnchors(
            tsc_start=int(clock.offsets[cpu] + clock.rates[cpu] * base_start),
            wall_start=base_start,
            tsc_end=int(clock.offsets[cpu] + clock.rates[cpu] * base_end),
            wall_end=base_end,
        )
    return out


def synchronize_tsc_traces(
    trace: Trace,
    interpolator: TscInterpolator,
) -> List[TraceEvent]:
    """Map every event's reconstructed tsc time onto the wall axis and
    merge the per-CPU streams into one ordered stream.

    Events must already carry per-CPU-reconstructed ``time`` values (in
    tsc ticks of their own CPU); afterwards ``time`` is in shared wall
    units.
    """
    out: List[TraceEvent] = []
    for cpu, events in trace.events_by_cpu.items():
        for e in events:
            if e.time is None:
                continue
            e.time = interpolator.to_wall(cpu, e.time)
            out.append(e)
    out.sort(key=lambda e: (e.time, e.cpu, e.seq, e.offset))
    return out


def max_pairwise_skew(
    interpolator: TscInterpolator,
    clock: DriftingTscClock,
    sample_points: Sequence[int],
) -> int:
    """Worst-case cross-CPU disagreement after interpolation.

    For each true base time, read every CPU's tsc, map it back through
    the interpolator, and measure the spread of the recovered wall
    times.  With exact anchors the residual is only rounding plus the
    nonlinearity of real clocks (zero here, by construction linear) —
    quantifying how well the §4.1 scheme synchronizes streams.
    """
    worst = 0
    for t in sample_points:
        recovered = []
        for cpu in range(clock.ncpus):
            tsc = int(clock.offsets[cpu] + clock.rates[cpu] * t)
            recovered.append(interpolator.to_wall(cpu, tsc))
        worst = max(worst, max(recovered) - min(recovered))
    return worst
