"""The four logger configurations of the §4.1 ablation.

The three technology transfers the paper describes — lockless logging,
per-CPU buffers, cheap timestamps — turn the original LTT configuration
into the K42-style one.  Each intermediate point is constructible so the
benchmark can attribute the improvement factor to each change:

========================  =========  ==========  ===========
configuration             locking    buffers     timestamps
========================  =========  ==========  ===========
``original``              lock+irq   one shared  expensive
``+percpu``               lock+irq   per-CPU     expensive
``+cheap-ts``             lock+irq   per-CPU     cheap
``k42`` (all three)       lockless   per-CPU     cheap
========================  =========  ==========  ===========
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import List, Union

from repro.core.buffers import TraceControl
from repro.core.locking_logger import LockingTraceLogger
from repro.core.logger import TraceLogger
from repro.core.mask import TraceMask
from repro.core.timestamps import ClockSource, ExpensiveWallClock, WallClock

Logger = Union[TraceLogger, LockingTraceLogger]


@dataclass(frozen=True)
class LttConfig:
    name: str
    lockless: bool
    per_cpu_buffers: bool
    cheap_timestamps: bool

    def make_clock(self) -> ClockSource:
        return WallClock() if self.cheap_timestamps else ExpensiveWallClock()


ORIGINAL = LttConfig("original", lockless=False, per_cpu_buffers=False,
                     cheap_timestamps=False)
PLUS_PERCPU = LttConfig("+percpu", lockless=False, per_cpu_buffers=True,
                        cheap_timestamps=False)
PLUS_CHEAP_TS = LttConfig("+cheap-ts", lockless=False, per_cpu_buffers=True,
                          cheap_timestamps=True)
K42_STYLE = LttConfig("k42", lockless=True, per_cpu_buffers=True,
                      cheap_timestamps=True)

LTT_CONFIGS: List[LttConfig] = [ORIGINAL, PLUS_PERCPU, PLUS_CHEAP_TS, K42_STYLE]


def original_ltt() -> LttConfig:
    return ORIGINAL


def k42_ltt() -> LttConfig:
    return K42_STYLE


@dataclass
class LoggerSet:
    """Per-CPU loggers plus their backing controls for one configuration."""

    config: LttConfig
    loggers: List[Logger]
    controls: List[TraceControl]
    mask: TraceMask
    clock: ClockSource

    def flush(self):
        out = []
        for control in self.controls:
            out.extend(control.flush())
        return out


def build_logger_set(
    config: LttConfig,
    ncpus: int,
    buffer_words: int = 4096,
    num_buffers: int = 16,
    irq_disable_iters: int = 60,
    expensive_ts_iters: int = 120,
) -> LoggerSet:
    """Instantiate one configuration for ``ncpus`` logging threads.

    ``irq_disable_iters`` models the interrupt-disable/enable cost the
    original LTT locking scheme pays inside its critical section;
    ``expensive_ts_iters`` scales the gettimeofday-style timestamp cost.
    Both should be calibrated as multiples of the implementation's base
    event cost when reproducing era-relative ratios (see
    benchmarks/bench_ltt_ablation.py).
    """
    mask = TraceMask()
    mask.enable_all()
    clock: ClockSource = (
        WallClock() if config.cheap_timestamps
        else ExpensiveWallClock(penalty_iters=expensive_ts_iters)
    )
    controls: List[TraceControl] = []
    loggers: List[Logger] = []

    if config.per_cpu_buffers:
        for cpu in range(ncpus):
            controls.append(
                TraceControl(cpu=cpu, buffer_words=buffer_words,
                             num_buffers=num_buffers)
            )
    else:
        controls.append(
            TraceControl(cpu=0, buffer_words=buffer_words,
                         num_buffers=num_buffers)
        )

    if config.lockless:
        if not config.per_cpu_buffers:
            raise ValueError(
                "the lockless configuration requires per-CPU buffers"
            )
        for cpu in range(ncpus):
            logger = TraceLogger(controls[cpu], mask, clock)
            logger.start()
            loggers.append(logger)
    else:
        shared_lock = threading.Lock() if not config.per_cpu_buffers else None
        for cpu in range(ncpus):
            control = controls[cpu if config.per_cpu_buffers else 0]
            logger = LockingTraceLogger(
                control, mask, clock,
                lock=shared_lock if shared_lock is not None else None,
                irq_disable_iters=irq_disable_iters,
                cpu=cpu,
            )
            loggers.append(logger)
        loggers[0].start()
        if config.per_cpu_buffers:
            for lg in loggers[1:]:
                lg.start()

    return LoggerSet(config=config, loggers=loggers, controls=controls,
                     mask=mask, clock=clock)
