"""Exporting K42 traces to an LTT-style stream (§5's named future work).

"An immediate area of future work is converting the output stream
produced by K42's trace facility so that it can be read by LTT's visual
display toolkit."

This module implements that converter against a documented LTT-like
binary format (the real 2003 LTT format is tied to in-kernel struct
layouts; this one keeps its essential structure: a start-time header,
dense one-byte event ids from LTT's core vocabulary, microsecond delta
timestamps, and per-event binary payloads).  A reader is included so the
conversion is verifiable end-to-end, and unknown K42 events are carried
through as LTT "custom" events rather than dropped.

Format (little-endian)::

    file  : magic "LTTK42X\\0" | version u32 | start_cycles u64 | cpu u32
    event : ltt_id u8 | delta_us u32 | size u16 | payload[size]

Delta timestamps are relative to the previous event (LTT's tsc-delta
scheme); an OVERFLOW pseudo-event re-anchors when a delta exceeds 32
bits.
"""

from __future__ import annotations

import io
import struct
from dataclasses import dataclass
from typing import BinaryIO, List, Tuple, Union

from repro.core.majors import ExcMinor, Major, ProcMinor, SyscallMinor
from repro.core.stream import Trace, TraceEvent

FILE_MAGIC = b"LTTK42X\x00"
FILE_VERSION = 1

_FILE_HEADER = struct.Struct("<8sIQI")
_EVENT_HEADER = struct.Struct("<BIH")

# LTT core event ids (the classic trace_event_id vocabulary).
LTT_SYSCALL_ENTRY = 1
LTT_SYSCALL_EXIT = 2
LTT_TRAP_ENTRY = 3
LTT_TRAP_EXIT = 4
LTT_IRQ_ENTRY = 5
LTT_IRQ_EXIT = 6
LTT_SCHEDCHANGE = 7
LTT_PROCESS = 10          # fork / exit
LTT_FILE_SYSTEM = 11      # open / read / write / close
LTT_TIMER = 12
LTT_MEMORY = 13
LTT_CUSTOM = 60           # pass-through for K42-specific events
LTT_OVERFLOW = 255        # delta re-anchor pseudo-event

LTT_EVENT_NAMES = {
    LTT_SYSCALL_ENTRY: "syscall_entry",
    LTT_SYSCALL_EXIT: "syscall_exit",
    LTT_TRAP_ENTRY: "trap_entry",
    LTT_TRAP_EXIT: "trap_exit",
    LTT_IRQ_ENTRY: "irq_entry",
    LTT_IRQ_EXIT: "irq_exit",
    LTT_SCHEDCHANGE: "schedchange",
    LTT_PROCESS: "process",
    LTT_FILE_SYSTEM: "file_system",
    LTT_TIMER: "timer",
    LTT_MEMORY: "memory",
    LTT_CUSTOM: "custom",
    LTT_OVERFLOW: "overflow",
}

CYCLES_PER_US = 1_000


@dataclass
class LttEvent:
    """One event of the exported stream (as the reader returns it)."""

    ltt_id: int
    time_us: int
    payload: bytes

    @property
    def name(self) -> str:
        return LTT_EVENT_NAMES.get(self.ltt_id, f"id{self.ltt_id}")


def _map_event(e: TraceEvent) -> Tuple[int, bytes]:
    """K42 event -> (LTT id, payload)."""
    d = e.data
    if e.major == Major.SYSCALL:
        if e.minor == SyscallMinor.ENTER and len(d) >= 2:
            return LTT_SYSCALL_ENTRY, struct.pack("<QQ", d[0], d[1])
        if e.minor == SyscallMinor.EXIT and len(d) >= 2:
            return LTT_SYSCALL_EXIT, struct.pack("<QQ", d[0], d[1])
    elif e.major == Major.EXC:
        if e.minor == ExcMinor.PGFLT and len(d) >= 2:
            return LTT_TRAP_ENTRY, struct.pack("<QQ", d[0], d[1])
        if e.minor == ExcMinor.PGFLT_DONE and len(d) >= 2:
            return LTT_TRAP_EXIT, struct.pack("<QQ", d[0], d[1])
        if e.minor == ExcMinor.TIMER_INTERRUPT:
            return LTT_TIMER, struct.pack("<Q", d[0] if d else 0)
        if e.minor == ExcMinor.IO_INTERRUPT:
            return LTT_IRQ_ENTRY, struct.pack("<Q", d[0] if d else 0)
    elif e.major == Major.PROC:
        if e.minor == ProcMinor.CONTEXT_SWITCH and len(d) >= 2:
            return LTT_SCHEDCHANGE, struct.pack("<QQ", d[0], d[1])
        if e.minor in (ProcMinor.CREATE, ProcMinor.EXIT):
            sub = 0 if e.minor == ProcMinor.CREATE else 1
            pid = d[0] if d else 0
            return LTT_PROCESS, struct.pack("<BQ", sub, pid)
    elif e.major == Major.IO:
        sub = int(e.minor)
        pid = d[0] if d else 0
        return LTT_FILE_SYSTEM, struct.pack("<BQ", sub, pid)
    elif e.major == Major.MEM:
        return LTT_MEMORY, struct.pack(
            "<B", int(e.minor)
        ) + b"".join(struct.pack("<Q", w) for w in d[:2])
    # Everything else rides through as a custom event carrying the
    # original (major, minor) and data words — nothing is dropped.
    payload = struct.pack("<BH", e.major, e.minor)
    payload += b"".join(struct.pack("<Q", w) for w in d[:7])
    return LTT_CUSTOM, payload


def export_ltt(
    trace: Trace,
    cpu: int,
    fh: BinaryIO,
    include_control: bool = False,
) -> int:
    """Convert one CPU's stream to the LTT-style format.

    Returns the number of events written.  (LTT keeps one file per CPU,
    as K42 keeps one buffer ring per CPU.)
    """
    events = [e for e in trace.events(cpu)
              if (include_control or not e.is_control) and e.time is not None]
    start = events[0].time if events else 0
    fh.write(_FILE_HEADER.pack(FILE_MAGIC, FILE_VERSION, start, cpu))
    prev_us = start // CYCLES_PER_US
    written = 0
    for e in events:
        now_us = e.time // CYCLES_PER_US
        delta = now_us - prev_us
        while delta > 0xFFFF_FFFF:
            fh.write(_EVENT_HEADER.pack(LTT_OVERFLOW, 0xFFFF_FFFF, 0))
            delta -= 0xFFFF_FFFF
            written += 1
        ltt_id, payload = _map_event(e)
        fh.write(_EVENT_HEADER.pack(ltt_id, delta, len(payload)))
        fh.write(payload)
        prev_us = now_us
        written += 1
    return written


def export_ltt_bytes(trace: Trace, cpu: int, **kw) -> bytes:
    buf = io.BytesIO()
    export_ltt(trace, cpu, buf, **kw)
    return buf.getvalue()


def read_ltt(source: Union[bytes, BinaryIO]) -> Tuple[int, List[LttEvent]]:
    """Parse an exported stream; returns (cpu, events with absolute µs)."""
    fh = io.BytesIO(source) if isinstance(source, (bytes, bytearray)) else source
    header = fh.read(_FILE_HEADER.size)
    if len(header) != _FILE_HEADER.size:
        raise ValueError("truncated LTT header")
    magic, version, start_cycles, cpu = _FILE_HEADER.unpack(header)
    if magic != FILE_MAGIC:
        raise ValueError(f"bad LTT magic {magic!r}")
    if version != FILE_VERSION:
        raise ValueError(f"unsupported LTT version {version}")
    events: List[LttEvent] = []
    now_us = start_cycles // CYCLES_PER_US
    pending_overflow = 0
    while True:
        raw = fh.read(_EVENT_HEADER.size)
        if not raw:
            break
        if len(raw) != _EVENT_HEADER.size:
            raise ValueError("truncated LTT event header")
        ltt_id, delta, size = _EVENT_HEADER.unpack(raw)
        payload = fh.read(size)
        if len(payload) != size:
            raise ValueError("truncated LTT event payload")
        if ltt_id == LTT_OVERFLOW:
            pending_overflow += delta
            continue
        now_us += delta + pending_overflow
        pending_overflow = 0
        events.append(LttEvent(ltt_id, now_us, payload))
    return cpu, events
