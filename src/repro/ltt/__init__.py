"""Linux Trace Toolkit baseline configurations (§4.1).

The paper reports an order-of-magnitude improvement when K42's
technology was applied to LTT, from three changes: lockless logging,
per-processor buffers, and cheaper timestamp acquisition.  This package
provides each configuration so the ablation benchmark can isolate each
factor, plus the x86 TSC-interpolation scheme LTT adopted for machines
without a synchronized cheap clock.
"""

from repro.ltt.configs import (
    LTT_CONFIGS,
    LttConfig,
    build_logger_set,
    original_ltt,
    k42_ltt,
)
from repro.ltt.tscsync import (
    TscAnchors,
    TscInterpolator,
    max_pairwise_skew,
    synchronize_tsc_traces,
    take_anchors,
)

__all__ = [
    "LttConfig", "LTT_CONFIGS", "build_logger_set", "original_ltt", "k42_ltt",
    "TscAnchors", "TscInterpolator", "synchronize_tsc_traces",
    "take_anchors", "max_pairwise_skew",
]
