"""Model checking across the shared-memory seam.

:class:`~repro.check.harness.CheckedSystem` proves the protocol over
in-process stand-ins; this variant proves it over the *real* shm stack:
a genuine :class:`~repro.shm.region.ShmTraceRegion` segment, one
independent :meth:`~repro.shm.region.ShmTraceRegion.attach` per writer
(each task holds its own mapping of the segment, exactly as a separate
process would), and a real :class:`~repro.shm.collector.ShmCollector`
whose *drained output* — not the ring — is what the final invariants
judge.  The shm atomics expose the same ``yield_fn``/``observer`` seams
as the stepped primitives, so every cross-process shared-memory
operation is a scheduling point and counterexamples stay replayable.

What is modeled vs. real: the writers are cooperative tasks in one
process (determinism requires it), but every load, CAS, and trace-word
store goes through the same shm code paths — and the same byte offsets —
that separate OS processes use.  The only cross-process effect this
cannot exercise is a torn 8-byte store, which the platform (and the
paper's hardware) rules out anyway.

Beyond the base invariants, shm mode checks the collector seam:

* **drain-covers-ring** — every buffer that holds reserved words at
  quiescence must appear in the drained trace (this is the flush
  contract; a collector that "misses the flush" silently loses the
  final partial buffers);
* **collector-dropped-in-wrap-free-run** — the ring cannot lap the
  collector in a wrap-free run, so any reported drop is a cursor bug;
* mid-schedule drained records obey the reader trust gate: a drained
  buffer whose committed count covers its fill must decode garble-free
  with genuine events.

Two shm-specific mutants validate that the checker actually watches
this seam (see :data:`SHM_MUTANTS`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.check.coop import CoopRuntime
from repro.check.harness import (
    CheckConfig,
    CheckedSystem,
    ConfigError,
    InvariantViolation,
    Violation,
)
from repro.check.instrument import DoubleWriteError, Probe, StepClock
from repro.check.mutants import MUTANTS, make_logger
from repro.core.buffers import BufferRecord, TraceControl, decode_commit_word
from repro.core.majors import Major
from repro.core.mask import TraceMask
from repro.core.stream import scan_buffer
from repro.shm.atomics import ShmWordsView
from repro.shm.collector import ShmCollector
from repro.shm.region import ShmTraceRegion


class InstrumentedShmWords(ShmWordsView):
    """Shm trace memory whose word writes are scheduling points.

    The cross-attach counterpart of
    :class:`~repro.check.instrument.InstrumentedArray`: the ownership
    map is shared by *every* attach of the segment and keyed by the
    word's absolute offset in the segment, so overlapping reservations
    are caught even when they come through different attaches — or
    through an attach whose geometry maps it into another CPU's region
    (the stale-attach failure mode).
    """

    __slots__ = ("runtime", "probe", "owner", "base")

    def __init__(self, buf, byte_off: int, length: int,
                 runtime: CoopRuntime, probe: Probe,
                 owner: Dict[int, Optional[int]], base: int) -> None:
        super().__init__(buf, byte_off, length)
        self.runtime = runtime
        self.probe = probe
        self.owner = owner
        self.base = base  # absolute word offset of this view in the segment

    def __setitem__(self, key, value) -> None:
        if isinstance(key, slice):
            self.runtime.yield_point("mem.zero")
            for pos in range(*key.indices(len(self))):
                self.owner.pop(self.base + pos, None)
            return super().__setitem__(key, value)
        self.runtime.yield_point(f"mem[{self.base + key}]")
        task = self.runtime.current
        tid = task.tid if task is not None else None
        abs_pos = self.base + key
        if abs_pos in self.owner:
            prev = self.owner[abs_pos]
            raise DoubleWriteError(
                f"segment word {abs_pos} rewritten by task {tid} "
                f"(first written by task {prev}): overlapping reservation "
                f"across attaches"
            )
        self.owner[abs_pos] = tid
        self.probe.on_write(tid, key)
        return super().__setitem__(key, value)


class MissedFlushCollector(ShmCollector):
    """MUTANT: finalize trusts only index-completed buffers.

    A plausible-looking collector bug: on quiescence (or a writer's
    death) it drains what the index says is complete and never emits
    the in-progress partial buffers — so every event in the final
    partial buffer of each CPU is silently lost, and a killed writer's
    torn partial buffer never reaches the reader's heuristics at all.
    """

    def finalize(self) -> List[BufferRecord]:
        return self.poll(lag=0)  # BUG: partial buffers never flushed


@dataclass
class ShmMutantSpec:
    """A registered shm-seam mutant (attach/drain bug, not a logger bug)."""

    name: str
    summary: str
    expected: Tuple[str, ...]
    config: Dict[str, object]


SHM_MUTANTS: Dict[str, ShmMutantSpec] = {
    spec.name: spec
    for spec in (
        ShmMutantSpec(
            "stale-attach-offset",
            "attacher maps its trace memory at another CPU's region",
            ("double-write",),
            {"shm": True, "shm_cpus": 2, "writers": 2, "events": 1,
             "preemption_bound": 1},
        ),
        ShmMutantSpec(
            "missed-flush-on-death",
            "collector finalize never emits in-progress partial buffers",
            ("lost-buffer-at-flush", "lost-or-reordered-events",
             "torn-not-flagged"),
            {"shm": True, "writers": 1, "events": 1,
             "preemption_bound": 0},
        ),
    )
}


class ShmCheckedSystem(CheckedSystem):
    """A checked system whose shared state is a real shm segment.

    Mirrors the :class:`CheckedSystem` interface the schedule driver
    uses (``runtime``, ``after_step``, ``final_checks``, ``close``) but
    builds everything over one :class:`ShmTraceRegion`: writer ``w``
    attaches the segment independently and binds CPU ``w % shm_cpus``.
    Logger mutants from :data:`~repro.check.mutants.MUTANTS` compose
    with shm mode (the mutant logger simply runs over shm-backed
    words); shm-specific mutants are wired here.
    """

    def __init__(self, config: CheckConfig) -> None:  # noqa: C901
        config.validate()
        if config.mutant is not None and \
                config.mutant not in MUTANTS and \
                config.mutant not in SHM_MUTANTS:
            raise KeyError(
                f"unknown mutant {config.mutant!r}; known: "
                f"{sorted(MUTANTS) + sorted(SHM_MUTANTS)}"
            )
        self.config = config
        self.runtime = CoopRuntime()
        self.clock = StepClock(self.runtime)
        self.mask = TraceMask()
        self.mask.enable_all()
        self.payloads = config.payloads()
        ncpus = config.shm_cpus
        #: Shared double-write ownership, keyed by absolute segment word.
        self.owner: Dict[int, Optional[int]] = {}
        self.probes = [Probe(self.runtime, config.buffer_words)
                       for _ in range(ncpus)]
        self._index_prev = [0] * ncpus
        self._booked_prev = [0] * ncpus
        self._closed = False

        self.region = ShmTraceRegion.create(
            ncpus=ncpus,
            buffer_words=config.buffer_words,
            num_buffers=config.num_buffers,
            start_anchors=False,
        )
        self._attached: List[ShmTraceRegion] = []
        try:
            # Sequential setup: anchor buffer 0 on every CPU through the
            # instrumented path (yield points are no-ops on the main
            # thread), exactly like the base harness's setup logger.
            for cpu in range(ncpus):
                ctl = self._make_control(self.region, cpu, cpu)
                make_logger(None, ctl, self.mask, self.clock).start()

            logger_mutant = (
                config.mutant if config.mutant in MUTANTS else None
            )
            for w in range(config.writers):
                cpu = w % ncpus
                wregion = ShmTraceRegion.attach(self.region.name)
                self._attached.append(wregion)
                view_cpu = cpu
                if (config.mutant == "stale-attach-offset"
                        and w == config.writers - 1 and cpu != 0):
                    # BUG under test: this attach computed its trace-
                    # memory offset from stale geometry and maps CPU 0's
                    # region while its control words are its own CPU's.
                    view_cpu = 0
                ctl = self._make_control(wregion, cpu, view_cpu)
                logger = make_logger(logger_mutant, ctl, self.mask,
                                     self.clock)
                self.runtime.spawn(f"w{w}", self._make_writer(logger, w))

            collector_cls = (
                MissedFlushCollector
                if config.mutant == "missed-flush-on-death"
                else ShmCollector
            )
            if config.reader:
                self.runtime.spawn("reader", self._reader_fn())

            cregion = ShmTraceRegion.attach(self.region.name)
            self._attached.append(cregion)
            self.collector = collector_cls(cregion, lag=1)
            self.live_drained: List[BufferRecord] = []
            if config.collector_steps > 0:
                self.runtime.spawn("collector", self._collector_fn())
        except BaseException:
            self.close()
            raise

    # -- wiring ----------------------------------------------------------
    def _make_control(self, region: ShmTraceRegion, cpu: int,
                      view_cpu: int) -> TraceControl:
        probe = self.probes[cpu]

        def dispatch(name: str, op: str, args: tuple, result) -> None:
            if ".index" in name:
                probe.on_index(name, op, args, result)
            elif ".booked" in name:
                probe.on_booked(name, op, args, result)
            elif ".committed" in name:
                probe.on_committed(name, op, args, result)

        lay = region.layout
        view = InstrumentedShmWords(
            region.shm.buf,
            8 * lay.trace_words(view_cpu),
            lay.total_words_per_cpu,
            self.runtime,
            probe,
            self.owner,
            base=lay.trace_words(view_cpu),
        )
        return region.control(
            cpu,
            array=view,
            yield_fn=self.runtime.yield_point,
            observer=dispatch,
        )

    def _make_writer(self, logger, w: int):
        events = self.payloads[w]

        def fn() -> None:
            for data in events:
                logger.log_words(Major.TEST, w + 1, data)
        return fn

    def _collector_fn(self):
        def fn() -> None:
            for _ in range(self.config.collector_steps):
                self.runtime.yield_point("collector.poll")
                self.live_drained.extend(self.collector.poll())
        return fn

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for region in self._attached:
            region.close()
        self.region.close()
        self.region.unlink()

    # -- views ------------------------------------------------------------
    def ring_view(self) -> List[BufferRecord]:
        """Records for every buffer touched so far, across all CPUs."""
        lay = self.region.layout
        out: List[BufferRecord] = []
        for cpu in range(lay.ncpus):
            index = self.region.index_word(cpu).peek()
            cur_seq = index // lay.buffer_words
            trace = self.region.trace_view(cpu)
            committed = self.region.committed_array(cpu)
            for seq in range(cur_seq + 1):
                fill = (
                    lay.buffer_words if seq < cur_seq
                    else index & (lay.buffer_words - 1)
                )
                if fill == 0:
                    continue
                start = (seq % lay.num_buffers) * lay.buffer_words
                out.append(
                    BufferRecord(
                        cpu=cpu,
                        seq=seq,
                        words=trace[start:start + lay.buffer_words],
                        committed=decode_commit_word(
                            seq, committed.peek(seq % lay.num_buffers)
                        ),
                        fill_words=fill,
                        partial=(seq == cur_seq),
                    )
                )
        return out

    def drained_view(self) -> List[BufferRecord]:
        """The collector's total output: live polls + its finalize."""
        records = list(self.live_drained) + self.collector.finalize()
        records.sort(key=lambda r: (r.cpu, r.seq))
        return records

    # -- invariants --------------------------------------------------------
    def after_step(self, step: int) -> Optional[Violation]:
        lay = self.region.layout
        for cpu in range(lay.ncpus):
            index = self.region.index_word(cpu).peek()
            if index > lay.total_words_per_cpu:
                raise ConfigError(
                    f"run wrapped cpu {cpu}'s ring at step {step} "
                    f"(index {index} > {lay.total_words_per_cpu}); "
                    f"enlarge num_buffers"
                )
            if index < self._index_prev[cpu]:
                return Violation(
                    "index-regression",
                    f"cpu {cpu} reservation index moved backwards "
                    f"{self._index_prev[cpu]} -> {index}", step,
                )
            self._index_prev[cpu] = index
            booked = ShmWordsView(
                self.region.shm.buf, 8 * lay.booked_word(cpu), 1)[0]
            if booked < self._booked_prev[cpu]:
                return Violation(
                    "booked-regression",
                    f"cpu {cpu} booked_seq moved backwards "
                    f"{self._booked_prev[cpu]} -> {booked}", step,
                )
            self._booked_prev[cpu] = booked
            if booked > index // lay.buffer_words:
                return Violation(
                    "booked-ahead-of-index",
                    f"cpu {cpu} booked_seq {booked} beyond current "
                    f"buffer {index // lay.buffer_words}", step,
                )
            committed = self.region.committed_array(cpu)
            for slot in range(lay.num_buffers):
                count = committed.peek(slot) & ((1 << 32) - 1)
                if count > lay.buffer_words:
                    return Violation(
                        "committed-overflow",
                        f"cpu {cpu} slot {slot} committed count {count} "
                        f"exceeds buffer_words {lay.buffer_words}", step,
                    )
        return None

    def final_checks(self, killed: List[int]) -> Optional[Violation]:
        try:
            drained = self.drained_view()
            self._check_live_drain_trust()
            self._check_drain_covers_ring(drained)
            if self.collector.stats.dropped:
                raise InvariantViolation(
                    "collector-dropped-in-wrap-free-run",
                    f"collector reported {self.collector.stats.dropped} "
                    f"dropped buffers but the run is wrap-free",
                )
            if killed:
                self._final_with_kills_shm(drained, killed)
            else:
                self._final_clean_shm(drained)
        except InvariantViolation as exc:
            return Violation(exc.invariant, exc.detail)
        return None

    def _check_live_drain_trust(self) -> None:
        """Mid-schedule drained records obey the reader trust gate.

        These copies were taken while writers were still running, so an
        uncovered buffer (committed < fill) is legitimately torn — but a
        *covered* one must decode clean with genuine events, because
        covered-at-copy-time is exactly the signal write-out trusts.
        """
        last_k: Dict[int, int] = {}
        for rec in sorted(self.live_drained, key=lambda r: (r.cpu, r.seq)):
            if rec.committed != rec.fill_words:
                continue
            scan = scan_buffer(rec.words, rec.fill_words, recover=False)
            if scan.garbles:
                off, detail = scan.garbles[0]
                raise InvariantViolation(
                    "reader-garble-in-covered-buffer",
                    f"drained cpu {rec.cpu} seq {rec.seq} committed=="
                    f"{rec.fill_words} but scan garbled at +{off}: {detail}",
                )
            self._check_test_events(scan, rec.seq, last_k, "collector")

    def _check_drain_covers_ring(self, drained: List[BufferRecord]) -> None:
        """Every buffer holding reserved words must reach the drain."""
        have = {(r.cpu, r.seq) for r in drained}
        for rec in self.ring_view():
            if (rec.cpu, rec.seq) not in have:
                raise InvariantViolation(
                    "lost-buffer-at-flush",
                    f"cpu {rec.cpu} buffer seq {rec.seq} holds "
                    f"{rec.fill_words} reserved words but the collector "
                    f"never drained it",
                )

    def _final_clean_shm(self, drained: List[BufferRecord]) -> None:
        batched = self._decode(drained, batch=True, strict=False)
        scalar = self._decode(drained, batch=False, strict=False)
        self._compare_paths_all(batched, scalar)
        strict = self._decode(drained, batch=True, strict=True)
        for trace, mode in ((batched, "recover"), (strict, "strict")):
            bad = [a for a in trace.anomalies if a.kind != "missing-anchor"]
            if bad:
                a = bad[0]
                raise InvariantViolation(
                    "clean-decode-anomaly",
                    f"clean shm run decoded ({mode}) with anomaly "
                    f"{a.kind} in cpu {a.cpu} seq {a.seq} at +{a.offset}: "
                    f"{a.detail}",
                )
        got: Dict[int, List[List[int]]] = {
            w: [] for w in range(self.config.writers)
        }
        for cpu in range(self.config.shm_cpus):
            times: List[int] = []
            for ev in batched.events(cpu):
                if ev.time is not None:
                    times.append(ev.time)
                if ev.major != Major.TEST:
                    continue
                w = ev.minor - 1
                if not (0 <= w < self.config.writers):
                    raise InvariantViolation(
                        "fabricated-event",
                        f"decoded TEST event for unknown writer {ev.minor}",
                    )
                got[w].append([int(x) for x in ev.data])
            for a, b in zip(times, times[1:]):
                if b <= a:
                    raise InvariantViolation(
                        "timestamp-order",
                        f"cpu {cpu} timestamps not strictly increasing "
                        f"in the drained trace: {a} then {b}",
                    )
        for w, issued in enumerate(self.payloads):
            if got[w] != issued:
                raise InvariantViolation(
                    "lost-or-reordered-events",
                    f"writer {w} decoded {got[w]} from the drained "
                    f"trace, issued {issued}",
                )
        for rec in drained:
            if rec.partial and rec.committed != rec.fill_words:
                raise InvariantViolation(
                    "partial-commit-mismatch",
                    f"quiesced partial cpu {rec.cpu} seq {rec.seq}: "
                    f"committed {rec.committed} != fill {rec.fill_words}",
                )

    def _final_with_kills_shm(self, drained: List[BufferRecord],
                              killed: List[int]) -> None:
        trace = self._decode(drained, batch=True, strict=False)
        ncpus = self.config.shm_cpus
        torn_by_cpu: Dict[int, Set[int]] = {c: set() for c in range(ncpus)}
        allowed_by_cpu: Dict[int, Set[int]] = {c: set()
                                               for c in range(ncpus)}
        killed_cpus = set()
        for tid in killed:
            cpu = tid % ncpus
            killed_cpus.add(cpu)
            torn_by_cpu[cpu] |= self.probes[cpu].torn_seqs(tid)
            allowed_by_cpu[cpu] |= self.probes[cpu].booked.get(tid, set())
        for cpu in range(ncpus):
            allowed_by_cpu[cpu] |= torn_by_cpu[cpu]
        flagged = {(a.cpu, a.seq) for a in trace.anomalies}
        by_key = {(rec.cpu, rec.seq): rec for rec in drained}
        # 1. Every torn buffer must be flagged in the drained trace.
        for cpu in range(ncpus):
            for seq in sorted(torn_by_cpu[cpu]):
                rec = by_key.get((cpu, seq))
                if rec is None:
                    continue  # absence is lost-buffer-at-flush's job
                if rec.partial:
                    if (rec.committed == rec.fill_words
                            and (cpu, seq) not in flagged):
                        raise InvariantViolation(
                            "torn-not-flagged",
                            f"kill tore partial cpu {cpu} seq {seq} but "
                            f"committed {rec.committed} covers fill "
                            f"{rec.fill_words} and no anomaly was reported",
                        )
                elif (cpu, seq) not in flagged:
                    raise InvariantViolation(
                        "torn-not-flagged",
                        f"kill tore cpu {cpu} buffer seq {seq} but the "
                        f"drained trace decoded it without anomaly",
                    )
        # 2. No false anomalies outside the kill's footprint.
        for a in trace.anomalies:
            if a.kind == "missing-anchor":
                continue
            if a.seq not in allowed_by_cpu.get(a.cpu, set()):
                raise InvariantViolation(
                    "false-anomaly-under-kill",
                    f"anomaly {a.kind} in cpu {a.cpu} seq {a.seq} at "
                    f"+{a.offset} ({a.detail}) but kills only touched "
                    f"{ {c: sorted(s) for c, s in allowed_by_cpu.items()} }",
                )
        # 3. Covered drained buffers stay trustworthy after a kill.
        last_k: Dict[int, int] = {}
        for rec in drained:
            if rec.committed != rec.fill_words:
                continue
            scan = scan_buffer(rec.words, rec.fill_words, recover=False)
            if scan.garbles:
                off, detail = scan.garbles[0]
                raise InvariantViolation(
                    "reader-garble-in-covered-buffer",
                    f"drained cpu {rec.cpu} seq {rec.seq} committed=="
                    f"{rec.fill_words} but scan garbled at +{off}: {detail}",
                )
            self._check_test_events(scan, rec.seq, last_k, "final")

    def _compare_paths_all(self, batched, scalar) -> None:
        def flat(trace):
            return [
                (e.cpu, e.seq, e.offset, e.ts32, e.major, e.minor,
                 [int(x) for x in e.data], e.time)
                for cpu in range(self.config.shm_cpus)
                for e in trace.events(cpu)
            ]

        if flat(batched) != flat(scalar):
            raise InvariantViolation(
                "scalar-batch-divergence",
                "scalar and batched decoders disagree on the drained trace",
            )


__all__ = [
    "InstrumentedShmWords",
    "MissedFlushCollector",
    "SHM_MUTANTS",
    "ShmCheckedSystem",
    "ShmMutantSpec",
]
