"""Systematic schedule exploration for the lockless logging protocol.

The reserve/log/commit algorithm (:mod:`repro.core.logger`) is lockless:
its correctness is a claim about *every* interleaving of a handful of
atomic operations, not about the ones a stress test happens to produce.
This package checks that claim mechanically, CHESS-style: the real
logger code runs with every shared-memory operation turned into an
explicit scheduling point (:mod:`repro.atomic.stepped`), a controlled
scheduler enumerates thread interleavings — exhaustively up to a
preemption bound, or randomly with PCT-style priorities — and protocol
invariants are checked after every step.  When an invariant breaks, the
failing schedule is shrunk to a minimal counterexample and serialized as
a replayable JSON script.

Modules
-------
coop        deterministic cooperative runtime (one task at a time)
instrument  instrumented trace memory and stepped clock
harness     builds a checked system and runs one schedule
explore     exhaustive (bounded-DFS) and randomized (PCT) exploration
shrink      counterexample minimization
script      JSON schedule scripts (save / load / replay)
mutants     deliberately broken loggers the checker must catch

Entry point: ``repro-trace check`` (see :mod:`repro.cli`).
"""

from repro.check.explore import explore_exhaustive, explore_random
from repro.check.harness import CheckConfig, run_schedule
from repro.check.mutants import MUTANTS
from repro.check.script import ScheduleScript, load_script, save_script

__all__ = [
    "CheckConfig",
    "run_schedule",
    "explore_exhaustive",
    "explore_random",
    "ScheduleScript",
    "load_script",
    "save_script",
    "MUTANTS",
]
