"""Deterministic cooperative runtime for schedule exploration.

Each simulated CPU (a *task*) runs real logger code on its own Python
thread, but only one task is ever runnable: control passes between the
scheduler and the chosen task through a pair of semaphores, so execution
is a deterministic function of the scheduler's choices.  A task advances
in *steps*: resuming it executes exactly one pending shared-memory
operation (the one whose scheduling point it is parked at) plus all
thread-local code up to the next scheduling point.

Tasks can also be *killed* — the model of a thread destroyed mid-log
(§3.1's "preempted or killed" writer).  A killed task is unwound by
raising :class:`TaskKilled` at its parked scheduling point; the pending
operation never executes, leaving exactly the reserved-but-unwritten (or
written-but-uncommitted) hole the committed-count heuristic must catch.

The GIL is irrelevant here: concurrency is *modeled*, not real.  The
same schedule always produces the same memory states, which is what
makes counterexamples replayable.
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional

#: Seconds to wait on a handoff before declaring the engine wedged.  A
#: correct system under test never blocks between scheduling points, so
#: hitting this means a bug in the harness (or a lock in the SUT).
HANDOFF_TIMEOUT = 30.0

READY = "ready"
DONE = "done"
KILLED = "killed"
FAILED = "failed"


class EngineError(RuntimeError):
    """The cooperative machinery itself broke (deadlock, bad handoff)."""


class TaskKilled(BaseException):
    """Unwinds a killed task's stack.

    Derives from ``BaseException`` so logger-level ``except Exception``
    handlers (none today, but futureproof) cannot swallow the kill.
    """


class Task:
    """One simulated CPU: a thread that runs only when scheduled."""

    def __init__(self, tid: int, name: str, fn: Callable[[], None]) -> None:
        self.tid = tid
        self.name = name
        self.fn = fn
        self.state = READY
        self.pending: Optional[str] = None  # label of the parked op
        self.error: Optional[BaseException] = None
        self.kill_flag = False
        self.sem = threading.Semaphore(0)
        self.thread: Optional[threading.Thread] = None


class CoopRuntime:
    """Owns the tasks and the scheduler<->task handoff protocol."""

    def __init__(self) -> None:
        self.tasks: List[Task] = []
        self.current: Optional[Task] = None
        self._sched_sem = threading.Semaphore(0)
        self._started = False

    # -- setup ---------------------------------------------------------
    def spawn(self, name: str, fn: Callable[[], None]) -> Task:
        if self._started:
            raise EngineError("cannot spawn after stepping began")
        task = Task(len(self.tasks), name, fn)
        self.tasks.append(task)
        return task

    def _bootstrap(self, task: Task) -> None:
        # First resume: park at a synthetic "task start" point so the
        # scheduler controls even the first real operation.
        task.sem.acquire()
        try:
            if task.kill_flag:
                raise TaskKilled()
            task.fn()
            task.state = DONE
        except TaskKilled:
            task.state = KILLED
        except BaseException as exc:  # invariant violations or SUT bugs
            task.state = FAILED
            task.error = exc
        finally:
            task.pending = None
            self._sched_sem.release()

    def _ensure_threads(self) -> None:
        if self._started:
            return
        self._started = True
        for task in self.tasks:
            task.thread = threading.Thread(
                target=self._bootstrap, args=(task,),
                name=f"check-{task.name}", daemon=True,
            )
            task.thread.start()

    # -- called from inside a task -------------------------------------
    def yield_point(self, label: str) -> None:
        """A scheduling point: park and wait to be rescheduled.

        No-op when called outside a task (e.g. during sequential setup
        such as ``logger.start()`` on the main thread), so instrumented
        structures can be used before concurrency begins.
        """
        task = self.current
        if task is None or threading.current_thread() is not task.thread:
            return
        task.pending = label
        self._sched_sem.release()
        task.sem.acquire()
        if task.kill_flag:
            raise TaskKilled()

    # -- called from the scheduler -------------------------------------
    def enabled(self) -> List[Task]:
        return [t for t in self.tasks if t.state == READY]

    def step(self, task: Task) -> Task:
        """Run ``task`` until its next scheduling point (or completion)."""
        if task.state != READY:
            raise EngineError(f"cannot step {task.name}: state={task.state}")
        self._ensure_threads()
        self.current = task
        task.sem.release()
        if not self._sched_sem.acquire(timeout=HANDOFF_TIMEOUT):
            raise EngineError(
                f"handoff timed out stepping {task.name} "
                f"(blocked outside a scheduling point?)"
            )
        self.current = None
        return task

    def kill(self, task: Task) -> None:
        """Kill a parked task: its pending operation never executes."""
        if task.state != READY:
            raise EngineError(f"cannot kill {task.name}: state={task.state}")
        self._ensure_threads()
        task.kill_flag = True
        # Resume it so the raise at the parked yield point unwinds the
        # stack; this executes no system-under-test code.
        self.current = task
        task.sem.release()
        if not self._sched_sem.acquire(timeout=HANDOFF_TIMEOUT):
            raise EngineError(f"handoff timed out killing {task.name}")
        self.current = None
        if task.state != KILLED:
            raise EngineError(
                f"kill of {task.name} left state={task.state}"
            )

    def shutdown(self) -> None:
        """Tear down any still-parked tasks (after a violation stops a
        schedule early).  Idempotent."""
        for task in self.tasks:
            if task.state == READY and task.thread is not None:
                try:
                    self.kill(task)
                except EngineError:
                    task.state = FAILED
