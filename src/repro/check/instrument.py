"""Instrumented trace memory, stepped clock, and the execution probe.

Three pieces the harness plugs into a :class:`TraceControl` under test:

* :class:`InstrumentedArray` — the trace memory.  Every word write is a
  scheduling point, and the array remembers *who* wrote each position so
  the checker can detect overlapping reservations directly: in a
  wrap-free run no trace word is ever legitimately written twice, so a
  rewrite means two writers were handed the same words.  Reads are not
  scheduling points — a 64-bit aligned load is atomic on the modeled
  hardware, and serialized execution means a read always sees a
  word-consistent value.

* :class:`StepClock` — a per-read auto-incrementing clock whose ``now``
  is itself a scheduling point (the paper's argument about re-reading
  the timestamp inside the CAS retry loop is precisely about what can
  happen *between* the clock read and the reservation).  Distinct reads
  return distinct, strictly increasing ticks, so any timestamp
  regression in a decoded trace is a genuine ordering bug, never a tie.

* :class:`Probe` — passive bookkeeping fed by the stepped primitives'
  observer hooks: which words each task reserved (successful index CAS
  or store transitions), which it wrote, and how many words it committed
  per buffer.  The kill/torn-event invariants are phrased over this
  record.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.check.coop import CoopRuntime


class DoubleWriteError(AssertionError):
    """A trace word was written twice in a wrap-free run."""


class InstrumentedArray(list):
    """Trace memory whose word writes are scheduling points.

    Slice assignment (used only by zero-ahead's ``zero_slot``) is
    treated as one bookkeeping operation: a single scheduling point, and
    it *resets* ownership of the zeroed range rather than recording a
    write.
    """

    def __init__(self, length: int, runtime: CoopRuntime,
                 probe: "Probe") -> None:
        super().__init__([0] * length)
        self.runtime = runtime
        self.probe = probe
        # position -> tid of the writing task (None = setup phase)
        self.owner: Dict[int, Optional[int]] = {}

    def __setitem__(self, key, value):  # type: ignore[override]
        if isinstance(key, slice):
            self.runtime.yield_point("mem.zero")
            for pos in range(*key.indices(len(self))):
                self.owner.pop(pos, None)
            return super().__setitem__(key, value)
        self.runtime.yield_point(f"mem[{key}]")
        task = self.runtime.current
        tid = task.tid if task is not None else None
        if key in self.owner:
            prev = self.owner[key]
            raise DoubleWriteError(
                f"trace word {key} rewritten by task {tid} "
                f"(first written by task {prev}): overlapping reservation"
            )
        self.owner[key] = tid
        self.probe.on_write(tid, key)
        return super().__setitem__(key, value)


class StepClock:
    """Manually-ticked clock; each read is a scheduling point.

    Auto-advances by one tick per read so that every observed timestamp
    is unique — ties can never mask an ordering violation.
    """

    cost_cycles = 10

    def __init__(self, runtime: CoopRuntime, start: int = 1) -> None:
        self.runtime = runtime
        self._now = start

    def now(self, cpu: int = 0) -> int:
        self.runtime.yield_point("clock.read")
        self._now += 1
        return self._now

    def peek(self) -> int:
        return self._now


class Probe:
    """Execution record used by the invariant engine.

    Fed by the observer hooks of the stepped index word, the stepped
    committed array, and the instrumented trace memory.  All keys are
    *word positions* or *buffer sequence numbers*; runs are wrap-free,
    so position ``p`` belongs to buffer ``p // buffer_words``.
    """

    def __init__(self, runtime: CoopRuntime, buffer_words: int) -> None:
        self.runtime = runtime
        self.buffer_words = buffer_words
        # tid -> list of reserved (start, end) word ranges
        self.reserved: Dict[Optional[int], List[Tuple[int, int]]] = {}
        # tid -> set of word positions written
        self.written: Dict[Optional[int], Set[int]] = {}
        # tid -> {seq: words committed}
        self.committed_by: Dict[Optional[int], Dict[int, int]] = {}
        # tid -> buffer seqs whose start-bookkeeping the task claimed
        self.booked: Dict[Optional[int], Set[int]] = {}
        self._index_prev = 0

    def _tid(self) -> Optional[int]:
        task = self.runtime.current
        return task.tid if task is not None else None

    # -- observer hooks -------------------------------------------------
    def on_write(self, tid: Optional[int], pos: int) -> None:
        self.written.setdefault(tid, set()).add(pos)

    def on_index(self, name: str, op: str, args: tuple, result) -> None:
        """Observer for the reservation index word."""
        tid = self._tid()
        if op == "cas" and result:
            old, new = args
            if new > old:
                self.reserved.setdefault(tid, []).append((old, new))
        elif op == "store":
            old, new = args
            if new > old:
                # A store-based bump (the non-atomic mutant) still counts
                # as that task's reservation for hole accounting.
                self.reserved.setdefault(tid, []).append((old, new))

    def on_booked(self, name: str, op: str, args: tuple, result) -> None:
        """Observer for the booked_seq word."""
        if op == "cas" and result:
            _, new = args
            self.booked.setdefault(self._tid(), set()).add(new)

    def on_committed(self, name: str, op: str, args: tuple, result) -> None:
        """Observer for the committed-count array (generation-tagged)."""
        from repro.core.constants import COMMIT_COUNT_MASK, COMMIT_SEQ_SHIFT

        if op == "cas" and result:
            _, old, new = args
            tag = new >> COMMIT_SEQ_SHIFT
            old_count = (
                old & COMMIT_COUNT_MASK
                if (old >> COMMIT_SEQ_SHIFT) == tag else 0
            )
            delta = (new & COMMIT_COUNT_MASK) - old_count
            seq = tag  # wrap-free runs: tag == seq
            per = self.committed_by.setdefault(self._tid(), {})
            per[seq] = per.get(seq, 0) + delta
        elif op == "store":
            # Raw store (the reset-on-book mutant): not attributed.
            pass

    # -- derived views --------------------------------------------------
    def reserved_words_by_seq(self, tid: Optional[int]) -> Dict[int, int]:
        out: Dict[int, int] = {}
        bw = self.buffer_words
        for start, end in self.reserved.get(tid, ()):
            for pos in range(start, end):
                out[pos // bw] = out.get(pos // bw, 0) + 1
        return out

    def written_words_by_seq(self, tid: Optional[int]) -> Dict[int, int]:
        out: Dict[int, int] = {}
        bw = self.buffer_words
        for pos in self.written.get(tid, ()):
            out[pos // bw] = out.get(pos // bw, 0) + 1
        return out

    def torn_seqs(self, tid: Optional[int]) -> Set[int]:
        """Buffers where ``tid`` left reserved words unwritten or
        written words uncommitted — the footprint a kill must expose."""
        reserved = self.reserved_words_by_seq(tid)
        written = self.written_words_by_seq(tid)
        committed = self.committed_by.get(tid, {})
        torn = set()
        for seq, n in reserved.items():
            if written.get(seq, 0) < n or committed.get(seq, 0) < n:
                torn.add(seq)
        return torn
