"""Counterexample minimization (delta-debugging over schedules).

A raw failing schedule from the explorer carries every choice made along
the way, most of which are irrelevant to the bug.  Shrinking reduces it
to the shortest forced prefix that still trips the *same* invariant
(matching on the invariant id — a different failure is a different bug,
not a smaller instance of this one), in two alternating phases:

1. **prefix truncation** — find the shortest prefix of the choices
   that still fails when the rest of the schedule follows the default
   non-preempting policy;
2. **choice elimination** — delete forced choices one at a time,
   keeping each deletion that preserves the failure, until a fixpoint.

Both phases re-execute candidates through the deterministic harness, so
the minimized schedule is guaranteed to reproduce — the replay script
is written from the minimized schedule's *executed* choices, never from
an untested edit.
"""

from __future__ import annotations

from typing import List, Optional

from repro.check.harness import Action, CheckConfig, ScheduleOutcome, run_schedule

#: Hard cap on shrink re-executions, so pathological schedules cannot
#: stall a CI run; the best-so-far counterexample is returned on hitting
#: it (still a genuine, re-executed failure — just not minimal).
MAX_SHRINK_RUNS = 4000


class _Budget:
    def __init__(self, result=None) -> None:
        self.runs = 0
        self.result = result  # optional ExploreResult to bill steps to

    def run(self, config: CheckConfig,
            prefix: List[Action]) -> Optional[ScheduleOutcome]:
        if self.runs >= MAX_SHRINK_RUNS:
            return None
        self.runs += 1
        outcome = run_schedule(config, prefix=prefix)
        if self.result is not None:
            self.result.schedules += 1
            self.result.steps += outcome.steps
        return outcome


def _same_failure(outcome: Optional[ScheduleOutcome],
                  invariant: str) -> bool:
    return (
        outcome is not None
        and outcome.violation is not None
        and outcome.violation.invariant == invariant
    )


def _truncate(config: CheckConfig, choices: List[Action], invariant: str,
              budget: _Budget) -> Optional[tuple]:
    """Shortest prefix of ``choices`` that still fails the same way."""
    for n in range(len(choices) + 1):
        candidate = budget.run(config, choices[:n])
        if candidate is None:
            return None
        if _same_failure(candidate, invariant):
            return list(choices[:n]), candidate
    return None


def shrink_outcome(
    config: CheckConfig,
    outcome: ScheduleOutcome,
    result=None,
) -> ScheduleOutcome:
    """Minimize a failing schedule; returns a re-executed outcome whose
    violation has the same invariant id as the input's."""
    assert outcome.violation is not None
    invariant = outcome.violation.invariant
    budget = _Budget(result)

    found = _truncate(config, list(outcome.choices), invariant, budget)
    if found is None:
        return outcome
    prefix, best = found

    improved = True
    while improved:
        improved = False
        i = 0
        while i < len(prefix):
            candidate_prefix = prefix[:i] + prefix[i + 1:]
            candidate = budget.run(config, candidate_prefix)
            if candidate is None:
                return best
            if _same_failure(candidate, invariant):
                prefix, best = candidate_prefix, candidate
                improved = True
            else:
                i += 1
        found = _truncate(config, prefix, invariant, budget)
        if found is None:
            return best
        if len(found[0]) < len(prefix):
            prefix, best = found
            improved = True
    return best
