"""Replayable schedule scripts (JSON).

A counterexample is only useful if it reproduces somewhere else: this
module serializes a failing schedule — the configuration plus the full
list of executed scheduling choices — as a small JSON document, and
replays one deterministically.  Replay forces the scripted choices
through the harness with ``on_infeasible="error"``: because the harness
is deterministic, a script produced from an executed schedule replays
identically, and any divergence means the script does not match the
code under test (wrong config, edited script, or a changed logger).

Format (``repro-check-schedule-v1``)::

    {
      "format": "repro-check-schedule-v1",
      "config":  { ... CheckConfig fields ... },
      "choices": [{"run": 0}, {"kill": 1}, ...],
      "violation": {"invariant": ..., "detail": ..., "step": ...},
      "note": "free-form provenance"
    }
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import List, Optional

from repro.check.harness import (
    Action,
    CheckConfig,
    ScheduleOutcome,
    run_schedule,
)

FORMAT = "repro-check-schedule-v1"


@dataclass
class ScheduleScript:
    """A serializable schedule: config + choices (+ what it violated)."""

    config: CheckConfig
    choices: List[Action]
    violation: Optional[dict] = None
    note: str = ""

    @classmethod
    def from_outcome(cls, outcome: ScheduleOutcome,
                     note: str = "") -> "ScheduleScript":
        violation = None
        if outcome.violation is not None:
            violation = asdict(outcome.violation)
        return cls(
            config=outcome.config,
            choices=list(outcome.choices),
            violation=violation,
            note=note,
        )

    def replay(self, strict: bool = True) -> ScheduleOutcome:
        """Re-execute the scripted schedule deterministically."""
        return run_schedule(
            self.config,
            prefix=self.choices,
            on_infeasible="error" if strict else "default",
        )

    def to_json(self) -> str:
        doc = {
            "format": FORMAT,
            "config": asdict(self.config),
            "choices": [{kind: tid} for kind, tid in self.choices],
            "violation": self.violation,
            "note": self.note,
        }
        return json.dumps(doc, indent=2) + "\n"


def save_script(script: ScheduleScript, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(script.to_json())


def _parse_choice(entry: dict, i: int) -> Action:
    if not isinstance(entry, dict) or len(entry) != 1:
        raise ValueError(f"choice {i}: expected one-key object, got {entry!r}")
    (kind, tid), = entry.items()
    if kind not in ("run", "kill"):
        raise ValueError(f"choice {i}: unknown kind {kind!r}")
    if not isinstance(tid, int) or tid < 0:
        raise ValueError(f"choice {i}: bad task id {tid!r}")
    return (kind, tid)


def load_script(path: str) -> ScheduleScript:
    """Parse and validate a schedule script file."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or doc.get("format") != FORMAT:
        raise ValueError(
            f"not a schedule script: format is {doc.get('format')!r}, "
            f"expected {FORMAT!r}"
        )
    raw_config = doc.get("config", {})
    known = {f.name for f in
             CheckConfig.__dataclass_fields__.values()}  # type: ignore[attr-defined]
    unknown = set(raw_config) - known
    if unknown:
        raise ValueError(f"unknown config fields: {sorted(unknown)}")
    config = CheckConfig(**raw_config)
    choices = [
        _parse_choice(entry, i)
        for i, entry in enumerate(doc.get("choices", []))
    ]
    return ScheduleScript(
        config=config,
        choices=choices,
        violation=doc.get("violation"),
        note=str(doc.get("note", "")),
    )


__all__ = ["FORMAT", "ScheduleScript", "save_script", "load_script"]
