"""Deliberately broken loggers that validate the checker itself.

A model checker that never finds anything proves nothing: these mutants
re-introduce, one at a time, the races the lockless protocol exists to
prevent.  Each is a :class:`~repro.core.logger.TraceLogger` subclass
overriding exactly one decision, and each must be caught by the checker
with a minimized, replayable counterexample (the test suite enforces
this).  They document, executably, *why* each line of Figure 2 is the
way it is:

``non-atomic-reserve``
    Advances the reservation index with a load + store instead of
    compare-and-store.  Two writers can read the same index and be
    handed the same words — caught as a double write.

``commit-before-copy``
    Runs ``traceCommit`` before writing the header and data.  The
    committed count then covers words that are not there yet, so a
    reader that trusts a covered buffer can decode garbage — caught by
    the reader-soundness invariant.

``stale-timestamp``
    Reads the clock once before the CAS retry loop instead of inside
    it.  A competitor that reserves first with a later stamp breaks
    timestamp monotonicity in reservation order — the exact failure the
    paper's "re-obtain the timestamp" argument (§3.1) rules out.

``reset-on-book``
    Resets the new buffer's committed count during start-of-buffer
    bookkeeping (how this codebase itself once worked).  A writer that
    reserved and committed into the new buffer before the booker runs
    has its commit erased, falsely garbling a clean buffer — found by
    this checker, fixed by the generation-tagged commit words.

``skip-filler-commit``
    Writes the boundary filler but never commits its length.  The
    buffer's committed count comes up short, so a perfectly clean
    buffer is reported garbled — no preemption needed at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.core.constants import (
    EXTENDED_FILLER_LENGTH,
    MAX_EVENT_WORDS,
    TIMESTAMP_MASK,
    WORD_MASK,
)
from repro.core.header import pack_header
from repro.core.logger import TraceLogger
from repro.core.majors import ControlMinor, Major


class NonAtomicReserveLogger(TraceLogger):
    """Reserves with load + store: the index bump is no longer atomic."""

    def _reserve(self, length: int) -> Tuple[int, int]:
        ctl = self.control
        index = ctl.index
        bw = ctl.buffer_words
        while True:
            old = index.load()
            used = old & (bw - 1)
            if used + length > bw:
                self._reserve_slow(old, length)
                continue
            ts = self.clock.now(self.cpu)
            # BUG: plain store; a competitor between the load and this
            # store is handed the same words.
            index.store(old + length)
            if used == 0 and old > 0:
                self._maybe_book(old // bw, exact=True)
            return old, ts


class CommitBeforeCopyLogger(TraceLogger):
    """Commits the event length before writing header and data."""

    def _log_unmasked(self, major, minor, data) -> bool:
        ctl = self.control
        length = len(data) + 1
        index, ts = self._reserve(length)
        # BUG: the committed count now covers unwritten words; a reader
        # that trusts committed == fill reads garbage.
        if self.commit_counts:
            ctl.commit(index // ctl.buffer_words, length)
        arr = ctl.array
        pos = index & ctl.index_mask
        arr[pos] = (
            ((ts & TIMESTAMP_MASK) << 32)
            | (length << 22)
            | (major << 16)
            | (minor & 0xFFFF)
        )
        i = pos + 1
        for w in data:
            arr[i] = w & WORD_MASK
            i += 1
        ctl.stats_events_logged += 1
        ctl.stats_words_logged += length
        return True


class StaleTimestampLogger(TraceLogger):
    """Reads the clock once, outside the CAS retry loop."""

    def _reserve(self, length: int) -> Tuple[int, int]:
        ctl = self.control
        index = ctl.index
        bw = ctl.buffer_words
        # BUG: hoisted out of the loop; by the time the CAS wins, a
        # competitor may already have logged a later timestamp.
        ts = self.clock.now(self.cpu)
        while True:
            old = index.load()
            used = old & (bw - 1)
            if used + length > bw:
                self._reserve_slow(old, length)
                continue
            if index.compare_and_store(old, old + length):
                if used == 0 and old > 0:
                    self._maybe_book(old // bw, exact=True)
                return old, ts
            ctl.stats_cas_retries += 1


class ResetOnBookLogger(TraceLogger):
    """Resets the committed count during buffer-start bookkeeping."""

    def _maybe_book(self, seq: int, exact: bool) -> None:
        ctl = self.control
        booked = ctl.booked_seq
        while True:
            cur = booked.load()
            if cur >= seq:
                return
            if booked.compare_and_store(cur, seq):
                break
        slot = ctl.slot_of(seq)
        # BUG (the original seed): writers that reserved into buffer
        # ``seq`` before the booker ran may already have committed;
        # this store erases their counts and falsely garbles the buffer.
        ctl.committed.store(slot, 0)
        for s in range(cur, seq):
            ctl.complete_buffer(s)
        ctl.slot_seq[slot] = seq
        if exact:
            ctl.stats_exact_boundary += 1
        self._log_anchor(seq)


class SkipFillerCommitLogger(TraceLogger):
    """Writes boundary fillers but never commits their length."""

    def _reserve_slow(self, old: int, length: int) -> None:
        ctl = self.control
        bw = ctl.buffer_words
        used = old & (bw - 1)
        if used == 0:
            return
        rem = bw - used
        ts = self.clock.now(self.cpu) & TIMESTAMP_MASK
        if not ctl.index.compare_and_store(old, old + rem):
            ctl.stats_cas_retries += 1
            return
        arr = ctl.array
        pos = old & ctl.index_mask
        if rem <= MAX_EVENT_WORDS:
            arr[pos] = pack_header(ts, rem, Major.CONTROL, ControlMinor.FILLER)
        else:
            arr[pos] = pack_header(
                ts, EXTENDED_FILLER_LENGTH,
                Major.CONTROL, ControlMinor.FILLER_EXT,
            )
            arr[pos + 1] = rem
        seq = old // bw
        # BUG: filler words are reserved and written but never
        # committed, so the buffer's count always comes up short.
        ctl.stats_fillers += 1
        ctl.stats_filler_words += rem
        self._maybe_book(seq + 1, exact=False)


@dataclass
class MutantSpec:
    """A registered mutant: its class, what it breaks, how to catch it."""

    name: str
    cls: type
    summary: str
    #: Invariant ids a counterexample for this mutant may legitimately
    #: trip (the checker stops at the first violation it meets).
    expected: Tuple[str, ...]
    #: Config overrides that make the bug reachable quickly.
    config: Dict[str, int]


MUTANTS: Dict[str, MutantSpec] = {
    spec.name: spec
    for spec in (
        MutantSpec(
            "non-atomic-reserve",
            NonAtomicReserveLogger,
            "index bumped with load+store instead of CAS",
            ("double-write",),
            {"writers": 2, "events": 1, "preemption_bound": 1},
        ),
        MutantSpec(
            "commit-before-copy",
            CommitBeforeCopyLogger,
            "traceCommit runs before the event words are written",
            ("reader-garble-in-covered-buffer", "reader-fabricated-event",
             "final-fabricated-event", "torn-not-flagged"),
            {"writers": 2, "events": 1, "kills": 1,
             "preemption_bound": 2},
        ),
        MutantSpec(
            "stale-timestamp",
            StaleTimestampLogger,
            "timestamp read once before the CAS retry loop",
            ("timestamp-order", "clean-decode-anomaly"),
            {"writers": 2, "events": 1, "preemption_bound": 1},
        ),
        MutantSpec(
            "reset-on-book",
            ResetOnBookLogger,
            "committed count reset during buffer-start bookkeeping",
            ("clean-decode-anomaly", "partial-commit-mismatch"),
            {"writers": 2, "events": 2, "preemption_bound": 2},
        ),
        MutantSpec(
            "skip-filler-commit",
            SkipFillerCommitLogger,
            "boundary filler written but never committed",
            ("clean-decode-anomaly", "partial-commit-mismatch"),
            {"writers": 1, "events": 2, "data_words": 2,
             "preemption_bound": 0},
        ),
    )
}


def make_logger(
    mutant: Optional[str],
    control,
    mask,
    clock,
    logger_factory: Optional[Callable] = None,
) -> TraceLogger:
    """Build the system under test: the real logger, or a mutant."""
    if logger_factory is not None:
        return logger_factory(control, mask, clock)
    if mutant is None:
        return TraceLogger(control, mask, clock)
    spec = MUTANTS.get(mutant)
    if spec is None:
        raise KeyError(
            f"unknown mutant {mutant!r}; known: {sorted(MUTANTS)}"
        )
    return spec.cls(control, mask, clock)
