"""Build a checked logging system and run one controlled schedule.

The harness wires the *real* :class:`~repro.core.logger.TraceLogger`
(or a deliberately broken mutant) to a :class:`TraceControl` whose
index, booked-sequence word, committed counts and trace memory are all
step-instrumented, then drives N writer tasks (and optionally a
concurrent reader task) under the cooperative scheduler, one shared-
memory operation at a time.

Invariants are checked at three moments:

* **after every step** — the reservation index and booked sequence only
  move forward, committed counts never exceed the buffer size, the run
  stays wrap-free, and no trace word is ever written twice (checked
  inside :class:`~repro.check.instrument.InstrumentedArray`);
* **at reader observations** — a buffer whose committed count covers its
  fill must decode garble-free, and every decoded TEST event in such a
  buffer must be one the harness actually issued, in per-writer order
  (the committed count is the validity gate of §3.1: the checker
  verifies it gates *correctly*);
* **at quiescence** — a clean run must decode with no anomalies on both
  the scalar and the batched path, in strict and recovering modes, with
  every issued payload present exactly once in per-writer order and
  per-CPU timestamps strictly increasing; a run with killed writers
  must flag every buffer the kill tore (committed-mismatch or garble)
  and must flag *only* those buffers.

Configurations are wrap-free by construction: the checker sizes runs so
the ring never recycles a slot, which is what makes "no word is written
twice" and "reserved words map to ``pos // buffer_words``" exact.  A
run that would wrap raises :class:`ConfigError` instead of exploring
nonsense.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.atomic.stepped import SteppedAtomicArray, SteppedAtomicWord
from repro.check.coop import CoopRuntime, FAILED, KILLED
from repro.check.instrument import DoubleWriteError, InstrumentedArray, Probe, StepClock
from repro.check.mutants import make_logger
from repro.core.buffers import BufferRecord, TraceControl, decode_commit_word
from repro.core.majors import Major
from repro.core.mask import TraceMask
from repro.core.stream import TraceReader, scan_buffer

#: A scheduling choice: ``("run", tid)`` or ``("kill", tid)``.
Action = Tuple[str, int]


class ConfigError(ValueError):
    """The configuration cannot be checked (e.g. the run would wrap)."""


class ReplayDivergence(RuntimeError):
    """A replayed schedule no longer matches the execution."""


class InvariantViolation(AssertionError):
    """A protocol invariant failed; ``invariant`` is its stable id."""

    def __init__(self, invariant: str, detail: str) -> None:
        super().__init__(detail)
        self.invariant = invariant
        self.detail = detail


@dataclass
class CheckConfig:
    """One checkable scenario (all fields JSON-serializable)."""

    writers: int = 2
    events: int = 2
    data_words: int = 1
    buffer_words: int = 8
    num_buffers: int = 8
    kills: int = 0
    reader: bool = False
    reader_steps: int = 3
    mutant: Optional[str] = None
    #: Check the shared-memory seam: writers become independent attaches
    #: of one real :class:`~repro.shm.region.ShmTraceRegion` (writer
    #: ``w`` binds CPU ``w % shm_cpus``) and the drained trace of a
    #: :class:`~repro.shm.collector.ShmCollector` is what the final
    #: invariants judge.  See :mod:`repro.check.shm`.
    shm: bool = False
    shm_cpus: int = 1
    #: In shm mode, >0 spawns a collector task that polls mid-schedule
    #: this many times (each poll is a scheduling point).
    collector_steps: int = 0

    def validate(self) -> None:
        if self.writers < 1:
            raise ConfigError("need at least one writer")
        if self.events < 1:
            raise ConfigError("need at least one event per writer")
        if self.data_words < 1:
            raise ConfigError(
                "data_words must be >= 1: payload identity is how the "
                "checker recognizes its own events"
            )
        if self.shm_cpus < 1:
            raise ConfigError("shm_cpus must be >= 1")
        if self.collector_steps < 0:
            raise ConfigError("collector_steps must be >= 0")
        if not self.shm and (self.shm_cpus > 1 or self.collector_steps):
            raise ConfigError(
                "shm_cpus/collector_steps are only meaningful with shm=True"
            )
        event_words = self.data_words + 1
        overhead = 4 + self.data_words  # anchor + start + worst filler
        if self.buffer_words <= overhead:
            raise ConfigError(
                f"buffer_words={self.buffer_words} leaves no room past "
                f"per-buffer overhead of {overhead}"
            )
        # Wrap-free check per CPU: in shm mode writers are spread over
        # shm_cpus rings round-robin, so each ring carries only its share.
        ncpus = self.shm_cpus if self.shm else 1
        per_cpu = max(
            len(range(c, self.writers, ncpus)) for c in range(ncpus)
        )
        payload = 4 + per_cpu * self.events * event_words
        useful = self.buffer_words - overhead
        need = -(-payload // useful) + 1  # ceil, +1 slack buffer
        if need > self.num_buffers:
            raise ConfigError(
                f"config may wrap the ring: ~{need} buffers needed, "
                f"{self.num_buffers} available (the checker requires "
                f"wrap-free runs)"
            )

    def payloads(self) -> List[List[List[int]]]:
        """Issued data words: ``payloads[writer][event] -> [words]``."""
        return [
            [
                [((w + 1) << 20) | ((k + 1) << 8) | (j + 1)
                 for j in range(self.data_words)]
                for k in range(self.events)
            ]
            for w in range(self.writers)
        ]


@dataclass
class Violation:
    """One invariant failure, locatable in the schedule."""

    invariant: str
    detail: str
    step: Optional[int] = None  # None: found at quiescence


@dataclass
class Point:
    """The scheduler's view at one choice, plus what it chose."""

    step: int
    enabled: List[int]
    prev: Optional[int]
    preemptions: int
    kills: int
    labels: Dict[int, str]
    choice: Action


@dataclass
class ScheduleOutcome:
    """Everything one executed schedule produced."""

    config: CheckConfig
    points: List[Point] = field(default_factory=list)
    violation: Optional[Violation] = None
    preemptions: int = 0
    kills: int = 0
    #: How many leading choices were forced (scripted); the rest came
    #: from the strategy or the default policy.
    forced: int = 0

    @property
    def choices(self) -> List[Action]:
        return [p.choice for p in self.points]

    @property
    def steps(self) -> int:
        return len(self.points)


def default_action(enabled: Sequence[int], prev: Optional[int]) -> Action:
    """The non-preempting policy: keep running the current task."""
    if prev is not None and prev in enabled:
        return ("run", prev)
    return ("run", min(enabled))


def _feasible(action: Action, enabled: Sequence[int], writers: int) -> bool:
    kind, tid = action
    if tid not in enabled:
        return False
    if kind == "kill":
        return tid < writers  # only writers are killable
    return kind == "run"


class CheckedSystem:
    """One instrumented logger + tasks, ready to run one schedule."""

    def __init__(self, config: CheckConfig) -> None:
        config.validate()
        self.config = config
        self.runtime = CoopRuntime()
        self.probe = Probe(self.runtime, config.buffer_words)
        yield_fn = self.runtime.yield_point

        def word_factory(initial: int) -> SteppedAtomicWord:
            return SteppedAtomicWord(initial, yield_fn=yield_fn)

        def array_factory_atomic(length: int) -> SteppedAtomicArray:
            return SteppedAtomicArray(
                length, yield_fn=yield_fn,
                observer=self.probe.on_committed, name="committed",
            )

        self.ctl = TraceControl(
            cpu=0,
            buffer_words=config.buffer_words,
            num_buffers=config.num_buffers,
            mode="flight",
            atomic_word_factory=word_factory,
            atomic_array_factory=array_factory_atomic,
            array_factory=lambda n: InstrumentedArray(
                n, self.runtime, self.probe
            ),
        )
        # Name the words after construction (the factory can't tell which
        # word it is building) and attach the probe's observers.
        self.ctl.index.name = "index"
        self.ctl.index.observer = self.probe.on_index
        self.ctl.booked_seq.name = "booked"
        self.ctl.booked_seq.observer = self.probe.on_booked

        self.clock = StepClock(self.runtime)
        self.mask = TraceMask()
        self.mask.enable_all()
        self.payloads = config.payloads()
        self._index_prev = 0
        self._booked_prev = 0

        # Sequential setup: anchor events for buffer 0 (yields no-op on
        # the main thread, so this is deterministic straight-line code).
        setup_logger = make_logger(None, self.ctl, self.mask, self.clock)
        setup_logger.start()

        for w in range(config.writers):
            self.runtime.spawn(f"w{w}", self._writer_fn(w))
        if config.reader:
            self.runtime.spawn("reader", self._reader_fn())

    def close(self) -> None:
        """Release external resources (the shm variant holds a segment)."""

    # -- tasks ---------------------------------------------------------
    def _writer_fn(self, w: int):
        logger = make_logger(
            self.config.mutant, self.ctl, self.mask, self.clock
        )
        events = self.payloads[w]

        def fn() -> None:
            for data in events:
                logger.log_words(Major.TEST, w + 1, data)
        return fn

    def _reader_fn(self):
        def fn() -> None:
            for _ in range(self.config.reader_steps):
                self.runtime.yield_point("reader.view")
                self._check_reader_view()
        return fn

    # -- views ---------------------------------------------------------
    def ring_view(self) -> List[BufferRecord]:
        """Records for every buffer touched so far, straight from the
        ring (wrap-free, so sequence == slot order)."""
        ctl = self.ctl
        index = ctl.index.peek()
        cur_seq = ctl.buffer_of(index)
        out: List[BufferRecord] = []
        for seq in range(cur_seq + 1):
            fill = (
                ctl.buffer_words if seq < cur_seq
                else ctl.used_in_buffer(index)
            )
            if fill == 0:
                continue
            start = ctl.slot_of(seq) * ctl.buffer_words
            out.append(
                BufferRecord(
                    cpu=ctl.cpu,
                    seq=seq,
                    words=list(ctl.array[start:start + ctl.buffer_words]),
                    committed=decode_commit_word(
                        seq, ctl.committed.peek(ctl.slot_of(seq))
                    ),
                    fill_words=fill,
                    partial=(seq == cur_seq),
                )
            )
        return out

    # -- invariants ----------------------------------------------------
    def after_step(self, step: int) -> Optional[Violation]:
        ctl = self.ctl
        index = ctl.index.peek()
        if index > ctl.total_words:
            raise ConfigError(
                f"run wrapped the ring at step {step} "
                f"(index {index} > {ctl.total_words}); enlarge num_buffers"
            )
        if index < self._index_prev:
            return Violation(
                "index-regression",
                f"reservation index moved backwards "
                f"{self._index_prev} -> {index}", step,
            )
        self._index_prev = index
        booked = ctl.booked_seq.peek()
        if booked < self._booked_prev:
            return Violation(
                "booked-regression",
                f"booked_seq moved backwards "
                f"{self._booked_prev} -> {booked}", step,
            )
        self._booked_prev = booked
        if booked > ctl.buffer_of(index):
            return Violation(
                "booked-ahead-of-index",
                f"booked_seq {booked} beyond current buffer "
                f"{ctl.buffer_of(index)}", step,
            )
        for slot in range(ctl.num_buffers):
            count = ctl.committed.peek(slot) & ((1 << 32) - 1)
            if count > ctl.buffer_words:
                return Violation(
                    "committed-overflow",
                    f"slot {slot} committed count {count} exceeds "
                    f"buffer_words {ctl.buffer_words}", step,
                )
        return None

    def _check_reader_view(self) -> None:
        """Invariants a concurrent reader can check mid-run.

        Only buffers whose committed count covers their fill are
        trusted — that is the §3.1 contract this verifies: a covered
        buffer must scan garble-free, and its TEST events must be
        genuine issued payloads in per-writer order.
        """
        last_k: Dict[int, int] = {}
        for rec in self.ring_view():
            if rec.committed != rec.fill_words:
                continue  # uncovered: the reader must not trust it
            scan = scan_buffer(rec.words, rec.fill_words, recover=False)
            if scan.garbles:
                off, detail = scan.garbles[0]
                raise InvariantViolation(
                    "reader-garble-in-covered-buffer",
                    f"buffer seq {rec.seq} committed=={rec.fill_words} "
                    f"but scan garbled at +{off}: {detail}",
                )
            self._check_test_events(scan, rec.seq, last_k, "reader")

    def _check_test_events(
        self,
        scan,
        seq: int,
        last_k: Dict[int, int],
        who: str,
    ) -> None:
        """Every TEST event must be an issued payload, in per-writer order."""
        cols = scan.cols
        for off in scan.offsets:
            if cols.major[off] != Major.TEST:
                continue
            w = cols.minor[off] - 1
            data = [int(x) for x in
                    cols.words[off + 1:off + cols.length[off]]]
            if not (0 <= w < self.config.writers):
                raise InvariantViolation(
                    f"{who}-fabricated-event",
                    f"TEST event for unknown writer {w + 1} in seq {seq}",
                )
            issued = self.payloads[w]
            try:
                k = issued.index(data)
            except ValueError:
                raise InvariantViolation(
                    f"{who}-fabricated-event",
                    f"TEST event {data} in seq {seq} was never issued "
                    f"by writer {w}",
                ) from None
            if last_k.get(w, -1) >= k:
                raise InvariantViolation(
                    f"{who}-event-order",
                    f"writer {w} event {k} decoded at seq {seq} after "
                    f"event {last_k[w]}: per-writer order broken",
                )
            last_k[w] = k

    def final_checks(self, killed: List[int]) -> Optional[Violation]:
        try:
            if killed:
                self._final_with_kills(killed)
            else:
                self._final_clean()
        except InvariantViolation as exc:
            return Violation(exc.invariant, exc.detail)
        return None

    def _decode(self, view: List[BufferRecord], batch: bool, strict: bool):
        reader = TraceReader(
            include_fillers=True, check_committed=True,
            batch=batch, strict=strict,
        )
        return reader.decode_records(view)

    def _final_clean(self) -> None:
        view = self.ring_view()
        batched = self._decode(view, batch=True, strict=False)
        scalar = self._decode(view, batch=False, strict=False)
        self._compare_paths(batched, scalar)
        strict = self._decode(view, batch=True, strict=True)
        for trace, mode in ((batched, "recover"), (strict, "strict")):
            bad = [a for a in trace.anomalies if a.kind != "missing-anchor"]
            if bad:
                a = bad[0]
                raise InvariantViolation(
                    "clean-decode-anomaly",
                    f"clean run decoded ({mode}) with anomaly "
                    f"{a.kind} in seq {a.seq} at +{a.offset}: {a.detail}",
                )
        # Every issued payload, exactly once, in per-writer order.
        got: Dict[int, List[List[int]]] = {w: [] for w in
                                           range(self.config.writers)}
        times: List[int] = []
        for ev in batched.events(0):
            if ev.time is not None:
                times.append(ev.time)
            if ev.major != Major.TEST:
                continue
            w = ev.minor - 1
            if not (0 <= w < self.config.writers):
                raise InvariantViolation(
                    "fabricated-event",
                    f"decoded TEST event for unknown writer {ev.minor}",
                )
            got[w].append([int(x) for x in ev.data])
        for w, issued in enumerate(self.payloads):
            if got[w] != issued:
                raise InvariantViolation(
                    "lost-or-reordered-events",
                    f"writer {w} decoded {got[w]}, issued {issued}",
                )
        for a, b in zip(times, times[1:]):
            if b <= a:
                raise InvariantViolation(
                    "timestamp-order",
                    f"per-CPU timestamps not strictly increasing: "
                    f"{a} then {b} (every clock read is a distinct tick, "
                    f"so reservation order must show through)",
                )
        # The partial buffer is outside the decoder's committed check.
        for rec in view:
            if rec.partial and rec.committed != rec.fill_words:
                raise InvariantViolation(
                    "partial-commit-mismatch",
                    f"quiesced partial buffer seq {rec.seq}: committed "
                    f"{rec.committed} != fill {rec.fill_words}",
                )

    def _final_with_kills(self, killed: List[int]) -> None:
        view = self.ring_view()
        trace = self._decode(view, batch=True, strict=False)
        torn: set = set()
        allowed: set = set()
        for tid in killed:
            torn |= self.probe.torn_seqs(tid)
            allowed |= self.probe.booked.get(tid, set())
        allowed |= torn
        flagged = {a.seq for a in trace.anomalies}
        by_seq = {rec.seq: rec for rec in view}
        # 1. Every torn buffer must be flagged (§3.1: the heuristics and
        #    committed counts must expose killed writers' holes).
        for seq in sorted(torn):
            rec = by_seq.get(seq)
            if rec is None:
                continue  # never materialized: nothing to mistrust
            if rec.partial:
                # The decoder's committed check skips partials; the
                # reader-side signal is committed < fill.
                if rec.committed == rec.fill_words and seq not in flagged:
                    raise InvariantViolation(
                        "torn-not-flagged",
                        f"killed writer tore partial buffer seq {seq} but "
                        f"committed count {rec.committed} covers fill "
                        f"{rec.fill_words} and no anomaly was reported",
                    )
            elif seq not in flagged:
                raise InvariantViolation(
                    "torn-not-flagged",
                    f"killed writer tore buffer seq {seq} but decode "
                    f"reported no anomaly for it",
                )
        # 2. No false garbles: every non-anchor anomaly must be in a
        #    buffer the kill actually touched.
        for a in trace.anomalies:
            if a.kind == "missing-anchor":
                continue
            if a.seq not in allowed:
                raise InvariantViolation(
                    "false-anomaly-under-kill",
                    f"anomaly {a.kind} in seq {a.seq} at +{a.offset} "
                    f"({a.detail}) but the kill only touched "
                    f"{sorted(allowed)}",
                )
        # 3. Covered buffers stay trustworthy even after a kill.
        last_k: Dict[int, int] = {}
        for rec in view:
            if rec.committed != rec.fill_words:
                continue
            scan = scan_buffer(rec.words, rec.fill_words, recover=False)
            if scan.garbles:
                off, detail = scan.garbles[0]
                raise InvariantViolation(
                    "reader-garble-in-covered-buffer",
                    f"buffer seq {rec.seq} committed=={rec.fill_words} "
                    f"but scan garbled at +{off}: {detail}",
                )
            self._check_test_events(scan, rec.seq, last_k, "final")

    def _compare_paths(self, batched, scalar) -> None:
        def flat(trace):
            return [
                (e.cpu, e.seq, e.offset, e.ts32, e.major, e.minor,
                 [int(x) for x in e.data], e.time)
                for e in trace.events(0)
            ]

        if flat(batched) != flat(scalar):
            raise InvariantViolation(
                "scalar-batch-divergence",
                "scalar and batched decoders disagree on this schedule",
            )


def run_schedule(
    config: CheckConfig,
    prefix: Sequence[Action] = (),
    strategy=None,
    on_infeasible: str = "default",
) -> ScheduleOutcome:
    """Execute one schedule: forced ``prefix`` choices first, then the
    ``strategy`` (or the default non-preempting policy).

    ``on_infeasible`` controls what happens when a prefix choice no
    longer applies (its task finished or died): ``"default"`` substitutes
    the default policy — what shrinking and tolerant replay want —
    while ``"error"`` raises :class:`ReplayDivergence`.
    """
    if config.shm:
        # Imported here: repro.check.shm depends on this module.
        from repro.check.shm import ShmCheckedSystem
        system: CheckedSystem = ShmCheckedSystem(config)
    else:
        system = CheckedSystem(config)
    runtime = system.runtime
    outcome = ScheduleOutcome(config=config)
    try:
        return _drive_schedule(system, runtime, outcome, config, prefix,
                               strategy, on_infeasible)
    finally:
        system.close()


def _drive_schedule(
    system: CheckedSystem,
    runtime: CoopRuntime,
    outcome: ScheduleOutcome,
    config: CheckConfig,
    prefix: Sequence[Action],
    strategy,
    on_infeasible: str,
) -> ScheduleOutcome:
    prev: Optional[int] = None
    try:
        while True:
            enabled_tasks = runtime.enabled()
            if not enabled_tasks:
                break
            enabled = [t.tid for t in enabled_tasks]
            step = len(outcome.points)
            action: Optional[Action] = None
            if step < len(prefix):
                action = tuple(prefix[step])  # type: ignore[assignment]
                if not _feasible(action, enabled, config.writers):
                    if on_infeasible == "error":
                        raise ReplayDivergence(
                            f"step {step}: scripted choice {action} not "
                            f"applicable (enabled: {enabled})"
                        )
                    action = None
                else:
                    outcome.forced += 1
            if action is None and strategy is not None:
                action = strategy(step, enabled, prev,
                                  outcome.preemptions, outcome.kills)
                if action is not None and not _feasible(
                        action, enabled, config.writers):
                    action = None
            if action is None:
                action = default_action(enabled, prev)
            labels = {t.tid: (t.pending or "start") for t in enabled_tasks}
            point = Point(step, enabled, prev, outcome.preemptions,
                          outcome.kills, labels, action)
            outcome.points.append(point)
            kind, tid = action
            task = runtime.tasks[tid]
            if kind == "kill":
                outcome.kills += 1
                runtime.kill(task)
            else:
                if prev is not None and tid != prev and prev in enabled:
                    outcome.preemptions += 1
                runtime.step(task)
                prev = tid
                if task.state == FAILED:
                    err = task.error
                    if isinstance(err, InvariantViolation):
                        outcome.violation = Violation(
                            err.invariant, err.detail, step)
                    elif isinstance(err, DoubleWriteError):
                        outcome.violation = Violation(
                            "double-write", str(err), step)
                    else:
                        raise err  # a harness bug, not a finding
            if outcome.violation is None:
                outcome.violation = system.after_step(step)
            if outcome.violation is not None:
                return outcome
    finally:
        runtime.shutdown()
    if on_infeasible == "error" and len(prefix) > len(outcome.points):
        raise ReplayDivergence(
            f"script has {len(prefix)} choices but the run ended after "
            f"{len(outcome.points)} steps"
        )
    killed = [t.tid for t in runtime.tasks if t.state == KILLED]
    outcome.violation = system.final_checks(killed)
    return outcome


__all__ = [
    "Action",
    "CheckConfig",
    "CheckedSystem",
    "ConfigError",
    "InvariantViolation",
    "Point",
    "ReplayDivergence",
    "ScheduleOutcome",
    "Violation",
    "default_action",
    "run_schedule",
]
