"""Schedule exploration: bounded-exhaustive DFS and randomized PCT.

Two complementary strategies drive :func:`~repro.check.harness.run_schedule`:

* :func:`explore_exhaustive` — CHESS-style stateless depth-first search
  with a preemption bound.  Each executed schedule records, at every
  choice point, which tasks were enabled; the search then branches by
  re-executing the same choice prefix with one alternative choice
  substituted, exploring *every* interleaving whose preemption count
  stays within the bound.  For small configurations this is a proof:
  the acceptance configuration (2 writers x 2 events, bound 2) runs
  every such interleaving in seconds.

* :func:`explore_random` — PCT-style randomized priority scheduling
  (Burckhardt et al.): each iteration assigns random task priorities,
  always runs the highest-priority enabled task, and demotes the
  running task at ``depth - 1`` randomly chosen steps.  This probes far
  deeper preemption counts than the exhaustive bound can afford, with
  a per-iteration seed so any failure is reproducible.

Both shrink failing schedules (:mod:`repro.check.shrink`) before
reporting, so a counterexample is the *shortest* forced prefix that
still trips the same invariant.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.check.harness import (
    Action,
    CheckConfig,
    Point,
    ScheduleOutcome,
    Violation,
    run_schedule,
)
from repro.check.shrink import shrink_outcome


@dataclass
class ExploreResult:
    """What an exploration established."""

    passed: bool
    schedules: int = 0
    steps: int = 0
    violation: Optional[Violation] = None
    counterexample: Optional[ScheduleOutcome] = None  # minimized
    original: Optional[ScheduleOutcome] = None        # as first found
    truncated: bool = False  # stopped at max_schedules, not exhausted
    mode: str = "exhaustive"
    seed: Optional[int] = None       # base seed (random mode)
    iteration: Optional[int] = None  # failing iteration (random mode)


def _alternatives(
    point: Point, config: CheckConfig, preemption_bound: int,
) -> List[Action]:
    """Every choice at ``point`` other than the one taken, within budget."""
    alts: List[Action] = []
    prev_enabled = point.prev is not None and point.prev in point.enabled
    for tid in point.enabled:
        action: Action = ("run", tid)
        if action == point.choice:
            continue
        cost = 1 if (prev_enabled and tid != point.prev) else 0
        if point.preemptions + cost <= preemption_bound:
            alts.append(action)
    if point.kills < config.kills:
        for tid in point.enabled:
            if tid < config.writers and ("kill", tid) != point.choice:
                alts.append(("kill", tid))
    return alts


def explore_exhaustive(
    config: CheckConfig,
    preemption_bound: int = 2,
    max_schedules: Optional[int] = None,
    shrink: bool = True,
) -> ExploreResult:
    """Run every schedule of ``config`` within the preemption bound.

    Stops at the first invariant violation (shrunk to a minimal
    counterexample) or when the space is exhausted.  ``max_schedules``
    caps the search; hitting it sets ``truncated`` so callers cannot
    mistake a partial search for a proof.
    """
    result = ExploreResult(passed=True)
    stack: List[List[Action]] = [[]]
    while stack:
        prefix = stack.pop()
        outcome = run_schedule(config, prefix=prefix)
        result.schedules += 1
        result.steps += outcome.steps
        if outcome.violation is not None:
            minimized = (
                shrink_outcome(config, outcome, result)
                if shrink else outcome
            )
            result.passed = False
            result.violation = minimized.violation
            result.counterexample = minimized
            result.original = outcome
            return result
        # Branch only at points beyond the forced prefix: every branch
        # point is visited through exactly one parent, so no schedule is
        # executed twice.
        for i in range(len(prefix), len(outcome.points)):
            point = outcome.points[i]
            for alt in _alternatives(point, config, preemption_bound):
                stack.append(list(outcome.choices[:i]) + [alt])
        if max_schedules is not None and result.schedules >= max_schedules:
            result.truncated = True
            return result
    return result


@dataclass
class _PCTStrategy:
    """Priority scheduling with random change points (one iteration)."""

    priorities: Dict[int, int]
    change_points: frozenset
    kill_at: Optional[int] = None  # (step) at which to kill...
    kill_tid: Optional[int] = None
    _floor: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self._floor = min(self.priorities.values()) - 1

    def choose(self, step, enabled, prev, preemptions, kills):
        if (
            self.kill_at is not None
            and step >= self.kill_at
            and self.kill_tid in enabled
        ):
            tid = self.kill_tid
            self.kill_at = None
            return ("kill", tid)
        best = max(enabled, key=lambda t: self.priorities.get(t, 0))
        if step in self.change_points:
            self.priorities[best] = self._floor
            self._floor -= 1
            best = max(enabled, key=lambda t: self.priorities.get(t, 0))
        return ("run", best)


def explore_random(
    config: CheckConfig,
    schedules: int = 200,
    seed: int = 0,
    depth: int = 3,
    shrink: bool = True,
) -> ExploreResult:
    """PCT-style randomized exploration, reproducible from ``seed``.

    Iteration ``i`` derives its randomness from ``(seed, i)``, so a
    failure reported with its seed re-runs identically.  The first
    schedule is always the default (no-preemption) one, which catches
    sequential bugs with a trivial counterexample.
    """
    result = ExploreResult(passed=True, mode="random", seed=seed)
    ntasks = config.writers + (1 if config.reader else 0)
    horizon = 64
    for i in range(schedules):
        rng = random.Random(f"{seed}:{i}")
        if i == 0:
            strategy = None
        else:
            prios = list(range(ntasks))
            rng.shuffle(prios)
            changes = frozenset(
                rng.randrange(max(1, 2 * horizon))
                for _ in range(max(0, depth - 1))
            )
            kill_at = kill_tid = None
            if config.kills > 0:
                kill_at = rng.randrange(max(1, horizon))
                kill_tid = rng.randrange(config.writers)
            strategy = _PCTStrategy(
                dict(enumerate(prios)), changes, kill_at, kill_tid
            ).choose
        outcome = run_schedule(config, strategy=strategy)
        result.schedules += 1
        result.steps += outcome.steps
        horizon = max(horizon, outcome.steps)
        if outcome.violation is not None:
            minimized = (
                shrink_outcome(config, outcome, result)
                if shrink else outcome
            )
            result.passed = False
            result.violation = minimized.violation
            result.counterexample = minimized
            result.original = outcome
            result.iteration = i
            return result
    return result
