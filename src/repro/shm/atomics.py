"""Atomic words over a shared-memory buffer: the cross-process ``stwcx.``.

:class:`~repro.atomic.primitives.AtomicWord` emulates the hardware
compare-and-store with a micro-lock *internal to the primitive*; that
works between threads but not between processes.  These classes carry
the same semantics across address spaces: the word's storage is an
8-byte little-endian slot in a :mod:`multiprocessing.shared_memory`
buffer, and the micro-lock is a POSIX ``fcntl`` record lock on exactly
that slot's byte range of the segment's backing file.  As with the
in-process stand-in, the lock is held only for the duration of one
read-modify-write — never across the reserve/log/commit sequence, which
is what "lockless" means in the paper (§3.1).

Two locking layers are needed because POSIX record locks are
*per-process* (they do not exclude threads of the same process): a
process-local :class:`threading.Lock` — one per backing file, shared by
every attach in the process via a module registry — serializes threads,
and the ``fcntl`` byte-range lock serializes processes.

``load`` takes no lock: an aligned 8-byte load is atomic on the modeled
hardware (and in practice: CPython reads the slot with one 8-byte
``memcpy``).  The protocol is robust to this anyway — every load feeds
a compare-and-store that revalidates it.

Like the stepped primitives (:mod:`repro.atomic.stepped`), each word
accepts optional ``yield_fn``/``observer`` hooks so the model checker
(:mod:`repro.check.shm`) can turn every shared-memory operation into an
explicit scheduling point; both default to ``None`` and cost one
attribute test on the hot path.
"""

from __future__ import annotations

import os
import struct
import tempfile
import threading
from typing import Callable, Optional

try:  # POSIX only; Windows would need msvcrt.locking (not supported here)
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

_WORD_MASK = (1 << 64) - 1
_WORD = struct.Struct("<Q")

#: Hook signatures, identical to :mod:`repro.atomic.stepped`.
YieldFn = Callable[[str], None]
Observer = Callable[[str, str, tuple, object], None]

#: Process-local registry: one thread lock per backing file, so every
#: attach of the same segment within a process shares the intra-process
#: half of the micro-lock.  Keyed by (st_dev, st_ino).
_THREAD_LOCKS: dict = {}
_THREAD_LOCKS_GUARD = threading.Lock()


def lockfile_for_segment(seg_name: str) -> str:
    """The path the cross-process micro-lock is taken on.

    On Linux the segment itself is a file under ``/dev/shm`` and the
    record locks go straight onto it.  Where the segment has no
    filesystem name (macOS), a sidecar lock file keyed by the segment
    name is used instead; record locks on ranges past EOF are valid, so
    the sidecar never needs to grow.
    """
    direct = f"/dev/shm/{seg_name}"
    if os.path.exists(direct):
        return direct
    return os.path.join(tempfile.gettempdir(), f"repro-shm-{seg_name}.lock")


class SegmentLock:
    """The per-segment micro-lock: fcntl record locks + a thread lock.

    One instance per attach; instances in the same process attached to
    the same segment share the registry thread lock, instances in
    different processes meet at the fcntl byte-range lock.
    """

    def __init__(self, seg_name: str) -> None:
        self.path = lockfile_for_segment(seg_name)
        self._sidecar = not self.path.startswith("/dev/shm/")
        self._fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o600)
        st = os.fstat(self._fd)
        key = (st.st_dev, st.st_ino)
        with _THREAD_LOCKS_GUARD:
            self._thread_lock = _THREAD_LOCKS.setdefault(
                key, threading.Lock())

    def acquire(self, byte_off: int) -> None:
        self._thread_lock.acquire()
        try:
            if fcntl is not None:
                fcntl.lockf(self._fd, fcntl.LOCK_EX, 8, byte_off, os.SEEK_SET)
        except BaseException:  # pragma: no cover - keep the pair balanced
            self._thread_lock.release()
            raise

    def release(self, byte_off: int) -> None:
        try:
            if fcntl is not None:
                fcntl.lockf(self._fd, fcntl.LOCK_UN, 8, byte_off, os.SEEK_SET)
        finally:
            self._thread_lock.release()

    def close(self) -> None:
        """Release the fd (idempotent).  Per POSIX, closing drops any
        record locks this process holds on the file — callers must not
        close while an operation is in flight."""
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None  # type: ignore[assignment]

    def unlink_sidecar(self) -> None:
        """Remove the sidecar lock file, if one was used (idempotent)."""
        if self._sidecar:
            try:
                os.unlink(self.path)
            except FileNotFoundError:
                pass

    def __enter__(self) -> "SegmentLock":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ShmAtomicWord:
    """A 64-bit word in shared memory with atomic operations.

    Same surface as :class:`~repro.atomic.primitives.AtomicWord`, plus
    ``peek`` (checker-side read with no scheduling point) and the
    ``yield_fn``/``observer`` seams of the stepped primitives.
    """

    __slots__ = ("_buf", "_off", "_lock", "name", "yield_fn", "observer")

    def __init__(
        self,
        buf,
        byte_off: int,
        lock: SegmentLock,
        name: str = "word",
        yield_fn: Optional[YieldFn] = None,
        observer: Optional[Observer] = None,
    ) -> None:
        if byte_off % 8 != 0:
            raise ValueError("shm words must be 8-byte aligned")
        self._buf = buf
        self._off = byte_off
        self._lock = lock
        self.name = name
        self.yield_fn = yield_fn
        self.observer = observer

    # -- checker-side access (no scheduling point, no lock) ------------
    def peek(self) -> int:
        return _WORD.unpack_from(self._buf, self._off)[0]

    # -- protocol-side operations --------------------------------------
    def load(self) -> int:
        if self.yield_fn is not None:
            self.yield_fn(f"{self.name}.load")
        value = _WORD.unpack_from(self._buf, self._off)[0]
        if self.observer is not None:
            self.observer(self.name, "load", (), value)
        return value

    def store(self, value: int) -> None:
        if self.yield_fn is not None:
            self.yield_fn(f"{self.name}.store")
        value &= _WORD_MASK
        self._lock.acquire(self._off)
        try:
            old = _WORD.unpack_from(self._buf, self._off)[0]
            _WORD.pack_into(self._buf, self._off, value)
        finally:
            self._lock.release(self._off)
        if self.observer is not None:
            self.observer(self.name, "store", (old, value), None)

    def compare_and_store(self, expected: int, new: int) -> bool:
        if self.yield_fn is not None:
            self.yield_fn(f"{self.name}.cas")
        expected &= _WORD_MASK
        new &= _WORD_MASK
        self._lock.acquire(self._off)
        try:
            ok = _WORD.unpack_from(self._buf, self._off)[0] == expected
            if ok:
                _WORD.pack_into(self._buf, self._off, new)
        finally:
            self._lock.release(self._off)
        if self.observer is not None:
            self.observer(self.name, "cas", (expected, new), ok)
        return ok

    def fetch_and_add(self, delta: int) -> int:
        if self.yield_fn is not None:
            self.yield_fn(f"{self.name}.faa")
        self._lock.acquire(self._off)
        try:
            old = _WORD.unpack_from(self._buf, self._off)[0]
            _WORD.pack_into(self._buf, self._off, (old + delta) & _WORD_MASK)
        finally:
            self._lock.release(self._off)
        if self.observer is not None:
            self.observer(self.name, "faa",
                          (old, (old + delta) & _WORD_MASK), old)
        return old

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ShmAtomicWord({self.name}@{self._off}={self.peek():#x})"


class ShmAtomicArray:
    """A fixed run of 64-bit shm words with per-element atomic ops.

    Mirrors :class:`~repro.atomic.primitives.AtomicArray` (the
    per-buffer committed counts).  Each element locks its own 8-byte
    range, so counters for different buffers never contend.
    """

    __slots__ = ("_buf", "_off", "_length", "_lock", "name",
                 "yield_fn", "observer")

    def __init__(
        self,
        buf,
        byte_off: int,
        length: int,
        lock: SegmentLock,
        name: str = "array",
        yield_fn: Optional[YieldFn] = None,
        observer: Optional[Observer] = None,
    ) -> None:
        if length < 0:
            raise ValueError("length must be non-negative")
        if byte_off % 8 != 0:
            raise ValueError("shm words must be 8-byte aligned")
        self._buf = buf
        self._off = byte_off
        self._length = length
        self._lock = lock
        self.name = name
        self.yield_fn = yield_fn
        self.observer = observer

    def __len__(self) -> int:
        return self._length

    def _at(self, index: int) -> int:
        if not 0 <= index < self._length:
            raise IndexError(f"index {index} out of range 0..{self._length}")
        return self._off + 8 * index

    # -- checker-side access -------------------------------------------
    def peek(self, index: int) -> int:
        return _WORD.unpack_from(self._buf, self._at(index))[0]

    def peek_all(self) -> list:
        return [self.peek(i) for i in range(self._length)]

    # -- protocol-side operations --------------------------------------
    def load(self, index: int) -> int:
        off = self._at(index)
        if self.yield_fn is not None:
            self.yield_fn(f"{self.name}[{index}].load")
        value = _WORD.unpack_from(self._buf, off)[0]
        if self.observer is not None:
            self.observer(f"{self.name}[{index}]", "load", (index,), value)
        return value

    def store(self, index: int, value: int) -> None:
        off = self._at(index)
        if self.yield_fn is not None:
            self.yield_fn(f"{self.name}[{index}].store")
        value &= _WORD_MASK
        self._lock.acquire(off)
        try:
            old = _WORD.unpack_from(self._buf, off)[0]
            _WORD.pack_into(self._buf, off, value)
        finally:
            self._lock.release(off)
        if self.observer is not None:
            self.observer(f"{self.name}[{index}]", "store",
                          (index, old, value), None)

    def compare_and_store(self, index: int, expected: int, new: int) -> bool:
        off = self._at(index)
        if self.yield_fn is not None:
            self.yield_fn(f"{self.name}[{index}].cas")
        expected &= _WORD_MASK
        new &= _WORD_MASK
        self._lock.acquire(off)
        try:
            ok = _WORD.unpack_from(self._buf, off)[0] == expected
            if ok:
                _WORD.pack_into(self._buf, off, new)
        finally:
            self._lock.release(off)
        if self.observer is not None:
            self.observer(f"{self.name}[{index}]", "cas",
                          (index, expected, new), ok)
        return ok

    def fetch_and_add(self, index: int, delta: int) -> int:
        off = self._at(index)
        if self.yield_fn is not None:
            self.yield_fn(f"{self.name}[{index}].faa")
        self._lock.acquire(off)
        try:
            old = _WORD.unpack_from(self._buf, off)[0]
            _WORD.pack_into(self._buf, off, (old + delta) & _WORD_MASK)
        finally:
            self._lock.release(off)
        if self.observer is not None:
            self.observer(f"{self.name}[{index}]", "faa",
                          (index, old, (old + delta) & _WORD_MASK), old)
        return old

    def snapshot(self) -> list:
        return [self.load(i) for i in range(self._length)]


class ShmWordsView:
    """A run of shm words with the list surface the logger expects.

    Serves as :attr:`TraceControl.array` (the trace memory) and as the
    plain ``slot_seq`` array.  Single-word stores take **no lock**: the
    reservation protocol hands each word to exactly one writer, and an
    aligned 8-byte store is atomic on the modeled hardware — this is
    precisely the paper's "fill in the reserved words with no lock
    held".  Slice reads copy out (the write-out path); slice writes are
    bookkeeping (reset / zero-ahead) and also unlocked, with the same
    single-owner caveat the in-process implementation documents.
    """

    __slots__ = ("_buf", "_off", "_length")

    def __init__(self, buf, byte_off: int, length: int) -> None:
        if byte_off % 8 != 0:
            raise ValueError("shm words must be 8-byte aligned")
        self._buf = buf
        self._off = byte_off
        self._length = length

    def __len__(self) -> int:
        return self._length

    def _check(self, index: int) -> int:
        if not 0 <= index < self._length:
            raise IndexError(f"index {index} out of range 0..{self._length}")
        return self._off + 8 * index

    def __getitem__(self, key):
        if isinstance(key, slice):
            start, stop, step = key.indices(self._length)
            if step != 1:
                return [self[i] for i in range(start, stop, step)]
            n = max(0, stop - start)
            return list(struct.unpack_from(f"<{n}Q", self._buf,
                                           self._off + 8 * start))
        return _WORD.unpack_from(self._buf, self._check(key))[0]

    def __setitem__(self, key, value) -> None:
        if isinstance(key, slice):
            start, stop, step = key.indices(self._length)
            if step != 1:
                raise ValueError("extended-step slice writes unsupported")
            values = [v & _WORD_MASK for v in value]
            if len(values) != stop - start:
                raise ValueError(
                    f"slice of {stop - start} words assigned "
                    f"{len(values)} values")
            struct.pack_into(f"<{len(values)}Q", self._buf,
                             self._off + 8 * start, *values)
            return
        _WORD.pack_into(self._buf, self._check(key), value & _WORD_MASK)

    def __iter__(self):
        return iter(self[0:self._length])

    def tolist(self) -> list:
        return self[0:self._length]
