"""Segment layout and lifecycle: the user-mapped trace memory, for real.

In K42 the per-CPU trace control structures and trace memory are mapped
into *every* address space (§2, "User-mapped per-processor buffers"); any
process logs straight into them without a system call.  This module
reproduces that with one POSIX shared-memory segment holding, for each
CPU: the reservation index, the buffer-start bookkeeping word, the
generation-tagged committed counts, the slot-occupancy words, and the
trace memory itself.  Processes rendezvous on the segment *name* — the
moral equivalent of the kernel mapping the region into a new address
space — and run the unchanged reserve/log/commit protocol over it.

Layout (64-bit little-endian words)::

    header    : magic | version | ncpus | buffer_words | num_buffers
              | tick_ns | clock_origin_ns | flags | reserved...   (16 words)
    cpu ctrl  : index | booked_seq | reserved x2
              | committed[num_buffers] | slot_seq[num_buffers]    (per CPU)
    trace mem : buffer_words * num_buffers words                  (per CPU)

All per-CPU state is contiguous and CPU blocks are disjoint, preserving
the paper's no-shared-cache-lines property at segment granularity.

Timestamps must agree across processes, so the creator stamps a
``time.monotonic_ns`` origin into the header and every process derives
ticks from the same system-wide clock (:class:`SharedShmClock`);
per-process ``WallClock`` origins would skew each writer's stream.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import List, Optional

from repro.core.buffers import Mode, TraceControl
from repro.core.logger import TraceLogger
from repro.core.mask import TraceMask
from repro.core.registry import EventRegistry
from repro.shm.atomics import (
    Observer,
    SegmentLock,
    ShmAtomicArray,
    ShmAtomicWord,
    ShmWordsView,
    YieldFn,
)

#: ``b"K42SHM01"`` read as a little-endian 64-bit word.
SEGMENT_MAGIC = int.from_bytes(b"K42SHM01", "little")
SEGMENT_VERSION = 1
HEADER_WORDS = 16

# Header word indices.
_H_MAGIC = 0
_H_VERSION = 1
_H_NCPUS = 2
_H_BUFFER_WORDS = 3
_H_NUM_BUFFERS = 4
_H_TICK_NS = 5
_H_CLOCK_ORIGIN = 6
_H_FLAGS = 7

#: Flag bits (word ``_H_FLAGS``).
FLAG_DONE = 1

# Per-CPU control block word indices (before the committed counts).
_C_INDEX = 0
_C_BOOKED = 1
_C_FIXED_WORDS = 4  # index, booked_seq, 2 reserved


class ShmFormatError(ValueError):
    """The named segment is not a trace region this code understands."""


@dataclass(frozen=True)
class ShmLayout:
    """Pure geometry: word offsets of everything in the segment."""

    ncpus: int
    buffer_words: int
    num_buffers: int

    def __post_init__(self) -> None:
        if self.ncpus < 1:
            raise ValueError("ncpus must be >= 1")

    @property
    def total_words_per_cpu(self) -> int:
        return self.buffer_words * self.num_buffers

    @property
    def ctrl_words(self) -> int:
        return _C_FIXED_WORDS + 2 * self.num_buffers

    @property
    def cpu_words(self) -> int:
        return self.ctrl_words + self.total_words_per_cpu

    @property
    def segment_words(self) -> int:
        return HEADER_WORDS + self.ncpus * self.cpu_words

    @property
    def segment_bytes(self) -> int:
        return 8 * self.segment_words

    # -- word offsets ----------------------------------------------------
    def cpu_base(self, cpu: int) -> int:
        if not 0 <= cpu < self.ncpus:
            raise ValueError(f"cpu {cpu} out of range 0..{self.ncpus}")
        return HEADER_WORDS + cpu * self.cpu_words

    def index_word(self, cpu: int) -> int:
        return self.cpu_base(cpu) + _C_INDEX

    def booked_word(self, cpu: int) -> int:
        return self.cpu_base(cpu) + _C_BOOKED

    def committed_words(self, cpu: int) -> int:
        return self.cpu_base(cpu) + _C_FIXED_WORDS

    def slot_seq_words(self, cpu: int) -> int:
        return self.committed_words(cpu) + self.num_buffers

    def trace_words(self, cpu: int) -> int:
        return self.cpu_base(cpu) + self.ctrl_words


class SharedShmClock:
    """System-wide monotonic ticks from the segment's shared origin.

    ``CLOCK_MONOTONIC`` (``time.monotonic_ns``) has one epoch for the
    whole machine on Linux and macOS, so every process attaching the
    segment computes identical tick values — the PowerPC synchronized
    timebase, cross-process edition.
    """

    cost_cycles = 10

    def __init__(self, origin_ns: int, tick_ns: int = 1) -> None:
        if tick_ns < 1:
            raise ValueError("tick_ns must be >= 1")
        self.origin_ns = origin_ns
        self.tick_ns = tick_ns

    def now(self, cpu: int = 0) -> int:
        return (time.monotonic_ns() - self.origin_ns) // self.tick_ns


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker adoption.

    Python <= 3.12 registers the segment with the ``resource_tracker``
    on *every* attach, so each non-creating process would try to unlink
    it at exit (and warn about "leaked" objects it never owned).  3.13
    grew ``track=False`` for exactly this; on older versions the
    ``register`` call is suppressed while attaching.  Suppressing is the
    only safe emulation: the tracker's cache is one set shared by the
    whole process tree, so the register-then-``unregister`` alternative
    would erase the *creator's* registration and the eventual ``unlink``
    would trip a tracker KeyError.  The creator stays registered — the
    tracker is then the backstop that unlinks the segment if the owning
    process dies before :meth:`ShmTraceRegion.unlink`.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python <= 3.12: no track parameter
        from multiprocessing import resource_tracker
        orig_register = resource_tracker.register
        resource_tracker.register = lambda *a, **kw: None  # type: ignore
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = orig_register


class ShmTraceRegion:
    """One shared-memory segment of per-CPU trace buffers.

    Create in one process, :meth:`attach` by name from any other; both
    hand out :class:`~repro.core.buffers.TraceControl` /
    :class:`~repro.core.logger.TraceLogger` objects whose control state
    lives in the segment.  Exactly one process should bind each CPU as a
    writer at a time (the per-process CPU binding of the writer API);
    readers — the collector — may watch any CPU concurrently.
    """

    def __init__(self, shm: shared_memory.SharedMemory, layout: ShmLayout,
                 tick_ns: int, clock_origin_ns: int, owner: bool) -> None:
        self.shm = shm
        self.layout = layout
        self.tick_ns = tick_ns
        self.clock_origin_ns = clock_origin_ns
        self.owner = owner
        self.seglock = SegmentLock(shm.name)
        self._closed = False

    @property
    def name(self) -> str:
        return self.shm.name

    # -- lifecycle -------------------------------------------------------
    @classmethod
    def create(
        cls,
        name: Optional[str] = None,
        *,
        ncpus: int = 1,
        buffer_words: int = 256,
        num_buffers: int = 4,
        tick_ns: int = 1,
        start_anchors: bool = True,
        clock=None,
    ) -> "ShmTraceRegion":
        """Create and initialize a fresh segment (zero-filled by the OS).

        ``start_anchors`` logs the sequence-0 timestamp anchor into
        every CPU's buffer — the job of :meth:`TraceLogger.start`, done
        once here by the creator so attaching writers never race over
        it.  ``clock`` overrides the shared clock (the model checker
        passes its step clock); writers attaching later always derive
        :class:`SharedShmClock` from the header, so an override only
        makes sense when every participant is handed the same object.
        """
        layout = ShmLayout(ncpus=ncpus, buffer_words=buffer_words,
                           num_buffers=num_buffers)
        shm = shared_memory.SharedMemory(
            create=True, size=layout.segment_bytes, name=name)
        origin_ns = time.monotonic_ns()
        region = cls(shm, layout, tick_ns, origin_ns, owner=True)
        region._poke_header(_H_MAGIC, SEGMENT_MAGIC)
        region._poke_header(_H_VERSION, SEGMENT_VERSION)
        region._poke_header(_H_NCPUS, ncpus)
        region._poke_header(_H_BUFFER_WORDS, buffer_words)
        region._poke_header(_H_NUM_BUFFERS, num_buffers)
        region._poke_header(_H_TICK_NS, tick_ns)
        region._poke_header(_H_CLOCK_ORIGIN, origin_ns)
        if start_anchors:
            for cpu in range(ncpus):
                region.logger(cpu, clock=clock).start()
        return region

    @classmethod
    def attach(cls, name: str) -> "ShmTraceRegion":
        """Attach to an existing segment by name and validate its header."""
        shm = _attach_segment(name)
        view = ShmWordsView(shm.buf, 0, HEADER_WORDS)
        magic = view[_H_MAGIC]
        if magic != SEGMENT_MAGIC:
            shm.close()
            raise ShmFormatError(
                f"segment {name!r} is not a trace region "
                f"(magic {magic:#x})")
        if view[_H_VERSION] != SEGMENT_VERSION:
            version = view[_H_VERSION]
            shm.close()
            raise ShmFormatError(
                f"segment {name!r} has unsupported version {version}")
        layout = ShmLayout(
            ncpus=view[_H_NCPUS],
            buffer_words=view[_H_BUFFER_WORDS],
            num_buffers=view[_H_NUM_BUFFERS],
        )
        if shm.size < layout.segment_bytes:
            shm.close()
            raise ShmFormatError(
                f"segment {name!r} holds {shm.size} bytes, geometry "
                f"needs {layout.segment_bytes}")
        return cls(shm, layout, view[_H_TICK_NS], view[_H_CLOCK_ORIGIN],
                   owner=False)

    def close(self) -> None:
        """Detach from the segment (idempotent; keeps the segment alive)."""
        if self._closed:
            return
        self._closed = True
        self.seglock.close()
        self.shm.close()

    def unlink(self) -> None:
        """Destroy the segment system-wide (idempotent)."""
        try:
            self.shm.unlink()
        except FileNotFoundError:
            pass
        self.seglock.unlink_sidecar()

    @staticmethod
    def cleanup(name: str) -> bool:
        """Best-effort destroy-by-name; True if a segment was removed.

        The belt-and-braces path for tests and supervisors: reclaims a
        segment whose owner was SIGKILLed before it could unlink.
        """
        try:
            shm = _attach_segment(name)
        except (FileNotFoundError, ShmFormatError):
            return False
        try:
            shm.unlink()
        except FileNotFoundError:
            return False
        finally:
            shm.close()
        SegmentLock(name).unlink_sidecar()
        return True

    def __enter__(self) -> "ShmTraceRegion":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        if self.owner:
            self.unlink()

    # -- raw header access ----------------------------------------------
    def _poke_header(self, word: int, value: int) -> None:
        ShmWordsView(self.shm.buf, 0, HEADER_WORDS)[word] = value

    def _peek_header(self, word: int) -> int:
        return ShmWordsView(self.shm.buf, 0, HEADER_WORDS)[word]

    def _flags_word(self) -> ShmAtomicWord:
        return ShmAtomicWord(self.shm.buf, 8 * _H_FLAGS, self.seglock,
                             name="flags")

    def set_done(self) -> None:
        """Raise the done flag: writers have quiesced, collectors finish."""
        flags = self._flags_word()
        while True:
            cur = flags.peek()
            if cur & FLAG_DONE:
                return
            if flags.compare_and_store(cur, cur | FLAG_DONE):
                return

    def is_done(self) -> bool:
        return bool(self._peek_header(_H_FLAGS) & FLAG_DONE)

    # -- protocol views --------------------------------------------------
    def clock(self) -> SharedShmClock:
        return SharedShmClock(self.clock_origin_ns, self.tick_ns)

    def trace_view(self, cpu: int) -> ShmWordsView:
        """The raw trace-memory words of one CPU (collector's read side)."""
        return ShmWordsView(self.shm.buf, 8 * self.layout.trace_words(cpu),
                            self.layout.total_words_per_cpu)

    def index_word(self, cpu: int, *, yield_fn: Optional[YieldFn] = None,
                   observer: Optional[Observer] = None) -> ShmAtomicWord:
        return ShmAtomicWord(self.shm.buf, 8 * self.layout.index_word(cpu),
                             self.seglock, name=f"cpu{cpu}.index",
                             yield_fn=yield_fn, observer=observer)

    def slot_seq_view(self, cpu: int) -> ShmWordsView:
        return ShmWordsView(self.shm.buf,
                            8 * self.layout.slot_seq_words(cpu),
                            self.layout.num_buffers)

    def committed_array(self, cpu: int, *,
                        yield_fn: Optional[YieldFn] = None,
                        observer: Optional[Observer] = None
                        ) -> ShmAtomicArray:
        return ShmAtomicArray(self.shm.buf,
                              8 * self.layout.committed_words(cpu),
                              self.layout.num_buffers, self.seglock,
                              name=f"cpu{cpu}.committed",
                              yield_fn=yield_fn, observer=observer)

    def control(
        self,
        cpu: int,
        *,
        mode: Mode = "flight",
        array: Optional[List[int]] = None,
        yield_fn: Optional[YieldFn] = None,
        observer: Optional[Observer] = None,
    ) -> TraceControl:
        """A :class:`TraceControl` whose state lives in the segment.

        Defaults to flight mode: a cross-process writer has no local
        write-out queue — the collector process infers completed buffers
        from the shared index instead, so nothing writer-side may depend
        on in-process completion callbacks.  ``array`` substitutes the
        trace-memory view (the checker's double-write instrumentation);
        ``yield_fn``/``observer`` thread through to every shm atomic.
        """
        ctl = TraceControl(
            cpu=cpu,
            buffer_words=self.layout.buffer_words,
            num_buffers=self.layout.num_buffers,
            mode=mode,
        )
        lay = self.layout
        buf = self.shm.buf
        booked = ShmAtomicWord(buf, 8 * lay.booked_word(cpu), self.seglock,
                               name=f"cpu{cpu}.booked_seq",
                               yield_fn=yield_fn, observer=observer)
        return ctl.adopt_state(
            index=self.index_word(cpu, yield_fn=yield_fn, observer=observer),
            booked_seq=booked,
            committed=self.committed_array(cpu, yield_fn=yield_fn,
                                           observer=observer),
            array=array if array is not None else self.trace_view(cpu),
            slot_seq=self.slot_seq_view(cpu),
        )

    def logger(
        self,
        cpu: int,
        *,
        mask: Optional[TraceMask] = None,
        clock=None,
        registry: Optional[EventRegistry] = None,
        mode: Mode = "flight",
        array: Optional[List[int]] = None,
        yield_fn: Optional[YieldFn] = None,
        observer: Optional[Observer] = None,
        fresh_anchor: bool = True,
    ) -> TraceLogger:
        """A ready-to-log :class:`TraceLogger` bound to one CPU.

        This *is* the writer-process API: attach by name, bind a CPU,
        log.  Attaching processes must not call ``start()`` — the
        creator already anchored buffer 0.  They do get a fresh
        full-width timestamp anchor, though: a writer can attach
        arbitrarily long after the creator's buffer-0 anchor, and a
        forward gap of 2^31 clock ticks inside one buffer would
        otherwise read as a backwards wrap (``fresh_anchor=False``
        opts out for callers that manage anchoring themselves).
        """
        if mask is None:
            mask = TraceMask()
            mask.enable_all()
        logger = TraceLogger(
            self.control(cpu, mode=mode, array=array,
                         yield_fn=yield_fn, observer=observer),
            mask,
            clock if clock is not None else self.clock(),
            registry=registry,
        )
        if fresh_anchor:
            logger.log_timestamp_anchor()
        return logger
