"""Cross-process lockless logging over POSIX shared memory.

Everything before this package emulated the paper's *user-mapped*
per-CPU trace buffers inside one Python process: many threads, one
address space.  This package maps the same structures into a
:mod:`multiprocessing.shared_memory` segment so that **independent OS
processes** run the unchanged reserve/log/commit protocol
(:class:`~repro.core.logger.TraceLogger`, Figure 2) against the same
per-CPU buffers — real producers, real contention, real preemption —
while a collector process drains completed buffers into the standard
trace-file format every existing reader and tool consumes unmodified.

Pieces:

* :mod:`repro.shm.atomics` — :class:`ShmAtomicWord` /
  :class:`ShmAtomicArray`, compare-and-store over a shared buffer with
  the same semantics as :mod:`repro.atomic.primitives`; the documented
  cross-process stand-in for PowerPC ``stwcx.``.
* :mod:`repro.shm.region` — segment layout, create/attach-by-name,
  per-CPU :class:`~repro.core.buffers.TraceControl` views, the shared
  monotonic clock.
* :mod:`repro.shm.collector` — drains committed buffers out of the
  shared ring into :class:`~repro.core.buffers.BufferRecord` frames /
  ``.k42`` trace files.
* :mod:`repro.shm.procs` — writer/collector OS-process entry points and
  the workload runner behind ``repro-trace shm-demo``.

The model checker extends across this seam in :mod:`repro.check.shm`:
the stepped scheduling-point instrumentation wraps the shm primitives,
so the attach/drain logic is explored under adversarial interleavings
exactly like the core protocol.
"""

from repro.shm.atomics import (
    ShmAtomicArray,
    ShmAtomicWord,
    ShmWordsView,
    SegmentLock,
)
from repro.shm.collector import DrainStats, ShmCollector
from repro.shm.region import SharedShmClock, ShmLayout, ShmTraceRegion
from repro.shm.procs import ShmWorkloadResult, run_shm_workload

__all__ = [
    "ShmAtomicWord",
    "ShmAtomicArray",
    "ShmWordsView",
    "SegmentLock",
    "ShmLayout",
    "ShmTraceRegion",
    "SharedShmClock",
    "ShmCollector",
    "DrainStats",
    "ShmWorkloadResult",
    "run_shm_workload",
]
