"""The collector process: drains the shared ring into trace files.

Writers attached to an :class:`~repro.shm.region.ShmTraceRegion` run in
flight mode — they have no process-local write-out queue, because a
queue in one writer's heap is invisible to everyone else.  Instead the
collector *infers* completion from the shared state, the way K42's
write-out daemon watched the per-CPU control structures: buffer sequence
``s`` on a CPU is complete once the reservation index has moved past it
(``index // buffer_words > s``).  No writer-side cooperation, no locks —
the collector only ever reads.

The index alone cannot prove the buffer's *words* are there — it
advances at reserve time, before the copy-in.  The completion signal
the protocol actually provides is the committed count (§3.1's validity
gate), so a live :meth:`poll` emits a full buffer only once its count
covers ``buffer_words``: commits trail writes in program order, and the
count is read **before** the payload copy, so a covered copy can never
contain unwritten words.  A buffer whose count never covers it (its
writer was preempted forever, or killed) is held back — writers get
"almost a full ring's time" to finish (§3.1) — until either

* the ring laps the collector — detected by re-reading the index after
  the copy; a lapped buffer is counted dropped, exactly the data-loss
  accounting the in-process write-out daemon keeps; or
* :meth:`finalize` runs at quiescence (the region's done flag, or the
  drain timeout): it emits everything regardless of coverage, so a
  killed writer's torn buffer still reaches the reader's heuristics,
  flagged by its short count rather than silently dropped.

``lag`` additionally holds back the most recent completed buffers from
live polls; :meth:`finalize` drops it and emits the final partial
buffers the same way :meth:`TraceControl.flush` does.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import BinaryIO, Dict, List, Optional

from repro.core.buffers import BufferRecord, decode_commit_word
from repro.core.writer import TraceFileWriter
from repro.shm.region import ShmTraceRegion

#: Re-copy attempts when a laggard writer commits mid-copy.
_STABLE_COPY_TRIES = 4


@dataclass
class DrainStats:
    """What one collector saw over its lifetime."""

    frames: int = 0            # records emitted (full + partial)
    partial_frames: int = 0    # of which partial (finalize only)
    dropped: int = 0           # buffers lost to ring lapping
    polls: int = 0             # sweeps over the CPUs
    unstable_copies: int = 0   # copies re-done under a racing commit
    #: distinct buffers whose emission was deferred for an uncovered
    #: committed count — each (cpu, seq) counts once, no matter how many
    #: polls re-observed it, so the stat is comparable across poll rates
    held: int = 0
    next_seq: Dict[int, int] = field(default_factory=dict)

    def merge_from(self, other: "DrainStats") -> None:
        self.frames += other.frames
        self.partial_frames += other.partial_frames
        self.dropped += other.dropped
        self.polls += other.polls
        self.unstable_copies += other.unstable_copies
        self.held += other.held
        self.next_seq.update(other.next_seq)


class ShmCollector:
    """Read-only drainer of one region's per-CPU rings.

    One collector instance per region; it keeps a ``next_seq`` cursor
    per CPU so every buffer sequence is emitted at most once.  The
    records it produces are ordinary :class:`BufferRecord` objects —
    feed them to :func:`~repro.core.writer.save_records`, the stream
    readers, the columnar paths, anything.
    """

    def __init__(self, region: ShmTraceRegion, lag: int = 1) -> None:
        if lag < 0:
            raise ValueError("lag must be >= 0")
        self.region = region
        self.lag = lag
        self.stats = DrainStats()
        lay = region.layout
        self._next_seq = {cpu: 0 for cpu in range(lay.ncpus)}
        self._index = {cpu: region.index_word(cpu)
                       for cpu in range(lay.ncpus)}
        self._committed = {cpu: region.committed_array(cpu)
                           for cpu in range(lay.ncpus)}
        self._trace = {cpu: region.trace_view(cpu)
                       for cpu in range(lay.ncpus)}
        # (cpu, seq) pairs already counted on stats.held: a slow writer
        # holds the same buffer across many polls, but it is one
        # deferred emission, not one per poll.
        self._held_seen: set = set()

    # -- copying one buffer ----------------------------------------------
    def _copy_buffer(self, cpu: int, seq: int) -> Optional[BufferRecord]:
        """Copy buffer ``seq`` out of CPU ``cpu``'s ring, or None if lapped.

        Order matters: committed count first, payload second, index
        recheck last.  Commits trail writes in the protocol, so a count
        read before the copy can never claim words the copy missed; the
        index recheck catches the ring recycling the slot mid-copy.
        Re-reads until the committed word is stable across the copy so a
        laggard committer does not make a clean buffer look garbled.
        """
        lay = self.region.layout
        bw = lay.buffer_words
        slot = seq % lay.num_buffers
        start = slot * bw
        committed_word = self._committed[cpu].peek(slot)
        for attempt in range(_STABLE_COPY_TRIES):
            words = self._trace[cpu][start:start + bw]
            if self._index[cpu].peek() // bw - seq >= lay.num_buffers:
                return None  # lapped mid-copy; the slot holds a newer buffer
            recheck = self._committed[cpu].peek(slot)
            if recheck == committed_word:
                break
            committed_word = recheck
            self.stats.unstable_copies += 1
        return BufferRecord(
            cpu=cpu,
            seq=seq,
            words=words,
            committed=decode_commit_word(seq, committed_word),
            fill_words=bw,
        )

    # -- sweeps ------------------------------------------------------------
    def poll(self, lag: Optional[int] = None, *,
             force: bool = False) -> List[BufferRecord]:
        """One sweep: emit every newly-completed buffer on every CPU.

        ``force`` drops the committed-count gate: buffers are emitted
        covered or not.  Only :meth:`finalize` should force — a live
        poll that forces can capture a buffer mid-write and emit it as
        garbage that the quiesced ring would have emitted clean.
        """
        lag = self.lag if lag is None else lag
        lay = self.region.layout
        records: List[BufferRecord] = []
        self.stats.polls += 1
        for cpu in range(lay.ncpus):
            cur_seq = self._index[cpu].peek() // lay.buffer_words
            next_seq = self._next_seq[cpu]
            # Ring already lapped the cursor: the oldest sequences are
            # unrecoverable — account for them and move the cursor up.
            oldest_alive = cur_seq - lay.num_buffers + 1
            if next_seq < oldest_alive:
                self.stats.dropped += oldest_alive - next_seq
                next_seq = oldest_alive
            while next_seq < cur_seq - lag:
                if not force:
                    word = self._committed[cpu].peek(
                        next_seq % lay.num_buffers)
                    if decode_commit_word(next_seq, word) < lay.buffer_words:
                        # Reserved past it, but not every event inside is
                        # committed yet: its writer is still (or was, when
                        # it died) filling in.  Hold; emission stays in
                        # sequence order, so later buffers wait too.
                        if (cpu, next_seq) not in self._held_seen:
                            self._held_seen.add((cpu, next_seq))
                            self.stats.held += 1
                        break
                rec = self._copy_buffer(cpu, next_seq)
                if rec is None:
                    self.stats.dropped += 1
                else:
                    records.append(rec)
                    self.stats.frames += 1
                self._held_seen.discard((cpu, next_seq))
                next_seq += 1
            self._next_seq[cpu] = next_seq
            self.stats.next_seq[cpu] = next_seq
        return records

    def finalize(self) -> List[BufferRecord]:
        """Final sweep after writers quiesce: no lag, plus partials.

        Mirrors :meth:`TraceControl.flush`: the in-progress buffer (if
        any words are reserved in it) is emitted as a partial record.
        The exact-boundary case flush special-cases — a full buffer whose
        completion bookkeeping never ran — needs nothing here, because
        completion is inferred from the index, not from the booking.
        """
        records = self.poll(lag=0, force=True)
        lay = self.region.layout
        for cpu in range(lay.ncpus):
            index = self._index[cpu].peek()
            fill = index & (lay.buffer_words - 1)
            seq = index // lay.buffer_words
            if fill == 0 or self._next_seq[cpu] > seq:
                continue
            rec = self._copy_buffer(cpu, seq)
            if rec is None:
                self.stats.dropped += 1
                continue
            rec.fill_words = fill
            rec.partial = True
            records.append(rec)
            self.stats.frames += 1
            self.stats.partial_frames += 1
            self._next_seq[cpu] = seq + 1
            self.stats.next_seq[cpu] = self._next_seq[cpu]
        return records

    # -- the long-running drain loop ---------------------------------------
    def drain_to(self, writer: TraceFileWriter, *,
                 poll_interval_s: float = 0.002,
                 timeout_s: Optional[float] = None) -> DrainStats:
        """Poll until the region's done flag rises, then finalize.

        Writes every record straight to ``writer`` so memory stays flat
        regardless of trace size.  ``timeout_s`` bounds the loop for
        supervisors that cannot guarantee the flag (a writer-killed
        scenario); on timeout the collector finalizes with whatever the
        ring holds — trailing garbage is the committed counts' problem,
        which is the point.
        """
        deadline = None if timeout_s is None else \
            time.monotonic() + timeout_s
        while True:
            for rec in self.poll():
                writer.write_record(rec)
            if self.region.is_done():
                break
            if deadline is not None and time.monotonic() >= deadline:
                break
            time.sleep(poll_interval_s)
        for rec in self.finalize():
            writer.write_record(rec)
        return self.stats

    def drain_to_file(self, path: str, **kw) -> DrainStats:
        """Open ``path``, :meth:`drain_to` it, and flush to disk."""
        with open(path, "wb") as fh:
            return self.drain_to(
                TraceFileWriter(fh, self.region.layout.buffer_words), **kw)


def open_trace_writer(fh: BinaryIO, buffer_words: int) -> TraceFileWriter:
    """Tiny alias kept for symmetry with the reader-side helpers."""
    return TraceFileWriter(fh, buffer_words)
