"""OS-process entry points: real writers, a real collector, one segment.

This is where the reproduction finally runs the paper's scenario for
real: N independent OS processes attach the shared trace region by name,
bind one CPU's buffers each, and log through the unchanged lockless
protocol while a separate collector process drains completed buffers to
a trace file.  No locks are held across reserve/log/commit — the only
synchronization is the compare-and-store inside the shm atomics, exactly
as on the in-process path.

The entry functions are module-level so they survive the ``spawn`` start
method (children re-import this module); everything they need travels as
picklable arguments.  Writers log the same deterministic payloads the
model checker uses (:func:`expected_payloads`), so tests can verify the
drained trace is complete event-by-event.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.majors import Major
from repro.shm.collector import ShmCollector
from repro.shm.region import ShmTraceRegion


def expected_payloads(writers: int, events: int,
                      data_words: int) -> List[List[List[int]]]:
    """The data words writer ``w`` logs: same identity-coding scheme as
    :meth:`repro.check.harness.CheckConfig.payloads`, so any decoded TEST
    event names its (writer, event, word) coordinates."""
    return [
        [
            [((w + 1) << 20) | ((k + 1) << 8) | (j + 1)
             for j in range(data_words)]
            for k in range(events)
        ]
        for w in range(writers)
    ]


def writer_main(
    name: str,
    cpu: int,
    events: int,
    data_words: int = 2,
    barrier=None,
    forever: bool = False,
) -> int:
    """One writer process: attach, bind ``cpu``, log, detach.

    ``barrier`` (a ``multiprocessing.Barrier`` over all writers) makes
    every writer start logging at once — maximum contention on the CAS.
    ``forever`` loops until killed, for the SIGKILL hygiene tests.
    Returns the number of events logged (also its exit code source for
    callers that care).
    """
    region = ShmTraceRegion.attach(name)
    try:
        logger = region.logger(cpu)
        payloads = expected_payloads(cpu + 1, events, data_words)[cpu]
        if barrier is not None:
            barrier.wait()
        logged = 0
        while True:
            for data in payloads:
                logger.log_words(Major.TEST, cpu + 1, data)
                logged += 1
            if not forever:
                return logged
    finally:
        region.close()


def collector_main(
    name: str,
    out_path: str,
    stats_queue=None,
    poll_interval_s: float = 0.002,
    timeout_s: Optional[float] = 30.0,
    lag: int = 1,
) -> None:
    """The collector process: attach, drain to ``out_path`` until the
    region's done flag rises (or ``timeout_s``), report stats."""
    region = ShmTraceRegion.attach(name)
    try:
        collector = ShmCollector(region, lag=lag)
        stats = collector.drain_to_file(
            out_path, poll_interval_s=poll_interval_s, timeout_s=timeout_s)
        if stats_queue is not None:
            stats_queue.put({
                "frames": stats.frames,
                "partial_frames": stats.partial_frames,
                "dropped": stats.dropped,
                "polls": stats.polls,
                "unstable_copies": stats.unstable_copies,
                "held": stats.held,
                "next_seq": {str(c): s for c, s in stats.next_seq.items()},
            })
    finally:
        region.close()


@dataclass
class ShmWorkloadResult:
    """What one multi-process run produced."""

    trace_path: str
    segment_name: str
    writers: int
    events_per_writer: int
    data_words: int
    start_method: str
    concurrent_collector: bool
    events_total: int = 0
    collector: Dict[str, object] = field(default_factory=dict)
    elapsed_s: float = 0.0


def run_shm_workload(
    out_path: str,
    *,
    writers: int = 2,
    events: int = 500,
    data_words: int = 2,
    buffer_words: int = 256,
    num_buffers: int = 8,
    tick_ns: int = 1,
    start_method: Optional[str] = None,
    concurrent_collector: bool = True,
    poll_interval_s: float = 0.002,
    timeout_s: float = 60.0,
    lag: int = 1,
    segment_name: Optional[str] = None,
) -> ShmWorkloadResult:
    """Create a region, run N writer processes + a collector process.

    ``concurrent_collector=True`` is the real scenario: the collector
    races the writers, and the ring may lap it (drops are reported, not
    hidden).  ``False`` quiesces the writers first and sizes nothing
    differently — callers wanting a provably-complete trace combine it
    with a wrap-free geometry (``num_buffers * buffer_words`` large
    enough for every event) and assert ``collector["dropped"] == 0``.

    All exit paths close and unlink the segment: writers and collector
    attach untracked (see :func:`repro.shm.region._attach_segment`), the
    parent owns the segment and destroys it in the ``finally`` — so a
    SIGKILLed child leaks nothing and triggers no resource-tracker
    warnings.
    """
    ctx = multiprocessing.get_context(start_method)
    method = ctx.get_start_method()
    region = ShmTraceRegion.create(
        segment_name, ncpus=writers, buffer_words=buffer_words,
        num_buffers=num_buffers, tick_ns=tick_ns)
    t0 = time.perf_counter()
    procs: List[multiprocessing.Process] = []
    collector_proc: Optional[multiprocessing.Process] = None
    stats_queue = ctx.SimpleQueue()
    try:
        barrier = ctx.Barrier(writers)
        for cpu in range(writers):
            p = ctx.Process(
                target=writer_main,
                args=(region.name, cpu, events, data_words, barrier),
                name=f"shm-writer-{cpu}",
            )
            p.start()
            procs.append(p)

        def start_collector() -> multiprocessing.Process:
            cp = ctx.Process(
                target=collector_main,
                args=(region.name, out_path, stats_queue,
                      poll_interval_s, timeout_s, lag),
                name="shm-collector",
            )
            cp.start()
            return cp

        if concurrent_collector:
            collector_proc = start_collector()
        for p in procs:
            p.join(timeout_s)
            if p.is_alive():
                raise TimeoutError(f"writer {p.name} did not finish")
            if p.exitcode != 0:
                raise RuntimeError(
                    f"writer {p.name} exited with code {p.exitcode}")
        region.set_done()
        if collector_proc is None:
            collector_proc = start_collector()
        collector_proc.join(timeout_s)
        if collector_proc.is_alive():
            raise TimeoutError("collector did not finish")
        if collector_proc.exitcode != 0:
            raise RuntimeError(
                f"collector exited with code {collector_proc.exitcode}")
        stats = stats_queue.get() if not stats_queue.empty() else {}
        return ShmWorkloadResult(
            trace_path=out_path,
            segment_name=region.name,
            writers=writers,
            events_per_writer=events,
            data_words=data_words,
            start_method=method,
            concurrent_collector=concurrent_collector,
            events_total=writers * events,
            collector=stats,
            elapsed_s=time.perf_counter() - t0,
        )
    finally:
        for p in procs + ([collector_proc] if collector_proc else []):
            if p.is_alive():
                p.terminate()
                p.join(5.0)
        region.close()
        region.unlink()
