"""Simulated CPUs: run queue, current thread, idle accounting."""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.ksim.thread import SimThread


class Cpu:
    def __init__(self, idx: int) -> None:
        self.idx = idx
        self.run_queue: Deque[SimThread] = deque()
        self.current: Optional[SimThread] = None
        self.quantum_end: int = 0
        self.dispatch_scheduled = False
        # Idle accounting for utilization reports and the kmon timeline.
        self.idle = True
        self.idle_since: int = 0
        self.last_addr: int = 0  # thread addr last seen (context-switch trace)
        self.total_idle: int = 0
        self.context_switches = 0
        self.migrations_in = 0

    def queue_len(self) -> int:
        return len(self.run_queue)

    def note_busy(self, now: int) -> None:
        if self.idle:
            self.total_idle += now - self.idle_since
            self.idle = False

    def note_idle(self, now: int) -> None:
        if not self.idle:
            self.idle = True
            self.idle_since = now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        cur = self.current.tid if self.current else None
        return f"Cpu({self.idx}, current={cur}, queue={len(self.run_queue)})"
