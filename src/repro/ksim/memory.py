"""Memory subsystem: allocators with their (contended) locks, page faults.

The allocation call chains reproduce the ones the paper's Figure 7
reports as the top contended locks — ``AllocRegionManager::alloc`` via
``GMalloc::gMalloc`` and ``PageAllocatorDefault::deallocPages`` via
``AllocPool::largeFree``/``largeAlloc``.

Lock structure:

* K42 mode (``coarse_locked=False``): a per-CPU ``AllocRegionManager``
  lock handles most traffic; a configurable fraction of requests (large
  allocations, pool refills) takes the *global* region-manager lock, and
  page returns take the global ``PageAllocatorDefault`` lock.  This is
  exactly the partially-fixed state the paper's lock-hunting iterations
  worked through.
* Linux-like mode (``coarse_locked=True``): one global allocator lock
  covers everything — the non-scalable baseline of Figure 3.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.core.majors import ExcMinor, Major, MemMinor
from repro.ksim.ops import Acquire, Compute, Op, Release, Sleep

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ksim.kernel import Kernel

# Call chains exactly as Figure 7 prints them.
CHAIN_GMALLOC = (
    "AllocRegionManager::alloc(unsigned",
    "PMallocDefault::pMalloc(unsigned",
    "GMalloc::gMalloc()",
)
CHAIN_LARGE_FREE = (
    "PageAllocatorDefault::deallocPages(unsigned",
    "PageAllocatorUser::deallocPages(unsigned",
    "AllocPool::largeFree(void*,",
)
CHAIN_LARGE_ALLOC = (
    "PageAllocatorDefault::deallocPages(unsigned",
    "PageAllocatorUser::deallocPages(unsigned",
    "AllocPool::largeAlloc(unsigned",
)
CHAIN_PERCPU_ALLOC = (
    "AllocRegionManager::alloc(unsigned",
    "PMallocDefault::pMalloc(unsigned",
    "AllocPool::localAlloc()",
)

#: Allocations at or above this take the large/global path.
LARGE_ALLOC_BYTES = 64 * 1024


class MemorySubsystem:
    def __init__(self, kernel: "Kernel") -> None:
        self.k = kernel
        cfg = kernel.config
        if cfg.coarse_locked:
            big = kernel.create_lock("kernel_alloc_global")
            self.percpu_locks = [big] * cfg.ncpus
            self.global_lock = big
            self.page_lock = big
        else:
            self.percpu_locks = [
                kernel.create_lock(f"AllocRegionManager.cpu{i}")
                for i in range(cfg.ncpus)
            ]
            self.global_lock = kernel.create_lock("AllocRegionManager.global")
            self.page_lock = kernel.create_lock("PageAllocatorDefault")
        self.allocations = 0
        self.deallocations = 0
        self.page_faults = 0

    def _alloc_seq(self) -> int:
        """Per-process allocation sequence number.

        The global-path decision keys off this (not a shared RNG) so it
        is independent of scheduling order — tracing-overhead comparisons
        between runs would otherwise diverge through RNG consumption.
        """
        thread = self.k.cpus[self.k._current_cpu].current
        proc = thread.process if thread is not None else self.k.kernel_process
        seq = getattr(proc, "_alloc_seq", 0)
        proc._alloc_seq = seq + 1
        return seq

    # ------------------------------------------------------------------
    def alloc(self, size: int) -> Generator[Op, None, int]:
        """Allocate ``size`` bytes; returns an address-like token.

        Routed to the per-CPU pool or the global manager per the rules
        above; the lock acquire carries the matching call chain so the
        lock-analysis tool attributes contention the way Figure 7 does.
        """
        k = self.k
        self.allocations += 1
        frac = k.config.global_alloc_fraction
        period = max(1, round(1.0 / frac)) if frac > 0 else 0
        take_global = (
            k.config.coarse_locked
            or size >= LARGE_ALLOC_BYTES
            or (period > 0 and self._alloc_seq() % period == 0)
        )
        if take_global:
            lock = self.global_lock
            chain = CHAIN_GMALLOC
            work = k.costs.alloc_large
            pc = "GMalloc::gMalloc()"
        else:
            lock = self.percpu_locks[k._current_cpu]
            chain = CHAIN_PERCPU_ALLOC
            work = k.costs.alloc_small
            pc = "MemDesc::alloc(DataChunk*,"
        yield Acquire(lock, chain)
        addr = 0x1000_0000 + self.allocations * 0x40
        cost = work
        cost += k.trace(None, Major.MEM, MemMinor.ALLOC_REGION_HOLD, (addr, size))
        yield Compute(cost, pc=pc)
        yield Release(lock)
        return addr

    def dealloc(self, addr: int, size: int) -> Generator[Op, None, None]:
        """Free memory; large frees go through the page allocator lock."""
        k = self.k
        self.deallocations += 1
        if k.config.coarse_locked or size >= LARGE_ALLOC_BYTES:
            lock = self.page_lock
            chain = CHAIN_LARGE_FREE if self.deallocations % 2 else CHAIN_LARGE_ALLOC
            pc = "PageAllocatorDefault::deallocPages"
            work = k.costs.alloc_large // 2
        else:
            lock = self.percpu_locks[k._current_cpu]
            chain = CHAIN_PERCPU_ALLOC
            pc = "AllocPool::localFree()"
            work = k.costs.alloc_small // 2
        yield Acquire(lock, chain)
        cost = work
        cost += k.trace(
            None, Major.MEM, MemMinor.PAGE_DEALLOC,
            (addr, max(1, size // 4096)),
        )
        yield Compute(cost, pc=pc)
        yield Release(lock)

    # ------------------------------------------------------------------
    def page_fault(
        self, fault_addr: int, major: bool = False
    ) -> Generator[Op, None, None]:
        """Service a page fault, traced as TRC_EXCEPTION_PGFLT[_DONE].

        A major fault sleeps for the device latency (the thread blocks,
        its CPU runs something else) — the behaviour the fine-grained
        breakdown of §4.7 attributes separately.
        """
        k = self.k
        self.page_faults += 1
        thread = k.cpus[k._current_cpu].current
        taddr = thread.addr if thread is not None else 0
        cost = k.trace(
            None, Major.EXC, ExcMinor.PGFLT, (taddr, fault_addr)
        )
        if k.config.coarse_locked:
            # Linux-like baseline: fault service under the big lock.
            yield Acquire(self.page_lock, ("do_page_fault", "handle_mm_fault"))
        yield Compute(
            cost + k.costs.page_fault_minor, pc="ExceptionLocal::pgflt"
        )
        if k.config.coarse_locked:
            yield Release(self.page_lock)
        if major:
            yield Sleep(k.costs.page_fault_major)
        cost = k.trace(
            None, Major.EXC, ExcMinor.PGFLT_DONE, (taddr, fault_addr)
        )
        yield Compute(cost + 50, pc="ExceptionLocal::pgflt_done")

    def create_region(self, proc_pid: int, size: int) -> Generator[Op, None, int]:
        """Create an address-space region (brk/mmap growth)."""
        k = self.k
        region = 0x8000_0000_1022_0000 | (proc_pid << 16) | (self.allocations & 0xFFFF)
        cost = k.costs.region_create
        cost += k.trace(
            None, Major.MEM, MemMinor.REGION_CREATE_FIXED,
            (region, 0x1000_0000, size),
        )
        cost += k.trace(
            None, Major.MEM, MemMinor.REGION_INIT_FIXED,
            (region, 0x1000_0000),
        )
        yield Compute(cost, pc="RegionDefault::create")
        return region
