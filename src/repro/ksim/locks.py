"""Simulated kernel locks (K42's FairBLock: spin-then-block, FIFO).

The contended paths are instrumented exactly the way §4.6 describes:
``CONTEND_START`` when a waiter begins spinning (carrying the lock id
and the call chain that led to the acquisition), ``CONTEND_END`` when it
finally gets the lock (carrying the spin count), plus plain
``RELEASE``.  The lock-analysis tool reconstructs Figure 7 from those
events alone.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from repro.ksim.engine import CancelToken
from repro.ksim.thread import SimThread


@dataclass
class Waiter:
    thread: SimThread
    start_time: int
    chain_id: int
    spinning: bool = True
    timeout: Optional[CancelToken] = None


class SimLock:
    """A FIFO spin-then-block kernel lock instance.

    ``lock_id`` should be allocated by the owning kernel so that runs
    are reproducible; the class-level fallback exists only for direct
    unit-test construction.
    """

    _next_id = [0x9000_0000_0000]

    def __init__(self, name: str, lock_id: Optional[int] = None) -> None:
        self.name = name
        if lock_id is None:
            lock_id = SimLock._next_id[0]
            SimLock._next_id[0] += 0x100  # address-like spacing
        self.lock_id = lock_id
        self.owner: Optional[SimThread] = None
        self.waiters: Deque[Waiter] = deque()
        # Direct statistics (cross-checked against trace-derived numbers
        # by the integration tests — the trace must agree with reality).
        self.acquisitions = 0
        self.contentions = 0
        self.total_wait_cycles = 0
        self.max_wait_cycles = 0

    @property
    def held(self) -> bool:
        return self.owner is not None

    def record_wait(self, cycles: int) -> None:
        self.total_wait_cycles += cycles
        if cycles > self.max_wait_cycles:
            self.max_wait_cycles = cycles

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimLock({self.name!r}, held={self.held}, waiters={len(self.waiters)})"
