"""The simulated multiprocessor OS kernel.

Assembles CPUs, the preemptive scheduler with migration, kernel locks,
the memory subsystem, the IPC server, and — crucially — the tracing
hooks: every kernel path logs the same events K42's kernel logs, through
a :class:`~repro.core.TraceFacility`, with costs charged per the paper's
measured numbers (mask check when disabled, 91 + 11/word when enabled,
nothing when compiled out).

Two configurations matter for the evaluation:

* the K42-like default — per-CPU allocation paths, lazy fork, fine
  locks — which scales;
* ``coarse_locked=True`` — global locks on the hot paths — the
  "Linux-like" baseline whose SDET curve flattens (Figure 3's contrast).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.facility import TraceFacility
from repro.core.majors import (
    ExcMinor,
    LockMinor,
    Major,
    MemMinor,
    PcSampleMinor,
    ProcMinor,
    UserMinor,
)
from repro.ksim.costs import DEFAULT_COSTS, CostModel
from repro.ksim.cpu import Cpu
from repro.ksim.engine import Engine, EngineClock
from repro.ksim.locks import SimLock, Waiter
from repro.ksim.ops import (
    Acquire,
    BlockOn,
    Compute,
    Nop,
    Release,
    ServerContext,
    Sleep,
    SpawnProcess,
    SpawnThread,
    Wake,
)
from repro.ksim.thread import Process, SimThread, ThreadState


@dataclass
class KernelConfig:
    ncpus: int = 4
    costs: CostModel = field(default_factory=lambda: DEFAULT_COSTS)
    #: Global locks on hot paths ("Linux-like" baseline) vs per-CPU (K42).
    coarse_locked: bool = False
    #: K42's lazy state replication after fork (§4).
    lazy_fork: bool = True
    #: Idle CPUs steal runnable threads from loaded ones.
    migration: bool = True
    #: Statistical PC-sampling period in cycles (0 = off) — §4.5.
    pc_sample_period: int = 0
    #: Also trace uncontended lock acquire/release (correctness debugging).
    trace_all_lock_events: bool = False
    #: Probability an allocation takes the global GMalloc path (fine mode).
    global_alloc_fraction: float = 0.08
    #: Hardware-counter timer-sampling period in cycles (0 = off) — §2's
    #: counter/tracing integration.
    hw_sample_period: int = 0
    #: Overflow-driven counter sampling: a sample every N misses, logged
    #: in the causing thread's context (0 = off).
    hw_overflow_threshold: int = 0
    #: RNG seed for deterministic runs.
    seed: int = 1


@dataclass
class SymbolTable:
    """Post-processing "debug symbols": id → human-readable mappings.

    Serializable to JSON so offline tools (the CLI, remote analysis) can
    resolve ids without the live kernel — the moral equivalent of the
    ``.dbg`` files Figure 6 mentions.
    """

    pc_names: Dict[int, str] = field(default_factory=dict)
    chains: Dict[int, Tuple[str, ...]] = field(default_factory=dict)
    lock_names: Dict[int, str] = field(default_factory=dict)
    syscall_names: Dict[int, str] = field(default_factory=dict)
    process_names: Dict[int, str] = field(default_factory=dict)

    def to_json(self) -> str:
        import json

        return json.dumps({
            "pc_names": self.pc_names,
            "chains": {k: list(v) for k, v in self.chains.items()},
            "lock_names": self.lock_names,
            "syscall_names": self.syscall_names,
            "process_names": self.process_names,
        }, indent=1)

    @classmethod
    def from_json(cls, text: str) -> "SymbolTable":
        import json

        raw = json.loads(text)
        return cls(
            pc_names={int(k): v for k, v in raw.get("pc_names", {}).items()},
            chains={int(k): tuple(v)
                    for k, v in raw.get("chains", {}).items()},
            lock_names={int(k): v
                        for k, v in raw.get("lock_names", {}).items()},
            syscall_names={int(k): v
                           for k, v in raw.get("syscall_names", {}).items()},
            process_names={int(k): v
                           for k, v in raw.get("process_names", {}).items()},
        )

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "SymbolTable":
        with open(path) as fh:
            return cls.from_json(fh.read())


class Kernel:
    """The executor + kernel services of the simulated machine."""

    def __init__(
        self,
        config: Optional[KernelConfig] = None,
        facility: Optional[TraceFacility] = None,
    ) -> None:
        self.config = config or KernelConfig()
        self.costs = self.config.costs
        self.engine = Engine()
        self.clock = EngineClock(self.engine)
        self.facility = facility
        self.rng = random.Random(self.config.seed)

        self.cpus = [Cpu(i) for i in range(self.config.ncpus)]
        self.processes: Dict[int, Process] = {}
        self._next_pid = 0
        self._next_tid = 1  # per-kernel, so runs are reproducible
        self.live_threads = 0
        self.waitq: Dict[Any, List[SimThread]] = {}

        # Symbol interning for pc labels and lock call chains.
        self._pc_ids: Dict[str, int] = {}
        self._chain_ids: Dict[Tuple[str, ...], int] = {}
        self.symtab = SymbolTable()

        self.locks: List[SimLock] = []
        self._samplers_armed = False
        self._current_cpu = 0  # CPU whose thread is mid-execution

        # Well-known processes, K42-style: PID 0 kernel, PID 1 baseServers.
        self.kernel_process = self._new_process("kernel")
        self.base_servers = self._new_process("baseServers")

        from repro.ksim.hwcounters import HwCounters
        from repro.ksim.ipc import FileServer
        from repro.ksim.memory import MemorySubsystem
        from repro.ksim.syscalls import SYSCALL_NUMBERS

        self.memory = MemorySubsystem(self)
        self.fileserver = FileServer(self)
        self.hw = HwCounters(
            self,
            sample_period=self.config.hw_sample_period,
            overflow_threshold=self.config.hw_overflow_threshold,
        )
        from repro.ksim.probes import ProbeManager

        self.probes = ProbeManager(self)
        from repro.ksim.devices import BlockDevice

        self.disk = BlockDevice(self)
        for name, num in SYSCALL_NUMBERS.items():
            self.symtab.syscall_names[num] = name

    # ------------------------------------------------------------------
    # Identity / symbol management
    # ------------------------------------------------------------------
    def _new_process(self, name: str, parent: Optional[Process] = None) -> Process:
        proc = Process(self._next_pid, name, parent)
        proc.created_at = self.engine.now
        self.processes[proc.pid] = proc
        self.symtab.process_names[proc.pid] = name
        self._next_pid += 1
        return proc

    def intern_pc(self, name: str) -> int:
        pc = self._pc_ids.get(name)
        if pc is None:
            pc = 0x0040_0000 + 0x40 * len(self._pc_ids)
            self._pc_ids[name] = pc
            self.symtab.pc_names[pc] = name
        return pc

    def intern_chain(self, chain: Tuple[str, ...]) -> int:
        cid = self._chain_ids.get(chain)
        if cid is None:
            cid = 0xC0DE_0000 + len(self._chain_ids)
            self._chain_ids[chain] = cid
            self.symtab.chains[cid] = chain
        return cid

    def create_lock(self, name: str) -> SimLock:
        lock = SimLock(
            name, lock_id=0x9000_0000_0000 + 0x100 * len(self.locks)
        )
        self.locks.append(lock)
        self.symtab.lock_names[lock.lock_id] = name
        return lock

    def symbols(self) -> SymbolTable:
        return self.symtab

    # ------------------------------------------------------------------
    # Tracing hook — where the paper's cost model is charged
    # ------------------------------------------------------------------
    def trace(
        self,
        cpu: Optional[int],
        major: int,
        minor: int,
        words: Tuple[int, ...] = (),
        asm_path: bool = False,
    ) -> int:
        """Log an event; returns the cycles the trace point cost.

        Compiled out (no facility): zero cost, zero work (goal 6).
        Compiled in, masked off: the 4-instruction mask check.
        Enabled: the full 91 + 11/word logging cost (§3.2).
        """
        if self.facility is None:
            return 0
        if cpu is None:
            cpu = self._current_cpu
        if not (self.facility.mask.value >> major) & 1:
            return self.costs.trace_mask_check
        self.facility.loggers[cpu].log_words(major, minor, words)
        return self.costs.trace_event_cost(len(words), asm_path=asm_path)

    def trace_str_event(
        self, cpu: Optional[int], name: str, *values
    ) -> int:
        """Log a registered (possibly string-carrying) event by name."""
        if self.facility is None:
            return 0
        if cpu is None:
            cpu = self._current_cpu
        spec = self.facility.registry.by_name(name)
        if spec is None:
            raise KeyError(name)
        if not (self.facility.mask.value >> spec.major) & 1:
            return self.costs.trace_mask_check
        self.facility.loggers[cpu].log_event(spec, *values)
        return self.costs.trace_event_cost(4)  # typical packed size

    @property
    def now(self) -> int:
        return self.engine.now

    # ------------------------------------------------------------------
    # Process / thread creation
    # ------------------------------------------------------------------
    def spawn_process(
        self,
        program_factory: Callable,
        name: str,
        parent: Optional[Process] = None,
        cpu: Optional[int] = None,
    ) -> Process:
        """Create a process with one main thread running the program.

        ``program_factory(api)`` must return a generator; ``api`` is a
        :class:`~repro.ksim.syscalls.UserApi` bound to the new process.
        """
        parent = parent or self.kernel_process
        proc = self._new_process(name, parent)
        self.trace_str_event(cpu, "TRC_PROC_CREATE", proc.pid, parent.pid, name)
        self.trace_str_event(
            cpu, "TRC_USER_RUN_UL_LOADER", parent.pid, proc.pid, name
        )
        # Address-space setup events (the Figure 5 texture).
        region = 0x8000_0000_1000_0000 | (proc.pid << 12)
        fcm = 0xE100_0000_0000_0000 | (proc.pid << 8)
        proc.regions.append(region)
        self.trace(cpu, Major.MEM, MemMinor.FCM_CREATE, (fcm,))
        self.trace(cpu, Major.MEM, MemMinor.FCM_ATTACH_REGION, (region, fcm))
        self.trace(
            cpu, Major.MEM, MemMinor.REGION_CREATE_FIXED,
            (region, 0x1000_0000, 0x11_3000),
        )
        self.spawn_thread(proc, program_factory, cpu=cpu)
        return proc

    def spawn_thread(
        self,
        process: Process,
        program_factory: Callable,
        cpu: Optional[int] = None,
    ) -> SimThread:
        from repro.ksim.syscalls import UserApi

        api = UserApi(self, process)
        thread = SimThread(process, program_factory(api), tid=self._next_tid)
        self._next_tid += 1
        thread.started_at = self.engine.now
        self.trace(cpu, Major.PROC, ProcMinor.THREAD_CREATE,
                   (thread.addr, process.pid))
        self.live_threads += 1
        self._enqueue(thread, cpu=cpu)
        self._ensure_samplers()
        return thread

    # ------------------------------------------------------------------
    # Scheduler
    # ------------------------------------------------------------------
    def _pick_cpu(self, thread: SimThread, cpu: Optional[int]) -> Cpu:
        if cpu is not None:
            return self.cpus[cpu]
        if thread.last_cpu is not None:
            return self.cpus[thread.last_cpu]  # locality (K42's emphasis)
        return min(
            self.cpus,
            key=lambda c: len(c.run_queue) + (0 if c.current is None else 1),
        )

    def _enqueue(self, thread: SimThread, cpu: Optional[int] = None) -> None:
        target = self._pick_cpu(thread, cpu)
        thread.state = ThreadState.READY
        target.run_queue.append(thread)
        if target.current is None:
            self._schedule_dispatch(target)
        elif self.config.migration:
            self._nudge_idle()

    def _nudge_idle(self) -> None:
        """Wake an idle CPU so it can steal queued work (the IPI a real
        kernel would send)."""
        for other in self.cpus:
            if other.current is None and not other.run_queue:
                self._schedule_dispatch(other)
                break

    def _schedule_dispatch(self, cpu: Cpu, delay: int = 0) -> None:
        if cpu.dispatch_scheduled:
            return
        cpu.dispatch_scheduled = True
        self.engine.after(delay, partial(self._dispatch, cpu))

    def _dispatch(self, cpu: Cpu) -> None:
        cpu.dispatch_scheduled = False
        if cpu.current is not None:
            return
        extra = 0
        thread: Optional[SimThread] = None
        if cpu.run_queue:
            thread = cpu.run_queue.popleft()
        elif self.config.migration:
            donor = max(self.cpus, key=lambda c: len(c.run_queue))
            if donor.run_queue:
                thread = donor.run_queue.pop()
                cpu.migrations_in += 1
                extra += self.costs.migration
                extra += self.trace(
                    cpu.idx, Major.PROC, ProcMinor.MIGRATE,
                    (thread.addr, donor.idx, cpu.idx),
                )
        if thread is None:
            if not cpu.idle:
                self.trace(cpu.idx, Major.PROC, ProcMinor.IDLE_START, ())
                cpu.note_idle(self.engine.now)
            return
        if cpu.idle:
            extra += self.trace(cpu.idx, Major.PROC, ProcMinor.IDLE_END, ())
            cpu.note_busy(self.engine.now)
        extra += self.trace(
            cpu.idx, Major.PROC, ProcMinor.CONTEXT_SWITCH,
            (getattr(cpu, "last_addr", 0), thread.addr),
            asm_path=True,  # the hand-optimized critical path of §3.2
        )
        cpu.context_switches += 1
        cpu.current = thread
        thread.state = ThreadState.RUNNING
        thread.cpu = cpu.idx
        thread.last_cpu = cpu.idx
        delay = self.costs.context_switch + extra
        cpu.quantum_end = self.engine.now + delay + self.costs.quantum
        self.engine.after(delay, partial(self._continue, cpu, thread))
        if self.config.migration and cpu.run_queue:
            self._nudge_idle()  # leftover work another CPU could steal

    # ------------------------------------------------------------------
    # The execution loop
    # ------------------------------------------------------------------
    def _continue(self, cpu: Cpu, thread: SimThread) -> None:
        if cpu.current is not thread or thread.state is not ThreadState.RUNNING:
            return  # stale event (thread moved on)
        self._current_cpu = cpu.idx
        while True:
            if thread.remaining_cycles > 0:
                quantum_left = cpu.quantum_end - self.engine.now
                if quantum_left <= 0:
                    self._preempt(cpu, thread)
                    return
                slice_ = min(thread.remaining_cycles, quantum_left)
                self.engine.after(
                    slice_, partial(self._compute_done, cpu, thread, slice_)
                )
                return
            try:
                val, thread.send_value = thread.send_value, None
                op = thread.gen.send(val)
            except StopIteration:
                self._thread_exit(cpu, thread)
                return
            kind = type(op)
            if kind is Compute:
                thread.remaining_cycles = op.cycles
                if op.pc is not None:
                    thread.pc = op.pc
                    # Dynamic probes fire when an instrumented function
                    # begins executing (springboard entry, §5).
                    if self.probes._by_label:
                        thread.remaining_cycles += self.probes.fire(
                            cpu.idx, thread, op.pc
                        )
            elif kind is Acquire:
                if not self._acquire(cpu, thread, op):
                    return  # spinning: resumes on grant or spin timeout
            elif kind is Release:
                self._release(cpu, thread, op.lock)
            elif kind is BlockOn:
                self._block(cpu, thread, op.key)
                return
            elif kind is Wake:
                self._wake(op.key)
            elif kind is Sleep:
                self._sleep(cpu, thread, op.cycles)
                return
            elif kind is SpawnProcess:
                thread.send_value = self.spawn_process(
                    op.program_factory, op.name,
                    parent=thread.process, cpu=op.cpu,
                )
            elif kind is SpawnThread:
                thread.send_value = self.spawn_thread(
                    thread.process, op.program_factory, cpu=op.cpu
                )
            elif kind is ServerContext:
                thread.acting_pid = op.pid
            elif kind is Nop:
                pass
            else:
                raise TypeError(f"program yielded unknown op {op!r}")

    def _compute_done(self, cpu: Cpu, thread: SimThread, slice_: int) -> None:
        if cpu.current is not thread or thread.state is not ThreadState.RUNNING:
            return  # stale
        thread.remaining_cycles -= slice_
        self.hw.on_compute(cpu.idx, thread, slice_)
        self._continue(cpu, thread)

    def _preempt(self, cpu: Cpu, thread: SimThread) -> None:
        cost = self.costs.timer_interrupt
        cost += self.trace(
            cpu.idx, Major.EXC, ExcMinor.TIMER_INTERRUPT,
            (self.engine.now // self.costs.quantum,),
        )
        if not cpu.run_queue:
            # Nothing else to run: take the tick and keep going.
            cpu.quantum_end = self.engine.now + cost + self.costs.quantum
            self.engine.after(cost, partial(self._continue, cpu, thread))
            return
        thread.state = ThreadState.READY
        thread.cpu = None
        cpu.run_queue.append(thread)
        cpu.current = None
        cpu.last_addr = thread.addr
        self._schedule_dispatch(cpu, delay=cost)

    # -- locks -------------------------------------------------------------
    def _acquire(self, cpu: Cpu, thread: SimThread, op: Acquire) -> bool:
        lock: SimLock = op.lock
        if lock.owner is None:
            lock.owner = thread
            lock.acquisitions += 1
            cost = self.costs.lock_uncontended
            if self.config.trace_all_lock_events:
                cost += self.trace(
                    cpu.idx, Major.LOCK, LockMinor.ACQUIRE, (lock.lock_id,)
                )
            thread.remaining_cycles += cost
            return True
        lock.contentions += 1
        chain_id = self.intern_chain(op.chain)
        self.trace(
            cpu.idx, Major.LOCK, LockMinor.CONTEND_START,
            (lock.lock_id, chain_id),
        )
        waiter = Waiter(thread, self.engine.now, chain_id)
        lock.waiters.append(waiter)
        thread.state = ThreadState.SPINNING
        thread.pc = f"{lock.name}::_acquire"
        self.intern_pc(thread.pc)
        waiter.timeout = self.engine.after(
            self.costs.spin_threshold,
            partial(self._spin_timeout, cpu, lock, waiter),
        )
        return False

    def _spin_timeout(self, cpu: Cpu, lock: SimLock, waiter: Waiter) -> None:
        if waiter not in lock.waiters:
            return  # already granted
        waiter.spinning = False
        thread = waiter.thread
        self.trace(cpu.idx, Major.LOCK, LockMinor.BLOCK, (lock.lock_id,))
        thread.state = ThreadState.BLOCKED
        thread.cpu = None
        cpu.current = None
        cpu.last_addr = thread.addr
        self._schedule_dispatch(cpu)

    def _release(self, cpu: Cpu, thread: SimThread, lock: SimLock) -> None:
        if lock.owner is not thread:
            raise RuntimeError(
                f"thread {thread.tid} released {lock.name} owned by "
                f"{lock.owner.tid if lock.owner else None}"
            )
        lock.owner = None
        cost = self.costs.lock_uncontended // 2
        if self.config.trace_all_lock_events or lock.waiters:
            cost += self.trace(
                cpu.idx, Major.LOCK, LockMinor.RELEASE, (lock.lock_id,)
            )
        if lock.waiters:
            waiter = lock.waiters.popleft()
            wait = self.engine.now - waiter.start_time
            lock.record_wait(wait)
            lock.acquisitions += 1
            lock.owner = waiter.thread
            if waiter.spinning:
                spins = max(1, wait // self.costs.spin_iteration)
            else:
                spins = self.costs.spin_threshold // self.costs.spin_iteration
            end_cpu = waiter.thread.cpu if waiter.spinning else cpu.idx
            self.trace(
                end_cpu, Major.LOCK, LockMinor.CONTEND_END,
                (lock.lock_id, spins),
            )
            if waiter.spinning:
                if waiter.timeout is not None:
                    waiter.timeout.cancel()
                waiter.thread.state = ThreadState.RUNNING
                self.engine.after(
                    self.costs.lock_handoff,
                    partial(
                        self._continue,
                        self.cpus[waiter.thread.cpu],
                        waiter.thread,
                    ),
                )
            else:
                waiter.thread.state = ThreadState.READY
                waiter.thread.remaining_cycles += self.costs.lock_block_wakeup
                self._enqueue(waiter.thread)
        thread.remaining_cycles += cost

    # -- blocking / waking ----------------------------------------------
    def _block(self, cpu: Cpu, thread: SimThread, key: Any) -> None:
        self.waitq.setdefault(key, []).append(thread)
        thread.state = ThreadState.BLOCKED
        thread.cpu = None
        cpu.current = None
        cpu.last_addr = thread.addr
        self._schedule_dispatch(cpu)

    def _wake(self, key: Any) -> None:
        for t in self.waitq.pop(key, []):
            if t.state is ThreadState.BLOCKED:
                self._enqueue(t)

    def _sleep(self, cpu: Cpu, thread: SimThread, cycles: int) -> None:
        thread.state = ThreadState.BLOCKED
        thread.cpu = None
        cpu.current = None
        cpu.last_addr = thread.addr

        def wake() -> None:
            if thread.state is ThreadState.BLOCKED:
                self._enqueue(thread)

        self.engine.after(cycles, wake)
        self._schedule_dispatch(cpu)

    # -- exit ----------------------------------------------------------------
    def _thread_exit(self, cpu: Cpu, thread: SimThread) -> None:
        thread.state = ThreadState.DONE
        thread.cpu = None
        self.live_threads -= 1
        self.trace(cpu.idx, Major.PROC, ProcMinor.THREAD_EXIT, (thread.addr,))
        proc = thread.process
        if proc.live_threads == 0 and not proc.exited:
            proc.exited = True
            proc.exited_at = self.engine.now
            proc.exit_status = 0
            self.trace(cpu.idx, Major.PROC, ProcMinor.EXIT, (proc.pid, 0))
            self.trace(cpu.idx, Major.USER, UserMinor.RETURNED_MAIN, (proc.pid,))
            self._wake(("pexit", proc.pid))
        cpu.current = None
        cpu.last_addr = thread.addr
        self._schedule_dispatch(cpu, delay=self.costs.exit_base)

    # ------------------------------------------------------------------
    # Killing (SIGKILL semantics)
    # ------------------------------------------------------------------
    def kill_process(self, proc: Process, status: int = 137) -> None:
        """Terminate every thread of ``proc`` immediately.

        Threads vanish wherever they are: running (their CPU redispatches),
        queued, blocked, or spinning on a lock (their waiter entry is
        removed).  Locks the victim *owns* stay owned — exactly the wedge
        a real SIGKILL of a lock holder causes; the deadlock/hold tools
        see it in the trace.
        """
        if proc.exited:
            return
        for thread in proc.threads:
            if thread.state is ThreadState.DONE:
                continue
            # Remove from any run queue.
            for cpu in self.cpus:
                try:
                    cpu.run_queue.remove(thread)
                except ValueError:
                    pass
                if cpu.current is thread:
                    cpu.current = None
                    cpu.last_addr = thread.addr
                    self._schedule_dispatch(cpu)
            # Remove from lock wait queues.
            for lock in self.locks:
                for waiter in list(lock.waiters):
                    if waiter.thread is thread:
                        if waiter.timeout is not None:
                            waiter.timeout.cancel()
                        lock.waiters.remove(waiter)
            # Remove from blocking wait queues.
            for waiters in self.waitq.values():
                if thread in waiters:
                    waiters.remove(thread)
            thread.state = ThreadState.DONE
            thread.cpu = None
            self.live_threads -= 1
            self.trace(None, Major.PROC, ProcMinor.THREAD_EXIT,
                       (thread.addr,))
        proc.exited = True
        proc.exited_at = self.engine.now
        proc.exit_status = status
        self.trace(None, Major.PROC, ProcMinor.EXIT, (proc.pid, status))
        self._wake(("pexit", proc.pid))

    # ------------------------------------------------------------------
    # PC sampling (statistical execution profiling, §4.5)
    # ------------------------------------------------------------------
    def _ensure_samplers(self) -> None:
        self.hw.arm()
        if self.config.pc_sample_period <= 0 or self._samplers_armed:
            return
        self._samplers_armed = True
        for cpu in self.cpus:
            self.engine.after(
                self.config.pc_sample_period, partial(self._sample, cpu)
            )

    def _sample(self, cpu: Cpu) -> None:
        if self.live_threads <= 0:
            self._samplers_armed = False
            return
        thread = cpu.current
        if thread is not None and thread.state in (
            ThreadState.RUNNING, ThreadState.SPINNING
        ):
            pid = (
                thread.acting_pid
                if thread.acting_pid is not None
                else thread.process.pid
            )
            self.trace(
                cpu.idx, Major.PCSAMPLE, PcSampleMinor.SAMPLE,
                (pid, self.intern_pc(thread.pc)),
            )
        self.engine.after(self.config.pc_sample_period, partial(self._sample, cpu))

    # ------------------------------------------------------------------
    # Run control & reporting
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        return self.engine.run(until=until, max_events=max_events)

    def run_until_quiescent(self, max_cycles: int = 10**12) -> bool:
        """Run until all threads finish; returns False on the cycle cap
        (e.g. a deadlock left threads blocked forever)."""
        horizon = self.engine.now + max_cycles
        while self.live_threads > 0:
            if not self.engine._heap:
                return False  # blocked threads with no pending events
            if self.engine._heap[0][0] > horizon:
                return False
            self.engine.step()
        self.hw.flush_samples()
        return True

    def utilization(self) -> List[float]:
        """Per-CPU busy fraction over the elapsed simulated time."""
        total = self.engine.now
        if total == 0:
            return [0.0] * len(self.cpus)
        out = []
        for cpu in self.cpus:
            idle = cpu.total_idle + (
                (self.engine.now - cpu.idle_since) if cpu.idle else 0
            )
            out.append(max(0.0, 1.0 - idle / total))
        return out
