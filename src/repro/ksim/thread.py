"""Processes and threads of the simulated OS."""

from __future__ import annotations

import enum
from typing import Any, List, Optional

from repro.ksim.ops import Program


class ThreadState(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    SPINNING = "spinning"    # busy-waiting on a contended lock
    BLOCKED = "blocked"      # lock block, I/O, sleep, waitpid
    DONE = "done"


class Process:
    """A simulated process (PID 0 is the kernel, 1 baseServers, like K42)."""

    def __init__(self, pid: int, name: str, parent: Optional["Process"] = None) -> None:
        self.pid = pid
        self.name = name
        self.parent = parent
        self.threads: List["SimThread"] = []
        self.exited = False
        self.exit_status: Optional[int] = None
        self.created_at: int = 0
        self.exited_at: Optional[int] = None
        # Address-space bookkeeping (region events for Figure 5 realism).
        self.regions: List[int] = []
        self.brk: int = 0x1000_0000
        #: Pages the process actively touches (drives the cache model).
        self.working_set_pages: int = 16

    @property
    def live_threads(self) -> int:
        return sum(1 for t in self.threads if t.state is not ThreadState.DONE)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Process(pid={self.pid}, name={self.name!r})"


class SimThread:
    """One schedulable thread: a generator plus executor state."""

    _next_tid = [1]

    def __init__(self, process: Process, gen: Program, tid: Optional[int] = None) -> None:
        if tid is None:
            tid = SimThread._next_tid[0]
            SimThread._next_tid[0] += 1
        self.tid = tid
        self.process = process
        self.gen = gen
        self.state = ThreadState.READY
        self.cpu: Optional[int] = None        # CPU currently running/spinning on
        self.last_cpu: Optional[int] = None   # affinity hint
        self.pc: str = "user_start"           # current function label
        self.acting_pid: Optional[int] = None  # server pid during a PPC call
        self.send_value: Any = None           # sent into gen on next resume
        self.remaining_cycles: int = 0        # unfinished Compute op
        self.started_at: Optional[int] = None
        process.threads.append(self)

    @property
    def addr(self) -> int:
        """A stable address-like identifier for trace events."""
        return 0x8000_0000_0000_0000 | (self.tid << 8)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SimThread(tid={self.tid}, pid={self.process.pid}, "
            f"state={self.state.value}, pc={self.pc!r})"
        )
