"""Abstract cycle-cost model for the simulated machine.

Trace-related costs default to the paper's measured numbers (§3.2,
"Efficiency of the Implementation"): checking the trace mask costs 4
instructions; logging a 1-word event costs 91 cycles with 11 cycles for
each additional 64-bit word.  Kernel-operation costs are order-of-
magnitude figures for a ~1GHz PowerPC of the paper's era; the
reproduction's claims are about *shapes* (scaling curves, ratios), which
are insensitive to their exact values — the ablation benches vary them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CostModel:
    """All costs in CPU cycles on the simulated machine."""

    # -- tracing (paper §3.2) -------------------------------------------
    trace_mask_check: int = 4        # compiled-in but disabled
    trace_event_base: int = 91       # 1-word (header-only + 1 data) event
    trace_event_per_word: int = 11   # each additional data word
    trace_event_asm: int = 30        # hand-optimized assembler paths

    # -- scheduling -------------------------------------------------------
    context_switch: int = 1_500
    timer_interrupt: int = 300
    migration: int = 3_000
    quantum: int = 1_000_000         # 1ms at 1GHz

    # -- locks (FairBLock) -------------------------------------------------
    lock_uncontended: int = 40
    lock_handoff: int = 120
    spin_iteration: int = 25         # one trip around the spin loop
    spin_threshold: int = 8_000      # spin this long, then block
    lock_block_wakeup: int = 2_500

    # -- memory -------------------------------------------------------------
    page_fault_minor: int = 2_000
    page_fault_major: int = 150_000  # includes device wait
    alloc_small: int = 250
    alloc_large: int = 900
    region_create: int = 1_200

    # -- IPC / syscalls -------------------------------------------------------
    ppc_call: int = 1_800            # protected procedure call round trip
    syscall_entry: int = 250
    syscall_exit: int = 150
    emu_layer: int = 120             # Linux-emulation layer crossing

    # -- process lifecycle -------------------------------------------------
    fork_base: int = 60_000
    fork_lazy: int = 18_000          # K42's lazy state replication (§4)
    exec_base: int = 90_000
    exit_base: int = 25_000

    # -- I/O ----------------------------------------------------------------
    io_submit: int = 1_200
    io_device_latency: int = 400_000
    io_per_byte_denom: int = 64      # extra cycles = nbytes // denom

    def trace_event_cost(self, data_words: int, asm_path: bool = False) -> int:
        """Cycles to log an event with ``data_words`` data words."""
        if asm_path:
            return self.trace_event_asm + self.trace_event_per_word * data_words
        return self.trace_event_base + self.trace_event_per_word * data_words

    def with_overrides(self, **kw) -> "CostModel":
        return replace(self, **kw)


#: The default machine.
DEFAULT_COSTS = CostModel()
