"""Trace-fed self-tuning via hot swapping (§5 future work).

"The infrastructure was designed to facilitate dynamic tuning of the
operating system.  We are investigating how to integrate our
hot-swapping infrastructure with the tracing infrastructure in order to
provide feedback for the system to tune itself."

This module closes that loop on the simulated machine: a monitor runs
periodically *inside* the system, reads the recent trace (the flight
recorder — no extra instrumentation), computes lock-contention pressure
with the same analysis the offline tool uses, and when a lock crosses
the pressure threshold, hot-swaps the implementation behind it — here,
switching the memory allocator from the global-manager path to per-CPU
pools, K42's actual fix for its top Figure 7 entry.

The swap is the kind K42's hot-swapping mechanism performs: the
component's clients keep calling through the same interface; only the
routing changes, at a quiesce point, while the system runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List

from repro.core.majors import LockMinor, Major

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ksim.kernel import Kernel


@dataclass
class TuningAction:
    """One self-tuning decision, for the audit trail."""

    at_cycle: int
    lock_name: str
    contentions_seen: int
    action: str


class AllocatorAutotuner:
    """Watches allocator-lock contention in the trace; hot-swaps to
    per-CPU pools when it crosses the threshold."""

    def __init__(
        self,
        kernel: "Kernel",
        check_period: int = 500_000,
        contention_threshold: int = 20,
    ) -> None:
        self.kernel = kernel
        self.check_period = check_period
        self.contention_threshold = contention_threshold
        self.actions: List[TuningAction] = []
        self._last_counts: dict = {}
        self._armed = False
        self.swapped = False

    # ------------------------------------------------------------------
    def arm(self) -> None:
        if self._armed:
            return
        self._armed = True
        self.kernel.engine.after(self.check_period, self._check)

    def _recent_contention(self) -> dict:
        """Per-lock contention since the last check, from the trace.

        Reads the live flight-recorder state of the facility — the same
        data an offline Figure 7 analysis would see, sampled in flight.
        """
        facility = self.kernel.facility
        if facility is None:
            return {}
        counts: dict = {}
        trace = facility.decode(facility.snapshot())
        for e in trace.all_events():
            if e.major == Major.LOCK and e.minor == LockMinor.CONTEND_START \
                    and e.data:
                counts[e.data[0]] = counts.get(e.data[0], 0) + 1
        deltas = {
            lock_id: n - self._last_counts.get(lock_id, 0)
            for lock_id, n in counts.items()
        }
        self._last_counts = counts
        return deltas

    def _check(self) -> None:
        if self.kernel.live_threads <= 0:
            self._armed = False
            return
        if not self.swapped:
            deltas = self._recent_contention()
            memory = self.kernel.memory
            global_id = memory.global_lock.lock_id
            pressure = deltas.get(global_id, 0)
            if pressure >= self.contention_threshold:
                self._hot_swap_allocator(pressure)
        self.kernel.engine.after(self.check_period, self._check)

    def _hot_swap_allocator(self, pressure: int) -> None:
        """Reroute allocations from the global manager to per-CPU pools.

        The interface (``memory.alloc``) is untouched; only the routing
        policy changes — the hot-swap model of [10].
        """
        kernel = self.kernel
        name = kernel.symbols().lock_names.get(
            kernel.memory.global_lock.lock_id, "?"
        )
        kernel.config.global_alloc_fraction = 0.02
        self.swapped = True
        self.actions.append(TuningAction(
            at_cycle=kernel.engine.now,
            lock_name=name,
            contentions_seen=pressure,
            action="hot-swapped allocator to per-CPU pools "
                   "(global path now refill-only)",
        ))
        # The tuning action is itself a trace event — the audit trail
        # lives in the same unified stream it was derived from.
        kernel.trace_str_event(
            None, "TRC_USER_APP_MARK", 0xA070,
            f"autotune: swapped allocator (pressure {pressure})",
        )

    def describe(self) -> str:
        if not self.actions:
            return "autotuner: no action taken"
        lines = ["autotuner actions:"]
        for a in self.actions:
            lines.append(
                f"  cycle {a.at_cycle:,}: {a.lock_name} saw "
                f"{a.contentions_seen} contentions -> {a.action}"
            )
        return "\n".join(lines)
