"""Primitive operations simulated threads yield to the kernel executor.

A simulated program is a generator; each ``yield`` hands the executor
one of these operations.  Kernel services are themselves generators
(``yield from``-composed into the thread), so a single generator drives
each thread through user code, the Linux-emulation layer, and kernel
paths alike — mirroring how K42 traces all of those through one
facility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional, Tuple

Program = Generator["Op", Any, Any]


class Op:
    """Base class for executor operations."""

    __slots__ = ()


@dataclass(frozen=True)
class Compute(Op):
    """Consume CPU cycles; preemptible at quantum boundaries.

    ``pc`` labels the executing function for statistical profiling
    (§4.5) — the simulator's stand-in for the program counter.
    """

    cycles: int
    pc: Optional[str] = None


@dataclass(frozen=True)
class Acquire(Op):
    """Acquire a kernel lock; ``chain`` is the call chain for Figure 7."""

    lock: Any  # SimLock
    chain: Tuple[str, ...] = ()


@dataclass(frozen=True)
class Release(Op):
    lock: Any  # SimLock


@dataclass(frozen=True)
class BlockOn(Op):
    """Block until some entity calls ``Wake`` with the same key."""

    key: Any


@dataclass(frozen=True)
class Wake(Op):
    """Wake every thread blocked on ``key`` (no-op if none)."""

    key: Any


@dataclass(frozen=True)
class Sleep(Op):
    """Release the CPU for a fixed number of cycles (I/O latency etc.)."""

    cycles: int


@dataclass(frozen=True)
class SpawnProcess(Op):
    """Create a new process running ``program_factory(api)``.

    The executor sends the new :class:`~repro.ksim.thread.Process` back
    into the generator.
    """

    program_factory: Callable
    name: str
    cpu: Optional[int] = None


@dataclass(frozen=True)
class SpawnThread(Op):
    """Create an additional thread in the current process."""

    program_factory: Callable
    cpu: Optional[int] = None


@dataclass(frozen=True)
class ServerContext(Op):
    """Enter/leave a server's address space during a PPC call.

    K42's protected procedure calls move the executing thread into the
    server process; while there, PC samples and time attribute to the
    server PID (how Figure 6 gets a histogram *for* baseServers).
    ``pid=None`` restores the home process.
    """

    pid: Optional[int] = None


@dataclass(frozen=True)
class Nop(Op):
    """Yield point with no cost (lets tests single-step programs)."""
