"""Dynamically-inserted instrumentation points (§5).

The paper positions tools like KernInst and DProbes as the complement to
its always-compiled-in static events: "Dynamic tools are necessary when
attempting to start monitoring in unanticipated ways an already
installed and running machine", while noting that "even KernInst, which
is targeted at kernel instrumentation, has higher overheads than the
facility described here ... due in part to the flexible and dynamic
nature of KernInst requiring springboard and overwrite instructions."

This module provides that capability on the simulated machine: probes
attach to function labels *at runtime* (mid-simulation, no recompile, no
restart), fire a trace event whenever the function begins executing, and
charge the springboard-style overhead that makes them costlier per hit
than static events — the trade-off the §5 comparison is about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.majors import AppMinor, Major

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ksim.kernel import Kernel
    from repro.ksim.thread import SimThread

#: Springboard + overwritten-instruction + handler-call cost per hit.
#: Several times the static 91-cycle event, matching the paper's
#: "higher overheads" characterization of KernInst-style insertion.
DEFAULT_PROBE_OVERHEAD = 550


@dataclass
class Probe:
    """One dynamic instrumentation point."""

    probe_id: int
    pc_label: str
    overhead_cycles: int
    hits: int = 0
    enabled: bool = True
    attached_at: int = 0


class ProbeManager:
    """Attach/detach probes on function labels at runtime."""

    def __init__(self, kernel: "Kernel",
                 overhead_cycles: int = DEFAULT_PROBE_OVERHEAD) -> None:
        self.kernel = kernel
        self.overhead_cycles = overhead_cycles
        self._by_label: Dict[str, List[Probe]] = {}
        self._next_id = 1
        self.total_hits = 0

    @property
    def active_labels(self) -> frozenset:
        return frozenset(self._by_label)

    def attach(self, pc_label: str,
               overhead_cycles: Optional[int] = None) -> Probe:
        """Insert a probe at a function label — on the live system."""
        probe = Probe(
            probe_id=self._next_id,
            pc_label=pc_label,
            overhead_cycles=(
                overhead_cycles if overhead_cycles is not None
                else self.overhead_cycles
            ),
            attached_at=self.kernel.engine.now,
        )
        self._next_id += 1
        self._by_label.setdefault(pc_label, []).append(probe)
        return probe

    def detach(self, probe: Probe) -> None:
        """Remove a probe (restores the overwritten instruction)."""
        probes = self._by_label.get(probe.pc_label)
        if probes and probe in probes:
            probes.remove(probe)
            if not probes:
                del self._by_label[probe.pc_label]

    def fire(self, cpu_idx: int, thread: "SimThread", pc_label: str) -> int:
        """Called by the executor when an instrumented function starts.

        Returns the cycles to charge the interrupted thread: the
        springboard overhead plus the trace-event cost per probe.
        """
        cost = 0
        for probe in self._by_label.get(pc_label, ()):
            if not probe.enabled:
                continue
            probe.hits += 1
            self.total_hits += 1
            cost += probe.overhead_cycles
            cost += self.kernel.trace(
                cpu_idx, Major.APP, AppMinor.PROBE,
                (probe.probe_id, self.kernel.intern_pc(pc_label)),
            )
        return cost
