"""Discrete-event simulation core.

Time is measured in CPU cycles of the simulated machine.  Events are
callbacks ordered by (time, sequence); the sequence number makes
execution deterministic for equal times, which the property tests rely
on.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple


class CancelToken:
    """Handle for a scheduled event; cancellation is O(1) lazy."""

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class Engine:
    """Minimal deterministic event loop over simulated cycles."""

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: List[Tuple[int, int, CancelToken, Callable[[], None]]] = []
        self._seq = 0
        self.events_processed = 0

    def at(self, time: int, fn: Callable[[], None]) -> CancelToken:
        """Schedule ``fn`` at absolute simulated ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        token = CancelToken()
        heapq.heappush(self._heap, (time, self._seq, token, fn))
        self._seq += 1
        return token

    def after(self, delay: int, fn: Callable[[], None]) -> CancelToken:
        """Schedule ``fn`` ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.at(self.now + delay, fn)

    def step(self) -> bool:
        """Run the next event; returns False when the queue is empty."""
        while self._heap:
            time, _seq, token, fn = heapq.heappop(self._heap)
            if token.cancelled:
                continue
            self.now = time
            self.events_processed += 1
            fn()
            return True
        return False

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run until the queue drains, ``until`` cycles pass, or
        ``max_events`` fire.  Returns the number of events processed."""
        processed = 0
        while self._heap:
            time = self._heap[0][0]
            if until is not None and time > until:
                self.now = until
                break
            if max_events is not None and processed >= max_events:
                break
            if self.step():
                processed += 1
        else:
            if until is not None and self.now < until:
                self.now = until
        return processed

    @property
    def pending(self) -> int:
        return sum(1 for e in self._heap if not e[2].cancelled)


class EngineClock:
    """Adapter exposing engine time as a trace-facility clock source."""

    cost_cycles = 10

    def __init__(self, engine: Engine) -> None:
        self.engine = engine

    def now(self, cpu: int = 0) -> int:
        return self.engine.now
