"""K42-like multiprocessor OS simulator substrate.

A discrete-event simulation of the machine the paper ran on: CPUs with a
preemptive, migrating scheduler; processes and threads written as Python
generators; spin-then-block kernel locks; an allocator/page-fault memory
subsystem; PPC-style IPC to server processes; and a Linux-emulation
syscall layer — every path instrumented with the same trace events K42
logs, at the paper's measured trace costs.
"""

from repro.ksim.costs import DEFAULT_COSTS, CostModel
from repro.ksim.cpu import Cpu
from repro.ksim.engine import CancelToken, Engine, EngineClock
from repro.ksim.autotune import AllocatorAutotuner, TuningAction
from repro.ksim.devices import BlockDevice, IoRequest
from repro.ksim.hwcounters import CacheModel, HwCounter, HwCounters
from repro.ksim.probes import Probe, ProbeManager
from repro.ksim.ipc import FS_FUNCTION_NAMES, FS_FUNCTIONS, FileServer, split_comm_id
from repro.ksim.kernel import Kernel, KernelConfig, SymbolTable
from repro.ksim.locks import SimLock
from repro.ksim.memory import MemorySubsystem
from repro.ksim.ops import (
    Acquire,
    BlockOn,
    Compute,
    Nop,
    Op,
    Release,
    ServerContext,
    Sleep,
    SpawnProcess,
    SpawnThread,
    Wake,
)
from repro.ksim.syscalls import SYSCALL_NUMBERS, UserApi
from repro.ksim.thread import Process, SimThread, ThreadState

__all__ = [
    "CostModel", "DEFAULT_COSTS",
    "Cpu", "Engine", "EngineClock", "CancelToken",
    "FileServer", "FS_FUNCTIONS", "FS_FUNCTION_NAMES", "split_comm_id",
    "Kernel", "KernelConfig", "SymbolTable",
    "SimLock", "MemorySubsystem",
    "Op", "Compute", "Acquire", "Release", "BlockOn", "Wake", "Sleep",
    "SpawnProcess", "SpawnThread", "ServerContext", "Nop",
    "SYSCALL_NUMBERS", "UserApi",
    "Process", "SimThread", "ThreadState",
    "HwCounter", "HwCounters", "CacheModel",
    "Probe", "ProbeManager",
    "AllocatorAutotuner", "TuningAction",
    "BlockDevice", "IoRequest",
]
