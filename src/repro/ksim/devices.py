"""Block devices: queued requests, interrupt-driven completion.

Rounds out the I/O side of the simulated machine (§2 mentions "other
I/O interactions" among the things the unified trace lets you study).
A device serves one request at a time; queued requests wait behind it
(the queueing delay that makes I/O latency load-dependent).  Completion
raises an interrupt — traced as ``TRC_EXCEPTION_IO_INTR`` on the CPU
that takes it — and wakes the blocked requester.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, List, Tuple

from repro.core.majors import ExcMinor, Major
from repro.ksim.ops import BlockOn, Compute, Op

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ksim.kernel import Kernel


@dataclass
class IoRequest:
    req_id: int
    kind: str          # "read" | "write"
    nbytes: int
    submitted_at: int
    started_at: int = 0
    completed_at: int = 0

    @property
    def queue_delay(self) -> int:
        return self.started_at - self.submitted_at

    @property
    def service_time(self) -> int:
        return self.completed_at - self.started_at

    @property
    def latency(self) -> int:
        return self.completed_at - self.submitted_at


class BlockDevice:
    """One simulated disk: FIFO queue, single server, completion IRQ."""

    def __init__(
        self,
        kernel: "Kernel",
        name: str = "disk0",
        device_id: int = 0,
        seek_cycles: int = 250_000,
        per_byte_denom: int = 16,
        irq_cpu: int = 0,
    ) -> None:
        self.kernel = kernel
        self.name = name
        self.device_id = device_id
        self.seek_cycles = seek_cycles
        self.per_byte_denom = per_byte_denom
        self.irq_cpu = irq_cpu
        #: simulated time at which the device becomes free
        self._free_at = 0
        self._next_req = 1
        self.completed: List[IoRequest] = []
        self.interrupts = 0
        self.inflight = 0

    def _service_cycles(self, nbytes: int) -> int:
        return self.seek_cycles + nbytes // self.per_byte_denom

    def submit(self, kind: str, nbytes: int) -> Generator[Op, None, IoRequest]:
        """Submit a request and block until its completion interrupt.

        Yields executor ops; the calling thread sleeps while the device
        (and whatever is queued ahead) works.
        """
        kernel = self.kernel
        now = kernel.engine.now
        req = IoRequest(
            req_id=self._next_req, kind=kind, nbytes=nbytes,
            submitted_at=now,
        )
        self._next_req += 1
        req.started_at = max(now, self._free_at)
        req.completed_at = req.started_at + self._service_cycles(nbytes)
        self._free_at = req.completed_at
        key = ("io", self.device_id, req.req_id)

        self.inflight += 1

        def complete() -> None:
            self.interrupts += 1
            self.inflight -= 1
            self.completed.append(req)
            kernel.trace(
                self.irq_cpu, Major.EXC, ExcMinor.IO_INTERRUPT,
                (self.device_id,),
            )
            kernel._wake(key)

        kernel.engine.at(req.completed_at, complete)
        cost = kernel.costs.io_submit
        yield Compute(cost, pc=f"{self.name}::submit_{kind}")
        yield BlockOn(key)
        return req

    @property
    def queue_depth_now(self) -> int:
        """Requests pending at this instant (including in service)."""
        return self.inflight

    def stats(self) -> Tuple[int, float, int]:
        """(requests, mean latency, max latency) over completed I/Os."""
        if not self.completed:
            return (0, 0.0, 0)
        lats = [r.latency for r in self.completed]
        return (len(lats), sum(lats) / len(lats), max(lats))
