"""The Linux-emulation syscall layer and the user-program API.

K42 runs Linux applications through an emulation layer in user space
(§1, §4.7); every syscall here is bracketed by emulation-layer and
syscall enter/exit trace events so the fine-grained breakdown tool can
attribute time among user code, the emulation layer, servers, and the
kernel — reproducing Figure 8's table.

Workload programs receive a :class:`UserApi` and are written as
generators::

    def my_program(api):
        yield from api.compute(50_000, pc="my_inner_loop")
        buf = yield from api.malloc(4096)
        fd = yield from api.open("/etc/passwd")
        yield from api.read(fd, 1024)
        yield from api.close(fd)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator, Optional

from repro.core.majors import IOMinor, Major, SyscallMinor, UserMinor
from repro.ksim.ops import (
    BlockOn,
    Compute,
    Op,
    Sleep,
    SpawnProcess,
    SpawnThread,
)
from repro.ksim.thread import Process, SimThread

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ksim.kernel import Kernel

#: Syscall numbers (Linux-flavoured), named as Figure 8 names them.
SYSCALL_NUMBERS = {
    "SCexit": 1,
    "SCfork": 2,
    "SCread": 3,
    "SCwrite": 4,
    "SCopen": 5,
    "SCclose": 6,
    "SCwaitpid": 7,
    "SCexecve": 11,
    "SCgetpid": 20,
    "SCbrk": 45,
    "SCnanosleep": 162,
}


class UserApi:
    """Everything a simulated user program can do."""

    def __init__(self, kernel: "Kernel", process: Process) -> None:
        self.k = kernel
        self.process = process
        self._next_fd = 3
        self.rng = kernel.rng

    # ------------------------------------------------------------------
    # Syscall bracketing (emulation layer + enter/exit events)
    # ------------------------------------------------------------------
    def _sc_enter(self, name: str) -> Generator[Op, None, int]:
        k = self.k
        num = SYSCALL_NUMBERS[name]
        t0 = k.now
        cost = k.costs.emu_layer + k.costs.syscall_entry
        cost += k.trace(None, Major.USER, UserMinor.EMU_ENTER, (num,))
        cost += k.trace(
            None, Major.SYSCALL, SyscallMinor.ENTER, (self.process.pid, num)
        )
        yield Compute(cost, pc=f"emu::{name}")
        return t0

    def _sc_exit(self, name: str, t0: int) -> Generator[Op, None, None]:
        k = self.k
        num = SYSCALL_NUMBERS[name]
        elapsed = k.now - t0
        cost = k.costs.syscall_exit
        cost += k.trace(
            None, Major.SYSCALL, SyscallMinor.EXIT,
            (self.process.pid, num, elapsed),
        )
        cost += k.trace(None, Major.USER, UserMinor.EMU_EXIT, (num,))
        yield Compute(cost, pc=f"emu::{name}_ret")

    # ------------------------------------------------------------------
    # Pure computation
    # ------------------------------------------------------------------
    def compute(self, cycles: int, pc: str = "user_compute") -> Generator[Op, None, None]:
        """Burn user-mode CPU cycles under the given function label."""
        yield Compute(cycles, pc=pc)

    def set_working_set(self, pages: int) -> None:
        """Declare how many pages this process actively touches.

        Drives the simulated cache/TLB model: working sets beyond the L2
        capacity thrash, and migrations/context switches pay a cold-miss
        burst proportional to the resident set.
        """
        if pages < 1:
            raise ValueError("working set must be at least one page")
        self.process.working_set_pages = pages

    def sleep(self, cycles: int) -> Generator[Op, None, None]:
        """Release the CPU for ``cycles`` (think time, timers)."""
        t0 = yield from self._sc_enter("SCnanosleep")
        yield Sleep(cycles)
        yield from self._sc_exit("SCnanosleep", t0)

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def malloc(self, size: int) -> Generator[Op, None, int]:
        """User-level allocation through the kernel allocator locks."""
        addr = yield from self.k.memory.alloc(size)
        return addr

    def free(self, addr: int, size: int) -> Generator[Op, None, None]:
        yield from self.k.memory.dealloc(addr, size)

    def brk(self, grow: int) -> Generator[Op, None, int]:
        t0 = yield from self._sc_enter("SCbrk")
        self.process.brk += grow
        region = yield from self.k.memory.create_region(self.process.pid, grow)
        yield from self._sc_exit("SCbrk", t0)
        return region

    def touch(
        self, pages: int = 1, major_fraction: float = 0.0
    ) -> Generator[Op, None, None]:
        """Touch fresh memory, taking one page fault per page."""
        for i in range(pages):
            addr = self.process.brk + i * 4096
            major = self.rng.random() < major_fraction
            yield from self.k.memory.page_fault(addr, major=major)

    # ------------------------------------------------------------------
    # File I/O through the file server (PPC)
    # ------------------------------------------------------------------
    def open(self, path: str) -> Generator[Op, None, int]:
        k = self.k
        t0 = yield from self._sc_enter("SCopen")
        cost = k.trace_str_event(None, "TRC_IO_OPEN", self.process.pid, path)
        cost += k.trace_str_event(None, "TRC_IO_LOOKUP", path)
        yield Compute(cost + 80, pc="emu::open_path")
        yield from k.fileserver.call("open")
        fd = self._next_fd
        self._next_fd += 1
        yield from self._sc_exit("SCopen", t0)
        return fd

    def read(
        self, fd: int, nbytes: int, cached: bool = True
    ) -> Generator[Op, None, int]:
        k = self.k
        t0 = yield from self._sc_enter("SCread")
        cost = k.trace(
            None, Major.IO, IOMinor.READ_START, (self.process.pid, fd, nbytes)
        )
        yield Compute(cost + 40, pc="emu::read")
        yield from k.fileserver.call(
            "read", service_cycles=1_500 + nbytes // k.costs.io_per_byte_denom
        )
        if not cached:
            # A real device round trip: queue, service, completion IRQ.
            yield from k.disk.submit("read", nbytes)
        cost = k.trace(None, Major.IO, IOMinor.READ_DONE, (self.process.pid, fd))
        yield Compute(cost + 20, pc="emu::read_done")
        yield from self._sc_exit("SCread", t0)
        return nbytes

    def write(
        self, fd: int, nbytes: int, sync: bool = False
    ) -> Generator[Op, None, int]:
        k = self.k
        t0 = yield from self._sc_enter("SCwrite")
        cost = k.trace(
            None, Major.IO, IOMinor.WRITE_START, (self.process.pid, fd, nbytes)
        )
        yield Compute(cost + 40, pc="emu::write")
        yield from k.fileserver.call(
            "write", service_cycles=1_800 + nbytes // k.costs.io_per_byte_denom
        )
        if sync:
            # O_SYNC-style write: wait for the device round trip.
            yield from k.disk.submit("write", nbytes)
        cost = k.trace(None, Major.IO, IOMinor.WRITE_DONE, (self.process.pid, fd))
        yield Compute(cost + 20, pc="emu::write_done")
        yield from self._sc_exit("SCwrite", t0)
        return nbytes

    def close(self, fd: int) -> Generator[Op, None, None]:
        k = self.k
        t0 = yield from self._sc_enter("SCclose")
        cost = k.trace(None, Major.IO, IOMinor.CLOSE, (self.process.pid, fd))
        yield Compute(cost + 30, pc="emu::close")
        yield from k.fileserver.call("close", service_cycles=600, contend=False)
        yield from self._sc_exit("SCclose", t0)

    # ------------------------------------------------------------------
    # Process lifecycle
    # ------------------------------------------------------------------
    def spawn(
        self,
        program_factory: Callable,
        name: str,
        cpu: Optional[int] = None,
    ) -> Generator[Op, None, Process]:
        """fork + execve, traced as both syscalls (Figure 8's SCexecve
        row with its IPC activity comes from the image loading here)."""
        k = self.k
        t0 = yield from self._sc_enter("SCfork")
        fork_cost = k.costs.fork_lazy if k.config.lazy_fork else k.costs.fork_base
        yield Compute(fork_cost, pc="ProcessDefault::fork")
        addr = yield from k.memory.alloc(4 * 4096)  # child bookkeeping
        yield from self._sc_exit("SCfork", t0)

        t0 = yield from self._sc_enter("SCexecve")
        yield from k.fileserver.call("open", service_cycles=1_200)
        yield from k.fileserver.call("load_image", service_cycles=6_000,
                                     contend=False)
        yield Compute(k.costs.exec_base, pc="ProcessDefault::exec")
        child = yield SpawnProcess(program_factory, name, cpu)
        yield from k.memory.dealloc(addr, 4 * 4096)
        yield from self._sc_exit("SCexecve", t0)
        return child

    def spawn_thread(
        self, program_factory: Callable, cpu: Optional[int] = None
    ) -> Generator[Op, None, SimThread]:
        thread = yield SpawnThread(program_factory, cpu)
        return thread

    def wait(self, child: Process) -> Generator[Op, None, None]:
        """waitpid: block until the child exits."""
        t0 = yield from self._sc_enter("SCwaitpid")
        if not child.exited:
            yield BlockOn(("pexit", child.pid))
        yield from self._sc_exit("SCwaitpid", t0)

    def getpid(self) -> Generator[Op, None, int]:
        t0 = yield from self._sc_enter("SCgetpid")
        yield from self._sc_exit("SCgetpid", t0)
        return self.process.pid

    # ------------------------------------------------------------------
    # Application-level tracing (the unified facility at work)
    # ------------------------------------------------------------------
    def mark(self, label: str, tag: int = 0) -> Generator[Op, None, None]:
        cost = self.k.trace_str_event(None, "TRC_USER_APP_MARK", tag, label)
        yield Compute(max(cost, 1), pc="user_mark")

    def phase_begin(self, name: str, phase_id: int = 0) -> Generator[Op, None, None]:
        cost = self.k.trace_str_event(None, "TRC_APP_PHASE_BEGIN", phase_id, name)
        yield Compute(max(cost, 1), pc="user_phase")

    def phase_end(self, name: str, phase_id: int = 0) -> Generator[Op, None, None]:
        cost = self.k.trace_str_event(None, "TRC_APP_PHASE_END", phase_id, name)
        yield Compute(max(cost, 1), pc="user_phase")
