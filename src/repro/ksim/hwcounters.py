"""Hardware performance counters, sampled into the trace (§2).

"The trace infrastructure may be used to study memory bottlenecks,
memory hot-spots, and other I/O interactions by logging hardware counter
events, e.g., cache-line misses.  Integrating the hardware counter
mechanism and the tracing infrastructure allows the counters to be
sampled and understood at various stages throughout the programs or
operating systems execution."

The simulated machine has per-CPU counters (cycles, instructions, L2
misses, TLB misses) driven by a deliberately simple cache model:

* each process declares a working set (pages); miss rate grows once the
  working set exceeds the L2 capacity;
* a context/migration switch to a different process leaves the cache
  cold — the first slice of the new process pays a cold burst
  proportional to its resident set (the locality cost K42's design
  cares about);
* the TLB miss rate scales with working-set size.

Counters accrue as compute slices retire; a periodic sampler logs the
per-period deltas as ``TRC_HWPERF_SAMPLE`` events, so post-processing
can attribute memory behaviour to processes and phases purely from the
unified trace.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import partial
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.majors import HwPerfMinor, Major

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ksim.cpu import Cpu
    from repro.ksim.kernel import Kernel
    from repro.ksim.thread import SimThread


class HwCounter(enum.IntEnum):
    CYCLES = 0
    INSTRUCTIONS = 1
    L2_MISSES = 2
    TLB_MISSES = 3


@dataclass(frozen=True)
class CacheModel:
    """Parameters of the per-CPU cache/TLB model."""

    l2_capacity_pages: int = 256
    lines_per_page: int = 64
    #: Misses per kilocycle while the working set fits in L2.
    warm_fit_mpk: float = 0.5
    #: Additional misses per kilocycle per working-set/capacity overshoot.
    thrash_mpk: float = 40.0
    #: TLB misses per kilocycle per 64 working-set pages.
    tlb_mpk_per_64_pages: float = 0.8

    def miss_rate_mpk(self, working_set_pages: int) -> float:
        """L2 misses per kilocycle for a warm cache."""
        if working_set_pages <= self.l2_capacity_pages:
            return self.warm_fit_mpk
        overshoot = (working_set_pages - self.l2_capacity_pages) \
            / working_set_pages
        return self.warm_fit_mpk + self.thrash_mpk * overshoot

    def cold_burst(self, working_set_pages: int) -> int:
        """Misses to re-load the resident set after losing the cache."""
        resident = min(working_set_pages, self.l2_capacity_pages)
        return resident * self.lines_per_page // 8

    def tlb_rate_mpk(self, working_set_pages: int) -> float:
        return self.tlb_mpk_per_64_pages * working_set_pages / 64


class HwCounters:
    """Per-CPU counter banks plus the trace-integrated sampler."""

    def __init__(
        self,
        kernel: "Kernel",
        model: Optional[CacheModel] = None,
        sample_period: int = 0,
        overflow_threshold: int = 0,
    ) -> None:
        """``sample_period`` arms timer-based sampling (cycles between
        samples); ``overflow_threshold`` arms overflow-driven sampling (a
        sample event every N misses, logged in the *causing* thread's
        context — the attribution-correct mode real PMUs provide)."""
        self.kernel = kernel
        self.model = model or CacheModel()
        self.sample_period = sample_period
        self.overflow_threshold = overflow_threshold
        ncpus = kernel.config.ncpus
        self.counts: List[Dict[HwCounter, int]] = [
            {c: 0 for c in HwCounter} for _ in range(ncpus)
        ]
        self._last_sampled: List[Dict[HwCounter, int]] = [
            {c: 0 for c in HwCounter} for _ in range(ncpus)
        ]
        #: pid whose data currently occupies each CPU's cache.
        self.cache_owner: List[Optional[int]] = [None] * ncpus
        #: accumulated fractional misses (so small slices still count).
        self._frac: List[Dict[HwCounter, float]] = [
            {HwCounter.L2_MISSES: 0.0, HwCounter.TLB_MISSES: 0.0}
            for _ in range(ncpus)
        ]
        self._armed = False
        self.cold_bursts = 0

    # ------------------------------------------------------------------
    def on_compute(self, cpu_idx: int, thread: "SimThread", cycles: int) -> None:
        """Retire a compute slice: advance the CPU's counters."""
        if cycles <= 0:
            return
        bank = self.counts[cpu_idx]
        bank[HwCounter.CYCLES] += cycles
        bank[HwCounter.INSTRUCTIONS] += cycles  # IPC 1 machine
        ws = getattr(thread.process, "working_set_pages", 16)
        pid = thread.process.pid
        if self.cache_owner[cpu_idx] != pid:
            bank[HwCounter.L2_MISSES] += self.model.cold_burst(ws)
            self.cache_owner[cpu_idx] = pid
            self.cold_bursts += 1
        frac = self._frac[cpu_idx]
        frac[HwCounter.L2_MISSES] += self.model.miss_rate_mpk(ws) \
            * cycles / 1_000
        frac[HwCounter.TLB_MISSES] += self.model.tlb_rate_mpk(ws) \
            * cycles / 1_000
        for counter in (HwCounter.L2_MISSES, HwCounter.TLB_MISSES):
            whole = int(frac[counter])
            if whole:
                bank[counter] += whole
                frac[counter] -= whole
        if self.overflow_threshold > 0:
            last = self._last_sampled[cpu_idx]
            for counter in (HwCounter.L2_MISSES, HwCounter.TLB_MISSES):
                pending = bank[counter] - last[counter]
                if pending >= self.overflow_threshold:
                    last[counter] = bank[counter]
                    # Logged while the causing thread is current, so the
                    # context tracker attributes it correctly.
                    self.kernel.trace(
                        cpu_idx, Major.HWPERF, HwPerfMinor.COUNTER_SAMPLE,
                        (int(counter), pending),
                    )

    # ------------------------------------------------------------------
    def arm(self) -> None:
        """Start the periodic counter sampler (idempotent)."""
        if self.sample_period <= 0 or self._armed:
            return
        self._armed = True
        for cpu in self.kernel.cpus:
            self.kernel.engine.after(
                self.sample_period, partial(self._sample, cpu)
            )

    def _sample(self, cpu: "Cpu") -> None:
        # Flush pending deltas even on the final tick, so counts charged
        # just before quiescence still reach the trace.
        bank = self.counts[cpu.idx]
        last = self._last_sampled[cpu.idx]
        for counter in (HwCounter.L2_MISSES, HwCounter.TLB_MISSES):
            delta = bank[counter] - last[counter]
            last[counter] = bank[counter]
            if delta:
                self.kernel.trace(
                    cpu.idx, Major.HWPERF, HwPerfMinor.COUNTER_SAMPLE,
                    (int(counter), delta),
                )
        if self.kernel.live_threads <= 0:
            self._armed = False
            return
        self.kernel.engine.after(
            self.sample_period, partial(self._sample, cpu)
        )

    def flush_samples(self) -> None:
        """Log all pending per-CPU deltas now (end-of-run flush).

        Without this, misses charged after the last timer tick would
        never reach the trace; the kernel calls it at quiescence.
        """
        if self.sample_period <= 0 and self.overflow_threshold <= 0:
            return
        for cpu_idx in range(len(self.counts)):
            bank = self.counts[cpu_idx]
            last = self._last_sampled[cpu_idx]
            for counter in (HwCounter.L2_MISSES, HwCounter.TLB_MISSES):
                delta = bank[counter] - last[counter]
                last[counter] = bank[counter]
                if delta:
                    self.kernel.trace(
                        cpu_idx, Major.HWPERF, HwPerfMinor.COUNTER_SAMPLE,
                        (int(counter), delta),
                    )

    # ------------------------------------------------------------------
    def totals(self) -> Dict[HwCounter, int]:
        out = {c: 0 for c in HwCounter}
        for bank in self.counts:
            for c, v in bank.items():
                out[c] += v
        return out
