"""IPC: protected procedure calls (PPC) to server processes.

K42 structures OS services as user-level servers reached by PPC —
Figure 5 shows ``TRC_EXCEPTION_PPC_CALL/RETURN`` events, and Figure 8
attributes per-syscall IPC counts and time.  A PPC moves the calling
thread into the server's address space; while there, execution (and PC
samples) attribute to the server PID, which is how Figure 6 can show a
profile *for* baseServers (pid 0x1) full of hash-table and dentry
functions.

The file server also owns internal locks (dentry hash, name cache) so
that file-system-heavy workloads contend realistically inside pid 1.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.core.majors import ExcMinor, Major
from repro.ksim.ops import Acquire, Compute, Op, Release, ServerContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ksim.kernel import Kernel

#: Function ids inside the file server (encoded into the PPC commID).
FS_FUNCTIONS = {
    "open": 1,
    "read": 2,
    "write": 3,
    "close": 4,
    "lookup": 5,
    "load_image": 6,
}

FS_FUNCTION_NAMES = {v: k for k, v in FS_FUNCTIONS.items()}

#: Server-side function labels (the Figure 6 histogram's vocabulary).
_SERVER_PC = {
    "open": "DirLinuxFS::externalLookupDirectory(char*,",
    "read": "HashSimpleBase<AllocGlobal, 01>::find(unsigned",
    "write": "HashSNBBase<AllocGlobal, 01, 8l>::add(unsigned",
    "close": "XHandleTrans::alloc(Obj**,",
    "lookup": "DentryListHash::lookupPtr(char*,",
    "load_image": "_wordcopy_fwd_aligned",
}

_SERVER_CHAIN = (
    "DentryListHash::lookupPtr(char*,",
    "DirLinuxFS::externalLookupDirectory(char*,",
    "ServerFileBlockK42::locked_getFile()",
)


def make_comm_id(server_pid: int, fn_id: int) -> int:
    return (server_pid << 32) | fn_id


def split_comm_id(comm_id: int) -> tuple[int, int]:
    return comm_id >> 32, comm_id & 0xFFFF_FFFF


class FileServer:
    """baseServers' file service, reached by PPC."""

    def __init__(self, kernel: "Kernel") -> None:
        self.k = kernel
        self.process = kernel.base_servers
        # K42's file server partitions its dentry hash so CPUs rarely
        # collide; the coarse baseline funnels through one lock.
        nparts = 1 if kernel.config.coarse_locked else max(
            2, kernel.config.ncpus
        )
        self.dentry_locks = [
            kernel.create_lock(f"DentryListHash.{i}") for i in range(nparts)
        ]
        self.namecache_lock = kernel.create_lock("NameCache")
        self.calls = 0

    def call(
        self,
        fn: str,
        service_cycles: Optional[int] = None,
        contend: bool = True,
    ) -> Generator[Op, None, None]:
        """One PPC round trip into the file server.

        ``contend=True`` routes through the server's dentry lock, making
        pid 1 a contention hot spot under file-system-heavy load.
        """
        k = self.k
        fn_id = FS_FUNCTIONS[fn]
        comm_id = make_comm_id(self.process.pid, fn_id)
        self.calls += 1
        if service_cycles is None:
            service_cycles = 2_500

        cost = k.trace(None, Major.EXC, ExcMinor.PPC_CALL, (comm_id,))
        yield Compute(
            cost + k.costs.ppc_call // 2, pc="DispatcherDefault_IPCalleeEntry"
        )
        # Inside the server's address space now.
        yield ServerContext(self.process.pid)
        if contend:
            lock = self.dentry_locks[self.calls % len(self.dentry_locks)]
            yield Acquire(lock, _SERVER_CHAIN)
            yield Compute(service_cycles, pc=_SERVER_PC[fn])
            yield Release(lock)
        else:
            yield Compute(service_cycles, pc=_SERVER_PC[fn])
        yield ServerContext(None)
        cost = k.trace(None, Major.EXC, ExcMinor.PPC_RETURN, (comm_id,))
        yield Compute(cost + k.costs.ppc_call // 2, pc="DispatcherDefault_IPCReturn")
