"""Unit tests for the shared-memory atomic primitives.

The contract: :class:`ShmAtomicWord` / :class:`ShmAtomicArray` behave
exactly like :mod:`repro.atomic.primitives` — same operations, same
return values, same observer/yield seams as the stepped variants — with
storage in a shared buffer and mutual exclusion that holds across both
threads and processes.
"""

import struct
import threading
from multiprocessing import shared_memory

import pytest

from repro.shm.atomics import (
    SegmentLock,
    ShmAtomicArray,
    ShmAtomicWord,
    ShmWordsView,
    lockfile_for_segment,
)


@pytest.fixture
def segment():
    shm = shared_memory.SharedMemory(create=True, size=1024)
    lock = SegmentLock(shm.name)
    try:
        yield shm, lock
    finally:
        lock.close()
        lock.unlink_sidecar()
        shm.close()
        shm.unlink()


class TestShmAtomicWord:
    def test_load_store_roundtrip(self, segment):
        shm, lock = segment
        word = ShmAtomicWord(shm.buf, 0, lock)
        assert word.load() == 0
        word.store(0xDEADBEEF)
        assert word.load() == 0xDEADBEEF
        assert word.peek() == 0xDEADBEEF

    def test_storage_is_the_shared_buffer(self, segment):
        shm, lock = segment
        word = ShmAtomicWord(shm.buf, 16, lock)
        word.store(42)
        assert struct.unpack_from("<Q", shm.buf, 16)[0] == 42
        # another "attach": a second word over the same bytes sees it
        other = ShmAtomicWord(shm.buf, 16, SegmentLock(shm.name))
        assert other.load() == 42

    def test_compare_and_store(self, segment):
        shm, lock = segment
        word = ShmAtomicWord(shm.buf, 0, lock)
        word.store(5)
        assert word.compare_and_store(5, 6) is True
        assert word.load() == 6
        assert word.compare_and_store(5, 7) is False
        assert word.load() == 6

    def test_fetch_and_add_returns_old(self, segment):
        shm, lock = segment
        word = ShmAtomicWord(shm.buf, 0, lock)
        assert word.fetch_and_add(10) == 0
        assert word.fetch_and_add(5) == 10
        assert word.load() == 15

    def test_values_wrap_at_64_bits(self, segment):
        shm, lock = segment
        word = ShmAtomicWord(shm.buf, 0, lock)
        word.store((1 << 64) + 3)
        assert word.load() == 3
        word.store((1 << 64) - 1)
        assert word.fetch_and_add(1) == (1 << 64) - 1
        assert word.load() == 0

    def test_misaligned_offset_rejected(self, segment):
        shm, lock = segment
        with pytest.raises(ValueError):
            ShmAtomicWord(shm.buf, 4, lock)

    def test_observer_and_yield_seams(self, segment):
        shm, lock = segment
        seen = []
        points = []
        word = ShmAtomicWord(
            shm.buf, 0, lock, name="idx",
            yield_fn=points.append,
            observer=lambda name, op, args, res: seen.append(
                (name, op, args, res)),
        )
        word.store(1)
        word.load()
        word.compare_and_store(1, 2)
        word.compare_and_store(1, 3)
        word.fetch_and_add(4)
        assert points == ["idx.store", "idx.load", "idx.cas", "idx.cas",
                          "idx.faa"]
        assert seen == [
            ("idx", "store", (0, 1), None),
            ("idx", "load", (), 1),
            ("idx", "cas", (1, 2), True),
            ("idx", "cas", (1, 3), False),
            ("idx", "faa", (2, 6), 2),
        ]

    def test_cas_is_atomic_across_threads(self, segment):
        """Counter bumped only via CAS retry loops from many threads:
        no increment may be lost (the in-process half of the lock)."""
        shm, lock = segment
        per_thread = 200
        nthreads = 8

        def bump():
            word = ShmAtomicWord(shm.buf, 0, SegmentLock(shm.name))
            for _ in range(per_thread):
                while True:
                    cur = word.load()
                    if word.compare_and_store(cur, cur + 1):
                        break

        threads = [threading.Thread(target=bump) for _ in range(nthreads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert ShmAtomicWord(shm.buf, 0, lock).load() == \
            per_thread * nthreads


class TestShmAtomicArray:
    def test_per_element_ops(self, segment):
        shm, lock = segment
        arr = ShmAtomicArray(shm.buf, 64, 4, lock)
        assert len(arr) == 4
        arr.store(2, 99)
        assert arr.load(2) == 99
        assert arr.peek(2) == 99
        assert arr.peek_all() == [0, 0, 99, 0]
        assert arr.compare_and_store(2, 99, 100) is True
        assert arr.compare_and_store(2, 99, 101) is False
        assert arr.fetch_and_add(0, 7) == 0
        assert arr.snapshot() == [7, 0, 100, 0]

    def test_bounds_checked(self, segment):
        shm, lock = segment
        arr = ShmAtomicArray(shm.buf, 0, 4, lock)
        with pytest.raises(IndexError):
            arr.load(4)
        with pytest.raises(IndexError):
            arr.store(-1, 0)

    def test_observer_labels_name_the_element(self, segment):
        shm, lock = segment
        seen = []
        arr = ShmAtomicArray(
            shm.buf, 0, 4, lock, name="committed",
            observer=lambda name, op, args, res: seen.append((name, op)),
        )
        arr.compare_and_store(3, 0, 1)
        assert seen == [("committed[3]", "cas")]


class TestShmWordsView:
    def test_item_and_slice_access(self, segment):
        shm, _ = segment
        view = ShmWordsView(shm.buf, 0, 8)
        assert len(view) == 8
        view[0] = 11
        view[7] = 77
        assert view[0] == 11
        assert view[0:8] == [11, 0, 0, 0, 0, 0, 0, 77]
        view[2:5] = [1, 2, 3]
        assert view.tolist() == [11, 0, 1, 2, 3, 0, 0, 77]
        assert list(view) == view.tolist()

    def test_slice_write_length_checked(self, segment):
        shm, _ = segment
        view = ShmWordsView(shm.buf, 0, 8)
        with pytest.raises(ValueError):
            view[0:3] = [1, 2]

    def test_bounds_checked(self, segment):
        shm, _ = segment
        view = ShmWordsView(shm.buf, 0, 8)
        with pytest.raises(IndexError):
            view[8]
        with pytest.raises(IndexError):
            view[8] = 0

    def test_views_alias_the_same_memory(self, segment):
        shm, _ = segment
        a = ShmWordsView(shm.buf, 0, 4)
        b = ShmWordsView(shm.buf, 0, 4)
        a[1] = 1234
        assert b[1] == 1234


class TestSegmentLock:
    def test_lockfile_path_selection(self, segment):
        shm, _ = segment
        path = lockfile_for_segment(shm.name)
        # On Linux the segment file itself; elsewhere a sidecar.
        assert shm.name in path

    def test_acquire_release_pairs(self, segment):
        shm, lock = segment
        lock.acquire(0)
        lock.release(0)
        lock.acquire(8)
        lock.release(8)

    def test_close_is_idempotent(self, segment):
        shm, _ = segment
        lock = SegmentLock(shm.name)
        lock.close()
        lock.close()
