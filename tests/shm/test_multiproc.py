"""True cross-process runs: independent OS processes over one segment.

The acceptance leg: two or more OS processes reserve/commit into the
same shared-memory buffers with no lock held across reserve/log/commit,
a collector process drains them into the standard trace format, and the
drained file decodes complete and bit-identically through every reader
path.  Parametrized over both ``fork`` and ``spawn`` start methods —
spawn is the macOS/Windows-style path where children re-import modules
rather than inheriting state.

Resource hygiene is part of the contract: every run — including one
whose writer is SIGKILLed mid-protocol — must leave no shared-memory
segment behind and no ``resource_tracker`` complaints on stderr (the
subprocess tests assert on literal interpreter stderr, where the
tracker prints at exit).
"""

import multiprocessing
import os
import signal
import subprocess
import sys
import tempfile
import textwrap
import time

import pytest

from repro.core.majors import Major
from repro.core.writer import load_records
from repro.shm import ShmTraceRegion, run_shm_workload
from repro.shm.procs import expected_payloads, writer_main
from tests.core.test_parallel import assert_all_paths_identical

# CI runs one start method per matrix leg via SHM_START_METHODS=fork
# (or spawn); locally, unset, both parametrize in one run.
_wanted = os.environ.get("SHM_START_METHODS")
START_METHODS = [m for m in ("fork", "spawn")
                 if m in multiprocessing.get_all_start_methods()
                 and (not _wanted or m in _wanted.split(","))]

pytestmark = pytest.mark.skipif(
    not START_METHODS, reason="no multiprocessing start method available")


def shm_segments():
    """Names of live POSIX shm segments (Linux; empty set elsewhere)."""
    try:
        return {n for n in os.listdir("/dev/shm") if n.startswith("psm_")}
    except FileNotFoundError:
        return set()


def drained_complete(path, writers, events, data_words):
    """Decode ``path`` on every reader path and demand completeness."""
    records = load_records(path)
    trace = assert_all_paths_identical(records, workers=2)
    bad = [a for a in trace.anomalies if a.kind != "missing-anchor"]
    if bad:  # dump full context so a one-in-N failure documents itself
        by_key = {(r.cpu, r.seq): r for r in records}
        lines = []
        for a in bad:
            r = by_key.get((a.cpu, a.seq))
            ctx = "record missing" if r is None else (
                f"committed={r.committed} fill={r.fill_words} "
                f"partial={r.partial} words[{max(0, a.offset - 2)}:"
                f"{a.offset + 4}]="
                f"{[hex(w) for w in r.words[max(0, a.offset - 2):a.offset + 4]]}")
            lines.append(f"{a.kind} cpu={a.cpu} seq={a.seq} "
                         f"off={a.offset}: {a.detail} | {ctx}")
        raise AssertionError("drained trace has anomalies:\n" +
                            "\n".join(lines))
    issued = expected_payloads(writers, events, data_words)
    for cpu in range(writers):
        got = [list(e.data) for e in trace.events(cpu)
               if e.major == Major.TEST]
        assert got == issued[cpu], (
            f"cpu {cpu}: drained {len(got)} events, "
            f"issued {len(issued[cpu])}")
    return trace


@pytest.mark.parametrize("method", START_METHODS)
class TestCrossProcess:
    def test_concurrent_collector_complete_trace(self, method, tmp_path):
        """Writers race a live collector; wrap-free geometry, so the
        drained trace must hold every event of every writer."""
        before = shm_segments()
        out = str(tmp_path / f"shm-{method}.k42")
        result = run_shm_workload(
            out, writers=2, events=300, data_words=2,
            buffer_words=64, num_buffers=32,  # 2048 words >= 300*3+slack
            start_method=method)
        assert result.collector["dropped"] == 0, result.collector
        assert result.collector["frames"] > 0
        drained_complete(out, 2, 300, 2)
        assert shm_segments() == before  # segment unlinked

    def test_post_quiesce_collector(self, method, tmp_path):
        out = str(tmp_path / f"shm-post-{method}.k42")
        result = run_shm_workload(
            out, writers=2, events=200, data_words=1,
            buffer_words=64, num_buffers=16,
            start_method=method, concurrent_collector=False)
        assert result.collector["dropped"] == 0
        drained_complete(out, 2, 200, 1)

    def test_many_writers(self, method, tmp_path):
        if method == "spawn":
            pytest.skip("4-process spawn startup dominates; fork covers it")
        out = str(tmp_path / "shm-many.k42")
        result = run_shm_workload(
            out, writers=4, events=250, data_words=2,
            buffer_words=128, num_buffers=16,
            start_method=method)
        assert result.collector["dropped"] == 0
        drained_complete(out, 4, 250, 2)


class TestContention:
    def test_interleaved_attach_same_cpu_from_two_processes(self, tmp_path):
        """Two processes hammering the SAME cpu's ring: the CAS must
        serialize them so no event is lost or torn.  (The writer API
        binds one process per CPU; this stresses the primitive anyway —
        it is exactly the paper's many-threads-one-CPU-buffer case.)"""
        method = START_METHODS[0]
        ctx = multiprocessing.get_context(method)
        region = ShmTraceRegion.create(ncpus=1, buffer_words=64,
                                       num_buffers=64)
        try:
            barrier = ctx.Barrier(2)
            # Both processes log writer-0's payload stream; minor 1 and 2
            # distinguish them in the decode.
            procs = [
                ctx.Process(target=_contend_main,
                            args=(region.name, minor, 200, barrier))
                for minor in (1, 2)
            ]
            for p in procs:
                p.start()
            for p in procs:
                p.join(60)
                assert p.exitcode == 0
            region.set_done()
            from repro.shm import ShmCollector
            records = ShmCollector(region).finalize()
            from repro.core.stream import TraceReader
            trace = TraceReader(check_committed=True).decode_records(records)
            assert [a.kind for a in trace.anomalies
                    if a.kind != "missing-anchor"] == []
            per_minor = {1: [], 2: []}
            for e in trace.events(0):
                if e.major == Major.TEST:
                    per_minor[e.minor].append(list(e.data))
            for minor in (1, 2):
                assert per_minor[minor] == [[i] for i in range(200)]
        finally:
            region.close()
            region.unlink()


def _contend_main(name, minor, events, barrier):
    region = ShmTraceRegion.attach(name)
    try:
        logger = region.logger(0)
        barrier.wait()
        for i in range(events):
            logger.log_words(Major.TEST, minor, [i])
    finally:
        region.close()


class TestResourceHygiene:
    """No leaks, no tracker noise — even when writers die badly."""

    def test_workload_leaves_no_tracker_warnings(self, tmp_path):
        """Run a full workload in a fresh interpreter: its stderr must
        not mention the resource tracker (leak warnings print at exit)."""
        out = str(tmp_path / "clean.k42")
        code = textwrap.dedent(f"""
            from repro.shm import run_shm_workload
            r = run_shm_workload({out!r}, writers=2, events=100,
                                 buffer_words=64, num_buffers=16)
            assert r.collector["dropped"] == 0
        """)
        proc = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            env={**os.environ, "PYTHONPATH": "src"}, timeout=120)
        assert proc.returncode == 0, proc.stderr
        assert "resource_tracker" not in proc.stderr, proc.stderr
        assert "leaked" not in proc.stderr, proc.stderr

    def test_sigkilled_writer_leaks_nothing(self, tmp_path):
        """SIGKILL a writer mid-commit: the parent still drains, closes
        and unlinks; a fresh interpreter's stderr stays silent."""
        out = str(tmp_path / "killed.k42")
        code = textwrap.dedent(f"""
            import multiprocessing, os, signal, time
            from repro.shm import ShmCollector, ShmTraceRegion
            from repro.shm.procs import writer_main

            ctx = multiprocessing.get_context()
            region = ShmTraceRegion.create(ncpus=1, buffer_words=64,
                                           num_buffers=8)
            try:
                p = ctx.Process(target=writer_main,
                                args=(region.name, 0, 50, 1, None, True))
                p.start()
                # let it log until the ring shows real traffic
                deadline = time.monotonic() + 30
                while region.index_word(0).peek() < 256:
                    assert time.monotonic() < deadline, "writer too slow"
                    time.sleep(0.001)
                os.kill(p.pid, signal.SIGKILL)
                p.join(30)
                assert p.exitcode == -signal.SIGKILL
                region.set_done()
                stats = ShmCollector(region).drain_to_file({out!r},
                                                           timeout_s=10)
                assert stats.frames > 0
            finally:
                region.close()
                region.unlink()
        """)
        before = shm_segments()
        proc = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            env={**os.environ, "PYTHONPATH": "src"}, timeout=120)
        assert proc.returncode == 0, proc.stderr
        assert "resource_tracker" not in proc.stderr, proc.stderr
        assert shm_segments() == before
        # The torn trace still loads and decodes without raising; a
        # half-committed final buffer may surface as anomalies, never
        # as an exception.
        records = load_records(out)
        assert records
        assert_all_paths_identical(records, workers=2)

    def test_writer_killed_concurrent_with_collector(self, tmp_path):
        """The full scenario in-process: writer killed while a live
        collector drains; everything shuts down and unlinks."""
        before = shm_segments()
        method = START_METHODS[0]
        ctx = multiprocessing.get_context(method)
        out = str(tmp_path / "killed-live.k42")
        region = ShmTraceRegion.create(ncpus=1, buffer_words=64,
                                       num_buffers=8)
        try:
            p = ctx.Process(target=writer_main,
                            args=(region.name, 0, 50, 1, None, True))
            p.start()
            deadline = time.monotonic() + 30
            while region.index_word(0).peek() < 128:
                assert time.monotonic() < deadline
                time.sleep(0.001)
            os.kill(p.pid, signal.SIGKILL)
            p.join(30)
            region.set_done()
            from repro.shm import ShmCollector
            stats = ShmCollector(region).drain_to_file(out, timeout_s=10)
            assert stats.frames > 0
        finally:
            region.close()
            region.unlink()
        assert shm_segments() == before
