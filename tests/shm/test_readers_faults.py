"""Every reader path, and the whole fault matrix, over *drained* traces.

The collector's output claims to be an ordinary trace: records that any
of the readers — scalar, batched, parallel, columnar, columnar-parallel
— decode bit-identically, and that survive the same damage matrix the
in-process traces survive.  This file holds that claim to the same
standard ``tests/core/test_faults.py`` applies to facility-produced
records: injected corruption surfaces as typed anomalies or file
issues, never as an exception, and never splits the reader paths.
"""

import io
import os

import pytest

from repro.core.faults import FILE_KINDS, RECORD_KINDS, FaultInjector
from repro.core.majors import Major
from repro.core.stream import TraceReader
from repro.core.writer import TraceFileReader, TraceFileWriter, load_records
from repro.shm import ShmCollector, ShmTraceRegion
from tests.core.test_parallel import as_comparable, assert_all_paths_identical

SEEDS = [int(s) for s in
         os.environ.get("FAULT_FUZZ_SEEDS", "0,1,2").split(",")]


@pytest.fixture(scope="module")
def drained():
    """One region, two attaches logging interleaved, drained to bytes.

    Returns ``(records, file_bytes)`` — the records as the collector
    emitted them and the standard trace-file serialization of the same.
    """
    region = ShmTraceRegion.create(ncpus=2, buffer_words=64, num_buffers=8)
    a = ShmTraceRegion.attach(region.name)
    b = ShmTraceRegion.attach(region.name)
    try:
        la = a.logger(0)
        lb = b.logger(1)
        for i in range(100):
            la.log_words(Major.TEST, 1, [i, i * 3][: 1 + i % 2])
            lb.log_words(Major.TEST, 2, [i])
        region.set_done()
        buf = io.BytesIO()
        writer = TraceFileWriter(buf, region.layout.buffer_words)
        ShmCollector(region).drain_to(writer, timeout_s=5)
    finally:
        a.close()
        b.close()
        region.close()
        region.unlink()
    data = buf.getvalue()
    return load_records(io.BytesIO(data)), data


class TestDrainedIdentity:
    @pytest.mark.parametrize("strict", [False, True])
    def test_all_paths_identical(self, drained, strict):
        records, _ = drained
        trace = assert_all_paths_identical(records, strict=strict)
        assert [a.kind for a in trace.anomalies
                if a.kind != "missing-anchor"] == []
        assert sum(len(v) for v in trace.events_by_cpu.values()) >= 200

    def test_with_fillers(self, drained):
        records, _ = drained
        assert_all_paths_identical(records, include_fillers=True)

    def test_file_round_trip_is_lossless(self, drained):
        records, data = drained
        reloaded = load_records(io.BytesIO(data))
        ref = as_comparable(TraceReader().decode_records(records))
        assert as_comparable(TraceReader().decode_records(reloaded)) == ref

    def test_committed_counts_cover_drained_buffers(self, drained):
        """The collector's gate: every full record it emitted live or at
        a quiesced finalize carries a covering committed count."""
        records, _ = drained
        for r in records:
            assert r.committed == r.fill_words, (r.cpu, r.seq)


class TestDrainedRecordFaults:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("kind", RECORD_KINDS)
    def test_fault_yields_anomaly_never_raises(self, drained, kind, seed):
        records, _ = drained
        damaged, report = FaultInjector(seed).inject_records(records, kind)
        assert report.detectable, report.describe()
        trace = TraceReader().decode_records(damaged)
        assert trace.anomalies, (
            f"{kind} on drained trace (seed {seed}) decoded clean: "
            f"{report.describe()}")
        assert_all_paths_identical(damaged)
        assert_all_paths_identical(damaged, strict=True)


class TestDrainedFileFaults:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("kind", FILE_KINDS)
    def test_fault_reported_never_raises(self, drained, kind, seed):
        _, data = drained
        hurt, report = FaultInjector(seed).inject_trace_bytes(data, kind)
        reader = TraceFileReader(io.BytesIO(hurt))
        loaded = reader.read_all()   # must not raise
        # A mid-frame truncation that leaves a well-formed header
        # prefix is byte-identical to an in-progress write, so it
        # surfaces as the "growing" tail verdict rather than an issue;
        # every other shape is an issue.
        assert reader.issues or reader.tail_state == "growing", \
            report.describe()
        if kind == "frame-magic":
            assert reader.issues, report.describe()
        assert loaded, "damage must not take the whole file with it"
        with pytest.raises((ValueError, EOFError)):
            TraceFileReader(io.BytesIO(hurt), strict=True).read_all()
        assert_all_paths_identical(loaded)
