"""The model checker must cover the shared-memory seam.

Same contract as ``tests/check/test_mutants.py``, one layer down: the
Stepped instrumentation wraps the *shm* primitives (``ShmAtomicWord``,
``ShmAtomicArray``, the raw segment words), clean configurations pass
exhaustive exploration, each shm-specific mutant is provably caught
with a minimized, deterministically replayable counterexample, and a
run leaves no shared-memory segment behind.
"""

import pytest

from repro.check import CheckConfig, explore_exhaustive
from repro.check.mutants import MUTANTS
from repro.check.script import ScheduleScript
from repro.check.shm import SHM_MUTANTS
from tests.shm.test_multiproc import shm_segments


def _explore_shm_mutant(name):
    spec = SHM_MUTANTS[name]
    overrides = dict(spec.config)
    bound = overrides.pop("preemption_bound", 2)
    cfg = CheckConfig(mutant=name, **overrides)
    return spec, explore_exhaustive(cfg, preemption_bound=bound)


class TestCleanConfigurations:
    def test_two_writers_over_shm(self):
        cfg = CheckConfig(shm=True, shm_cpus=2, writers=2, events=1)
        result = explore_exhaustive(cfg, preemption_bound=1)
        assert result.passed, result.violation
        assert result.schedules > 1

    def test_writer_races_collector(self):
        cfg = CheckConfig(shm=True, shm_cpus=1, writers=1, events=2,
                          collector_steps=2)
        result = explore_exhaustive(cfg, preemption_bound=1)
        assert result.passed, result.violation

    def test_no_segment_leaks(self):
        before = shm_segments()
        cfg = CheckConfig(shm=True, shm_cpus=1, writers=2, events=1)
        explore_exhaustive(cfg, preemption_bound=1)
        assert shm_segments() == before


class TestShmMutants:
    @pytest.mark.parametrize("name", sorted(SHM_MUTANTS))
    def test_mutant_is_caught(self, name):
        spec, result = _explore_shm_mutant(name)
        assert not result.passed, (
            f"shm mutant {name!r} survived {result.schedules} schedules; "
            f"re-run: PYTHONPATH=src python -m repro.cli check --mutant {name}"
        )
        assert result.violation.invariant in spec.expected, (
            f"shm mutant {name!r} tripped {result.violation.invariant!r}, "
            f"expected one of {spec.expected}: {result.violation.detail}"
        )

    @pytest.mark.parametrize("name", sorted(SHM_MUTANTS))
    def test_counterexample_is_minimized_and_replays(self, name):
        _, result = _explore_shm_mutant(name)
        mini = result.counterexample
        assert mini.steps <= result.original.steps
        script = ScheduleScript.from_outcome(mini)
        first = script.replay()
        second = script.replay()
        assert first.violation is not None
        assert first.violation.invariant == result.violation.invariant
        assert first.choices == second.choices
        assert first.violation.detail == second.violation.detail

    def test_registry_disjoint_from_logger_mutants(self):
        assert set(SHM_MUTANTS) == {"stale-attach-offset",
                                    "missed-flush-on-death"}
        assert not set(SHM_MUTANTS) & set(MUTANTS)
        for spec in SHM_MUTANTS.values():
            assert spec.config.get("shm") is not False
            assert spec.summary


class TestComposition:
    def test_logger_mutant_composes_over_shm(self):
        """The PR-4 logger mutants run unchanged over the shm seam —
        the protocol is the same object, only the memory moved."""
        cfg = CheckConfig(mutant="non-atomic-reserve", shm=True,
                          shm_cpus=1, writers=2, events=1)
        result = explore_exhaustive(cfg, preemption_bound=2)
        assert not result.passed
        assert result.violation.invariant in (
            "double-write", "lost-or-reordered-events",
        ), result.violation
