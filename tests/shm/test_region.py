"""Segment lifecycle, layout geometry, and in-process protocol runs.

Everything here happens in one process — the cross-process legs live in
``test_multiproc.py`` — but always through the real segment: create,
attach by name, log through the unchanged protocol, drain, decode.
"""

import pytest

from repro.core.majors import Major
from repro.core.stream import TraceReader
from repro.shm import ShmCollector, ShmLayout, ShmTraceRegion
from repro.shm.region import (
    HEADER_WORDS,
    SEGMENT_MAGIC,
    ShmFormatError,
)


@pytest.fixture
def region():
    reg = ShmTraceRegion.create(ncpus=2, buffer_words=64, num_buffers=4)
    try:
        yield reg
    finally:
        reg.close()
        reg.unlink()


class TestLayout:
    def test_geometry_is_disjoint_and_ordered(self):
        lay = ShmLayout(ncpus=3, buffer_words=64, num_buffers=4)
        assert lay.total_words_per_cpu == 256
        spans = []
        for cpu in range(3):
            base = lay.cpu_base(cpu)
            assert lay.index_word(cpu) == base
            assert lay.booked_word(cpu) == base + 1
            assert lay.committed_words(cpu) == base + 4
            assert lay.slot_seq_words(cpu) == base + 8
            assert lay.trace_words(cpu) == base + 12
            spans.append((base, base + lay.cpu_words))
        assert spans[0][0] == HEADER_WORDS
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end == start  # contiguous, no overlap
        assert lay.segment_words == spans[-1][1]
        assert lay.segment_bytes == 8 * lay.segment_words

    def test_cpu_out_of_range(self):
        lay = ShmLayout(ncpus=1, buffer_words=8, num_buffers=2)
        with pytest.raises(ValueError):
            lay.cpu_base(1)


class TestLifecycle:
    def test_create_stamps_header_and_anchors(self, region):
        assert region.owner
        attached = ShmTraceRegion.attach(region.name)
        try:
            assert attached.layout == region.layout
            assert attached.clock_origin_ns == region.clock_origin_ns
            assert not attached.owner
            # the creator's start() anchored buffer 0 of every CPU
            for cpu in range(2):
                assert attached.index_word(cpu).peek() > 0
        finally:
            attached.close()

    def test_attach_rejects_foreign_segment(self):
        from multiprocessing import shared_memory
        shm = shared_memory.SharedMemory(create=True, size=1024)
        try:
            with pytest.raises(ShmFormatError):
                ShmTraceRegion.attach(shm.name)
        finally:
            shm.close()
            shm.unlink()

    def test_attach_rejects_unknown_version(self, region):
        from repro.shm.region import _H_VERSION
        region._poke_header(_H_VERSION, 999)
        try:
            with pytest.raises(ShmFormatError):
                ShmTraceRegion.attach(region.name)
        finally:
            region._poke_header(_H_VERSION, 1)

    def test_done_flag(self, region):
        assert not region.is_done()
        region.set_done()
        assert region.is_done()
        region.set_done()  # idempotent
        assert region.is_done()
        assert region._peek_header(0) == SEGMENT_MAGIC  # header intact

    def test_close_is_idempotent(self):
        reg = ShmTraceRegion.create(ncpus=1, buffer_words=8, num_buffers=2)
        reg.close()
        reg.close()
        reg.unlink()
        reg.unlink()

    def test_context_manager_owner_unlinks(self):
        with ShmTraceRegion.create(ncpus=1, buffer_words=8,
                                   num_buffers=2) as reg:
            name = reg.name
        with pytest.raises(FileNotFoundError):
            ShmTraceRegion.attach(name)

    def test_cleanup_by_name(self):
        reg = ShmTraceRegion.create(ncpus=1, buffer_words=8, num_buffers=2)
        name = reg.name
        reg.close()  # detach without unlink: simulated dead owner
        assert ShmTraceRegion.cleanup(name) is True
        assert ShmTraceRegion.cleanup(name) is False


class TestProtocolOverShm:
    def test_log_and_drain_round_trip(self):
        """Two attaches log interleaved; the collector's file decodes
        complete with the shared clock ordering each CPU's stream.
        Geometry is wrap-free (512 words per CPU for ~300 logged)."""
        region = ShmTraceRegion.create(ncpus=2, buffer_words=64,
                                       num_buffers=8)
        a = ShmTraceRegion.attach(region.name)
        b = ShmTraceRegion.attach(region.name)
        try:
            la = a.logger(0)
            lb = b.logger(1)
            for i in range(100):
                la.log_words(Major.TEST, 1, [i, i * 3])
                lb.log_words(Major.TEST, 2, [i, i * 5])
            region.set_done()
            collector = ShmCollector(region)
            records = collector.poll(lag=0) + collector.finalize()
            trace = TraceReader(check_committed=True).decode_records(records)
            assert [a2.kind for a2 in trace.anomalies
                    if a2.kind != "missing-anchor"] == []
            for cpu, minor, mult in ((0, 1, 3), (1, 2, 5)):
                evs = [e for e in trace.events(cpu) if e.major == Major.TEST]
                assert [list(e.data) for e in evs] == \
                    [[i, i * mult] for i in range(100)]
                times = [e.time for e in evs if e.time is not None]
                assert times == sorted(times)
        finally:
            a.close()
            b.close()
            region.close()
            region.unlink()

    def test_collector_held_counts_distinct_buffers(self):
        """``stats.held`` counts deferred *buffers*, not deferring
        *polls*: a writer stalled mid-buffer that the collector
        re-observes over N polls is one deferred emission, so the stat
        stays comparable across poll rates.  (Pre-fix it incremented
        once per poll.)"""
        reg = ShmTraceRegion.create(ncpus=1, buffer_words=16, num_buffers=4)
        try:
            # Simulate a writer preempted mid-copy: the reservation
            # index has moved past buffer 0, but not one of its words
            # was ever committed.
            reg.index_word(0).store(32)  # two buffers' worth reserved
            collector = ShmCollector(reg)
            for _ in range(5):
                assert collector.poll(lag=0) == []
            assert collector.stats.held == 1
            # finalize force-emits past the gate; held stays settled.
            records = collector.finalize()
            assert {r.seq for r in records} == {0, 1}
            assert collector.stats.held == 1
        finally:
            reg.close()
            reg.unlink()

    def test_collector_reports_lap_drops(self):
        """A collector that never polls while the ring wraps must count
        the overwritten buffers as dropped, not emit stale data."""
        reg = ShmTraceRegion.create(ncpus=1, buffer_words=16, num_buffers=2)
        try:
            collector = ShmCollector(reg)  # cursor at 0, then starved
            logger = reg.logger(0)
            for i in range(200):
                logger.log_words(Major.TEST, 1, [i])
            reg.set_done()
            records = collector.poll(lag=0) + collector.finalize()
            assert collector.stats.dropped > 0
            seqs = sorted(r.seq for r in records)
            cur = reg.index_word(0).peek() // 16
            assert all(s >= cur - 1 for s in seqs)  # only live buffers
        finally:
            reg.close()
            reg.unlink()

    def test_late_attach_gets_fresh_anchor(self):
        """A writer attaching > 2^31 ns after creation must not read as
        a timestamp regression: ``logger()`` logs a fresh full-width
        anchor, and the readers re-base at it.  (This is the spawn
        start-method flake: child startup can take seconds.)"""
        from repro.core.timestamps import ManualClock

        region = ShmTraceRegion.create(ncpus=1, buffer_words=64,
                                       num_buffers=8)
        late = ShmTraceRegion.attach(region.name)
        try:
            # Simulate a slow-starting writer: its clock reads ~3 s
            # past the creator's buffer-0 anchor.
            gap = 3_000_000_000
            logger = late.logger(0, clock=ManualClock(start=gap))
            for i in range(10):
                logger.log_words(Major.TEST, 1, [i])
            region.set_done()
            records = ShmCollector(region).finalize()
            trace = TraceReader(check_committed=True).decode_records(records)
            assert [a.kind for a in trace.anomalies
                    if a.kind != "missing-anchor"] == []
            evs = [e for e in trace.events(0) if e.major == Major.TEST]
            assert [list(e.data) for e in evs] == [[i] for i in range(10)]
            assert all(e.time is not None and e.time >= gap for e in evs)
        finally:
            late.close()
            region.close()
            region.unlink()

    def test_adopt_state_validates_geometry(self, region):
        from repro.core.buffers import TraceControl
        ctl = TraceControl(cpu=0, buffer_words=64, num_buffers=4)
        with pytest.raises(ValueError):
            ctl.adopt_state(array=[0] * 10)
        with pytest.raises(ValueError):
            ctl.adopt_state(slot_seq=[0] * 3)
