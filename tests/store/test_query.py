"""Predicate pushdown: pruned queries match brute-force selection.

The sweep seeds from ``REPRO_STORE_SEED`` so CI can run it with fresh
random predicates on every push; locally it defaults to a fixed seed.
"""

import os
import random

import numpy as np
import pytest

from repro.core.columnar import as_batch
from repro.store import Predicate, TraceStore, pack_records, select
from repro.tools.context import ColumnarContext
from repro.workloads import run_contention
from tests.core.test_columnar import _corrupt, _event_tuple
from tests.core.test_parallel import build_records

SEED = int(os.environ.get("REPRO_STORE_SEED", "1729"))


@pytest.fixture(scope="module")
def packed(tmp_path_factory):
    """A multi-shard store plus its brute-force reference columns."""
    _k, facility, _ = run_contention(
        ncpus=4, workers_per_cpu=2, iterations=60, buffer_words=1024)
    records = facility.snapshot()
    d = str(tmp_path_factory.mktemp("store") / "s")
    pack_records(records, d, shard_events=512)
    store = TraceStore(d)
    full = as_batch(store.trace())
    ctx = ColumnarContext(full)
    return store, full, ctx


def _query_tuples(qr):
    # Query rows arrive in shard order; the reference batch is the
    # time-ordered merge, so sort the same way before comparing.
    order = qr.batch.order_by_time()
    pid = qr.pid[order].tolist()
    known = qr.pid_known[order].tolist()
    return [t + (int(p) if k else None,)
            for t, p, k in zip(map(_event_tuple, qr.batch.events(order)),
                               pid, known)]


def _brute_tuples(full, ctx, pred):
    idx = np.flatnonzero(select(full, pred, pid=ctx.pid, pid_known=ctx.known))
    return [t + (int(p) if k else None,)
            for t, p, k in zip(map(_event_tuple, full.events(idx)),
                               ctx.pid[idx].tolist(),
                               ctx.known[idx].tolist())]


def _assert_parity(store, full, ctx, pred):
    qr = store.query(pred)
    assert _query_tuples(qr) == _brute_tuples(full, ctx, pred)
    assert qr.shards_read <= qr.shards_total
    assert qr.shards_pruned == qr.shards_total - qr.shards_read
    return qr


class TestPushdownParity:
    def test_trivial_predicate_returns_everything(self, packed):
        store, full, ctx = packed
        pred = Predicate()
        assert pred.trivial
        qr = _assert_parity(store, full, ctx, pred)
        assert len(qr) == len(full)
        assert qr.shards_read == qr.shards_total

    def test_cpu_predicate_prunes_other_cpus_shards(self, packed):
        store, full, ctx = packed
        qr = _assert_parity(store, full, ctx, Predicate(cpus=(1,)))
        per_cpu = len([i for i in store.shards if i.stats.cpu == 1])
        assert qr.shards_read == per_cpu
        assert qr.shards_pruned == qr.shards_total - per_cpu

    def test_time_window_reads_only_overlapping_shards(self, packed):
        store, full, ctx = packed
        t = full.time[full.timed]
        span = int(t.max()) / 1e9
        pred = Predicate(start_s=span * 0.4, end_s=span * 0.45)
        qr = _assert_parity(store, full, ctx, pred)
        assert 0 < len(qr) < len(full)
        assert qr.shards_read < qr.shards_total

    def test_name_predicate(self, packed):
        store, full, ctx = packed
        qr = _assert_parity(
            store, full, ctx,
            Predicate(names=("TRC_LOCK_CONTEND_START",)))
        assert len(qr) > 0
        assert qr.shards_read < qr.shards_total or \
            all(i.stats.major_mask for i in store.shards)

    def test_unresolvable_name_matches_nothing_but_stays_correct(
            self, packed):
        store, full, ctx = packed
        qr = _assert_parity(store, full, ctx,
                            Predicate(names=("TRC_NO_SUCH_EVENT",)))
        assert len(qr) == 0

    def test_pid_predicate(self, packed):
        store, full, ctx = packed
        pids = sorted(set(ctx.pid[ctx.known].tolist()))
        assert pids
        for pid in [int(pids[0]), int(pids[-1]), 10 ** 9, -1]:
            _assert_parity(store, full, ctx, Predicate(pid=pid))

    def test_control_exclusion(self, packed):
        store, full, ctx = packed
        qr_in = _assert_parity(store, full, ctx,
                               Predicate(include_control=True))
        qr_out = _assert_parity(store, full, ctx,
                                Predicate(include_control=False))
        assert len(qr_out) < len(qr_in)


class TestRandomSweep:
    def test_random_predicates_match_brute_force(self, packed):
        store, full, ctx = packed
        rng = random.Random(SEED)
        t = full.time[full.timed]
        span = int(t.max()) / 1e9
        names = ["TRC_LOCK_CONTEND_START", "TRC_PCSAMPLE",
                 "TRC_SYSCALL_ENTER", "TRC_PROC_CTX_SWITCH"]
        pids = sorted(set(ctx.pid[ctx.known].tolist())) or [0]
        pruned_once = False
        for _ in range(40):
            kw = {}
            if rng.random() < 0.5:
                kw["cpus"] = tuple(rng.sample(range(4),
                                              rng.randint(1, 2)))
            if rng.random() < 0.4:
                kw["majors"] = tuple(rng.sample(range(11),
                                                rng.randint(1, 3)))
            if rng.random() < 0.3:
                kw["names"] = tuple(rng.sample(names, rng.randint(1, 2)))
            if rng.random() < 0.5:
                a, b = sorted((rng.uniform(0, span), rng.uniform(0, span)))
                kw["start_s"], kw["end_s"] = a, b
            if rng.random() < 0.3:
                kw["pid"] = int(rng.choice(pids))
            if rng.random() < 0.3:
                kw["min_data"] = rng.randint(0, 3)
            if rng.random() < 0.3:
                kw["timed_only"] = True
            kw["include_control"] = rng.random() < 0.5
            qr = _assert_parity(store, full, ctx, Predicate(**kw))
            pruned_once = pruned_once or qr.shards_pruned > 0
        assert pruned_once, "sweep never exercised statistics pruning"

    def test_sweep_on_corrupt_store(self, tmp_path):
        records = _corrupt(build_records(n_events=1200, ncpus=3,
                                         buffer_words=64))
        d = str(tmp_path / "s")
        pack_records(records, d, shard_events=64)
        store = TraceStore(d)
        full = as_batch(store.trace())
        ctx = ColumnarContext(full)
        rng = random.Random(SEED + 1)
        for _ in range(15):
            kw = {}
            if rng.random() < 0.6:
                kw["cpus"] = (rng.randrange(3),)
            if rng.random() < 0.6:
                kw["majors"] = tuple(rng.sample(range(8), 2))
            if rng.random() < 0.4:
                kw["min_data"] = rng.randint(0, 2)
            kw["include_control"] = rng.random() < 0.5
            _assert_parity(store, full, ctx, Predicate(**kw))


class TestFleetSweep:
    """The random sweep generalized to a multi-node fleet store.

    Same parity contract, plus the fleet-specific guarantee: a
    ``nodes`` criterion prunes *every* shard of an excluded node
    without opening it.
    """

    @pytest.fixture(scope="class")
    def fleet_packed(self, tmp_path_factory):
        from repro.fleet.launch import fleet_run
        from repro.fleet.merge import pack_fleet_view

        base = tmp_path_factory.mktemp("fleet")
        result = fleet_run(str(base / "run"), nodes=3, iterations=15)
        d = str(base / "fleet.store")
        pack_fleet_view(result.view, d, shard_events=256)
        store = TraceStore(d)
        full = as_batch(store.trace())
        ctx = ColumnarContext(full)
        return store, full, ctx

    def test_random_predicates_with_node_criterion(self, fleet_packed):
        store, full, ctx = fleet_packed
        rng = random.Random(SEED + 9)
        t = full.time[full.timed]
        span = int(t.max()) / 1e9
        node_pruned = False
        for _ in range(30):
            kw = {}
            if rng.random() < 0.6:
                kw["nodes"] = tuple(rng.sample(store.nodes,
                                               rng.randint(1, 2)))
            if rng.random() < 0.4:
                kw["cpus"] = tuple(rng.sample(range(2),
                                              rng.randint(1, 2)))
            if rng.random() < 0.4:
                kw["majors"] = tuple(rng.sample(range(11),
                                                rng.randint(1, 3)))
            if rng.random() < 0.4:
                a, b = sorted((rng.uniform(0, span), rng.uniform(0, span)))
                kw["start_s"], kw["end_s"] = a, b
            if rng.random() < 0.3:
                kw["timed_only"] = True
            kw["include_control"] = rng.random() < 0.5
            qr = _assert_parity(store, full, ctx, Predicate(**kw))
            picked = kw.get("nodes")
            if picked is not None:
                for node, (read, total) in qr.node_shards.items():
                    if node not in picked:
                        assert read == 0, (
                            f"node {node} excluded by {picked} but "
                            f"{read}/{total} of its shards were opened")
                        node_pruned = node_pruned or total > 0
        assert node_pruned, "sweep never exercised node pruning"
