"""Parallel store pack/query and the shared shard cache.

The parallel fast paths buy speed, never different bytes: a pooled
pack is byte-identical to the sequential one, and a pooled query
answers every random predicate exactly like the ``workers=1`` store.
Random-sweep seeds come from ``STORE_SWEEP_SEEDS`` (comma-separated,
default ``0,1,2``) and each assertion message echoes the seed.
"""

import os

import numpy as np
import pytest

from repro.core import pool
from repro.store import (
    Predicate,
    ShardCache,
    TraceStore,
    pack_records,
    shard_cache,
)
from repro.workloads import run_contention
from tests.core.test_parallel import as_comparable

SEEDS = [int(s) for s in
         os.environ.get("STORE_SWEEP_SEEDS", "0,1,2").split(",")]


@pytest.fixture(scope="module")
def contention_records():
    _kernel, facility, _ = run_contention(
        ncpus=4, workers_per_cpu=2, iterations=40, buffer_words=1024)
    return facility.snapshot()


@pytest.fixture(scope="module")
def packed(contention_records, tmp_path_factory):
    out = str(tmp_path_factory.mktemp("parstore") / "s")
    pack_records(contention_records, out, shard_events=512)
    return out


@pytest.fixture(autouse=True)
def _fresh_caches():
    shard_cache().clear()
    yield
    shard_cache().clear()
    pool.shutdown()


def _store_bytes(path):
    return {name: open(os.path.join(path, name), "rb").read()
            for name in sorted(os.listdir(path))}


def _result_key(qr):
    order = qr.batch.order_by_time()
    return (list(zip(qr.batch.cpu[order].tolist(),
                     qr.batch.seq[order].tolist(),
                     qr.batch.offset[order].tolist())),
            qr.pid[order].tolist(),
            qr.pid_known[order].tolist())


class TestParallelPack:
    @pytest.mark.parametrize("workers", [0, 2, 3])
    def test_byte_identical_to_sequential(self, contention_records,
                                          tmp_path, workers):
        seq = str(tmp_path / "seq")
        par = str(tmp_path / f"par{workers}")
        r1 = pack_records(contention_records, seq, shard_events=512,
                          workers=1)
        r2 = pack_records(contention_records, par, shard_events=512,
                          workers=workers)
        assert r1.shards == r2.shards and r1.events == r2.events
        assert r1.bytes_written == r2.bytes_written
        assert _store_bytes(seq) == _store_bytes(par)

    def test_parallel_pack_roundtrips(self, contention_records, tmp_path):
        out = str(tmp_path / "s")
        pack_records(contention_records, out, shard_events=512, workers=2)
        seq = str(tmp_path / "ref")
        pack_records(contention_records, seq, shard_events=512, workers=1)
        assert (as_comparable(TraceStore(out).trace())
                == as_comparable(TraceStore(seq).trace()))


def _random_predicate(rng, store):
    time_max = max((i.stats.time_max for i in store.shards), default=0)
    span = time_max / 1e9 or 1.0
    kw = {}
    if rng.random() < 0.5:
        kw["cpus"] = tuple(rng.choice(store.cpus,
                                      size=rng.integers(1, 3),
                                      replace=False).tolist())
    if rng.random() < 0.5:
        lo, hi = sorted(rng.uniform(0, span, size=2).tolist())
        kw["start_s"], kw["end_s"] = lo, hi
    if rng.random() < 0.3:
        kw["timed_only"] = True
    if rng.random() < 0.3:
        kw["include_control"] = False
    if rng.random() < 0.2:
        kw["min_data"] = int(rng.integers(0, 3))
    return Predicate(**kw)


class TestParallelQuery:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_predicate_sweep(self, packed, seed):
        """workers=2 answers == workers=1 answers, predicate by predicate."""
        rng = np.random.default_rng(seed)
        ref_store = TraceStore(packed, workers=1)
        par_store = TraceStore(packed, workers=2)
        for i in range(8):
            pred = _random_predicate(rng, ref_store)
            shard_cache().clear()
            ref = ref_store.query(pred)
            shard_cache().clear()
            got = par_store.query(pred)
            why = (f"seed={seed} predicate #{i}: {pred}; re-run: "
                   f"STORE_SWEEP_SEEDS={seed} PYTHONPATH=src python -m "
                   f"pytest tests/store/test_parallel_store.py -k sweep")
            assert got.shards_read == ref.shards_read, why
            assert got.rows_scanned == ref.rows_scanned, why
            assert _result_key(got) == _result_key(ref), why

    def test_parallel_trace_identical(self, packed):
        assert (as_comparable(TraceStore(packed, workers=2).trace())
                == as_comparable(TraceStore(packed, workers=1).trace()))


class TestShardCache:
    def test_repeat_query_hits_cache(self, packed):
        store = TraceStore(packed)
        pred = Predicate()
        store.query(pred)
        misses = shard_cache().misses
        assert misses > 0 and shard_cache().hits == 0
        again = TraceStore(packed)  # separate instance, same cache
        again.query(pred)
        assert shard_cache().misses == misses, "second query re-read shards"
        assert shard_cache().hits > 0

    def test_disabled_by_env(self, packed, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_CACHE_MB", "0")
        store = TraceStore(packed)
        store.query(Predicate())
        assert len(shard_cache()) == 0

    def test_stale_key_after_repack(self, packed, contention_records,
                                    tmp_path):
        out = str(tmp_path / "s")
        pack_records(contention_records, out, shard_events=512)
        ref = _result_key(TraceStore(out).query(Predicate()))
        assert shard_cache().hits == 0
        # Repack in place: every shard file is rewritten, so the cache
        # keys (size, mtime_ns) no longer match and nothing stale serves.
        pack_records(contention_records, out, shard_events=256, force=True)
        got = _result_key(TraceStore(out).query(Predicate()))
        assert got == ref
        assert shard_cache().hits == 0, "served a stale cached shard"

    def test_lru_eviction_by_budget(self):
        c = ShardCache(max_bytes=100)
        c.put("a", "A", 40)
        c.put("b", "B", 40)
        assert c.get("a") == "A"  # touch a: b becomes LRU
        c.put("c", "C", 40)
        assert c.get("b") is None, "LRU entry should have been evicted"
        assert c.get("a") == "A" and c.get("c") == "C"
        assert c.bytes <= 100

    def test_oversized_entry_not_admitted(self):
        c = ShardCache(max_bytes=10)
        c.put("big", "X", 11)
        assert len(c) == 0 and c.get("big") is None

    def test_budget_env_change_rebuilds(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_CACHE_MB", "1")
        c1 = shard_cache()
        assert c1.max_bytes == 1 << 20
        monkeypatch.setenv("REPRO_SHARD_CACHE_MB", "2")
        c2 = shard_cache()
        assert c2.max_bytes == 2 << 20 and c2 is not c1
