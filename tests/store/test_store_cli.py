"""CLI surface of the store: pack, query, and --store tool identity."""

import os

import pytest

from repro.cli import main
from repro.core.writer import save_records
from repro.workloads import run_contention


@pytest.fixture(scope="module")
def packed(tmp_path_factory):
    d = tmp_path_factory.mktemp("storecli")
    kernel, facility, _ = run_contention(
        ncpus=4, workers_per_cpu=2, iterations=40, buffer_words=1024)
    trace_path = str(d / "trace.k42")
    save_records(trace_path, facility.snapshot())
    syms_path = str(d / "syms.json")
    kernel.symbols().save(syms_path)
    store_path = str(d / "trace.store")
    assert main(["pack", trace_path, store_path,
                 "--shard-events", "512"]) == 0
    return dict(trace=trace_path, store=store_path, syms=syms_path)


class TestPack:
    def test_pack_summary(self, packed, capsys, tmp_path):
        out2 = str(tmp_path / "s2")
        assert main(["pack", packed["trace"], out2]) == 0
        out = capsys.readouterr().out
        assert "events:" in out and "shards:" in out and "bytes:" in out

    def test_pack_refuses_overwrite_without_force(
            self, packed, capsys, tmp_path):
        out2 = str(tmp_path / "s2")
        assert main(["pack", packed["trace"], out2]) == 0
        capsys.readouterr()
        assert main(["pack", packed["trace"], out2]) == 2
        assert "--force" in capsys.readouterr().err
        assert main(["pack", packed["trace"], out2, "--force"]) == 0

    def test_pack_compresses(self, packed):
        npz = sum(os.path.getsize(os.path.join(packed["store"], f))
                  for f in os.listdir(packed["store"]))
        assert npz < os.path.getsize(packed["trace"])


class TestQuery:
    def test_listing_with_accounting(self, packed, capsys):
        assert main(["query", packed["store"], "--cpu", "1",
                     "--limit", "5"]) == 0
        cap = capsys.readouterr()
        lines = cap.out.strip().splitlines()
        assert 0 < len(lines) <= 5
        assert "shards" in cap.err and "pruned by statistics" in cap.err

    def test_pruning_reported(self, packed, capsys):
        assert main(["query", packed["store"], "--cpu", "2"]) == 0
        err = capsys.readouterr().err
        words = err.split()
        read, total = words[words.index("read") + 1].split("/")
        assert int(read) < int(total)

    def test_aggregate(self, packed, capsys):
        assert main(["query", packed["store"], "--aggregate", "name",
                     "--top", "4"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 4
        counts = [int(l.split()[0]) for l in lines]
        assert counts == sorted(counts, reverse=True)

    def test_project_tsv(self, packed, capsys):
        assert main(["query", packed["store"],
                     "--name", "TRC_LOCK_CONTEND_START",
                     "--project", "seconds,cpu,pid,data0",
                     "--limit", "3"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0] == "seconds\tcpu\tpid\tdata0"
        assert all(len(l.split("\t")) == 4 for l in lines[1:])

    def test_query_matches_list(self, packed, capsys):
        """query with listing-equivalent flags prints the same events."""
        assert main(["list", packed["trace"], "--cpu", "1",
                     "--limit", "25"]) == 0
        listed = capsys.readouterr().out
        assert main(["query", packed["store"], "--cpu", "1",
                     "--limit", "25"]) == 0
        queried = capsys.readouterr().out
        assert queried == listed


_TOOL_ARGS = {
    "list": ["--limit", "40"],
    "kmon": ["--width", "60"],
    "locks": ["--top", "5"],
    "profile": [],
    "breakdown": ["--pid", "1"],
    "sched": [],
}


@pytest.mark.parametrize("command", sorted(_TOOL_ARGS))
def test_store_output_identical(command, packed, capsys):
    """Every tool gives byte-identical output from store vs raw trace."""
    extra = _TOOL_ARGS[command]
    if command in ("locks", "profile", "breakdown", "sched"):
        extra = extra + ["--symbols", packed["syms"]]
    assert main([command, packed["trace"], *extra]) == 0
    raw = capsys.readouterr().out
    assert main([command, packed["store"], "--store", *extra]) == 0
    flagged = capsys.readouterr().out
    assert main([command, packed["store"], *extra]) == 0  # auto-detect
    detected = capsys.readouterr().out
    assert raw == flagged == detected


def test_info_on_store(packed, capsys):
    assert main(["info", packed["store"]]) == 0
    out = capsys.readouterr().out
    assert "events:" in out and "cpus: [0, 1, 2, 3]" in out


def test_single_node_stderr_regression(packed, capsys):
    """A store without a node universe gets NO per-node accounting
    lines — stdout and stderr stay byte-stable for existing users."""
    assert main(["query", packed["store"], "--cpu", "1",
                 "--limit", "2"]) == 0
    err = capsys.readouterr().err
    lines = err.strip().splitlines()
    assert len(lines) == 1
    assert lines[0].startswith("store: read ")
    assert "node" not in err
