"""Pack → store → trace() reconstitution is bit-identical to decode."""

import json
import os

import numpy as np
import pytest

from repro.core.columnar import ColumnarTrace, ColumnarTraceReader, EventBatch
from repro.core.registry import default_registry
from repro.store import (
    StoreFormatError,
    TraceStore,
    is_store,
    pack_records,
    pack_trace,
)
from repro.store.format import MANIFEST_NAME, read_manifest
from repro.workloads import run_contention
from tests.core.test_columnar import _corrupt, _event_tuple
from tests.core.test_parallel import as_comparable, build_records


def _decode(records, strict=False):
    return ColumnarTraceReader(registry=default_registry(),
                               strict=strict).decode_records(records)


@pytest.fixture(scope="module")
def contention_records():
    _kernel, facility, _ = run_contention(
        ncpus=4, workers_per_cpu=2, iterations=40, buffer_words=1024)
    return facility.snapshot()


class TestRoundTrip:
    def test_trace_is_bit_identical_to_fresh_decode(
            self, contention_records, tmp_path):
        fresh = _decode(contention_records)
        res = pack_records(contention_records, str(tmp_path / "s"),
                           shard_events=512)
        store = TraceStore(str(tmp_path / "s"))
        again = store.trace()
        assert as_comparable(again) == as_comparable(fresh)
        assert res.events == sum(len(b) for b in fresh.batches_by_cpu.values())
        assert res.shards > len(fresh.cpus)  # multi-shard per CPU
        assert store.cpus == fresh.cpus

    def test_corrupt_trace_roundtrips_with_anomalies(self, tmp_path):
        records = _corrupt(build_records(n_events=900, ncpus=3))
        fresh = _decode(records)
        pack_records(records, str(tmp_path / "s"), shard_events=128)
        again = TraceStore(str(tmp_path / "s")).trace()
        assert as_comparable(again) == as_comparable(fresh)
        assert len(again.anomaly_columns) == len(fresh.anomaly_columns) > 0

    def test_eventless_cpu_survives(self, tmp_path):
        # A CPU in the trace universe with zero events gets no shard,
        # but trace() must still reconstitute it (as an empty batch).
        records = build_records(n_events=120, ncpus=2)
        fresh = _decode(records)
        batches = dict(fresh.batches_by_cpu)
        batches[7] = EventBatch.empty(default_registry())
        padded = ColumnarTrace(batches, fresh.anomaly_columns,
                               default_registry())
        pack_trace(padded, str(tmp_path / "s"))
        store = TraceStore(str(tmp_path / "s"))
        assert store.cpus == [0, 1, 7]
        assert all(info.stats.cpu != 7 for info in store.shards)
        again = store.trace()
        assert again.cpus == [0, 1, 7]
        assert len(again.batches_by_cpu[7]) == 0
        assert as_comparable(again) == as_comparable(padded)

    def test_uncompressed_store_identical(self, contention_records, tmp_path):
        fresh = _decode(contention_records)
        trace = _decode(contention_records)
        pack_trace(trace, str(tmp_path / "s"), shard_events=512,
                   compress=False)
        store = TraceStore(str(tmp_path / "s"))
        assert store.compression == "none"
        assert as_comparable(store.trace()) == as_comparable(fresh)


class TestShardLayout:
    def test_shards_cut_only_at_buffer_boundaries(
            self, contention_records, tmp_path):
        pack_records(contention_records, str(tmp_path / "s"),
                     shard_events=256)
        store = TraceStore(str(tmp_path / "s"))
        seen = {}  # (cpu, seq) -> shard index; a buffer never splits
        for info in store.shards:
            batch, _, _ = store.load_shard(info)
            assert (batch.cpu == info.stats.cpu).all()
            for seq in np.unique(batch.seq).tolist():
                key = (info.stats.cpu, seq)
                assert key not in seen, \
                    f"buffer {key} split across shards {seen[key]}, " \
                    f"{info.index}"
                seen[key] = info.index

    def test_manifest_stats_bound_their_shard(
            self, contention_records, tmp_path):
        pack_records(contention_records, str(tmp_path / "s"),
                     shard_events=256)
        store = TraceStore(str(tmp_path / "s"))
        for info in store.shards:
            batch, pid, known = store.load_shard(info)
            st = info.stats
            assert st.events == len(batch)
            assert st.seq_min == int(batch.seq.min())
            assert st.seq_max == int(batch.seq.max())
            majors = np.unique(batch.major).tolist()
            assert all(st.major_mask >> m & 1 for m in majors)
            assert st.dlen_max == int(batch.dlen.max())
            if known.any():
                kp = pid[known]
                assert st.pid_min == int(kp.min())
                assert st.pid_max == int(kp.max())


class TestStoreDirectory:
    def test_is_store_detection(self, contention_records, tmp_path):
        target = str(tmp_path / "s")
        assert not is_store(target)
        pack_records(contention_records, target)
        assert is_store(target)
        assert not is_store(str(tmp_path))

    def test_refuses_overwrite_without_force(
            self, contention_records, tmp_path):
        target = str(tmp_path / "s")
        pack_records(contention_records, target)
        with pytest.raises(FileExistsError):
            pack_records(contention_records, target)
        res = pack_records(contention_records, target, shard_events=512,
                           force=True)
        # Force replaced, not appended: manifest matches what's on disk.
        files = [f for f in os.listdir(target) if f.endswith(".npz")]
        assert len(files) == res.shards

    def test_rejects_foreign_manifest(self, tmp_path):
        target = tmp_path / "s"
        target.mkdir()
        (target / MANIFEST_NAME).write_text(
            json.dumps({"format": "not-a-store", "version": 1}))
        with pytest.raises(StoreFormatError):
            TraceStore(str(target))

    def test_rejects_future_version(self, contention_records, tmp_path):
        target = str(tmp_path / "s")
        pack_records(contention_records, target)
        manifest = read_manifest(target)
        manifest["version"] = 999
        with open(os.path.join(target, MANIFEST_NAME), "w") as fh:
            json.dump(manifest, fh)
        with pytest.raises(StoreFormatError):
            TraceStore(target)

    def test_cache_shards_returns_same_objects(
            self, contention_records, tmp_path):
        pack_records(contention_records, str(tmp_path / "s"))
        store = TraceStore(str(tmp_path / "s"), cache_shards=True)
        info = store.shards[0]
        b1, _, _ = store.load_shard(info)
        b2, _, _ = store.load_shard(info)
        assert b1 is b2


class TestObjectTimeShards:
    def test_big_time_roundtrip_through_store(self, tmp_path):
        # Corrupt-anchor times beyond int64 ride the string-typed
        # time_big arrays; the manifest flags the shard.
        records = build_records(n_events=60, ncpus=1, buffer_words=64)
        trace = _decode(records)
        b = trace.batches_by_cpu[0]
        t = b.time.astype(object)
        t[5] = 2 ** 70 + 99
        b.time = t
        pack_trace(trace, str(tmp_path / "s"))
        store = TraceStore(str(tmp_path / "s"))
        assert any(d.get("time_big")
                   for d in read_manifest(str(tmp_path / "s"))["shards"])
        again = store.trace().batches_by_cpu[0]
        assert again.time.dtype == object
        assert again.time.tolist() == b.time.tolist()
        assert list(map(_event_tuple, again.events())) == \
            list(map(_event_tuple, b.events()))
